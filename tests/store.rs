//! Chaos tests for the persistent artifact store: warm starts, torn
//! and corrupted entries, version skew, concurrent directories, and
//! injected I/O faults.
//!
//! The invariant under test everywhere: **no corruption schedule ever
//! panics or changes an answer**. A damaged cache degrades to a typed
//! miss and a recompile whose observable outcome is byte-identical to
//! a cold engine's.

use std::fs;
use std::path::{Path, PathBuf};

use units::{Backend, Engine, Observation};
use units_store::fnv1a_64;

const PROGRAM: &str = "\
(define main (unit (import) (export)
  (define square (lambda (n) (* n n)))
  (init (+ (square 9) (square 4)))))
(invoke main)";

const OTHER: &str = "(invoke (unit (import) (export) (init (* 6 7))))";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("units-store-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn warm_engine(dir: &Path, backend: Backend) -> Engine {
    Engine::builder().backend(backend).cache_dir(dir).build()
}

/// The answer an engine with no disk cache computes — the ground truth
/// every corrupted-cache run must reproduce.
fn cold_answer(source: &str, backend: Backend) -> Observation {
    Engine::builder().backend(backend).build().invoke(source).unwrap().value
}

/// The single `<key>.unit` entry file in `dir`.
fn entry_file(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "unit"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cache entry in {}", dir.display());
    entries.pop().unwrap()
}

fn quarantine_count(dir: &Path) -> usize {
    fs::read_dir(dir.join("corrupt")).map(|d| d.flatten().count()).unwrap_or(0)
}

#[test]
fn warm_start_skips_parsing_entirely() {
    let dir = temp_dir("warm");
    let cold = cold_answer(PROGRAM, Backend::Compiled);
    {
        let writer = warm_engine(&dir, Backend::Compiled);
        assert_eq!(writer.invoke(PROGRAM).unwrap().value, cold);
        let snap = writer.metrics_snapshot();
        assert_eq!(snap.store.writes, 1, "fresh admission writes through");
        assert_eq!(snap.store.hits, 0);
    }
    // A brand-new engine — the in-process stand-in for a second
    // process — answers from disk without parsing anything.
    let warm = warm_engine(&dir, Backend::Compiled);
    assert_eq!(warm.invoke(PROGRAM).unwrap().value, cold);
    let snap = warm.metrics_snapshot();
    assert_eq!(snap.cache.parses, 0, "warm start must not re-parse");
    assert_eq!(snap.store.hits, 1);
    assert_eq!(snap.store.corrupt, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_carries_lowered_bytecode() {
    let dir = temp_dir("warm-vm");
    let cold = cold_answer(PROGRAM, Backend::Bytecode);
    {
        let writer = warm_engine(&dir, Backend::Bytecode);
        assert_eq!(writer.invoke(PROGRAM).unwrap().value, cold);
    }
    let warm = warm_engine(&dir, Backend::Bytecode);
    assert_eq!(warm.invoke(PROGRAM).unwrap().value, cold);
    let snap = warm.metrics_snapshot();
    assert_eq!((snap.cache.parses, snap.store.hits), (0, 1));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncation_is_a_typed_miss_and_an_identical_recompile() {
    let dir = temp_dir("trunc");
    let cold = cold_answer(PROGRAM, Backend::Compiled);
    warm_engine(&dir, Backend::Compiled).invoke(PROGRAM).unwrap();
    let path = entry_file(&dir);
    let pristine = fs::read(&path).unwrap();
    // A spread of cut points across the whole image (the store crate
    // fuzzes every single length; here the engine-level contract is
    // what matters).
    let cuts: Vec<usize> =
        (0..pristine.len()).step_by((pristine.len() / 24).max(1)).chain([pristine.len() - 1]).collect();
    for cut in cuts {
        fs::write(&path, &pristine[..cut]).unwrap();
        let engine = warm_engine(&dir, Backend::Compiled);
        assert_eq!(
            engine.invoke(PROGRAM).unwrap().value,
            cold,
            "{cut}-byte prefix changed the answer"
        );
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.store.hits, 0, "{cut}-byte prefix verified as a hit");
        assert_eq!(snap.store.misses, 1);
        assert_eq!(snap.cache.parses, 1, "the miss recompiles exactly once");
        // The recompile wrote a fresh entry; restore the broken one for
        // the next round. (Quarantine grows only on indicting failures.)
        assert!(path.exists(), "recompile must write the entry back");
    }
    assert!(quarantine_count(&dir) > 0, "truncated entries should be quarantined");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flips_never_change_the_answer() {
    let dir = temp_dir("flip");
    let cold = cold_answer(PROGRAM, Backend::Compiled);
    warm_engine(&dir, Backend::Compiled).invoke(PROGRAM).unwrap();
    let path = entry_file(&dir);
    let pristine = fs::read(&path).unwrap();
    // Sample positions across header, payload, and checksum.
    let positions: Vec<usize> =
        (0..pristine.len()).step_by((pristine.len() / 16).max(1)).collect();
    for at in positions {
        for mask in [0x01u8, 0x80] {
            let mut mutated = pristine.clone();
            mutated[at] ^= mask;
            fs::write(&path, &mutated).unwrap();
            let engine = warm_engine(&dir, Backend::Compiled);
            assert_eq!(
                engine.invoke(PROGRAM).unwrap().value,
                cold,
                "flip {mask:#x} at byte {at} changed the answer"
            );
            let snap = engine.metrics_snapshot();
            assert_eq!(snap.store.hits, 0, "flip {mask:#x} at byte {at} verified as a hit");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn zero_length_entries_recompile_correctly() {
    let dir = temp_dir("zero");
    let cold = cold_answer(PROGRAM, Backend::Compiled);
    warm_engine(&dir, Backend::Compiled).invoke(PROGRAM).unwrap();
    let path = entry_file(&dir);
    fs::write(&path, b"").unwrap();
    let engine = warm_engine(&dir, Backend::Compiled);
    assert_eq!(engine.invoke(PROGRAM).unwrap().value, cold);
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.store.corrupt, 1, "an empty entry indicts the file");
    assert_eq!(snap.cache.parses, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_skew_quarantines_and_recompiles() {
    let dir = temp_dir("skew");
    let cold = cold_answer(PROGRAM, Backend::Compiled);
    warm_engine(&dir, Backend::Compiled).invoke(PROGRAM).unwrap();
    let path = entry_file(&dir);
    let mut image = fs::read(&path).unwrap();
    // Bump the on-disk format version in place and re-stamp the
    // trailing checksum, simulating an entry from a future build whose
    // *only* disagreement is the version field.
    let at = b"UNITCACH".len();
    let version = u32::from_le_bytes(image[at..at + 4].try_into().unwrap());
    image[at..at + 4].copy_from_slice(&(version + 1).to_le_bytes());
    let body = image.len() - 8;
    let sum = fnv1a_64(&image[..body]);
    image[body..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&path, &image).unwrap();

    let engine = warm_engine(&dir, Backend::Compiled);
    assert_eq!(engine.invoke(PROGRAM).unwrap().value, cold);
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.store.corrupt, 1, "version skew indicts the file");
    assert_eq!(snap.store.hits, 0);
    assert!(quarantine_count(&dir) > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn two_engines_share_one_directory_without_interference() {
    let dir = temp_dir("shared");
    let first = warm_engine(&dir, Backend::Compiled);
    let second = warm_engine(&dir, Backend::Compiled);

    // The first opener holds the write lock; the second degrades to a
    // reader but keeps answering correctly from its in-memory cache.
    assert_eq!(first.invoke(PROGRAM).unwrap().value, Observation::Int(97));
    assert_eq!(second.invoke(OTHER).unwrap().value, Observation::Int(42));
    assert_eq!(second.metrics_snapshot().store.writes, 0, "the lock loser must not write");

    // Lock-free reads: the second engine picks the first's entry up
    // from disk (writes are atomic renames, so it sees all or nothing).
    assert_eq!(second.invoke(PROGRAM).unwrap().value, Observation::Int(97));
    let snap = second.metrics_snapshot();
    assert_eq!(snap.store.hits, 1);
    assert_eq!(snap.store.corrupt, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn an_unusable_cache_directory_degrades_to_in_memory() {
    let blocker = std::env::temp_dir()
        .join(format!("units-store-test-{}-blocker", std::process::id()));
    fs::write(&blocker, b"a file where a directory should be").unwrap();
    // `cache_dir` pointing at a plain file cannot be opened as a store;
    // the engine must build and answer as if no cache was configured.
    let engine = Engine::builder().cache_dir(blocker.join("sub")).build();
    assert_eq!(engine.invoke(PROGRAM).unwrap().value, Observation::Int(97));
    let snap = engine.metrics_snapshot();
    assert_eq!((snap.store.hits, snap.store.misses, snap.store.writes), (0, 0, 0));
    let _ = fs::remove_file(&blocker);
}

#[test]
fn cache_entries_do_not_cross_engine_configurations() {
    let dir = temp_dir("configs");
    {
        let unresolved = Engine::builder().resolution(false).cache_dir(&dir).build();
        unresolved.invoke(PROGRAM).unwrap();
    }
    // A different configuration hashes to a different source key *and*
    // a different store fingerprint, so the default-resolution engine
    // cannot pick up the other configuration's artifact.
    let resolved = Engine::builder().cache_dir(&dir).build();
    assert_eq!(resolved.invoke(PROGRAM).unwrap().value, Observation::Int(97));
    let snap = resolved.metrics_snapshot();
    assert_eq!(snap.store.hits, 0, "configurations must not share artifacts");
    assert_eq!(snap.cache.parses, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[cfg(feature = "faults")]
mod faults {
    use super::*;
    use units::trace::faults::{arm, disarm, FaultPlane};

    #[test]
    fn an_injected_read_fault_is_a_transparent_miss() {
        let dir = temp_dir("fault-read");
        let cold = cold_answer(PROGRAM, Backend::Compiled);
        warm_engine(&dir, Backend::Compiled).invoke(PROGRAM).unwrap();

        arm(FaultPlane::seeded(7).trigger("store/read", 1));
        let engine = warm_engine(&dir, Backend::Compiled);
        let value = engine.invoke(PROGRAM).unwrap().value;
        disarm();

        assert_eq!(value, cold, "a flaky read changed the answer");
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.store.hits, 0);
        assert_eq!(snap.store.misses, 1);
        assert_eq!(snap.store.corrupt, 0, "transient I/O must not quarantine");
        // The entry survives for the next, healthy engine.
        let healthy = warm_engine(&dir, Backend::Compiled);
        assert_eq!(healthy.invoke(PROGRAM).unwrap().value, cold);
        assert_eq!(healthy.metrics_snapshot().store.hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_crash_between_write_and_rename_leaves_only_swept_garbage() {
        let dir = temp_dir("fault-write");
        let cold = cold_answer(PROGRAM, Backend::Compiled);

        // The `store/write` site sits between the synced temp write and
        // the atomic rename — firing it is a simulated writer crash.
        arm(FaultPlane::seeded(7).trigger("store/write", 1));
        let engine = warm_engine(&dir, Backend::Compiled);
        let value = engine.invoke(PROGRAM).unwrap().value;
        disarm();

        assert_eq!(value, cold, "a failed persist changed the answer");
        assert_eq!(engine.metrics_snapshot().store.writes, 0);
        let tmp_files = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "tmp"))
            .count();
        assert_eq!(tmp_files, 1, "the crash window leaves the temp file behind");
        drop(engine);

        // The next opener sweeps the wreckage, misses (the rename never
        // happened), and recompiles to the same answer.
        let next = warm_engine(&dir, Backend::Compiled);
        assert_eq!(next.invoke(PROGRAM).unwrap().value, cold);
        let snap = next.metrics_snapshot();
        assert_eq!((snap.store.hits, snap.store.misses), (0, 1));
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "tmp"))
            .count();
        assert_eq!(leftovers, 0, "open must sweep crashed-writer temp files");
        let _ = fs::remove_dir_all(&dir);
    }
}
