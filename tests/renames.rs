//! MzScheme-style source/destination linking (paper §4.1.2: "MzScheme's
//! syntax … links imports and exports via source and destination name
//! pairs, rather than requiring the same name at both ends of a
//! linkage").
//!
//! Surface syntax: inside a `with`/`provides` clause, `(as inner outer
//! [τ])` links the constituent's `inner` port to the compound's `outer`
//! name; `(as-type inner outer [κ])` does the same for type ports.

use units::{parse_expr, pretty_expr, Engine, Level, Observation, Strictness};

fn both(source: &str) -> units::Outcome {
    Engine::builder()
        .strictness(Strictness::MzScheme)
        .build()
        .load(source)
        .unwrap_or_else(|e| panic!("load: {e}"))
        .run_differential()
        .unwrap_or_else(|e| panic!("run: {e}"))
}

#[test]
fn two_units_with_clashing_exports_link_under_different_outer_names() {
    // Both constituents export `result`; renames give them distinct outer
    // names, which by-name linking cannot do.
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export result) (define result 1))
               (with) (provides (as result result-a)))
              ((unit (import) (export result) (define result 2))
               (with) (provides (as result result-b)))
              ((unit (import result-a result-b) (export)
                 (init (+ result-a result-b)))
               (with result-a result-b) (provides)))))";
    assert_eq!(both(src).value, Observation::Int(3));
}

#[test]
fn imports_can_be_fed_from_differently_named_sources() {
    // The consumer's inner name `f` is fed from the outer name `g`.
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export g) (define g (lambda (n) (* n 10))))
               (with) (provides g))
              ((unit (import f) (export) (init (f 4)))
               (with (as f g)) (provides)))))";
    assert_eq!(both(src).value, Observation::Int(40));
}

#[test]
fn cyclic_links_work_through_renames() {
    // even/odd where each unit names its partner differently.
    let src = "(invoke (compound (import) (export)
        (link ((unit (import partner) (export even)
                 (define even (lambda (n) (if (= n 0) true (partner (- n 1))))))
               (with (as partner odd-fn)) (provides (as even even-fn)))
              ((unit (import partner) (export odd)
                 (define odd (lambda (n) (if (= n 0) false (partner (- n 1)))))
                 (init (odd 13)))
               (with (as partner even-fn)) (provides (as odd odd-fn))))))";
    assert_eq!(both(src).value, Observation::Bool(true));
}

#[test]
fn renamed_exports_respect_hiding() {
    // Only the outer name exists; the inner name is not linkable.
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export secret) (define secret 9))
               (with) (provides (as secret public)))
              ((unit (import secret) (export) (init secret))
               (with secret) (provides)))))";
    let err = Engine::new().load(src).unwrap_err();
    let errs = err.as_check().expect("context check rejects");
    assert!(
        errs.iter().any(|e| matches!(
            e,
            units::CheckError::UnsatisfiedLink { name, .. } if name.as_str() == "secret"
        )),
        "{errs:?}"
    );
}

#[test]
fn duplicate_outer_names_are_rejected() {
    let src = "(compound (import) (export)
        (link ((unit (import) (export a) (define a 1))
               (with) (provides (as a shared)))
              ((unit (import) (export b) (define b 2))
               (with) (provides (as b shared)))))";
    let err = Engine::new().load(src).unwrap_err();
    let errs = err.as_check().expect("context check rejects");
    assert!(
        errs.iter().any(|e| matches!(
            e,
            units::CheckError::Duplicate { name, .. } if name.as_str() == "shared"
        )),
        "{errs:?}"
    );
}

#[test]
fn typed_linking_translates_value_port_types() {
    // Provider exports inc : int→int under outer name bump; consumer
    // imports step : int→int from bump. All annotations use inner names.
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export (inc (-> int int)))
                 (define inc (-> int int) (lambda ((n int)) (+ n 1))))
               (with) (provides (as inc bump (-> int int))))
              ((unit (import (step (-> int int))) (export)
                 (init (step 41)))
               (with (as step bump (-> int int))) (provides)))))";
    let engine = Engine::builder().level(Level::Constructed).build();
    let ty = engine.load(src).unwrap().ty().cloned().unwrap();
    assert_eq!(ty, units::Ty::Int);
    assert_eq!(both(src).value, Observation::Int(42));
}

#[test]
fn typed_linking_translates_type_ports() {
    // Two *different* database types coexist in one compound under outer
    // names db1/db2 — the renamed-type cure for Fig. 4's name collision.
    let src = "(compound (import) (export (type db1) (type db2))
        (link ((unit (import) (export (type db) (mk1 (-> int db)))
                 (datatype db (mka una int) db?)
                 (define mk1 (-> int db) (lambda ((n int)) (mka n))))
               (with)
               (provides (as-type db db1) (as mk1 mk1 (-> int db))))
              ((unit (import) (export (type db) (mk2 (-> int db)))
                 (datatype db (mkb unb int) dbx?)
                 (define mk2 (-> int db) (lambda ((n int)) (mkb n))))
               (with)
               (provides (as-type db db2) (as mk2 mk2 (-> int db))))))";
    let engine = Engine::builder().level(Level::Constructed).build();
    let loaded = engine.load(src).unwrap();
    let sig = loaded.ty().unwrap().as_sig().unwrap();
    assert!(sig.exports.ty_port(&"db1".into()).is_some());
    assert!(sig.exports.ty_port(&"db2".into()).is_some());
    // And the two mk functions have distinct outer types.
    // (The derived export types are stated over outer names.)
}

#[test]
fn typed_mismatch_through_renames_is_still_caught() {
    // The source has type int→int but the consumer expects str→str.
    let src = "(compound (import) (export)
        (link ((unit (import) (export (inc (-> int int)))
                 (define inc (-> int int) (lambda ((n int)) n)))
               (with) (provides (as inc bump (-> int int))))
              ((unit (import (step (-> str str))) (export))
               (with (as step bump (-> str str))) (provides))))";
    let err = Engine::builder().level(Level::Constructed).build().load(src).unwrap_err();
    let errs = err.as_check().unwrap();
    assert!(
        errs.iter().any(|e| matches!(e, units::CheckError::Mismatch { .. })),
        "{errs:?}"
    );
}

#[test]
fn renamed_clauses_round_trip_through_the_printer() {
    let src = "(compound (import) (export)
        (link ((unit (import f) (export g) (define g 1))
               (with (as f outer-f)) (provides (as g outer-g)))))";
    let e = parse_expr(src).unwrap();
    let printed = pretty_expr(&e);
    assert!(printed.contains("(as f outer-f)"), "{printed}");
    assert!(printed.contains("(as g outer-g)"), "{printed}");
    assert_eq!(parse_expr(&printed).unwrap(), e);
}

#[test]
fn reducer_merge_uses_outer_names() {
    // After one reduction step, the merged unit's definitions carry the
    // outer names and the interface matches the compound's.
    use units::{Reducer, Step};
    let compound = parse_expr(
        "(compound (import) (export visible)
           (link ((unit (import) (export inner) (define inner 5))
                  (with) (provides (as inner visible)))))",
    )
    .unwrap();
    let mut reducer = Reducer::new();
    let merged = match reducer.step(&compound).unwrap() {
        Step::Reduced(e) => e,
        Step::Value => panic!("must step"),
    };
    match &merged {
        units::Expr::Unit(u) => {
            assert!(u.exports.val_port(&"visible".into()).is_some());
            assert_eq!(u.vals[0].name.as_str(), "visible");
        }
        other => panic!("expected unit, got {other:?}"),
    }
}

#[test]
fn same_unit_linked_twice_under_different_outer_names() {
    // Individual reuse with renames: one unit value, two instances in the
    // same compound, distinguished purely by outer naming.
    let src = "(define counter (unit (import) (export get)
          (define state 0)
          (define get (lambda () (set! state (+ state 1)) state))))
        (invoke (compound (import) (export)
          (link (counter (with) (provides (as get get-a)))
                (counter (with) (provides (as get get-b)))
                ((unit (import get-a get-b) (export)
                   (init (tuple (get-a) (get-a) (get-b))))
                 (with get-a get-b) (provides)))))";
    // Two instances: independent state.
    assert_eq!(
        both(src).value,
        Observation::Tuple(vec![
            Observation::Int(1),
            Observation::Int(2),
            Observation::Int(1)
        ])
    );
}
