//! Differential testing: the §4.1.6 cells backend, the Fig. 11
//! substitution reducer, and the flat-bytecode VM against each other,
//! on randomly generated programs.
//!
//! The three evaluators share nothing but the kernel AST, the primitive
//! table, and the error type (the VM additionally shares the wiring
//! layer with the cells backend), so agreement over thousands of random
//! programs — including random unit/compound/invoke topologies — is
//! strong evidence that both compilations implement the rewriting
//! semantics.
//!
//! A second axis of the same idea guards the lexical-address resolver:
//! every program in the random corpus and every stdlib figure must
//! produce identical outcomes with slot resolution on and off, since
//! resolution is a pure lookup-strategy change (the lowerer falls back
//! to by-name `LoadName` ops on unresolved input).

use bench::rng::SplitMix64;

use units::{Backend, Engine, Error, Limits, Outcome, Strictness};
use units_kernel::{
    Binding, CompoundExpr, Expr, InvokeExpr, LinkClause, Param, Ports, PrimOp, UnitExpr, ValDefn,
};

/// A generator of closed, well-scoped programs.
struct Gen {
    rng: SplitMix64,
    fresh: u32,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { rng: SplitMix64::seed_from_u64(seed), fresh: 0 }
    }

    fn name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    /// A closed expression of bounded depth, in scope `vars`.
    fn expr(&mut self, depth: u32, vars: &[String]) -> Expr {
        if depth == 0 {
            return self.leaf(vars);
        }
        match self.rng.gen_range(0, 12) {
            0 | 1 => {
                // arithmetic
                const OPS: [PrimOp; 5] =
                    [PrimOp::Add, PrimOp::Sub, PrimOp::Mul, PrimOp::Lt, PrimOp::NumEq];
                let op = OPS[self.rng.gen_range(0, OPS.len())];
                Expr::prim2(op, self.expr(depth - 1, vars), self.expr(depth - 1, vars))
            }
            2 => Expr::if_(
                Expr::prim2(
                    PrimOp::Lt,
                    self.expr(depth - 1, vars),
                    self.expr(depth - 1, vars),
                ),
                self.expr(depth - 1, vars),
                self.expr(depth - 1, vars),
            ),
            3 => {
                // let
                let n = self.rng.gen_range(1, 3);
                let bindings: Vec<Binding> = (0..n)
                    .map(|_| {
                        let name = self.name("x");
                        Binding { name: name.as_str().into(), expr: self.expr(depth - 1, vars) }
                    })
                    .collect();
                let mut inner: Vec<String> = vars.to_vec();
                inner.extend(bindings.iter().map(|b| b.name.as_str().to_string()));
                Expr::Let(bindings, Box::new(self.expr(depth - 1, &inner)))
            }
            4 => {
                // immediately applied lambda (no self application ⇒ no
                // divergence from this rule)
                let n = self.rng.gen_range(1, 3);
                let params: Vec<String> = (0..n).map(|_| self.name("p")).collect();
                let mut inner: Vec<String> = vars.to_vec();
                inner.extend(params.iter().cloned());
                let body = self.expr(depth - 1, &inner);
                let lam = Expr::lambda(
                    params.iter().map(|p| Param::untyped(p.as_str())).collect(),
                    body,
                );
                let args = (0..n).map(|_| self.expr(depth - 1, vars)).collect();
                Expr::app(lam, args)
            }
            5 => {
                let n = self.rng.gen_range(1, 4);
                Expr::Tuple((0..n).map(|_| self.expr(depth - 1, vars)).collect())
            }
            6 => {
                let n = self.rng.gen_range(1, 4);
                let idx = self.rng.gen_range(0, n);
                Expr::Proj(
                    idx,
                    Box::new(Expr::Tuple((0..n).map(|_| self.expr(depth - 1, vars)).collect())),
                )
            }
            7 => Expr::seq(vec![self.expr(depth - 1, vars), self.expr(depth - 1, vars)]),
            8 => Expr::prim2(
                PrimOp::StrAppend,
                Expr::str(self.name("s")),
                Expr::prim1(PrimOp::IntToStr, self.expr(depth - 1, vars)),
            ),
            9 | 10 => self.invoke(depth - 1, vars),
            _ => self.leaf(vars),
        }
    }

    fn leaf(&mut self, vars: &[String]) -> Expr {
        if !vars.is_empty() && self.rng.gen_bool(0.4) {
            let i = self.rng.gen_range(0, vars.len());
            Expr::var(vars[i].as_str())
        } else {
            Expr::int(self.rng.gen_range_i64(-20, 20))
        }
    }

    /// A unit with random imports (drawn from `import_pool`), a few
    /// definitions, and an init expression.
    fn unit(&mut self, depth: u32, vars: &[String], import_pool: &[String]) -> (Expr, UnitExpr) {
        let mut imports = Vec::new();
        for name in import_pool {
            if self.rng.gen_bool(0.5) {
                imports.push(name.clone());
            }
        }
        // Sometimes define a datatype; its operations join the scope.
        let datatype = if self.rng.gen_bool(0.3) {
            let t = self.name("t");
            let ops = (self.name("mk"), self.name("un"), self.name("is"));
            Some((t, ops))
        } else {
            None
        };
        let n_defs = self.rng.gen_range(1, 4);
        let def_names: Vec<String> = (0..n_defs).map(|_| self.name("d")).collect();
        // Definitions are thunks over everything in scope (valuable, and
        // they may read imports lazily).
        let mut def_scope: Vec<String> = vars.to_vec();
        def_scope.extend(imports.iter().cloned());
        def_scope.extend(def_names.iter().cloned());
        let mut types = Vec::new();
        if let Some((t, (mk, un, is))) = &datatype {
            types.push(units_kernel::TypeDefn::Data(units_kernel::DataDefn {
                name: t.as_str().into(),
                variants: vec![
                    units_kernel::DataVariant {
                        ctor: mk.as_str().into(),
                        dtor: un.as_str().into(),
                        payload: units_kernel::Ty::Int,
                    },
                ],
                predicate: is.as_str().into(),
            }));
            // Exercise construct/deconstruct/discriminate in scope.
            def_scope.push(mk.clone());
        }
        let vals: Vec<ValDefn> = def_names
            .iter()
            .map(|name| {
                let body = self.expr(depth.saturating_sub(1), &def_scope);
                ValDefn { name: name.as_str().into(), ty: None, body: Expr::thunk(body) }
            })
            .collect();
        let exports: Vec<String> = def_names
            .iter()
            .filter(|_| self.rng.gen_bool(0.7))
            .cloned()
            .collect();
        // The init expression may call any definition or import.
        let init_scope = def_scope;
        let init = match self.rng.gen_range(0, 3) {
            0 => Expr::app(Expr::var(def_names[0].as_str()), vec![]),
            1 if !init_scope.is_empty() => self.expr(1, &init_scope),
            _ => self.expr(1, vars),
        };
        // Occasionally round-trip a datatype value in the init.
        let init = match &datatype {
            Some((_, (mk, un, _))) if self.rng.gen_bool(0.5) => Expr::app(
                Expr::var(un.as_str()),
                vec![Expr::app(Expr::var(mk.as_str()), vec![init])],
            ),
            _ => init,
        };
        let unit = UnitExpr {
            imports: Ports::untyped(Vec::<&str>::new(), imports.iter().map(String::as_str)),
            exports: Ports::untyped(Vec::<&str>::new(), exports.iter().map(String::as_str)),
            types,
            vals,
            init,
        };
        (Expr::Unit(std::sync::Arc::new(unit.clone())), unit)
    }

    /// `invoke` of either one unit or a two-unit compound, with all
    /// imports satisfied by thunks over in-scope expressions.
    fn invoke(&mut self, depth: u32, vars: &[String]) -> Expr {
        let pool: Vec<String> = (0..self.rng.gen_range(0, 3))
            .map(|_| self.name("imp"))
            .collect();
        let (target, needed): (Expr, Vec<String>) = if self.rng.gen_bool(0.5) {
            let (e, u) = self.unit(depth, vars, &pool);
            let needed = u.imports.vals.iter().map(|p| p.name.as_str().to_string()).collect();
            (e, needed)
        } else {
            // A two-unit compound: the second may import what the first
            // provides, plus names from the pool.
            let (e1, u1) = self.unit(depth, vars, &pool);
            let provides1: Vec<String> =
                u1.exports.vals.iter().map(|p| p.name.as_str().to_string()).collect();
            let mut pool2 = pool.clone();
            pool2.extend(provides1.iter().cloned());
            let (e2, u2) = self.unit(depth, vars, &pool2);
            let imports1: Vec<String> =
                u1.imports.vals.iter().map(|p| p.name.as_str().to_string()).collect();
            let imports2: Vec<String> =
                u2.imports.vals.iter().map(|p| p.name.as_str().to_string()).collect();
            let provides2: Vec<String> =
                u2.exports.vals.iter().map(|p| p.name.as_str().to_string()).collect();
            // The compound imports whatever is not internally provided.
            let mut compound_imports: Vec<String> = Vec::new();
            for name in imports1.iter().chain(&imports2) {
                if !provides1.contains(name)
                    && !provides2.contains(name)
                    && !compound_imports.contains(name)
                {
                    compound_imports.push(name.clone());
                }
            }
            let links = vec![
                LinkClause::by_name(
                    e1,
                    Ports::untyped(Vec::<&str>::new(), imports1.iter().map(String::as_str)),
                    Ports::untyped(Vec::<&str>::new(), provides1.iter().map(String::as_str)),
                ),
                LinkClause::by_name(
                    e2,
                    Ports::untyped(Vec::<&str>::new(), imports2.iter().map(String::as_str)),
                    Ports::untyped(Vec::<&str>::new(), provides2.iter().map(String::as_str)),
                ),
            ];
            let compound = CompoundExpr {
                imports: Ports::untyped(
                    Vec::<&str>::new(),
                    compound_imports.iter().map(String::as_str),
                ),
                exports: Ports::new(),
                links,
            };
            (Expr::Compound(std::sync::Arc::new(compound)), compound_imports)
        };
        let val_links = needed
            .iter()
            .map(|name| {
                (name.as_str().into(), Expr::thunk(self.expr(1, vars)))
            })
            .collect();
        Expr::Invoke(std::sync::Arc::new(InvokeExpr { target, ty_links: vec![], val_links }))
    }
}

/// One differential session: MzScheme strictness, a fuel budget, no
/// fallback policy (a backend fault must surface, not be papered over).
fn engine(fuel: u64) -> Engine {
    Engine::builder()
        .strictness(Strictness::MzScheme)
        .limits(Limits::none().fuel(fuel))
        .build()
}

fn agree(seed: u64) -> Result<(), String> {
    let mut gen = Gen::new(seed);
    check_three_way(seed, gen.expr(4, &[]))
}

/// Runs `expr` on all three backends and demands agreement. Fuel
/// exhaustion on any backend excuses the comparison (step budgets
/// differ between the semantics); otherwise every pair must agree on
/// success and on the outcome, while joint rejection tolerates
/// differing error classes (those are pinned by a separate test).
fn check_three_way(seed: u64, expr: Expr) -> Result<(), String> {
    let engine = engine(200_000);
    let source = units::pretty_expr_indent(&expr, 78);
    let loaded = engine
        .load_expr(expr)
        .map_err(|e| format!("seed {seed}: load failed: {e}\n program: {source}"))?;
    let runs: Vec<(Backend, Result<Outcome, Error>)> =
        [Backend::Compiled, Backend::Reducer, Backend::Bytecode]
            .into_iter()
            .map(|b| (b, loaded.run_on(b)))
            .collect();
    let fuel =
        |r: &Result<Outcome, Error>| matches!(r, Err(Error::ResourceExhausted { .. }));
    if runs.iter().any(|(_, r)| fuel(r)) {
        return Ok(()); // step budgets differ between the semantics
    }
    let (first_backend, first) = &runs[0];
    for (backend, other) in &runs[1..] {
        match (first, other) {
            (Ok(x), Ok(y)) if x == y => {}
            (Ok(x), Ok(y)) => {
                return Err(format!(
                    "seed {seed}: values differ\n {first_backend:?}: {x:?}\n {backend:?}: {y:?}\n program: {source}"
                ));
            }
            (Err(_), Err(_)) => {} // joint rejection; classes may differ
            (Ok(x), Err(e)) => {
                return Err(format!(
                    "seed {seed}: {first_backend:?}={x:?} but {backend:?} errored: {e}\n program: {source}"
                ));
            }
            (Err(e), Ok(y)) => {
                return Err(format!(
                    "seed {seed}: {backend:?}={y:?} but {first_backend:?} errored: {e}\n program: {source}"
                ));
            }
        }
    }
    Ok(())
}

/// Compares a backend with lexical-address resolution on (default) and
/// off (pure by-name environment scans — the lowerer emits `LoadName`
/// instead of slot-addressed `Load`). The two must be observationally
/// identical on every program; any divergence means the resolver
/// computed an address the runtime frames (or the VM) don't honour.
fn check_resolution_invariance(seed: u64, expr: &Expr) -> Result<(), String> {
    let with = engine(200_000);
    let without = Engine::builder()
        .strictness(Strictness::MzScheme)
        .limits(Limits::none().fuel(200_000))
        .resolution(false)
        .build();
    for backend in [Backend::Compiled, Backend::Bytecode] {
        let resolved =
            with.load_expr(expr.clone()).and_then(|p| p.run_on(backend));
        let by_name =
            without.load_expr(expr.clone()).and_then(|p| p.run_on(backend));
        match (resolved, by_name) {
            (Ok(x), Ok(y)) if x == y => {}
            (Err(_), Err(_)) => {}
            (x, y) => {
                return Err(format!(
                    "seed {seed}: resolution changed the {backend:?} outcome\n resolved: {x:?}\n by-name:  {y:?}\n program: {}",
                    units::pretty_expr_indent(expr, 78)
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn backends_agree_on_random_core_programs() {
    let mut failures = Vec::new();
    for seed in 0..600 {
        if let Err(msg) = agree(seed) {
            failures.push(msg);
        }
    }
    assert!(failures.is_empty(), "{} disagreements:\n{}", failures.len(), failures.join("\n\n"));
}

#[test]
fn backends_agree_on_random_unit_programs() {
    // Seeds biased toward invoke/compound generation by starting at the
    // invoke generator directly.
    let mut failures = Vec::new();
    for seed in 0..600 {
        let mut gen = Gen::new(0xC0FFEE ^ seed);
        if let Err(msg) = check_three_way(seed, gen.invoke(3, &[])) {
            failures.push(msg);
        }
    }
    assert!(failures.is_empty(), "{} disagreements:\n{}", failures.len(), failures.join("\n\n"));
}

#[test]
fn resolution_is_invisible_on_random_programs() {
    let mut failures = Vec::new();
    for seed in 0..400 {
        let mut gen = Gen::new(seed);
        if let Err(msg) = check_resolution_invariance(seed, &gen.expr(4, &[])) {
            failures.push(msg);
        }
        let mut gen = Gen::new(0xBEEF ^ seed);
        if let Err(msg) = check_resolution_invariance(seed, &gen.invoke(3, &[])) {
            failures.push(msg);
        }
    }
    assert!(failures.is_empty(), "{} divergences:\n{}", failures.len(), failures.join("\n\n"));
}

#[test]
fn resolution_is_invisible_on_stdlib_figures() {
    use units::stdlib;
    let sources: Vec<(&str, String)> = vec![
        ("ipb_program", stdlib::ipb_program()),
        ("ipb_expert", stdlib::make_ipb_program(true)),
        ("ipb_novice", stdlib::make_ipb_program(false)),
        ("plugin_program", stdlib::plugin_program(&stdlib::sample_loader_plugin())),
        ("compiler_pipeline", stdlib::compiler_pipeline()),
    ];
    let with = Engine::builder().strictness(Strictness::MzScheme).build();
    let without =
        Engine::builder().strictness(Strictness::MzScheme).resolution(false).build();
    for (name, src) in sources {
        for backend in [Backend::Compiled, Backend::Bytecode] {
            let resolved = with
                .load(&src)
                .and_then(|p| p.run_on(backend))
                .unwrap_or_else(|e| panic!("{name}: resolved {backend:?} run failed: {e}"));
            let by_name = without
                .load(&src)
                .and_then(|p| p.run_on(backend))
                .unwrap_or_else(|e| panic!("{name}: by-name {backend:?} run failed: {e}"));
            assert_eq!(
                resolved, by_name,
                "{name}: resolution changed the {backend:?} outcome"
            );
        }
    }
}

#[test]
fn backends_agree_on_error_classes_for_key_failures() {
    // For the dynamic errors the paper specifies, all three backends
    // must agree on the *class*, not just fail.
    let cases = [
        ("(invoke (unit (import x) (export) (init x)))", "UnsatisfiedImport"),
        ("(proj 3 (tuple 1 2))", "BadProjection"),
        ("(1 2)", "NotAFunction"),
        ("(/ 1 0)", "DivisionByZero"),
        ("((inst fail void) \"boom\")", "User"),
        (
            "(letrec ((datatype t (mk unmk int) (no unno void) t?)) (unno (mk 1)))",
            "WrongVariant",
        ),
        (
            "(compound (import) (export)
               (link ((unit (import g) (export) (init void)) (with) (provides))))",
            "ExcessImport",
        ),
    ];
    let engine = Engine::builder().strictness(Strictness::MzScheme).build();
    for (src, expected) in cases {
        let loaded = engine.load(src).unwrap();
        for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
            let err = loaded.run_on(backend).unwrap_err();
            let rendered = format!("{:?}", err);
            assert!(
                rendered.contains(expected),
                "{backend:?} on {src}: expected {expected}, got {rendered}"
            );
        }
    }
}

#[test]
fn resource_exhaustion_reports_identical_text_on_all_three_backends() {
    // Same program, same fuel: the budget error must render char-for-char
    // identically whichever evaluator hit it — the VM batches fuel via
    // `Machine::charge`, but the reported limit must stay the configured
    // one, naming the same resource.
    let diverging = "(letrec ((define loop (lambda () (loop)))) (loop))";
    let engine = Engine::builder().limits(Limits::none().fuel(5_000)).build();
    let loaded = engine.load(diverging).unwrap();
    let texts: Vec<String> = [Backend::Compiled, Backend::Reducer, Backend::Bytecode]
        .into_iter()
        .map(|backend| {
            let err = loaded.run_on(backend).unwrap_err();
            assert!(
                matches!(err, Error::ResourceExhausted { .. }),
                "{backend:?}: expected fuel exhaustion, got {err:?}"
            );
            err.to_string()
        })
        .collect();
    assert_eq!(texts[0], texts[1], "compiled vs reducer");
    assert_eq!(texts[0], texts[2], "compiled vs bytecode");
    assert!(texts[0].contains("fuel budget of 5000"), "{}", texts[0]);

    // Depth exhaustion carries the same guarantee: the VM checks
    // `max_depth` at the same call-site boundaries the tree-walkers do.
    let deep = "(letrec ((define down (lambda (n) (if (< 0 n) (+ 1 (down (- n 1))) 0)))) (down 500))";
    let engine = Engine::builder().limits(Limits::none().max_depth(40)).build();
    let loaded = engine.load(deep).unwrap();
    let texts: Vec<String> = [Backend::Compiled, Backend::Reducer, Backend::Bytecode]
        .into_iter()
        .map(|backend| loaded.run_on(backend).unwrap_err().to_string())
        .collect();
    assert_eq!(texts[0], texts[1], "compiled vs reducer");
    assert_eq!(texts[0], texts[2], "compiled vs bytecode");
    assert!(texts[0].contains("depth budget of 40"), "{}", texts[0]);
}
