//! Property-based tests on the core data structures and invariants:
//! parser/printer round-trips, subtype laws, expansion idempotence,
//! α-equivalence, and substitution.
//!
//! The generators are seeded SplitMix64 loops (no registry crates), so
//! every failure reports a seed that reproduces it forever.

use bench::rng::SplitMix64;

use units::{
    alpha_eq, free_val_vars, parse_expr, parse_ty, pretty_expr, pretty_ty, subtype, ty_equal,
    Equations, Expr, Ports, Signature, Symbol, Ty, TyPort, ValPort,
};
use units_kernel::{subst_vals, Lambda, NameGen, Param};

const NAMES: &[&str] = &["a", "bb", "ccc", "dd", "e2", "f-g", "h!"];
const TY_NAMES: &[&str] = &["t", "u", "vv", "w-x"];

fn pick<T: Copy>(rng: &mut SplitMix64, items: &[T]) -> T {
    items[rng.gen_range(0, items.len())]
}

fn arb_name(rng: &mut SplitMix64) -> &'static str {
    pick(rng, NAMES)
}

fn arb_ty_name(rng: &mut SplitMix64) -> &'static str {
    pick(rng, TY_NAMES)
}

/// A random type of bounded depth (Fig. 13 grammar).
fn arb_ty(rng: &mut SplitMix64, depth: u32) -> Ty {
    if depth == 0 {
        return match rng.gen_range(0, 5) {
            0 => Ty::Int,
            1 => Ty::Bool,
            2 => Ty::Str,
            3 => Ty::Void,
            _ => Ty::var(arb_ty_name(rng)),
        };
    }
    match rng.gen_range(0, 6) {
        0 => {
            let params = (0..rng.gen_range(0, 3)).map(|_| arb_ty(rng, depth - 1)).collect();
            Ty::arrow(params, arb_ty(rng, depth - 1))
        }
        1 => Ty::Tuple((0..rng.gen_range(0, 3)).map(|_| arb_ty(rng, depth - 1)).collect()),
        2 => Ty::hash(arb_ty(rng, depth - 1)),
        _ => arb_ty(rng, 0),
    }
}

fn arb_ports(rng: &mut SplitMix64) -> Ports {
    let tys: std::collections::BTreeSet<&str> =
        (0..rng.gen_range(0, 2)).map(|_| arb_ty_name(rng)).collect();
    let vals: std::collections::BTreeMap<&str, Ty> =
        (0..rng.gen_range(0, 3)).map(|_| (arb_name(rng), arb_ty(rng, 2))).collect();
    Ports {
        types: tys.into_iter().map(TyPort::star).collect(),
        vals: vals.into_iter().map(|(n, t)| ValPort::typed(n, t)).collect(),
    }
}

/// A random well-formed signature: import and export names disjoint.
/// Regenerates on collision, so every call yields a signature.
fn arb_sig(rng: &mut SplitMix64) -> Signature {
    loop {
        let imports = arb_ports(rng);
        let exports = arb_ports(rng);
        let i_tys = imports.ty_names();
        let e_tys = exports.ty_names();
        if i_tys.intersection(&e_tys).next().is_some() {
            continue;
        }
        let i_vals = imports.val_names();
        let e_vals = exports.val_names();
        if i_vals.intersection(&e_vals).next().is_some() {
            continue;
        }
        let init_ty = arb_ty(rng, 2);
        return Signature::new(imports, exports, init_ty);
    }
}

/// A random expression with valid surface syntax (for round-trip
/// testing): only forms the parser can produce, never machine-internal
/// ones.
fn arb_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 {
        return match rng.gen_range(0, 5) {
            0 => Expr::int(rng.gen_range_i64(i64::from(i32::MIN), i64::from(i32::MAX) + 1)),
            1 => Expr::bool(rng.gen_bool(0.5)),
            2 => {
                let n = rng.gen_range(0, 7);
                let s: String = (0..n)
                    .map(|_| pick(rng, &[' ', 'a', 'b', 'k', 'q', 'z']))
                    .collect();
                Expr::str(s)
            }
            3 => Expr::void(),
            _ => Expr::var(arb_name(rng)),
        };
    }
    match rng.gen_range(0, 9) {
        0 => {
            let mut seen = std::collections::BTreeSet::new();
            let params = (0..rng.gen_range(0, 3))
                .map(|_| arb_name(rng))
                .filter(|p| seen.insert(*p))
                .map(Param::untyped)
                .collect();
            Expr::lambda(params, arb_expr(rng, depth - 1))
        }
        1 => {
            let f = arb_expr(rng, depth - 1);
            let args = (0..rng.gen_range(0, 3)).map(|_| arb_expr(rng, depth - 1)).collect();
            Expr::app(f, args)
        }
        2 => Expr::if_(
            arb_expr(rng, depth - 1),
            arb_expr(rng, depth - 1),
            arb_expr(rng, depth - 1),
        ),
        3 => Expr::seq((0..rng.gen_range(1, 3)).map(|_| arb_expr(rng, depth - 1)).collect()),
        4 => {
            let bs: std::collections::BTreeMap<&str, Expr> = (0..rng.gen_range(1, 3))
                .map(|_| (arb_name(rng), arb_expr(rng, depth - 1)))
                .collect();
            Expr::Let(
                bs.into_iter()
                    .map(|(name, expr)| units_kernel::Binding { name: name.into(), expr })
                    .collect(),
                Box::new(arb_expr(rng, depth - 1)),
            )
        }
        5 => Expr::Tuple((0..rng.gen_range(0, 3)).map(|_| arb_expr(rng, depth - 1)).collect()),
        6 => Expr::Proj(rng.gen_range(0, 3), Box::new(arb_expr(rng, depth - 1))),
        7 => Expr::set(arb_name(rng), arb_expr(rng, depth - 1)),
        _ => arb_expr(rng, 0),
    }
}

/// Fig. 9 grammar: printing and re-parsing is the identity.
#[test]
fn pretty_parse_round_trips_expressions() {
    let mut rng = SplitMix64::seed_from_u64(0x51AB);
    for case in 0..256 {
        let e = arb_expr(&mut rng, 4);
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("case {case}: reparse `{printed}`: {err}"));
        assert_eq!(e, reparsed, "case {case}: `{printed}`");
    }
}

/// Fig. 13 grammar: the same for types.
#[test]
fn pretty_parse_round_trips_types() {
    let mut rng = SplitMix64::seed_from_u64(0x51AC);
    for case in 0..256 {
        let t = arb_ty(&mut rng, 3);
        let printed = pretty_ty(&t);
        let reparsed = parse_ty(&printed)
            .unwrap_or_else(|err| panic!("case {case}: reparse `{printed}`: {err}"));
        assert_eq!(t, reparsed, "case {case}: `{printed}`");
    }
}

/// Fig. 14: the subtype relation is reflexive.
#[test]
fn subtype_is_reflexive() {
    let mut rng = SplitMix64::seed_from_u64(0x51AD);
    for case in 0..256 {
        let t = arb_ty(&mut rng, 3);
        assert!(subtype(&Equations::new(), &t, &t).is_ok(), "case {case}: {t:?}");
    }
}

/// Fig. 14: signatures are reflexive too, and `ty_equal` agrees.
#[test]
fn sig_subtype_is_reflexive() {
    let mut rng = SplitMix64::seed_from_u64(0x51AE);
    for case in 0..256 {
        let t = Ty::sig(arb_sig(&mut rng));
        assert!(subtype(&Equations::new(), &t, &t).is_ok(), "case {case}: {t:?}");
        assert!(ty_equal(&Equations::new(), &t, &t), "case {case}: {t:?}");
    }
}

/// Fig. 14 condition 2: dropping an export or adding an unused import
/// *weakens* a signature (produces a supertype).
#[test]
fn weakening_produces_a_supertype() {
    let mut rng = SplitMix64::seed_from_u64(0x51AF);
    for case in 0..256 {
        let sig = arb_sig(&mut rng);
        let specific = Ty::sig(sig.clone());

        let mut fewer_exports = sig.clone();
        let dropped = fewer_exports.exports.vals.pop();
        let general = Ty::sig(fewer_exports.clone());
        assert!(
            subtype(&Equations::new(), &specific, &general).is_ok(),
            "case {case}: dropping an export must weaken"
        );
        if dropped.is_some() {
            // The reverse direction must fail: the supertype is missing
            // an export the subtype demands.
            assert!(
                subtype(&Equations::new(), &general, &specific).is_err(),
                "case {case}: the reverse direction must fail"
            );
        }

        let mut more_imports = sig.clone();
        more_imports.imports.vals.push(ValPort::typed("zz-extra", Ty::Int));
        if more_imports.exports.val_port(&"zz-extra".into()).is_none() {
            let general = Ty::sig(more_imports);
            assert!(
                subtype(&Equations::new(), &specific, &general).is_ok(),
                "case {case}: adding an unused import must weaken"
            );
        }
    }
}

/// Fig. 18: expansion is idempotent for acyclic equation sets.
#[test]
fn expansion_is_idempotent() {
    let mut rng = SplitMix64::seed_from_u64(0x51B0);
    for case in 0..256 {
        let t = arb_ty(&mut rng, 3);
        // Build an acyclic set by only letting TY_NAMES[i] reference
        // strictly later names.
        let mut eqs = Equations::new();
        for i in 0..TY_NAMES.len() {
            let mut body = arb_ty(&mut rng, 3);
            // Erase references to names ≤ i to keep the set acyclic.
            for earlier in &TY_NAMES[..=i] {
                let map = std::collections::HashMap::from([(
                    Symbol::new(*earlier),
                    Ty::Int,
                )]);
                body = units_kernel::subst_ty(&body, &map).unwrap();
            }
            eqs.insert(Symbol::new(TY_NAMES[i]), body);
        }
        assert!(eqs.check_acyclic().is_ok(), "case {case}");
        let once = units::expand_ty(&t, &eqs).unwrap();
        let twice = units::expand_ty(&once, &eqs).unwrap();
        assert_eq!(once, twice, "case {case}");
    }
}

/// α-equivalence is preserved by renaming a λ's parameter.
#[test]
fn alpha_eq_respects_bound_renaming() {
    let mut rng = SplitMix64::seed_from_u64(0x51B1);
    for case in 0..256 {
        let body = arb_expr(&mut rng, 4);
        let original = Expr::Lambda(std::sync::Arc::new(Lambda {
            params: vec![Param::untyped("a")],
            ret_ty: None,
            body: body.clone(),
        }));
        // Rename a → fresh (capture-free because `zq1` is not in NAMES).
        let mut gen = NameGen::new();
        let renamed_body = subst_vals(
            &body,
            &std::collections::HashMap::from([(Symbol::new("a"), Expr::var("zq1"))]),
            &mut gen,
        );
        let renamed = Expr::Lambda(std::sync::Arc::new(Lambda {
            params: vec![Param::untyped("zq1")],
            ret_ty: None,
            body: renamed_body,
        }));
        assert!(alpha_eq(&original, &renamed), "case {case}");
    }
}

/// Substitution eliminates the substituted free variable.
#[test]
fn substitution_removes_the_variable() {
    let mut rng = SplitMix64::seed_from_u64(0x51B2);
    for case in 0..256 {
        let e = arb_expr(&mut rng, 4);
        let mut gen = NameGen::new();
        let target = Symbol::new("a");
        let out = subst_vals(
            &e,
            &std::collections::HashMap::from([(target.clone(), Expr::int(0))]),
            &mut gen,
        );
        assert!(!free_val_vars(&out).contains(&target), "case {case}");
    }
}

/// Substitution only shrinks the free-variable set (closed value).
#[test]
fn substitution_is_monotone_on_free_vars() {
    let mut rng = SplitMix64::seed_from_u64(0x51B3);
    for case in 0..256 {
        let e = arb_expr(&mut rng, 4);
        let mut gen = NameGen::new();
        let before = free_val_vars(&e);
        let out = subst_vals(
            &e,
            &std::collections::HashMap::from([(Symbol::new("a"), Expr::int(1))]),
            &mut gen,
        );
        let after = free_val_vars(&out);
        assert!(after.is_subset(&before), "case {case}");
    }
}

/// A constructed chain sub ≤ mid ≤ sup is transitive: sub ≤ sup.
/// (sub strengthens `mid` by exporting more; sup weakens it by
/// importing more — both directions of Fig. 14's condition 2.)
#[test]
fn subtype_chains_compose() {
    let mut rng = SplitMix64::seed_from_u64(0x51B4);
    let mut checked = 0;
    while checked < 128 {
        let mid = arb_sig(&mut rng);
        // Keep the generated signatures well-formed: the added names must
        // not collide with existing ports.
        if mid.exports.val_port(&"zz-more".into()).is_some()
            || mid.imports.val_port(&"zz-need".into()).is_some()
            || mid.imports.val_port(&"zz-more".into()).is_some()
            || mid.exports.val_port(&"zz-need".into()).is_some()
        {
            continue;
        }
        checked += 1;
        let mut sub = mid.clone();
        sub.exports.vals.push(ValPort::typed("zz-more", Ty::Bool));
        let mut sup = mid.clone();
        sup.imports.vals.push(ValPort::typed("zz-need", Ty::Str));

        let eqs = Equations::new();
        let t_sub = Ty::sig(sub);
        let t_mid = Ty::sig(mid);
        let t_sup = Ty::sig(sup);
        assert!(subtype(&eqs, &t_sub, &t_mid).is_ok());
        assert!(subtype(&eqs, &t_mid, &t_sup).is_ok());
        assert!(subtype(&eqs, &t_sub, &t_sup).is_ok());
    }
}

/// Expansion commutes with substitution-free types: expanding a type
/// with no abbreviation names in it is the identity.
#[test]
fn expansion_is_identity_off_the_domain() {
    let mut rng = SplitMix64::seed_from_u64(0x51B5);
    // Equations over names disjoint from TY_NAMES.
    let eqs = Equations::from([
        ("zq1".into(), Ty::Int),
        ("zq2".into(), Ty::Bool),
    ]);
    for case in 0..128 {
        let t = arb_ty(&mut rng, 3);
        let mut free = std::collections::BTreeSet::new();
        t.free_ty_vars(&mut free);
        if free.contains("zq1") || free.contains("zq2") {
            continue;
        }
        assert_eq!(units::expand_ty(&t, &eqs).unwrap(), t, "case {case}");
    }
}

/// α-equivalence is reflexive and agrees with structural equality on
/// closed-binder-free terms.
#[test]
fn alpha_eq_is_reflexive() {
    let mut rng = SplitMix64::seed_from_u64(0x51B6);
    for case in 0..128 {
        let e = arb_expr(&mut rng, 4);
        assert!(alpha_eq(&e, &e), "case {case}");
    }
}

/// The pretty-printer never emits the reserved `#` character for
/// source-level programs (it is reserved for generated names).
#[test]
fn printer_never_emits_reserved_hash() {
    let mut rng = SplitMix64::seed_from_u64(0x51B7);
    for case in 0..128 {
        let e = arb_expr(&mut rng, 4);
        assert!(!pretty_expr(&e).contains('#'), "case {case}");
    }
}

/// Differential property: both evaluators agree on random *closed*
/// core terms (the open generator is closed by binding every free
/// name to a small integer).
#[test]
fn backends_agree_on_random_closed_terms() {
    use units::{Backend, Engine, Limits, Strictness};
    let engine = Engine::builder()
        .strictness(Strictness::MzScheme)
        .limits(Limits::none().fuel(100_000))
        .build();
    let mut rng = SplitMix64::seed_from_u64(0x51B8);
    for case in 0..96 {
        let e = arb_expr(&mut rng, 4);
        let closed = Expr::app(
            Expr::lambda(NAMES.iter().map(|n| Param::untyped(*n)).collect(), e),
            (0..NAMES.len() as i64).map(Expr::int).collect(),
        );
        let src = units::pretty_expr(&closed);
        // A check rejection hits every backend identically — skip.
        let Ok(program) = engine.load_expr(closed) else { continue };
        let a = program.run_on(Backend::Compiled);
        let b = program.run_on(Backend::Reducer);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "case {case}: {src}"),
            (Err(_), Err(_)) => {}
            (x, y) => panic!("case {case}: disagree: {x:?} vs {y:?}\n{src}"),
        }
    }
}
