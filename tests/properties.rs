//! Property-based tests (proptest) on the core data structures and
//! invariants: parser/printer round-trips, subtype laws, expansion
//! idempotence, α-equivalence, and substitution.

use proptest::prelude::*;

use units::{
    alpha_eq, free_val_vars, parse_expr, parse_ty, pretty_expr, pretty_ty, subtype, ty_equal,
    Equations, Expr, Ports, Signature, Symbol, Ty, TyPort, ValPort,
};
use units_kernel::{subst_vals, Lambda, NameGen, Param};

const NAMES: &[&str] = &["a", "bb", "ccc", "dd", "e2", "f-g", "h!"];
const TY_NAMES: &[&str] = &["t", "u", "vv", "w-x"];

fn arb_name() -> impl Strategy<Value = String> {
    prop::sample::select(NAMES).prop_map(str::to_string)
}

fn arb_ty_name() -> impl Strategy<Value = String> {
    prop::sample::select(TY_NAMES).prop_map(str::to_string)
}

fn arb_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![
        Just(Ty::Int),
        Just(Ty::Bool),
        Just(Ty::Str),
        Just(Ty::Void),
        arb_ty_name().prop_map(Ty::var),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (prop::collection::vec(inner.clone(), 0..3), inner.clone())
                .prop_map(|(params, ret)| Ty::arrow(params, ret)),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Ty::Tuple),
            inner.prop_map(Ty::hash),
        ]
    })
}

fn arb_ports() -> impl Strategy<Value = Ports> {
    (
        prop::collection::btree_set(arb_ty_name(), 0..2),
        prop::collection::btree_map(arb_name(), arb_ty(), 0..3),
    )
        .prop_map(|(tys, vals)| Ports {
            types: tys.into_iter().map(TyPort::star).collect(),
            vals: vals.into_iter().map(|(n, t)| ValPort::typed(n, t)).collect(),
        })
}

fn arb_sig() -> impl Strategy<Value = Signature> {
    (arb_ports(), arb_ports(), arb_ty()).prop_filter_map(
        "import/export names must be disjoint",
        |(imports, exports, init_ty)| {
            let i_tys = imports.ty_names();
            let e_tys = exports.ty_names();
            if i_tys.intersection(&e_tys).next().is_some() {
                return None;
            }
            let i_vals = imports.val_names();
            let e_vals = exports.val_names();
            if i_vals.intersection(&e_vals).next().is_some() {
                return None;
            }
            Some(Signature::new(imports, exports, init_ty))
        },
    )
}

/// Expressions with valid surface syntax (for round-trip testing).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|n| Expr::int(n.into())),
        any::<bool>().prop_map(Expr::bool),
        "[a-z ]{0,6}".prop_map(Expr::str),
        Just(Expr::void()),
        arb_name().prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (prop::collection::vec(arb_name(), 0..3), inner.clone()).prop_map(
                |(params, body)| {
                    let mut seen = std::collections::BTreeSet::new();
                    let params = params
                        .into_iter()
                        .filter(|p| seen.insert(p.clone()))
                        .map(Param::untyped)
                        .collect();
                    Expr::lambda(params, body)
                }
            ),
            (inner.clone(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| Expr::app(f, args)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::if_(c, t, e)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Expr::seq),
            (prop::collection::btree_map(arb_name(), inner.clone(), 1..3), inner.clone())
                .prop_map(|(bs, body)| Expr::Let(
                    bs.into_iter()
                        .map(|(name, expr)| units_kernel::Binding { name: name.into(), expr })
                        .collect(),
                    Box::new(body)
                )),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::Tuple),
            (0..3usize, inner.clone()).prop_map(|(i, e)| Expr::Proj(i, Box::new(e))),
            (arb_name(), inner.clone()).prop_map(|(x, e)| Expr::set(x, e)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fig. 9 grammar: printing and re-parsing is the identity.
    #[test]
    fn pretty_parse_round_trips_expressions(e in arb_expr()) {
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        prop_assert_eq!(e, reparsed);
    }

    /// Fig. 13 grammar: the same for types.
    #[test]
    fn pretty_parse_round_trips_types(t in arb_ty()) {
        let printed = pretty_ty(&t);
        let reparsed = parse_ty(&printed)
            .unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        prop_assert_eq!(t, reparsed);
    }

    /// Fig. 14: the subtype relation is reflexive.
    #[test]
    fn subtype_is_reflexive(t in arb_ty()) {
        prop_assert!(subtype(&Equations::new(), &t, &t).is_ok());
    }

    /// Fig. 14: signatures are reflexive too, and `ty_equal` agrees.
    #[test]
    fn sig_subtype_is_reflexive(sig in arb_sig()) {
        let t = Ty::sig(sig);
        prop_assert!(subtype(&Equations::new(), &t, &t).is_ok());
        prop_assert!(ty_equal(&Equations::new(), &t, &t));
    }

    /// Fig. 14 condition 2: dropping an export or adding an unused import
    /// *weakens* a signature (produces a supertype).
    #[test]
    fn weakening_produces_a_supertype(sig in arb_sig()) {
        let specific = Ty::sig(sig.clone());

        let mut fewer_exports = sig.clone();
        let dropped = fewer_exports.exports.vals.pop();
        let general = Ty::sig(fewer_exports.clone());
        prop_assert!(subtype(&Equations::new(), &specific, &general).is_ok());
        if dropped.is_some() {
            // The reverse direction must fail: the supertype is missing
            // an export the subtype demands.
            prop_assert!(subtype(&Equations::new(), &general, &specific).is_err());
        }

        let mut more_imports = sig.clone();
        more_imports.imports.vals.push(ValPort::typed("zz-extra", Ty::Int));
        if more_imports.exports.val_port(&"zz-extra".into()).is_none() {
            let general = Ty::sig(more_imports);
            prop_assert!(subtype(&Equations::new(), &specific, &general).is_ok());
        }
    }

    /// Fig. 18: expansion is idempotent for acyclic equation sets.
    #[test]
    fn expansion_is_idempotent(
        t in arb_ty(),
        bodies in prop::collection::vec(arb_ty(), TY_NAMES.len())
    ) {
        // Build an acyclic set by only letting TY_NAMES[i] reference
        // strictly later names.
        let mut eqs = Equations::new();
        for (i, (name, body)) in TY_NAMES.iter().zip(bodies).enumerate() {
            let mut ok = body;
            // Erase references to names ≤ i to keep the set acyclic.
            for earlier in &TY_NAMES[..=i] {
                let map = std::collections::HashMap::from([(
                    Symbol::new(*earlier),
                    Ty::Int,
                )]);
                ok = units_kernel::subst_ty(&ok, &map).unwrap();
            }
            eqs.insert(Symbol::new(*name), ok);
        }
        prop_assert!(eqs.check_acyclic().is_ok());
        let once = units::expand_ty(&t, &eqs).unwrap();
        let twice = units::expand_ty(&once, &eqs).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// α-equivalence is preserved by renaming a λ's parameter.
    #[test]
    fn alpha_eq_respects_bound_renaming(body in arb_expr()) {
        let original = Expr::Lambda(std::rc::Rc::new(Lambda {
            params: vec![Param::untyped("a")],
            ret_ty: None,
            body: body.clone(),
        }));
        // Rename a → fresh (capture-free because `zq1` is not in NAMES).
        let mut gen = NameGen::new();
        let renamed_body = subst_vals(
            &body,
            &std::collections::HashMap::from([(Symbol::new("a"), Expr::var("zq1"))]),
            &mut gen,
        );
        let renamed = Expr::Lambda(std::rc::Rc::new(Lambda {
            params: vec![Param::untyped("zq1")],
            ret_ty: None,
            body: renamed_body,
        }));
        prop_assert!(alpha_eq(&original, &renamed));
    }

    /// Substitution eliminates the substituted free variable.
    #[test]
    fn substitution_removes_the_variable(e in arb_expr()) {
        let mut gen = NameGen::new();
        let target = Symbol::new("a");
        let out = subst_vals(
            &e,
            &std::collections::HashMap::from([(target.clone(), Expr::int(0))]),
            &mut gen,
        );
        prop_assert!(!free_val_vars(&out).contains(&target));
    }

    /// Substitution only shrinks the free-variable set (closed value).
    #[test]
    fn substitution_is_monotone_on_free_vars(e in arb_expr()) {
        let mut gen = NameGen::new();
        let before = free_val_vars(&e);
        let out = subst_vals(
            &e,
            &std::collections::HashMap::from([(Symbol::new("a"), Expr::int(1))]),
            &mut gen,
        );
        let after = free_val_vars(&out);
        prop_assert!(after.is_subset(&before));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A constructed chain sub ≤ mid ≤ sup is transitive: sub ≤ sup.
    /// (sub strengthens `mid` by exporting more; sup weakens it by
    /// importing more — both directions of Fig. 14's condition 2.)
    #[test]
    fn subtype_chains_compose(mid in arb_sig()) {
        let mut sub = mid.clone();
        sub.exports.vals.push(ValPort::typed("zz-more", Ty::Bool));
        let mut sup = mid.clone();
        sup.imports.vals.push(ValPort::typed("zz-need", Ty::Str));
        // Keep the generated signature well-formed: the added names must
        // not collide with existing ports.
        prop_assume!(mid.exports.val_port(&"zz-more".into()).is_none());
        prop_assume!(mid.imports.val_port(&"zz-need".into()).is_none());
        prop_assume!(mid.imports.val_port(&"zz-more".into()).is_none());
        prop_assume!(mid.exports.val_port(&"zz-need".into()).is_none());

        let eqs = Equations::new();
        let t_sub = Ty::sig(sub);
        let t_mid = Ty::sig(mid);
        let t_sup = Ty::sig(sup);
        prop_assert!(subtype(&eqs, &t_sub, &t_mid).is_ok());
        prop_assert!(subtype(&eqs, &t_mid, &t_sup).is_ok());
        prop_assert!(subtype(&eqs, &t_sub, &t_sup).is_ok());
    }

    /// Expansion commutes with substitution-free types: expanding a type
    /// with no abbreviation names in it is the identity.
    #[test]
    fn expansion_is_identity_off_the_domain(t in arb_ty()) {
        // Equations over names disjoint from TY_NAMES.
        let eqs = Equations::from([
            ("zq1".into(), Ty::Int),
            ("zq2".into(), Ty::Bool),
        ]);
        let mut free = std::collections::BTreeSet::new();
        t.free_ty_vars(&mut free);
        prop_assume!(!free.contains("zq1") && !free.contains("zq2"));
        prop_assert_eq!(units::expand_ty(&t, &eqs).unwrap(), t);
    }

    /// α-equivalence is reflexive and agrees with structural equality on
    /// closed-binder-free terms.
    #[test]
    fn alpha_eq_is_reflexive(e in arb_expr()) {
        prop_assert!(alpha_eq(&e, &e));
    }

    /// The pretty-printer never emits the reserved `#` character for
    /// source-level programs (it is reserved for generated names).
    #[test]
    fn printer_never_emits_reserved_hash(e in arb_expr()) {
        prop_assert!(!pretty_expr(&e).contains('#'));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Differential property: both evaluators agree on random *closed*
    /// core terms (the open generator is closed by binding every free
    /// name to a small integer).
    #[test]
    fn backends_agree_on_random_closed_terms(e in arb_expr()) {
        use units::{Backend, Program, Strictness};
        let closed = Expr::app(
            Expr::lambda(NAMES.iter().map(|n| Param::untyped(*n)).collect(), e),
            (0..NAMES.len() as i64).map(Expr::int).collect(),
        );
        let program = Program::from_expr(closed)
            .with_strictness(Strictness::MzScheme)
            .with_fuel(100_000);
        let a = program.run_on(Backend::Compiled);
        let b = program.run_on(Backend::Reducer);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "disagree: {:?} vs {:?}\n{}", x, y, program.to_source()),
        }
    }
}
