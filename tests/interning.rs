//! Properties of the global symbol interner, exercised from outside the
//! kernel crate: interning round-trips, equal text shares storage, and —
//! the property Fig. 11's α-renaming depends on — `NameGen::fresh` never
//! collides with a previously interned source name.

use bench::rng::SplitMix64;

use units::{Backend, Engine, Strictness, Symbol};
use units_kernel::NameGen;

/// Interning round-trips: `Symbol::new(s).as_str() == s` for arbitrary
/// strings, including ones containing the reserved `#`.
#[test]
fn interning_round_trips_arbitrary_text() {
    let mut rng = SplitMix64::seed_from_u64(0x1A7E);
    const ALPHABET: &[char] = &['a', 'z', '-', '!', '?', '#', '0', '9', 'λ', ' '];
    for _ in 0..2000 {
        let n = rng.gen_range(1, 12);
        let s: String = (0..n).map(|_| ALPHABET[rng.gen_range(0, ALPHABET.len())]).collect();
        let sym = Symbol::new(s.as_str());
        assert_eq!(sym.as_str(), s);
        assert_eq!(sym, Symbol::from(s.clone()));
    }
}

/// Equal text interns to pointer-equal storage: `as_str` on two symbols
/// built from equal strings returns the *same* `&'static str`.
#[test]
fn equal_text_shares_interned_storage() {
    let mut rng = SplitMix64::seed_from_u64(0x1A7F);
    for _ in 0..500 {
        let s = format!("name-{}", rng.gen_range(0, 64));
        let a = Symbol::new(s.as_str());
        let b = Symbol::new(s.as_str());
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "`{s}` interned twice");
    }
}

/// The freshness guarantee behind Fig. 11's capture-free substitution:
/// names produced by `NameGen::fresh` never collide with any name
/// interned before — source programs cannot forge a generated name
/// because `#` is reserved by the lexer, and the counter never repeats.
#[test]
fn fresh_names_never_collide_with_interned_source_names() {
    // Intern a corpus of plausible source names first, including some
    // that *look* adversarially close to generated ones.
    let mut source: std::collections::BTreeSet<Symbol> = std::collections::BTreeSet::new();
    for base in ["x", "y", "tmp", "x#zzz", "#1", "fresh"] {
        for i in 0..50 {
            source.insert(Symbol::new(format!("{base}{i}").as_str()));
        }
        source.insert(Symbol::new(base));
    }
    let mut gen = NameGen::new();
    let mut generated = std::collections::BTreeSet::new();
    for i in 0..1000 {
        let f =
            if i % 2 == 0 { gen.fresh(&Symbol::new("tmp")) } else { gen.fresh_named("x") };
        assert!(f.is_generated(), "{f} must be marked generated");
        assert!(!source.contains(&f), "fresh name {f} collides with a source name");
        assert!(generated.insert(f.clone()), "fresh name {f} repeated");
    }
}

/// End to end: a program whose evaluation forces the reducer's
/// α-renaming still works when the source already uses the textual base
/// names the renamer starts from — the interner keeps generated and
/// source names distinct identities.
#[test]
fn alpha_renaming_stays_fresh_under_interning() {
    // The reducer substitutes the unit body and must rename `n` away
    // from the argument's free `n`.
    let src = r#"
      (let ((n 3))
        (invoke (unit (import k) (export)
                  (define n 10)
                  (init (+ n (k))))
                (val k (lambda () n))))
    "#;
    let engine = Engine::builder().strictness(Strictness::MzScheme).build();
    let program = engine.load(src).unwrap();
    let reduced = program.run_on(Backend::Reducer).unwrap();
    let compiled = program.run_on(Backend::Compiled).unwrap();
    assert_eq!(reduced, compiled);
}

/// `base()` strips the generated counter so diagnostics print the
/// original source spelling.
#[test]
fn generated_symbols_report_their_source_base() {
    let mut gen = NameGen::new();
    let f = gen.fresh_named("acc");
    assert_eq!(f.base(), "acc");
    let g = gen.fresh(&f);
    assert_eq!(g.base(), "acc");
    assert_ne!(f, g);
}
