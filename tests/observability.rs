//! The engine's always-on metrics plane and (with `--features trace`)
//! the bytecode profiler: these tests run in every feature
//! configuration — the snapshot must carry real numbers even when all
//! `units-trace` event hooks are compiled to no-ops.

use units::{Backend, Engine};

const EVEN_ODD: &str = "(invoke (compound (import) (export)
    (link ((unit (import odd) (export even)
             (define even (lambda (n) (if (= n 0) true (odd (- n 1))))))
           (with odd) (provides even))
          ((unit (import even) (export odd)
             (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
             (init (odd 13)))
           (with even) (provides odd)))))";

/// One load (miss), one reload (source-hash hit), three runs: the
/// snapshot accounts for all of it, in every build.
#[test]
fn metrics_snapshot_counts_cache_runs_fuel_and_latency() {
    let engine = Engine::new();
    let loaded = engine.load(EVEN_ODD).unwrap();
    loaded.run_on(Backend::Compiled).unwrap();
    loaded.run_on(Backend::Reducer).unwrap();
    loaded.run_on(Backend::Bytecode).unwrap();
    engine.load(EVEN_ODD).unwrap();

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.cache.misses, 1);
    assert_eq!(snap.cache.source_hits, 1, "the reload is a raw-source hit");
    assert_eq!(snap.cache.entries, 1);
    assert_eq!(snap.runs.total, 3);
    assert_eq!(snap.runs.failures, 0);
    assert!(snap.runs.fuel_total > 0, "machine steps count in every build");
    assert!(snap.runs.fuel_max <= snap.runs.fuel_total);
    assert!(
        snap.runs.store_cells_peak > 0,
        "invoking a unit with defines allocates store cells"
    );

    let lat = snap.invoke_latency;
    assert_eq!(lat.count, 3);
    assert!(lat.min_ns > 0);
    assert!(lat.p50_ns <= lat.p99_ns, "{lat:?}");
    assert!(lat.p99_ns <= lat.max_ns, "{lat:?}");
    assert!(lat.min_ns <= lat.mean_ns && lat.mean_ns <= lat.max_ns, "{lat:?}");

    // The JSON rendering is valid and carries the CI-gated keys.
    let json = snap.to_json();
    units::trace::json::validate(&json).expect("snapshot JSON is valid");
    assert!(json.contains("\"p50_ns\"") && json.contains("\"p99_ns\""), "{json}");

    engine.metrics_reset();
    let zeroed = engine.metrics_snapshot();
    assert_eq!(zeroed.runs.total, 0);
    assert_eq!(zeroed.invoke_latency.count, 0);
    // `entries` comes from the cache itself, which a metrics reset
    // deliberately leaves alone.
    assert_eq!(zeroed.cache.entries, 1);
}

/// A failing run counts as a failure but still contributes latency.
#[test]
fn failed_runs_are_counted() {
    let engine = Engine::builder().limits(units::Limits::none().fuel(10)).build();
    let loaded = engine.load(EVEN_ODD).unwrap();
    assert!(loaded.run_on(Backend::Compiled).is_err(), "10 fuel cannot finish");
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.runs.total, 1);
    assert_eq!(snap.runs.failures, 1);
    assert_eq!(snap.invoke_latency.count, 1);
}

/// `load_batch` on a multi-thread pool reports pool activity; the term
/// index answers a re-load of an α-renamed copy as a term hit.
#[test]
fn pool_and_term_hits_show_up_in_the_snapshot() {
    let engine = Engine::builder().threads(4).build();
    let a = "(invoke (unit (import) (export) (init (* 6 7))))";
    let b = "(invoke (unit (import) (export) (init (+ 40 2))))";
    let c = "(invoke (unit (import) (export) (init (- 50 8))))";
    for result in engine.load_batch(&[a, b, c]) {
        result.unwrap();
    }
    // Same term as `a`, different spelling of the source text.
    let renamed = "(invoke (unit (import) (export) (init (*   6   7))))";
    engine.load(renamed).unwrap();

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.pool.batches, 1);
    assert_eq!(snap.pool.jobs, 3);
    assert!(snap.pool.peak_workers >= 1 && snap.pool.peak_workers <= 4);
    assert_eq!(snap.cache.misses, 3);
    assert_eq!(snap.cache.term_hits, 1, "whitespace changes hash to the same term");
}

/// Concurrent invocation on one shared engine: every run from every
/// thread lands in the atomic counters — totals, failures, and the
/// latency reservoir all account for exactly `threads × runs` events.
#[test]
fn concurrent_invocations_are_fully_accounted() {
    const THREADS: usize = 4;
    const RUNS_PER_THREAD: usize = 8;

    let engine = Engine::new();
    engine.load(EVEN_ODD).unwrap(); // one deterministic miss up front
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..RUNS_PER_THREAD {
                    let loaded = engine.load(EVEN_ODD).unwrap();
                    loaded.run_on(Backend::Bytecode).unwrap();
                }
            });
        }
    });

    let total = (THREADS * RUNS_PER_THREAD) as u64;
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.runs.total, total);
    assert_eq!(snap.runs.failures, 0);
    assert_eq!(snap.invoke_latency.count, total);
    assert_eq!(snap.cache.misses, 1, "one artifact serves every thread");
    assert_eq!(snap.cache.source_hits, total, "each thread load is a warm hit");
    assert_eq!(snap.cache.parses, 1, "shared artifact is never re-parsed");
    assert!(snap.runs.fuel_total >= total, "every run burned machine steps");
}

/// With `--features trace` the lowered chunk carries per-op counters: a
/// bytecode run populates them, the profiled listing annotates them,
/// and `ChunkProfile` aggregates by mnemonic.
#[cfg(feature = "trace")]
#[test]
fn chunk_profile_counts_a_bytecode_run() {
    let engine = Engine::new();
    let loaded = engine.load(EVEN_ODD).unwrap();
    loaded.profile_reset();
    loaded.run_on(Backend::Bytecode).unwrap();

    let profile = loaded.chunk_profile();
    assert!(profile.enabled, "trace builds allocate the counters");
    assert!(profile.total_executed > 0);
    assert!(profile.fuel_attributed > 0, "flush points attribute fuel");
    assert!(!profile.hottest(3).is_empty());
    let by_listing = loaded.disassemble_profiled();
    assert!(by_listing.contains("ops executed"), "{by_listing}");
    assert!(by_listing.contains('×'), "per-op annotations present: {by_listing}");

    // A second run doubles the counts; a reset zeroes them.
    let first = profile.total_executed;
    loaded.run_on(Backend::Bytecode).unwrap();
    assert_eq!(loaded.chunk_profile().total_executed, 2 * first);
    loaded.profile_reset();
    assert_eq!(loaded.chunk_profile().total_executed, 0);
}

/// Without the feature the counters do not exist — capture says so
/// instead of fabricating zeros that look like "ran, count 0".
#[cfg(not(feature = "trace"))]
#[test]
fn chunk_profile_is_disabled_without_trace() {
    let engine = Engine::new();
    let loaded = engine.load(EVEN_ODD).unwrap();
    loaded.run_on(Backend::Bytecode).unwrap();
    let profile = loaded.chunk_profile();
    assert!(!profile.enabled);
    assert_eq!(profile.total_executed, 0);
    let listing = loaded.disassemble_profiled();
    assert!(listing.contains("profile: unavailable"), "{listing}");
}
