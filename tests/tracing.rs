//! Observability invariants: event streams are deterministic, the
//! no-event path changes nothing observable, and the reducer's event
//! stream is an exact account of its Fig. 11 step count.
//!
//! Everything here needs the `trace` cargo feature except the
//! NullSink-identity test, which also pins the no-op build's behavior.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

#[cfg(feature = "trace")]
use units::Backend;
use units::Engine;

/// The stdlib programs these tests replay: the paper's running examples
/// (Figs. 1–8) plus the cyclic even/odd of Fig. 12.
fn stdlib_programs() -> Vec<(&'static str, String)> {
    vec![
        ("ipb", units::stdlib::ipb_program()),
        ("make-ipb-novice", units::stdlib::make_ipb_program(false)),
        ("make-ipb-expert", units::stdlib::make_ipb_program(true)),
        ("plugin", units::stdlib::plugin_program(&units::stdlib::sample_loader_plugin())),
        ("even-odd", EVEN_ODD.to_string()),
    ]
}

const EVEN_ODD: &str = "(invoke (compound (import) (export)
    (link ((unit (import odd) (export even)
             (define even (lambda (n) (if (= n 0) true (odd (- n 1))))))
           (with odd) (provides even))
          ((unit (import even) (export odd)
             (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
             (init (odd 13)))
           (with even) (provides odd)))))";

/// Running with a `NullSink` installed is observably identical to running
/// with no session at all — in both feature configurations (without
/// `trace`, `install` itself is a no-op and this pins that too).
#[test]
fn null_sink_is_observably_inert() {
    let engine = Engine::new();
    for (name, src) in stdlib_programs() {
        let program = engine.load(&src).unwrap();
        let bare = program.run_differential().unwrap();
        units::trace::install(
            Rc::new(RefCell::new(units::trace::NullSink)),
            Arc::new(units::trace::Metrics::new()),
        );
        let sunk = program.run_differential().unwrap();
        units::trace::uninstall();
        assert_eq!(bare, sunk, "{name}: NullSink changed the outcome");
    }
}

/// The same program run twice produces byte-identical event streams —
/// events carry no wall-clock data, so traces are reproducible.
#[cfg(feature = "trace")]
#[test]
fn event_streams_are_deterministic() {
    for (name, src) in stdlib_programs() {
        for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
            let run = || {
                let engine = Engine::new();
                let program = engine.load(&src).unwrap();
                let (outcome, events) = units::trace::capture(|| program.run_on(backend));
                outcome.unwrap();
                events.iter().map(units::trace::Event::to_json).collect::<Vec<_>>()
            };
            let first = run();
            let second = run();
            assert!(!first.is_empty(), "{name}: no events captured");
            assert_eq!(first, second, "{name} ({backend:?}): nondeterministic stream");
        }
    }
}

/// The reducer's Reduce-phase `step/…` events are a complete account of
/// its work: exactly one event per reduction, so the stream length equals
/// [`units::Reducer::steps`], and each payload is the 1-based step index.
#[cfg(feature = "trace")]
#[test]
fn step_events_match_the_reducers_step_count() {
    let engine = Engine::new();
    for (name, src) in stdlib_programs() {
        let program = engine.load(&src).unwrap();
        let mut reducer = units::Reducer::new();
        let (value, events) =
            units::trace::capture(|| reducer.reduce_to_value(program.expr()));
        value.unwrap();
        let step_events: Vec<_> =
            events.iter().filter(|e| e.kind.starts_with("step/")).collect();
        assert!(reducer.steps() > 0, "{name}: no reductions happened");
        assert_eq!(
            step_events.len() as u64,
            reducer.steps(),
            "{name}: {} step events vs {} reported steps",
            step_events.len(),
            reducer.steps()
        );
        for (i, e) in step_events.iter().enumerate() {
            assert_eq!(e.payload, (i as u64 + 1).to_string(), "{name}: step payload");
        }
    }
}

/// Runs `src` with a reducer whose δ-rules are deliberately broken after
/// `diverge_after` steps (trace-only [`units::Reducer`] fault injection),
/// while the production backends stay clean — the modern
/// [`units::diagnose_divergence_with`] closure shape.
#[cfg(feature = "trace")]
fn diverging_run(
    src: &str,
    fuel: u64,
    diverge_after: Option<u64>,
) -> impl Fn(Backend) -> Result<units::Outcome, units::Error> + '_ {
    move |backend| {
        let engine =
            Engine::builder().limits(units::Limits::none().fuel(fuel)).build();
        let program = engine.load(src)?;
        match backend {
            Backend::Reducer => {
                let mut reducer = units::Reducer::with_fuel(fuel);
                if let Some(after) = diverge_after {
                    reducer.inject_divergence_after(after);
                }
                let value = reducer.reduce_to_value(program.expr())?;
                Ok(units::Outcome {
                    value: units::observe_expr(&value),
                    output: reducer.machine.take_output(),
                })
            }
            other => program.run_on(other),
        }
    }
}

/// An injected reducer fault makes the backends disagree, and the
/// divergence report names the exact primitive call and Fig. 11 step
/// where their streams part ways.
#[cfg(feature = "trace")]
#[test]
fn divergence_report_names_the_first_diverging_step() {
    // The fault makes `(- n 1)` come back as `n`, so even/odd would loop
    // forever — fuel bounds the broken reducer run; the streams diverge
    // long before it runs out.
    let report = units::diagnose_divergence_with(
        Backend::Compiled,
        diverging_run(EVEN_ODD, 10_000, Some(0)),
    );
    let call = report.diverging_call.expect("fault injection must diverge the streams");
    let step = report.diverging_step.expect("a diverging call happens during some step");
    assert!(step >= 1, "steps are 1-based");
    assert_ne!(report.compiled_call, report.reduced_call, "renderings must differ");
    let text = report.to_string();
    assert!(
        text.contains(&format!("#{}", call + 1)) && text.contains(&format!("step {step}")),
        "report names call and step: {text}"
    );

    // Sanity: without injection the same program's streams agree.
    let clean = units::diagnose_divergence_with(
        Backend::Compiled,
        diverging_run(EVEN_ODD, 10_000, None),
    );
    assert_eq!(clean.diverging_call, None, "{clean}");
    assert_eq!(clean.prim_calls.0, clean.prim_calls.1);
}

/// The same injected fault diagnosed across every backend pair: both
/// production backends diverge from the broken reducer at the same
/// Fig. 11 step, the step is stable under repeated diagnosis, and the
/// two production backends agree with *each other*.
#[cfg(feature = "trace")]
#[test]
fn divergence_step_is_stable_across_backend_pairs() {
    let run = diverging_run(EVEN_ODD, 10_000, Some(0));

    // Compiled vs broken reducer, and bytecode vs broken reducer: both
    // lefts are clean, so both must part ways from the same broken
    // right-hand stream at the same call and step.
    let cr = units::diagnose_divergence_between(Backend::Compiled, Backend::Reducer, &run);
    let br = units::diagnose_divergence_between(Backend::Bytecode, Backend::Reducer, &run);
    let call = cr.diverging_call.expect("compiled/reducer diverge");
    let step = cr.diverging_step.expect("the call lands in some step");
    assert_eq!(br.diverging_call, Some(call), "bytecode sees the same diverging call");
    assert_eq!(br.diverging_step, Some(step), "…at the same Fig. 11 step");

    // Diagnosis is a pure replay: running it again names the same step.
    let again = units::diagnose_divergence_between(Backend::Compiled, Backend::Reducer, &run);
    assert_eq!(again.diverging_call, Some(call));
    assert_eq!(again.diverging_step, Some(step));

    // The production pair is untouched by the reducer-side fault.
    let cb = units::diagnose_divergence_between(Backend::Compiled, Backend::Bytecode, &run);
    assert_eq!(cb.diverging_call, None, "{cb}");
    assert_eq!(cb.prim_calls.0, cb.prim_calls.1);

    // And with no injection at all, every pair agrees.
    let clean = diverging_run(EVEN_ODD, 10_000, None);
    for (left, right) in [
        (Backend::Compiled, Backend::Reducer),
        (Backend::Bytecode, Backend::Reducer),
        (Backend::Compiled, Backend::Bytecode),
    ] {
        let report = units::diagnose_divergence_between(left, right, &clean);
        assert_eq!(report.diverging_call, None, "{left:?} vs {right:?}: {report}");
    }
}

/// Adversarial payloads — control characters, quotes, backslashes,
/// astral-plane text — survive the real emit → sink → JSON-line path:
/// every line the zero-dep writer produces validates, and the escaped
/// payload decodes back to the original bytes.
#[cfg(feature = "trace")]
#[test]
fn adversarial_event_payloads_round_trip_through_the_sink() {
    use units::trace::{json, Phase};
    let payloads = [
        "\u{0}\u{1}\u{8}\u{c}\n\r\t\u{1f}".to_string(),
        "quote \" backslash \\ slash / done".to_string(),
        "literal \\u0000 text (already escaped-looking)".to_string(),
        "line\u{2028}and\u{2029}separators, \u{7f}\u{9b}".to_string(),
        "astral 𝄞 and accented é".to_string(),
    ];
    let ((), events) = units::trace::capture(|| {
        for p in &payloads {
            units::trace::emit(Phase::Engine, "test/adversarial", None, || p.clone(), &[]);
        }
    });
    assert_eq!(events.len(), payloads.len());
    for (event, payload) in events.iter().zip(&payloads) {
        assert_eq!(&event.payload, payload, "payload survives the session");
        let line = event.to_json();
        json::validate(&line).unwrap_or_else(|e| panic!("invalid event JSON {e:?}: {line}"));
        let escaped = json::escape(payload);
        assert_eq!(json::unescape(&escaped).as_deref(), Ok(payload.as_str()));
    }
}

/// The span log behind `Metrics::chrome_trace_json` captures the
/// pipeline phases of a real run, and the export is valid JSON in the
/// Chrome `traceEvents` shape.
#[cfg(feature = "trace")]
#[test]
fn chrome_trace_export_is_valid_and_names_the_eval_span() {
    let metrics = Arc::new(units::trace::Metrics::new());
    units::trace::install(
        Rc::new(RefCell::new(units::trace::NullSink)),
        Arc::clone(&metrics),
    );
    let engine = Engine::new();
    engine.load(EVEN_ODD).unwrap().run_on(Backend::Compiled).unwrap();
    units::trace::uninstall();
    let doc = metrics.chrome_trace_json();
    units::trace::json::validate(&doc).expect("chrome trace is valid JSON");
    assert!(doc.contains("\"traceEvents\""), "{doc}");
    assert!(doc.contains("\"name\":\"eval\""), "the eval phase span is present: {doc}");
    assert!(!metrics.spans().is_empty());
}

/// `diagnose_divergence` over an owned handle compares the compiled
/// backend against the reference reducer and reports agreement when the
/// backends agree (the divergence-finding half is covered by the
/// injected-divergence tests elsewhere in this file).
#[cfg(feature = "trace")]
#[test]
fn diagnose_divergence_works_on_loaded_handles() {
    let engine = units::Engine::new();
    let loaded =
        engine.load("(invoke (unit (import) (export) (init (+ 20 22))))").unwrap();
    let report = units::diagnose_divergence(&loaded);
    assert!(report.diverging_call.is_none(), "backends agree: {report}");
    assert_eq!(report.prim_calls.0, report.prim_calls.1);
}

/// Every JSON line the `JsonLinesSink` writes parses, and the metrics
/// snapshot renders as valid JSON too.
#[cfg(feature = "trace")]
#[test]
fn emitted_json_is_valid() {
    let sink = Rc::new(RefCell::new(units::trace::JsonLinesSink::new(Vec::new())));
    let metrics = Arc::new(units::trace::Metrics::new());
    units::trace::install(Rc::clone(&sink) as _, Arc::clone(&metrics));
    Engine::new().load(EVEN_ODD).unwrap().run_differential().unwrap();
    units::trace::uninstall();
    let bytes = Rc::try_unwrap(sink).expect("session dropped").into_inner().into_inner();
    let lines = String::from_utf8(bytes).unwrap();
    assert!(!lines.is_empty(), "no JSON lines written");
    for line in lines.lines() {
        units::trace::json::validate(line)
            .unwrap_or_else(|e| panic!("bad event JSON {e:?}: {line}"));
    }
    units::trace::json::validate(&metrics.to_json()).expect("metrics snapshot is JSON");
    assert!(metrics.counter("reduce/steps") > 0, "step counter folded into metrics");
}
