//! Corner cases and failure injection across the whole pipeline.

use units::{
    Backend, CheckError, Engine, Level, Observation, RuntimeError, Strictness, Ty,
};

fn mz() -> Engine {
    Engine::builder().strictness(Strictness::MzScheme).build()
}

fn at(level: Level) -> Engine {
    Engine::builder().level(level).build()
}

fn both(source: &str) -> units::Outcome {
    mz().load(source)
        .unwrap_or_else(|e| panic!("load: {e}"))
        .run_differential()
        .unwrap_or_else(|e| panic!("run: {e}"))
}

// ---------------------------------------------------------------------
// Degenerate units
// ---------------------------------------------------------------------

#[test]
fn the_empty_unit_invokes_to_void() {
    assert_eq!(both("(invoke (unit (import) (export)))").value, Observation::Void);
}

#[test]
fn the_empty_compound_invokes_to_void() {
    assert_eq!(
        both("(invoke (compound (import) (export) (link)))").value,
        Observation::Void
    );
}

#[test]
fn a_type_only_unit_links_and_invokes() {
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export mk)
                 (datatype t (mk unmk int) t?))
               (with) (provides mk))
              ((unit (import mk) (export) (init (mk 3) 1))
               (with mk) (provides)))))";
    assert_eq!(both(src).value, Observation::Int(1));
}

#[test]
fn unit_with_only_init_behaves_like_a_thunk() {
    let src = "(define u (unit (import) (export) (init (display \"ran\") 2)))
        (+ (invoke u) (invoke u))";
    let outcome = both(src);
    assert_eq!(outcome.value, Observation::Int(4));
    assert_eq!(outcome.output, vec!["ran", "ran"]);
}

// ---------------------------------------------------------------------
// Units as first-class values
// ---------------------------------------------------------------------

#[test]
fn units_travel_through_tuples_and_closures() {
    let src = "(let ((pair (tuple 1 (unit (import) (export) (init 7)))))
         (let ((pick (lambda (p) (proj 1 p))))
           (invoke (pick pair))))";
    assert_eq!(both(src).value, Observation::Int(7));
}

#[test]
fn units_stored_in_hash_tables_and_invoked_later() {
    let src = "(let ((registry (hash-new)))
         (hash-set! registry \"boot\" (unit (import) (export) (init 11)))
         (invoke (hash-get registry \"boot\")))";
    assert_eq!(both(src).value, Observation::Int(11));
}

#[test]
fn higher_order_linking_functions() {
    // A function that takes two units and links them in either order.
    let src = "(let ((pipe (lambda (a b)
           (compound (import) (export)
             (link (a (with) (provides out))
                   (b (with out) (provides)))))))
         (invoke (pipe (unit (import) (export out) (define out 5))
                       (unit (import out) (export) (init (* out 2))))))";
    assert_eq!(both(src).value, Observation::Int(10));
}

// ---------------------------------------------------------------------
// Deep structures
// ---------------------------------------------------------------------

#[test]
fn seal_chains_narrow_monotonically() {
    let src = "(invoke (compound (import) (export)
        (link ((seal (seal (unit (import) (export a b c)
                             (define a 1) (define b 2) (define c 3))
                           (sig (import) (export a b) (init void)))
                     (sig (import) (export a) (init void)))
               (with) (provides a))
              ((unit (import a) (export) (init a))
               (with a) (provides)))))";
    assert_eq!(both(src).value, Observation::Int(1));
    // b was stripped by the outer seal even though the inner kept it.
    let bad = src.replace("(provides a)", "(provides b)").replace("import a", "import b")
        .replace("(with a)", "(with b)").replace("(init a)", "(init b)");
    let err = mz().load(&bad).unwrap().run().unwrap_err();
    assert!(
        matches!(err.as_runtime(), Some(RuntimeError::MissingProvide { name }) if name.as_str() == "b")
    );
}

#[test]
fn eight_levels_of_nested_compounds() {
    let mut inner = "(unit (import) (export v) (define v (lambda () 1)))".to_string();
    for _ in 0..8 {
        inner = format!(
            "(compound (import) (export v) (link ({inner} (with) (provides v))))"
        );
    }
    let src = format!(
        "(invoke (compound (import) (export)
           (link ({inner} (with) (provides v))
                 ((unit (import v) (export) (init (v))) (with v) (provides)))))"
    );
    assert_eq!(both(&src).value, Observation::Int(1));
}

#[test]
fn many_variant_datatypes_generalize_the_papers_two() {
    // The paper fixes exactly two variants "for simplicity"; the
    // implementation allows any positive number, with the predicate true
    // exactly for the first.
    let src = "(letrec ((datatype shape
                  (circle uncircle int)
                  (square unsquare int)
                  (tri untri int)
                  first?))
         (tuple (first? (circle 1)) (first? (square 2)) (first? (tri 3))
                (untri (tri 9))))";
    assert_eq!(
        both(src).value,
        Observation::Tuple(vec![
            Observation::Bool(true),
            Observation::Bool(false),
            Observation::Bool(false),
            Observation::Int(9),
        ])
    );
}

// ---------------------------------------------------------------------
// Invoking partial programs (dynamic linking of compounds)
// ---------------------------------------------------------------------

#[test]
fn compounds_with_imports_are_dynamically_linkable() {
    let src = "(define partial (compound (import base) (export)
          (link ((unit (import base) (export mid)
                   (define mid (lambda () (* base 2))))
                 (with base) (provides mid))
                ((unit (import mid) (export) (init (mid)))
                 (with mid) (provides)))))
        (invoke partial (val base 21))";
    assert_eq!(both(src).value, Observation::Int(42));
}

#[test]
fn invoke_inside_a_unit_body_nests_machines_correctly() {
    let src = "(invoke (unit (import) (export)
        (define inner (unit (import k) (export) (init (+ k 1))))
        (init (invoke inner (val k (invoke inner (val k 40)))))))";
    assert_eq!(both(src).value, Observation::Int(42));
}

// ---------------------------------------------------------------------
// Checker corner cases
// ---------------------------------------------------------------------

#[test]
fn duplicate_signature_ports_are_rejected() {
    let err = at(Level::Constructed)
        .load(
            "(seal (unit (import) (export))
                   (sig (import (x int) (x str)) (export) (init void)))",
        )
        .unwrap_err();
    let errs = err.as_check().unwrap();
    assert!(
        errs.iter().any(|e| matches!(e, CheckError::Duplicate { name, .. } if name.as_str() == "x")),
        "{errs:?}"
    );
}

#[test]
fn signature_types_must_be_bound() {
    let err = at(Level::Constructed)
        .load(
            "(seal (unit (import) (export))
                   (sig (import (x mystery)) (export) (init void)))",
        )
        .unwrap_err();
    let errs = err.as_check().unwrap();
    assert!(
        errs.iter()
            .any(|e| matches!(e, CheckError::UnboundTy { name } if name.as_str() == "mystery")),
        "{errs:?}"
    );
}

#[test]
fn depends_endpoints_must_be_interface_types() {
    for sig in [
        "(sig (import (type i)) (export) (init void) (depends (ghost i)))",
        "(sig (import) (export (type e)) (init void) (depends (e ghost)))",
    ] {
        let err = at(Level::Equations)
            .load(&format!("(seal (unit (import) (export)) {sig})"))
            .unwrap_err();
        assert!(err.as_check().is_some(), "{sig}");
    }
}

#[test]
fn unite_forms_are_rejected_at_unitc() {
    let err = at(Level::Constructed)
        .load(
            "(seal (unit (import) (export))
                   (sig (import (type i)) (export (type e)) (init void) (depends (e i))))",
        )
        .unwrap_err();
    let errs = err.as_check().unwrap();
    assert!(
        errs.iter().any(|e| matches!(e, CheckError::UnsupportedAtLevel { .. })),
        "{errs:?}"
    );
}

#[test]
fn projection_type_errors_are_static_at_typed_levels() {
    let err = at(Level::Constructed).load("(proj 2 (tuple 1 2))").unwrap_err();
    assert!(err.as_check().is_some());
    // And the same program is a *runtime* error at the untyped level.
    let err = Engine::new().invoke("(proj 2 (tuple 1 2))").unwrap_err();
    assert!(matches!(err.as_runtime(), Some(RuntimeError::BadProjection { .. })));
}

#[test]
fn if_branches_join_through_subtyping_of_signatures() {
    // Two units with different (but subtype-related) signatures in the
    // branches of an `if`: the join is the more general signature.
    let src = "(if true
         (unit (import) (export (a int) (b int)) (define a int 1) (define b int 2))
         (unit (import) (export (a int)) (define a int 1)))";
    let engine = at(Level::Constructed);
    let loaded = engine.load(src).unwrap();
    let ty = loaded.ty().unwrap();
    let sig = ty.as_sig().unwrap();
    assert!(sig.exports.val_port(&"a".into()).is_some());
    assert!(sig.exports.val_port(&"b".into()).is_none(), "join is the supertype");
}

#[test]
fn init_type_may_be_a_signature() {
    // A unit whose initialization value is itself a unit — programs that
    // produce programs.
    let src = "(invoke (invoke (unit (import) (export)
        (init (unit (import) (export) (init 9))))))";
    assert_eq!(both(src).value, Observation::Int(9));
    let engine = at(Level::Constructed);
    let loaded = engine.load(src).unwrap();
    assert_eq!(loaded.ty(), Some(&Ty::Int));
}

// ---------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------

#[test]
fn errors_inside_definitions_abort_the_whole_invocation() {
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export) (define x ((inst fail void) \"defs\")) (init 1))
               (with) (provides))
              ((unit (import) (export) (init (display \"never\")))
               (with) (provides)))))";
    let engine = mz();
    let p = engine.load(src).unwrap();
    for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
        let err = p.run_on(backend).unwrap_err();
        assert!(
            matches!(err.as_runtime(), Some(RuntimeError::User { message }) if message == "defs"),
            "{backend:?}: {err}"
        );
    }
}

#[test]
fn errors_in_an_early_init_prevent_later_inits() {
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export) (init ((inst fail void) \"init1\")))
               (with) (provides))
              ((unit (import) (export) (init (display \"unreached\")))
               (with) (provides)))))";
    let engine = mz();
    let p = engine.load(src).unwrap();
    for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
        let err = p.run_on(backend).unwrap_err();
        assert!(err.as_runtime().is_some(), "{backend:?}");
    }
}

#[test]
fn invoke_of_a_failing_link_expression_propagates() {
    let src = "(invoke (compound (import) (export)
        (link (((inst fail void) \"no unit here\") (with) (provides)))))";
    let engine = mz();
    let p = engine.load(src).unwrap();
    for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
        let err = p.run_on(backend).unwrap_err();
        assert!(
            matches!(err.as_runtime(), Some(RuntimeError::User { .. })),
            "{backend:?}: {err}"
        );
    }
}

#[test]
fn an_early_init_reads_a_later_units_definition() {
    // All definitions run before all inits, so the first constituent's
    // init can read the second's export; the invocation *result* is the
    // last init's value.
    let src = "(invoke (compound (import) (export)
        (link ((unit (import slot) (export) (init (display (int->string slot))))
               (with slot) (provides))
              ((unit (import) (export slot) (define slot 5) (init 7))
               (with) (provides slot)))))";
    let outcome = both(src);
    assert_eq!(outcome.output, vec!["5"]);
    assert_eq!(outcome.value, Observation::Int(7));
}

#[test]
fn wrong_instance_errors_name_the_type() {
    let src = "(define mk-unit (unit (import) (export mk)
          (datatype point (mk unmk int) point?)))
        (define un-unit (unit (import) (export unmk)
          (datatype point (mk unmk int) point?)))
        (invoke (compound (import) (export)
          (link (mk-unit (with) (provides mk))
                (un-unit (with) (provides unmk))
                ((unit (import mk unmk) (export) (init (unmk (mk 1))))
                 (with mk unmk) (provides)))))";
    let engine = mz();
    let p = engine.load(src).unwrap();
    for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
        let err = p.run_on(backend).unwrap_err();
        assert!(
            matches!(
                err.as_runtime(),
                Some(RuntimeError::ForeignInstance { ty_name }) if ty_name.as_str() == "point"
            ),
            "{backend:?}: {err}"
        );
    }
}

#[test]
fn display_output_interleaves_identically_across_backends() {
    let src = "(invoke (compound (import) (export)
        (link ((unit (import later) (export early)
                 (define early (lambda () (display \"early-called\") 1)))
               (with later) (provides early))
              ((unit (import early) (export later)
                 (define later (lambda () (display \"later-called\") 2))
                 (init (display \"init\") (+ (early) (later))))
               (with early) (provides later)))))";
    let outcome = both(src);
    assert_eq!(outcome.value, Observation::Int(3));
    assert_eq!(outcome.output, vec!["init", "early-called", "later-called"]);
}
