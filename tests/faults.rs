//! Chaos harness for the deterministic fault plane.
//!
//! Sweeps hundreds of seeded fault schedules — error-kind and
//! panic-kind, across all three calculus levels and all three backends —
//! and holds the engine to its contract: every injected failure
//! surfaces as a *typed* [`units::Error`] (never an escaped panic),
//! and the session stays fully usable afterwards. Each schedule is a
//! pure function of its seed, so any failing combination reported by
//! this file is a reproducible test case.
//!
//! Build-gated: `cargo test --features faults` (registered with
//! `required-features`, so plain `cargo test` skips it and pays
//! nothing).

use units::trace::faults::{self, FaultKind, FaultPlane};
use units::{Backend, Engine, FallbackPolicy, Level, Limits, Observation};

/// A known-good program per level, with the value it must produce
/// whenever a run manages to complete.
fn program_for(level: Level) -> (&'static str, Observation) {
    match level {
        // Fig. 12's cyclically linked even/odd units: deep enough to
        // offer the stochastic stream plenty of reduce/merge/store/prim
        // trips.
        Level::Untyped => (
            "(invoke (compound (import) (export)
               (link ((unit (import odd) (export even)
                        (define even (lambda (n) (if (= n 0) true (odd (- n 1))))))
                      (with odd) (provides even))
                     ((unit (import even) (export odd)
                        (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
                        (init (odd 13)))
                      (with even) (provides odd)))))",
            Observation::Bool(true),
        ),
        _ => (
            "(invoke (unit (import) (export) (init (+ (* 6 6) (* 50 2)))))",
            Observation::Int(136),
        ),
    }
}

/// One seeded schedule against one (level, backend) cell. Returns how
/// many faults the plane fired, so the sweep can prove it injected.
fn chaos_case(seed: u64, level: Level, backend: Backend) -> usize {
    let (source, expected) = program_for(level);
    // Even seeds inject typed errors, odd seeds inject panics — the
    // sweep exercises both error propagation and the unwind boundaries.
    let kind = if seed.is_multiple_of(2) { FaultKind::Error } else { FaultKind::Panic };
    let engine = Engine::builder()
        .level(level)
        .backend(backend)
        .limits(Limits::none().fuel(200_000))
        .build();
    faults::arm(FaultPlane::seeded(seed).rate_per_mille(150).budget(2).kind(kind));
    let result = engine.load(source).and_then(|loaded| loaded.run());
    let plane = faults::disarm().expect("the engine must leave the test's plane armed");
    let context = format!("seed {seed} {level:?} {backend:?} {kind:?}");
    match result {
        Ok(outcome) => assert_eq!(outcome.value, expected, "{context}"),
        Err(err) => assert!(
            !plane.fired().is_empty(),
            "{context}: failed with no fault fired: {err}"
        ),
    }
    // The session must survive any schedule: with the plane disarmed,
    // the very same engine loads and runs the program correctly.
    let outcome = engine
        .load(source)
        .and_then(|loaded| loaded.run())
        .unwrap_or_else(|e| panic!("{context}: engine unusable after the schedule: {e}"));
    assert_eq!(outcome.value, expected, "{context}: post-schedule run");
    plane.fired().len()
}

#[test]
fn chaos_sweep_is_typed_or_correct_everywhere() {
    faults::install_quiet_hook();
    let levels = [Level::Untyped, Level::Constructed, Level::Equations];
    let backends = [Backend::Compiled, Backend::Reducer, Backend::Bytecode];
    let mut schedules = 0u64;
    let mut fired = 0usize;
    for seed in 0..40 {
        for level in levels {
            for backend in backends {
                fired += chaos_case(seed, level, backend);
                schedules += 1;
            }
        }
    }
    assert!(schedules >= 200, "the sweep must cover at least 200 schedules");
    assert!(
        fired >= schedules as usize / 4,
        "a 150\u{2030} stream must actually inject across {schedules} schedules (got {fired})"
    );
}

#[test]
fn replaying_a_seed_reproduces_its_verdict() {
    faults::install_quiet_hook();
    let verdicts: Vec<String> = (0..2)
        .map(|_| {
            let (source, _) = program_for(Level::Untyped);
            let engine = Engine::new();
            faults::arm(FaultPlane::seeded(1234).rate_per_mille(80).budget(3));
            let result = engine.load(source).and_then(|loaded| loaded.run());
            let plane = faults::disarm().unwrap();
            format!("{result:?} / {:?}", plane.fired())
        })
        .collect();
    assert_eq!(verdicts[0], verdicts[1], "equal seeds, equal schedules, equal outcomes");
}

#[test]
fn injected_compiled_fault_falls_back_byte_identically() {
    faults::install_quiet_hook();
    let (source, _) = program_for(Level::Untyped);
    // The uninjected reference verdict: same program, reducer backend.
    let expected = Engine::builder().backend(Backend::Reducer).build().invoke(source).unwrap();

    let engine =
        Engine::builder().on_failure(FallbackPolicy::reference().diagnose(false)).build();
    let loaded = engine.load(source).unwrap();
    faults::arm(FaultPlane::seeded(77).trigger("compile/eval", 1));
    let outcome = loaded.run_on(Backend::Compiled).unwrap();
    faults::disarm();
    assert_eq!(outcome, expected, "the fallback observation equals the reference run");
    let recovery = engine.last_recovery().expect("the fallback is recorded");
    assert!(recovery.fell_back, "{recovery:?}");
    assert_eq!(recovery.retries, 0);
    assert!(recovery.failure.contains("injected fault at compile/eval"), "{recovery:?}");
}

#[test]
fn injected_vm_fault_falls_back_byte_identically() {
    faults::install_quiet_hook();
    let (source, _) = program_for(Level::Untyped);
    // The uninjected reference verdict: same program, reducer backend.
    let expected = Engine::builder().backend(Backend::Reducer).build().invoke(source).unwrap();

    let engine =
        Engine::builder().on_failure(FallbackPolicy::reference().diagnose(false)).build();
    let loaded = engine.load(source).unwrap();
    faults::arm(FaultPlane::seeded(78).trigger("vm/dispatch", 1));
    let outcome = loaded.run_on(Backend::Bytecode).unwrap();
    faults::disarm();
    assert_eq!(outcome, expected, "the fallback observation equals the reference run");
    let recovery = engine.last_recovery().expect("the fallback is recorded");
    assert!(recovery.fell_back, "{recovery:?}");
    assert_eq!(recovery.retries, 0);
    assert!(recovery.failure.contains("injected fault at vm/dispatch"), "{recovery:?}");
}

#[test]
fn injected_panic_also_falls_back() {
    faults::install_quiet_hook();
    let (source, expected) = program_for(Level::Untyped);
    let engine =
        Engine::builder().on_failure(FallbackPolicy::reference().diagnose(false)).build();
    let loaded = engine.load(source).unwrap();
    faults::arm(FaultPlane::seeded(5).kind(FaultKind::Panic).trigger("runtime/prim", 2));
    let outcome = loaded.run_on(Backend::Compiled).unwrap();
    faults::disarm();
    assert_eq!(outcome.value, expected);
    let recovery = engine.last_recovery().unwrap();
    assert!(recovery.fell_back);
    assert!(recovery.failure.contains("internal error in run"), "{recovery:?}");
}

#[cfg(feature = "trace")]
#[test]
fn fallback_diagnosis_reports_both_verdicts() {
    faults::install_quiet_hook();
    let (source, _) = program_for(Level::Untyped);
    let engine = Engine::builder().on_failure(FallbackPolicy::reference()).build();
    let loaded = engine.load(source).unwrap();
    faults::arm(FaultPlane::seeded(9).trigger("compile/eval", 1));
    loaded.run_on(Backend::Compiled).unwrap();
    faults::disarm();
    let recovery = engine.last_recovery().unwrap();
    let divergence = recovery.divergence.expect("trace builds diagnose the divergence");
    assert!(divergence.contains("divergence report:"), "{divergence}");
    assert!(divergence.contains("outcome"), "{divergence}");
}

#[test]
fn fuel_exhaustion_retries_then_falls_back_under_one_policy() {
    faults::install_quiet_hook();
    // Terminates on both backends, but needs far more than 100 steps.
    let source = "(invoke (compound (import) (export)
       (link ((unit (import odd) (export even)
                (define even (lambda (n) (if (= n 0) true (odd (- n 1))))))
              (with odd) (provides even))
             ((unit (import even) (export odd)
                (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
                (init (odd 25)))
              (with even) (provides odd)))))";
    let engine = Engine::builder()
        .limits(Limits::none().fuel(100))
        .on_failure(FallbackPolicy::reference().diagnose(false).fuel_retries(8))
        .build();
    let outcome = engine.invoke(source).unwrap();
    assert_eq!(outcome.value, Observation::Bool(true));
    let recovery = engine.last_recovery().unwrap();
    assert!(recovery.retries >= 1, "escalation had to happen: {recovery:?}");
    assert!(!recovery.fell_back, "escalated fuel cures this one before any fallback");
}

#[test]
fn batch_worker_faults_are_isolated_and_deterministic() {
    faults::install_quiet_hook();
    let sources: Vec<String> = (0..24)
        .map(|i| format!("(invoke (unit (import) (export) (init (+ {i} 1))))"))
        .collect();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let run_pool = || {
        let engine = Engine::builder()
            .threads(4)
            .worker_faults(
                FaultPlane::seeded(31).rate_per_mille(400).kind(FaultKind::Panic),
            )
            .build();
        let verdicts: Vec<Result<Observation, String>> = engine
            .load_batch(&refs)
            .into_iter()
            .map(|r| {
                r.and_then(|loaded| loaded.run())
                    .map(|outcome| outcome.value)
                    .map_err(|e| e.to_string())
            })
            .collect();
        verdicts
    };
    let verdicts = run_pool();
    let mut survived = 0;
    let mut faulted = 0;
    for (i, verdict) in verdicts.iter().enumerate() {
        match verdict {
            Ok(value) => {
                assert_eq!(*value, Observation::Int(i as i64 + 1));
                survived += 1;
            }
            Err(message) => {
                // A worker panic crosses the pool boundary as a typed
                // internal error naming the batch stage — never as a
                // dead thread or a poisoned lock.
                assert!(
                    message.contains("internal error in batch-load")
                        && message.contains("injected panic at"),
                    "job {i}: {message}"
                );
                faulted += 1;
            }
        }
    }
    assert!(faulted > 0, "a 400\u{2030} panic schedule must hit some of 24 jobs");
    assert!(survived > 0, "and must miss some");
    // Per-job reseeding makes the verdict pattern a function of the
    // jobs alone: a second pool (fresh engine, same plane) agrees
    // everywhere, whatever order its threads popped the queue.
    assert_eq!(verdicts, run_pool(), "schedules are scheduling-independent");
}

/// A seeded schedule that trips inside evaluation leaves a flight-
/// recorder post-mortem on the engine (trace builds carry the ring):
/// the dump names the trip site, ends at the failure, and every line
/// is valid JSON.
#[cfg(feature = "trace")]
#[test]
fn injected_fault_produces_a_flight_dump_naming_the_trip_site() {
    faults::install_quiet_hook();
    let (source, _) = program_for(Level::Untyped);
    let engine = Engine::new();
    let loaded = engine.load(source).unwrap();
    assert_eq!(engine.last_flight_dump(), None, "no dump before any fault");

    faults::arm(FaultPlane::seeded(11).trigger("compile/eval", 1));
    let err = loaded.run_on(Backend::Compiled).expect_err("the fault must surface");
    faults::disarm();
    assert!(err.to_string().contains("injected fault at compile/eval"), "{err}");

    let dump = engine.last_flight_dump().expect("the failure captured a post-mortem");
    assert!(dump.reason.contains("injected fault at compile/eval"), "{}", dump.reason);
    assert!(dump.events > 0, "the ring saw the run");
    let mut lines = dump.json_lines.lines();
    let meta = lines.next().expect("a meta line leads the dump");
    assert!(meta.contains("\"flight\":\"dump\""), "{meta}");
    for line in dump.json_lines.lines() {
        units::trace::json::validate(line)
            .unwrap_or_else(|e| panic!("bad dump line {e:?}: {line}"));
    }
    assert!(
        dump.json_lines.contains("fault/fired") && dump.json_lines.contains("compile/eval"),
        "the dump records the trip itself:\n{}",
        dump.json_lines
    );

    // A later clean run does not overwrite the post-mortem with nothing:
    // the last dump stays until the next machinery fault.
    loaded.run_on(Backend::Compiled).unwrap();
    assert!(engine.last_flight_dump().is_some());
    assert_eq!(engine.metrics_snapshot().recovery.flight_dumps, 1);
}
