//! Engine-session invariants: the artifact cache must be semantically
//! invisible, and every resource budget must surface as a typed error.
//!
//! The differential tests here are the cache's correctness argument: a
//! warm (cache-hit) load followed by a run must produce an `Outcome`
//! equal to the cold run's, *and* an identical trace-event stream, on
//! both backends at all three levels. Cache accounting goes through
//! metrics counters only, so a hit can never perturb the event stream.

use units::{Archive, Backend, Engine, Error, Level, Limits, Observation, Strictness};
use units_runtime::Resource;

/// A program that parses at every level: annotations only where the
/// typed checkers need them, none where UNITd would reject them.
fn square_program(level: Level) -> &'static str {
    match level {
        Level::Untyped => {
            "(invoke (unit (import) (export)
                (define square (lambda (n) (* n n)))
                (init (begin (display (int->string (square 12))) (square 12)))))"
        }
        _ => {
            "(invoke (unit (import) (export)
                (define square (-> int int) (lambda ((n int)) (* n n)))
                (init (begin (display (int->string (square 12))) (square 12)))))"
        }
    }
}

/// The core differential property: for every level and backend, the
/// second (cache-hit) load runs byte-identically to the first.
#[test]
fn warm_runs_match_cold_runs_exactly() {
    for level in [Level::Untyped, Level::Constructed, Level::Equations] {
        for backend in [Backend::Compiled, Backend::Reducer] {
            let engine = Engine::builder().level(level).backend(backend).build();
            let source = square_program(level);

            let cold = engine.load(source).unwrap();
            let (cold_outcome, cold_events) =
                units::trace::capture(|| cold.run().unwrap());

            let warm = engine.load(source).unwrap();
            let (warm_outcome, warm_events) =
                units::trace::capture(|| warm.run().unwrap());

            let stats = engine.cache_stats();
            assert_eq!(
                (stats.hits, stats.misses, stats.entries),
                (1, 1, 1),
                "{level:?}/{backend:?}: second load must hit"
            );
            assert_eq!(cold_outcome.value, Observation::Int(144));
            assert_eq!(cold_outcome.output, vec!["144".to_string()]);
            assert_eq!(
                cold_outcome, warm_outcome,
                "{level:?}/{backend:?}: outcomes differ cold vs warm"
            );
            assert_eq!(
                cold_events, warm_events,
                "{level:?}/{backend:?}: trace streams differ cold vs warm"
            );
        }
    }
}

/// A cache-hit load does not even parse: its event stream is empty.
#[test]
fn warm_loads_emit_no_events() {
    let engine = Engine::new();
    engine.load(square_program(Level::Untyped)).unwrap();
    let (result, events) =
        units::trace::capture(|| engine.load(square_program(Level::Untyped)).map(drop));
    result.unwrap();
    assert!(events.is_empty(), "cache hit traced events: {events:?}");
}

/// Typed levels keep the program's type on the cached artifact.
#[test]
fn typed_levels_report_the_program_type() {
    let engine = Engine::builder().level(Level::Constructed).build();
    let loaded = engine.load(square_program(Level::Constructed)).unwrap();
    assert_eq!(loaded.ty().map(ToString::to_string).as_deref(), Some("int"));
    // And at the untyped level there is no type to report.
    let untyped = Engine::new();
    assert!(untyped.load(square_program(Level::Untyped)).unwrap().ty().is_none());
}

/// Fuel exhaustion is a typed error — no panic — on both backends.
#[test]
fn fuel_exhaustion_is_typed_on_both_backends() {
    let engine = Engine::builder()
        .strictness(Strictness::MzScheme)
        .limits(Limits::none().fuel(2_000))
        .build();
    let loaded =
        engine.load("(letrec ((define loop (lambda () (loop)))) (loop))").unwrap();
    for backend in [Backend::Compiled, Backend::Reducer] {
        let err = loaded.run_on(backend).unwrap_err();
        assert!(
            matches!(err, Error::ResourceExhausted { .. }),
            "{backend:?}: {err:?}"
        );
        assert_eq!(err.as_resource_exhausted(), Some((Resource::Fuel, 2_000)));
    }
}

/// Depth exhaustion (deep non-tail recursion) is a typed error — not a
/// stack overflow — on both backends.
#[test]
fn depth_exhaustion_is_typed_on_both_backends() {
    let engine = Engine::builder()
        .strictness(Strictness::MzScheme)
        .limits(Limits::none().max_depth(64))
        .build();
    let loaded = engine
        .load(
            "(letrec ((define down (lambda (n) (if (= n 0) 0 (+ 1 (down (- n 1)))))))
               (down 10000))",
        )
        .unwrap();
    for backend in [Backend::Compiled, Backend::Reducer] {
        let err = loaded.run_on(backend).unwrap_err();
        assert_eq!(
            err.as_resource_exhausted(),
            Some((Resource::Depth, 64)),
            "{backend:?}: {err:?}"
        );
    }
}

/// Store-cell exhaustion (each instantiation allocates one cell per
/// definition, §4.1.6) is a typed error on both backends.
#[test]
fn store_cell_exhaustion_is_typed_on_both_backends() {
    let engine = Engine::builder().limits(Limits::none().max_store_cells(2)).build();
    let loaded = engine
        .load(
            "(invoke (unit (import) (export)
                (define a (lambda () 1))
                (define b (lambda () 2))
                (define c (lambda () 3))
                (init (a))))",
        )
        .unwrap();
    for backend in [Backend::Compiled, Backend::Reducer] {
        let err = loaded.run_on(backend).unwrap_err();
        assert_eq!(
            err.as_resource_exhausted(),
            Some((Resource::StoreCells, 2)),
            "{backend:?}: {err:?}"
        );
    }
}

/// An alpha-renamed copy of a loaded program is a cache hit: the content
/// key hashes the alpha-normalized term, not the spelling.
#[test]
fn alpha_renamed_source_is_a_cache_hit() {
    let engine = Engine::new();
    engine
        .load(
            "(invoke (unit (import) (export)
                (define double (lambda (n) (+ n n)))
                (init (double 21))))",
        )
        .unwrap();
    let renamed = engine
        .load(
            "(invoke (unit (import) (export)
                (define twice (lambda (k) (+ k k)))
                (init (twice 21))))",
        )
        .unwrap();
    assert_eq!(renamed.run().unwrap().value, Observation::Int(42));
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
}

fn batch_sources() -> Vec<String> {
    (0..8)
        .map(|i| {
            if i == 5 {
                // One deliberate check error in the middle of the batch.
                "(+ nope 1)".to_string()
            } else {
                format!(
                    "(invoke (unit (import) (export)
                        (define f (lambda (n) (* n {i})))
                        (init (f 10))))"
                )
            }
        })
        .collect()
}

/// A parallel batch load returns, per source and in input order, exactly
/// what sequential loading returns.
#[test]
fn parallel_batch_agrees_with_sequential_loading() {
    let sources = batch_sources();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();

    let parallel = Engine::builder().threads(4).build();
    let sequential = Engine::builder().threads(1).build();
    let par_results = parallel.load_batch(&refs);
    let seq_results = sequential.load_batch(&refs);
    assert_eq!(par_results.len(), refs.len());

    for (i, (par, seq)) in par_results.iter().zip(&seq_results).enumerate() {
        match (par, seq) {
            (Ok(p), Ok(s)) => {
                let (po, so) = (p.run().unwrap(), s.run().unwrap());
                assert_eq!(po, so, "source {i}");
                assert_eq!(po.value, Observation::Int(10 * i as i64), "source {i}");
            }
            // Errors carry no PartialEq; their stable renderings must agree.
            (Err(p), Err(s)) => assert_eq!(p.to_string(), s.to_string(), "source {i}"),
            (p, s) => panic!("source {i}: parallel {p:?} vs sequential {s:?}"),
        }
    }
    // The batch populated the parallel engine's cache: reloading every
    // good source is now pure hits.
    let before = parallel.cache_stats();
    for (i, source) in refs.iter().enumerate() {
        if i != 5 {
            parallel.load(source).unwrap();
        }
    }
    let after = parallel.cache_stats();
    assert_eq!(after.misses, before.misses, "reloads must not re-check");
    assert_eq!(after.hits, before.hits + 7);
}

/// The compile-time guarantee behind the whole parallel pipeline: the
/// engine, its loaded handles, cached-artifact errors, and lowered
/// chunks are all `Send + Sync`. This test "runs" at type-check time —
/// remove an `Arc` anywhere on the artifact spine and it stops
/// compiling.
#[test]
fn engine_artifacts_and_chunks_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<units::EngineBuilder>();
    assert_send_sync::<units_runtime::Chunk>();
    assert_send_sync::<Error>();
    assert_send_sync::<units::Loaded>();
}

/// The owned-handle contract: a `Loaded` can cross threads and outlive
/// its engine, degrading to `Error::SessionClosed` only when asked to
/// run — artifact inspection is always available.
#[test]
fn owned_handles_cross_threads_and_survive_the_engine() {
    let engine = Engine::new();
    let source = square_program(Level::Untyped);
    let loaded = engine.load(source).unwrap();

    // Move a clone into another thread and run it there while the
    // original keeps working here.
    let handle = loaded.clone();
    let remote = std::thread::spawn(move || handle.run().unwrap().value);
    assert_eq!(loaded.run().unwrap().value, Observation::Int(144));
    assert_eq!(remote.join().unwrap(), Observation::Int(144));

    // Drop the engine: the handle still owns the artifact, but the
    // session — limits, cache, policy — is gone.
    drop(engine);
    assert!(!loaded.session_alive());
    assert!(loaded.ty().is_none(), "artifact inspection outlives the session");
    assert!(!loaded.disassemble().is_empty(), "disassembly outlives the session");
    assert!(matches!(loaded.run(), Err(Error::SessionClosed)));
}

/// `run_with` applies per-request limits without touching the session
/// defaults — the admission-control hook a multi-tenant server uses.
#[test]
fn per_request_limits_override_session_limits() {
    let engine = Engine::builder()
        .strictness(Strictness::MzScheme)
        .limits(Limits::none().fuel(1_000_000))
        .build();
    let loaded = engine
        .load("(letrec ((define loop (lambda (n) (if (= n 0) 7 (loop (- n 1)))))) (loop 2000))")
        .unwrap();
    // Tight per-request budget: typed exhaustion naming that budget.
    let err = loaded.run_with(Backend::Compiled, Limits::none().fuel(100)).unwrap_err();
    assert_eq!(err.as_resource_exhausted(), Some((Resource::Fuel, 100)));
    // The same handle under the (generous) session limits succeeds.
    assert_eq!(loaded.run().unwrap().value, Observation::Int(7));
}

/// One engine shared by reference across threads behaves exactly like a
/// cold single-threaded engine: same outcomes, same per-thread trace
/// streams, byte for byte. Trace capture is thread-local, so concurrent
/// runs cannot interleave each other's events.
#[test]
fn shared_engine_runs_identically_across_threads() {
    for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
        let source = square_program(Level::Untyped);

        let cold_engine = Engine::new();
        let cold = cold_engine.load(source).unwrap();
        let (cold_outcome, cold_events) =
            units::trace::capture(|| cold.run_on(backend).unwrap());

        let shared = Engine::new();
        shared.load(source).unwrap(); // warm the cache once, deterministically
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let loaded = shared.load(source).unwrap();
                        units::trace::capture(|| loaded.run_on(backend).unwrap())
                    })
                })
                .collect();
            for handle in handles {
                let (outcome, events) = handle.join().unwrap();
                assert_eq!(outcome, cold_outcome, "{backend:?}: outcome drifted");
                assert_eq!(events, cold_events, "{backend:?}: trace drifted");
            }
        });
        let stats = shared.cache_stats();
        assert_eq!((stats.misses, stats.entries), (1, 1), "{backend:?}");
        assert_eq!(stats.hits, 4, "{backend:?}: every thread load is a hit");
    }
}

/// Winners are shared, not re-parsed: the parse counter moves once per
/// distinct source and stays flat across every warm path — sequential
/// reload, parallel batch, and archive load alike.
#[test]
fn cache_hits_never_reparse() {
    let engine = Engine::builder().threads(4).build();
    let source = square_program(Level::Untyped);

    engine.load(source).unwrap();
    assert_eq!(engine.metrics_snapshot().cache.parses, 1);

    // Sequential warm load: source-hash hit, no parse.
    engine.load(source).unwrap();
    // Parallel warm batch of duplicates: all answered from cache.
    for result in engine.load_batch(&[source, source, source]) {
        result.unwrap();
    }
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.cache.parses, 1, "warm loads must never re-parse");
    assert_eq!(snap.cache.misses, 1);
    assert_eq!(snap.cache.source_hits, 4);

    // A cold batch parses each distinct source exactly once, even with
    // the same source repeated in the job list.
    let sources = batch_sources();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let mut doubled = refs.clone();
    doubled.extend(refs.iter().copied());
    for (i, result) in engine.load_batch(&doubled).into_iter().enumerate() {
        if i % refs.len() != 5 {
            result.unwrap();
        }
    }
    let snap = engine.metrics_snapshot();
    // 1 original + 8 batch sources parsed once each; the failing source
    // (index 5) parses on each attempt because failures are not cached.
    assert_eq!(snap.cache.parses, 1 + 8 + 1, "each winner parsed exactly once");
}

/// Archive entries load through the same batch path, keyed by name.
#[test]
fn archives_load_in_name_order() {
    let mut archive = Archive::new();
    archive.publish(
        "answer",
        "(invoke (unit (import) (export) (init (* 6 7))))",
    );
    archive.publish("broken", "(+ nope 1)");
    archive.publish("greeting", r#"(invoke (unit (import) (export) (init "hi")))"#);

    let engine = Engine::builder().threads(4).build();
    let loaded = engine.load_archive(&archive);
    let names: Vec<&str> = loaded.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["answer", "broken", "greeting"]);
    assert_eq!(
        loaded[0].1.as_ref().unwrap().run().unwrap().value,
        Observation::Int(42)
    );
    assert!(loaded[1].1.as_ref().err().and_then(Error::as_check).is_some());
    assert_eq!(
        loaded[2].1.as_ref().unwrap().run().unwrap().value,
        Observation::Str("hi".into())
    );
}
