//! Cross-crate semantic tests: behaviours the paper specifies informally,
//! exercised on both evaluators.

use units::{Backend, Engine, Observation, RuntimeError, Strictness};

fn mz() -> Engine {
    Engine::builder().strictness(Strictness::MzScheme).build()
}

fn both(source: &str) -> units::Outcome {
    mz().load(source)
        .unwrap_or_else(|e| panic!("load: {e}"))
        .run_differential()
        .unwrap_or_else(|e| panic!("run: {e}"))
}

fn both_err(source: &str) -> (RuntimeError, RuntimeError) {
    let engine = mz();
    let p = engine.load(source).unwrap();
    let a = p.run_on(Backend::Compiled).unwrap_err();
    let b = p.run_on(Backend::Reducer).unwrap_err();
    (a.as_runtime().unwrap().clone(), b.as_runtime().unwrap().clone())
}

// ---------------------------------------------------------------------
// State and linking
// ---------------------------------------------------------------------

#[test]
fn exported_state_is_shared_with_importers() {
    // An exported definition is a *cell*: assignments inside the
    // defining unit are observed by every linked consumer.
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export counter inc)
                 (define counter 0)
                 (define inc (lambda () (set! counter (+ counter 1)))))
               (with) (provides counter inc))
              ((unit (import counter inc) (export)
                 (init (inc) (inc) (inc) counter))
               (with counter inc) (provides)))))";
    assert_eq!(both(src).value, Observation::Int(3));
}

#[test]
fn hash_tables_alias_across_unit_boundaries() {
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export table)
                 (define table void)
                 (init (set! table (hash-new))))
               (with) (provides table))
              ((unit (import table) (export)
                 (init (hash-set! table \"k\" 7) (hash-get table \"k\")))
               (with table) (provides)))))";
    assert_eq!(both(src).value, Observation::Int(7));
}

#[test]
fn three_units_initialize_in_link_order() {
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export) (init (display \"a\"))) (with) (provides))
              ((unit (import) (export) (init (display \"b\"))) (with) (provides))
              ((unit (import) (export) (init (display \"c\"))) (with) (provides)))))";
    assert_eq!(both(src).output, vec!["a", "b", "c"]);
}

#[test]
fn nested_compounds_three_levels_deep() {
    let src = "(invoke (compound (import) (export)
        (link ((compound (import) (export v2)
                 (link ((compound (import) (export v1)
                          (link ((unit (import) (export v0)
                                   (define v0 (lambda () 1)))
                                 (with) (provides v0))
                                ((unit (import v0) (export v1)
                                   (define v1 (lambda () (+ (v0) 1))))
                                 (with v0) (provides v1))))
                        (with) (provides v1))
                       ((unit (import v1) (export v2)
                          (define v2 (lambda () (+ (v1) 1))))
                        (with v1) (provides v2))))
               (with) (provides v2))
              ((unit (import v2) (export) (init (v2)))
               (with v2) (provides)))))";
    assert_eq!(both(src).value, Observation::Int(3));
}

#[test]
fn compound_import_fans_out_to_several_constituents() {
    let src = "(define app (compound (import base) (export)
        (link ((unit (import base) (export a) (define a (lambda () (+ base 1))))
               (with base) (provides a))
              ((unit (import base a) (export)
                 (init (+ (a) base)))
               (with base a) (provides)))))
       (invoke app (val base 10))";
    assert_eq!(both(src).value, Observation::Int(21));
}

#[test]
fn units_close_over_their_lexical_environment() {
    let src = "(let ((outer 40))
         (invoke (unit (import) (export)
           (define f (lambda () (+ outer 2)))
           (init (f)))))";
    assert_eq!(both(src).value, Observation::Int(42));
}

#[test]
fn a_unit_can_be_linked_into_two_different_programs() {
    // Individual reuse: the same unit value participates in two
    // compounds with different partners.
    let src = "(define shared (unit (import amount) (export bump)
          (define bump (lambda (n) (+ n amount)))))
        (define mk (lambda (k)
          (compound (import) (export)
            (link ((unit (import) (export amount r) (define amount void)
                     (define r void)
                     (init (set! amount k)))
                   (with) (provides amount r))
                  (shared (with amount) (provides bump))
                  ((unit (import bump) (export) (init (bump 100)))
                   (with bump) (provides))))))
        (tuple (invoke (mk 1)) (invoke (mk 2)))";
    assert_eq!(
        both(src).value,
        Observation::Tuple(vec![Observation::Int(101), Observation::Int(102)])
    );
}

#[test]
fn shadowing_between_nested_lets_and_units() {
    let src = "(let ((x 1))
         (let ((x 2))
           (invoke (unit (import) (export)
             (define x 3)
             (init (set! x (+ x 10)) x)))))";
    assert_eq!(both(src).value, Observation::Int(13));
}

// ---------------------------------------------------------------------
// Dynamic errors agree in class across backends
// ---------------------------------------------------------------------

#[test]
fn arity_errors_agree() {
    let (a, b) = both_err("((lambda (x y) x) 1)");
    assert!(matches!(a, RuntimeError::Arity { expected: 2, found: 1 }));
    assert!(matches!(b, RuntimeError::Arity { expected: 2, found: 1 }));
}

#[test]
fn if_requires_boolean_at_runtime() {
    let (a, b) = both_err("(if 7 1 2)");
    assert!(matches!(a, RuntimeError::WrongType { .. }));
    assert!(matches!(b, RuntimeError::WrongType { .. }));
}

#[test]
fn missing_hash_keys_agree() {
    let (a, b) = both_err("(hash-get (hash-new) \"nope\")");
    assert!(matches!(a, RuntimeError::MissingKey { .. }));
    assert!(matches!(b, RuntimeError::MissingKey { .. }));
}

#[test]
fn premature_definition_reads_agree() {
    // MzScheme strictness: reading a definition cell before it is filled.
    let src = "(invoke (unit (import) (export)
        (define a (b))
        (define b (lambda () 1))
        (init a)))";
    let (a, b) = both_err(src);
    assert!(matches!(a, RuntimeError::UndefinedRead { .. }), "{a}");
    assert!(matches!(b, RuntimeError::UndefinedRead { .. }), "{b}");
}

#[test]
fn invoking_a_non_unit_agrees() {
    // Both backends name the Fig. 11 rule that was applied to the
    // non-unit, not just a generic shape mismatch.
    let (a, b) = both_err("(invoke 42)");
    assert!(matches!(a, RuntimeError::NotAUnit { rule: "invoke", .. }), "{a}");
    assert!(matches!(b, RuntimeError::NotAUnit { rule: "invoke", .. }), "{b}");
}

#[test]
fn sealing_a_non_unit_agrees() {
    let (a, b) = both_err("(seal 42 (sig (import) (export) (init void)))");
    assert!(matches!(a, RuntimeError::NotAUnit { rule: "seal", .. }), "{a}");
    assert!(matches!(b, RuntimeError::NotAUnit { rule: "seal", .. }), "{b}");
}

#[test]
fn user_errors_carry_their_message() {
    let (a, b) = both_err("((inst fail void) \"the-message\")");
    assert!(matches!(&a, RuntimeError::User { message } if message == "the-message"));
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// Valuability strictness (§4.1.1)
// ---------------------------------------------------------------------

#[test]
fn paper_strictness_rejects_what_mzscheme_permits() {
    // `(define a (b))` calls a definition during the definition phase.
    let src = "(invoke (unit (import) (export)
        (define b (lambda () 1))
        (define a (b))
        (init a)))";
    // Paper mode: statically rejected (application is not valuable).
    let err = Engine::new().load(src).unwrap_err();
    assert!(err.as_check().is_some());
    // MzScheme mode: runs, because `b` is already determined.
    let outcome = mz().load(src).unwrap().run_differential().unwrap();
    assert_eq!(outcome.value, Observation::Int(1));
}

#[test]
fn paper_strictness_accepts_references_to_earlier_definitions() {
    // The refinement documented in DESIGN.md: earlier definitions are
    // determined, so a bare reference to one is valuable.
    let src = "(invoke (unit (import) (export)
        (define first (lambda () 1))
        (define synonym first)
        (init (synonym))))";
    let outcome = Engine::new().load(src).unwrap().run_differential().unwrap();
    assert_eq!(outcome.value, Observation::Int(1));
    // Mutual references still need λ-protection.
    let bad = "(invoke (unit (import) (export)
        (define synonym first)
        (define first (lambda () 1))
        (init (synonym))))";
    let err = Engine::new().load(bad).unwrap_err();
    assert!(err.as_check().is_some());
}

// ---------------------------------------------------------------------
// Invoke details
// ---------------------------------------------------------------------

#[test]
fn invoke_ignores_exports_and_extra_links() {
    let src = "(invoke (unit (import) (export x) (define x 5) (init 1))
                       (val unused 99))";
    assert_eq!(both(src).value, Observation::Int(1));
}

#[test]
fn invoke_result_is_last_init_of_the_link_order() {
    let src = "(invoke (compound (import) (export)
        (link ((unit (import) (export) (init 10)) (with) (provides))
              ((unit (import) (export) (init 20)) (with) (provides)))))";
    assert_eq!(both(src).value, Observation::Int(20));
}

#[test]
fn invocation_is_repeatable_with_fresh_state() {
    let src = "(define u (unit (import) (export)
          (define log void)
          (init (set! log (hash-new))
                (hash-set! log \"n\" 1)
                (hash-count log))))
        (tuple (invoke u) (invoke u) (invoke u))";
    assert_eq!(
        both(src).value,
        Observation::Tuple(vec![
            Observation::Int(1),
            Observation::Int(1),
            Observation::Int(1)
        ])
    );
}

// ---------------------------------------------------------------------
// The Fig. 11 reduction story, step by step
// ---------------------------------------------------------------------

#[test]
fn golden_reduction_sequence_for_a_linked_invocation() {
    use units::{parse_expr, Reducer};
    use units_kernel::Expr;

    // invoke (compound … link u1 u2) — the paper's two rules fire in
    // order: first the compound merges (Fig. 8), then invoke becomes a
    // letrec with imports substituted, then the letrec allocates cells.
    let program = parse_expr(
        "(invoke (compound (import) (export)
           (link ((unit (import) (export f) (define f (lambda (x) x)))
                  (with) (provides f))
                 ((unit (import f) (export) (init (f 42)))
                  (with f) (provides)))))",
    )
    .unwrap();
    let mut reducer = Reducer::new();
    let states = reducer.trace(&program).unwrap();

    // State 1: the original invoke-of-compound.
    assert!(matches!(&states[0], Expr::Invoke(_)));
    // State 2: the compound has merged into an atomic unit value inside
    // the invoke (one step, exactly as Fig. 8 draws it).
    match &states[1] {
        Expr::Invoke(inv) => assert!(matches!(inv.target, Expr::Unit(_))),
        other => panic!("state 2 should still be an invoke, got {other:?}"),
    }
    // State 3: the invoke rule produced a letrec (Fig. 11's
    // [v̄/x̄](letrec … in e_b) with no imports to substitute here).
    assert!(matches!(&states[2], Expr::Letrec(_)), "{:?}", states[2]);
    // State 4: the letrec allocated cells and became a sequence of cell
    // initializations followed by the body.
    assert!(matches!(&states[3], Expr::Seq(_)), "{:?}", states[3]);
    // Final state: the answer.
    assert_eq!(states.last().unwrap(), &Expr::int(42));
    // The whole computation is short and deterministic.
    assert!(states.len() < 20, "unexpectedly long trace: {}", states.len());
}

#[test]
fn reduction_and_evaluation_step_counts_scale_together() {
    // Sanity check on machine-step accounting: both backends' step
    // counts grow linearly in the workload, with the reducer's constant
    // factor larger (the EXPERIMENTS.md B.2 claim, at test scale).
    use units::{Backend, Limits};
    let steps = |src: &str, backend: Backend| -> u64 {
        let mut lo = 1u64;
        let mut hi = 1_000_000;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let ok = Engine::builder()
                .strictness(Strictness::MzScheme)
                .limits(Limits::none().fuel(mid))
                .build()
                .load(src)
                .unwrap()
                .run_on(backend)
                .is_ok();
            if ok {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    };
    let program = |n: i64| {
        format!(
            "(invoke (unit (import) (export)
               (define count (lambda (n) (if (= n 0) 0 (count (- n 1)))))
               (init (count {n}))))"
        )
    };
    for backend in [Backend::Compiled, Backend::Reducer] {
        let s10 = steps(&program(10), backend);
        let s100 = steps(&program(100), backend);
        let ratio = s100 as f64 / s10 as f64;
        assert!(
            (5.0..20.0).contains(&ratio),
            "{backend:?}: steps {s10} → {s100} (ratio {ratio})"
        );
    }
}
