//! The per-figure experiment index (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Every figure of the paper has a test here that regenerates its
//! content: the §3 examples run end to end (on both backends where
//! observable), the Fig. 4 rejection fires, the formal figures (9–19) are
//! exercised through their crates, and the §5 extensions (Figs. 20/21)
//! run as full programs at the UNITe level.

use units::{
    alpha_eq, parse_expr, stdlib, Backend, CheckOptions, Depend, Engine, Level,
    Observation, Reducer, Strictness, Ty,
};

fn at(level: Level) -> Engine {
    Engine::builder().level(level).build()
}

/// The checked type of `source` at `level` (None for untyped levels).
fn ty_of(source: &str, level: Level) -> Result<Option<Ty>, units::Error> {
    Ok(at(level).load(source)?.ty().cloned())
}

fn run_both(source: &str) -> units::Outcome {
    Engine::new()
        .load(source)
        .unwrap_or_else(|e| panic!("load: {e}"))
        .run_differential()
        .unwrap_or_else(|e| panic!("run: {e}"))
}

// ---------------------------------------------------------------------
// Figures 1–3: the phone book (untyped runtime behaviour + typed sigs)
// ---------------------------------------------------------------------

#[test]
fn fig1_database_unit() {
    // The atomic Database unit links against a trivial error handler and
    // services insert/lookup requests; its initialization expression runs
    // at invocation ("strTable := makeStringHashTable()").
    let source = format!(
        r#"(invoke (compound (import) (export)
           (link ({db} (with error) (provides new insert delete lookup has))
                 ((unit (import new insert delete lookup has) (export error)
                    (define error (lambda (m) (display m) void))
                    (init (let ((d (new)))
                      (insert d "pat" 5551234)
                      (delete d "nobody")
                      (tuple (lookup d "pat") (has d "ghost")))))
                  (with new insert delete lookup has) (provides error)))))"#,
        db = stdlib::database_unit()
    );
    let outcome = run_both(&source);
    assert_eq!(
        outcome.value,
        Observation::Tuple(vec![Observation::Int(5551234), Observation::Bool(false)])
    );
    assert_eq!(outcome.output, vec!["database ready"]);
}

/// Fig. 1, statically typed (UNITc): the declared signature is derived,
/// with `info` imported and `db` exported.
#[test]
fn fig1_database_unit_typed() {
    let source = r#"(unit (import (type info) (error (-> str void)))
          (export (type db)
                  (new (-> db))
                  (insert (-> db str info void))
                  (delete (-> db str void)))
      (datatype db (mkdb undb (hash info)) db?)
      (define new (-> db) (lambda () (mkdb ((inst hash-new info)))))
      (define insert (-> db str info void)
        (lambda ((d db) (key str) (v info))
          (if ((inst hash-has? info) (undb d) key)
              (error (string-append "duplicate key: " key))
              ((inst hash-set! info) (undb d) key v))))
      (define delete (-> db str void)
        (lambda ((d db) (key str)) ((inst hash-remove! info) (undb d) key)))
      (init (display "database ready")))"#;
    let ty = ty_of(source, Level::Constructed).unwrap().unwrap();
    let sig = ty.as_sig().expect("a unit has a signature type");
    assert!(sig.imports.ty_port(&"info".into()).is_some());
    assert!(sig.exports.ty_port(&"db".into()).is_some());
    assert_eq!(
        sig.exports.val_port(&"insert".into()).unwrap().ty,
        Some(Ty::arrow(vec![Ty::var("db"), Ty::Str, Ty::var("info")], Ty::Void))
    );
    assert_eq!(sig.init_ty, Ty::Void);
}

#[test]
fn fig2_phonebook_hides_delete_and_reexports() {
    // Linking against the re-exported names works; `delete` is gone.
    let ok = format!(
        r#"(invoke (compound (import) (export)
           (link ({pb} (with error)
                       (provides new insert lookup has numInfo infoToString))
                 ((unit (import new insert lookup numInfo infoToString) (export error)
                    (define error (lambda (m) void))
                    (init (let ((d (new)))
                      (insert d "chris" (numInfo 5559876))
                      (infoToString (lookup d "chris")))))
                  (with new insert lookup numInfo infoToString)
                  (provides error)))))"#,
        pb = stdlib::phonebook_compound()
    );
    assert_eq!(run_both(&ok).value, Observation::Str("5559876".into()));

    let hidden = format!(
        "(invoke (compound (import) (export)
           (link ({pb} (with error) (provides delete))
                 ((unit (import delete) (export error)
                    (define error (lambda (m) void)))
                  (with delete) (provides error)))))",
        pb = stdlib::phonebook_compound()
    );
    let err = Engine::new().invoke(&hidden).unwrap_err();
    assert!(
        matches!(err.as_runtime(), Some(units::RuntimeError::MissingProvide { name }) if name.as_str() == "delete")
    );
}

#[test]
fn fig3_ipb_cyclic_link_and_invoke() {
    let outcome = run_both(&stdlib::ipb_program());
    assert_eq!(outcome.value, Observation::Bool(true));
    assert_eq!(
        outcome.output,
        vec!["database ready", "gui ready", "pat -> 5551234", "chris -> 5559876"]
    );
}

/// Fig. 3, statically typed: the `db` type flows from PhoneBook to both
/// Gui and Main through the link graph; `error` flows backwards from Gui
/// into PhoneBook — the mutually recursive linking the paper emphasizes.
#[test]
fn fig3_ipb_typed() {
    let source = typed_ipb_with_gui_db(false);
    let ty = ty_of(&source, Level::Constructed).unwrap().unwrap();
    assert_eq!(ty, Ty::Bool);
}

/// Builds the typed IPB program; with `bad` the Gui unit exports its own
/// `db2` type and Main's `openBook` expectation mismatches — Fig. 4.
fn typed_ipb_with_gui_db(bad: bool) -> String {
    let database = r#"(unit (import (type info) (error (-> str void)))
          (export (type db) (new (-> db)) (insert (-> db str info void)))
      (datatype db (mkdb undb (hash info)) db?)
      (define new (-> db) (lambda () (mkdb ((inst hash-new info)))))
      (define insert (-> db str info void)
        (lambda ((d db) (key str) (v info))
          ((inst hash-set! info) (undb d) key v))))"#;
    let number_info = r#"(unit (import) (export (type info) (numInfo (-> int info)))
      (datatype info (mkinfo uninfo int) info?)
      (define numInfo (-> int info) (lambda ((n int)) (mkinfo n))))"#;
    let (gui, gui_provides, main_with) = if bad {
        (
            // Gui over its own database type db2: openBook's type does not
            // match Main's expectation over PhoneBook's db.
            r#"(unit (import) (export (type db2) (openBook (-> db2 bool)) (error (-> str void)))
          (datatype db2 (mk2 un2 int) db2?)
          (define error (-> str void) (lambda ((m str)) void))
          (define openBook (-> db2 bool) (lambda ((d db2)) true)))"#,
            "(provides (type db2) (openBook (-> db2 bool)) (error (-> str void)))",
            "(with (type db) (new (-> db)) (openBook (-> db bool)))",
        )
    } else {
        (
            r#"(unit (import (type db) (insert (-> db str info void)) (type info) (numInfo (-> int info)))
              (export (openBook (-> db bool)) (error (-> str void)))
          (define error (-> str void) (lambda ((m str)) void))
          (define openBook (-> db bool)
            (lambda ((d db)) (insert d "pat" (numInfo 5551234)) true)))"#,
            "(provides (openBook (-> db bool)) (error (-> str void)))",
            "(with (type db) (new (-> db)) (openBook (-> db bool)))",
        )
    };
    let main = r#"(unit (import (type db) (new (-> db)) (openBook (-> db bool))) (export)
      (init (openBook (new))))"#;
    format!(
        "(invoke (compound (import) (export)
           (link ((compound (import (error (-> str void)))
                            (export (type db) (type info) (new (-> db))
                                    (insert (-> db str info void)) (numInfo (-> int info)))
                    (link ({database}
                           (with (type info) (error (-> str void)))
                           (provides (type db) (new (-> db)) (insert (-> db str info void))))
                          ({number_info}
                           (with)
                           (provides (type info) (numInfo (-> int info))))))
                  (with (error (-> str void)))
                  (provides (type db) (type info) (new (-> db))
                            (insert (-> db str info void)) (numInfo (-> int info))))
                 ({gui}
                  (with (type db) (insert (-> db str info void)) (type info) (numInfo (-> int info)))
                  {gui_provides})
                 ({main}
                  {main_with}
                  (provides)))))"
    )
}

#[test]
fn fig4_bad_rejected_by_type_checker() {
    let source = typed_ipb_with_gui_db(true);
    let err = ty_of(&source, Level::Constructed).unwrap_err();
    let errs = err.as_check().expect("a check error");
    // "The type checker correctly rejects Bad due to this mismatch."
    assert!(
        errs.iter().any(|e| matches!(
            e,
            units::CheckError::Mismatch { .. }
                | units::CheckError::NotSubsignature { .. }
                | units::CheckError::UnsatisfiedLink { .. }
        )),
        "got {errs:?}"
    );
}

// ---------------------------------------------------------------------
// Figures 5–7: first-class units and dynamic linking
// ---------------------------------------------------------------------

#[test]
fn fig5_make_ipb_abstraction() {
    // MakeIPB is an ordinary core function over a unit value; applying it
    // to two different GUIs yields two different programs.
    let expert = run_both(&stdlib::make_ipb_program(true));
    assert!(expert.output.iter().any(|l| l.contains("expert gui ready")));
    assert_eq!(expert.value, Observation::Bool(true));
}

#[test]
fn fig6_starter_selects_gui() {
    let novice = run_both(&stdlib::make_ipb_program(false));
    assert!(novice.output.iter().any(|l| l.contains("novice gui ready")));
    assert!(!novice.output.iter().any(|l| l.contains("expert")));
}

#[test]
fn fig7_dynamic_plugin_loader() {
    let outcome = run_both(&stdlib::plugin_program(&stdlib::sample_loader_plugin()));
    assert!(outcome.output.iter().any(|l| l == "loader ran"));
    assert!(outcome.output.iter().any(|l| l.contains("carol -> 5550000")));
}

#[test]
fn fig7_plugin_archive_checks_signatures() {
    use units::Archive;
    let mut archive = Archive::new();
    archive.publish(
        "good",
        "(unit (import (type db) (insert (-> db str void)))
               (export)
           (init (lambda ((pb db)) (insert pb \"k\"))))",
    );
    archive.publish(
        "bad-init",
        "(unit (import (type db) (insert (-> db str void)))
               (export)
           (init true))",
    );
    let expected = units::parse_signature(
        "(sig (import (type db) (insert (-> db str void))) (export) (init (-> db void)))",
    )
    .unwrap();
    let opts = CheckOptions::typed(Level::Constructed);
    assert!(archive.load("good", &expected, opts).is_ok());
    assert!(archive.load("bad-init", &expected, opts).is_err());
}

// ---------------------------------------------------------------------
// Figure 8: the graphical reduction (compound merging)
// ---------------------------------------------------------------------

#[test]
fn fig8_compound_merge_equivalence() {
    // One reduction step turns the compound into an atomic unit that is
    // α-equivalent to the hand-merged one.
    let compound = parse_expr(
        r#"(compound (import error) (export new numInfo)
             (link ((unit (import numInfo error) (export new)
                      (define new (lambda () (numInfo 0)))
                      (init (display "db")))
                    (with numInfo error) (provides new))
                   ((unit (import) (export numInfo)
                      (define numInfo (lambda (n) n)))
                    (with) (provides numInfo))))"#,
    )
    .unwrap();
    let mut reducer = Reducer::new();
    let merged = match reducer.step(&compound).unwrap() {
        units::Step::Reduced(e) => e,
        units::Step::Value => panic!("compound must step"),
    };
    let expected = parse_expr(
        r#"(unit (import error) (export new numInfo)
             (define new (lambda () (numInfo 0)))
             (define numInfo (lambda (n) n))
             (init (begin (display "db") void)))"#,
    )
    .unwrap();
    assert!(alpha_eq(&merged, &expected), "merged:\n{merged:#?}");
    // The merged unit is a value — exactly one step, as in Fig. 8.
    assert!(merged.is_value());
}

// ---------------------------------------------------------------------
// Figure 12: even/odd and the cells compilation
// ---------------------------------------------------------------------

#[test]
fn fig12_even_odd_compilation() {
    let source = "(invoke (compound (import) (export)
        (link ((unit (import odd) (export even)
                 (define even (lambda (n) (if (= n 0) true (odd (- n 1))))))
               (with odd) (provides even))
              ((unit (import even) (export odd)
                 (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
                 (init (tuple (odd 9) (even 9))))
               (with even) (provides odd)))))";
    let outcome = run_both(source);
    assert_eq!(
        outcome.value,
        Observation::Tuple(vec![Observation::Bool(true), Observation::Bool(false)])
    );
}

#[test]
fn fig12_deep_mutual_recursion_runs_in_constant_stack() {
    // The cells backend trampolines tail calls; 200k alternations between
    // the two units must not overflow the Rust stack.
    let source = "(invoke (compound (import) (export)
        (link ((unit (import odd) (export even)
                 (define even (lambda (n) (if (= n 0) true (odd (- n 1))))))
               (with odd) (provides even))
              ((unit (import even) (export odd)
                 (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
                 (init (odd 200001)))
               (with even) (provides odd)))))";
    let outcome = Engine::new().load(source).unwrap().run_on(Backend::Compiled).unwrap();
    assert_eq!(outcome.value, Observation::Bool(true));
}

// ---------------------------------------------------------------------
// Figures 20/21 and §5.3: translucency, hiding, sharing
// ---------------------------------------------------------------------

fn environment_unit() -> &'static str {
    r#"(unit (import (type name) (type value)
                 (name=? (-> name name bool)) (default value))
         (export (extend (-> (-> name value) name value (-> name value)))
                 (empty (-> name value)))
     (alias env (-> name value))
     (define empty env (lambda ((n name)) default))
     (define extend (-> env name value env)
       (lambda ((e env) (n name) (v value))
         (lambda ((m name)) (if (name=? m n) v (e m)))))
     (init extend))"#
}

#[test]
fn fig20_translucent_env() {
    // The derived signature expands the abbreviation away; sealing to the
    // translucent signature (extend typed over `env`, with a `where`
    // clause) is accepted — §5.1's equivalence.
    let sealed = format!(
        "(seal {env_unit}
           (sig (import (type name) (type value)
                        (name=? (-> name name bool)) (default value))
                (export (extend (-> env name value env))
                        (empty env))
                (init (-> env name value env))
                (where (env (-> name value)))))",
        env_unit = environment_unit()
    );
    let ty = ty_of(&sealed, Level::Equations).unwrap().unwrap();
    let sig = ty.as_sig().unwrap();
    assert_eq!(sig.equations.len(), 1);
    assert_eq!(sig.equations[0].name.as_str(), "env");
}

#[test]
fn fig21_opaque_env_hiding() {
    // Sealing the translucent signature further, to an *opaque* exported
    // env, requires declaring the dependencies the hidden body induces —
    // and then succeeds.
    let translucent_sig = "(sig (import (type name) (type value)
                        (name=? (-> name name bool)) (default value))
                (export (extend (-> env name value env))
                        (empty env))
                (init (-> env name value env))
                (where (env (-> name value))))";
    // The opaque signatures' initialization type cannot mention the
    // now-opaque `env` (the Fig. 15 init-type condition), so it states
    // the expanded arrow.
    let opaque_sig_missing = "(sig (import (type name) (type value)
                        (name=? (-> name name bool)) (default value))
                (export (type env)
                        (extend (-> env name value env))
                        (empty env))
                (init (-> (-> name value) name value (-> name value))))";
    let opaque_sig = "(sig (import (type name) (type value)
                        (name=? (-> name name bool)) (default value))
                (export (type env)
                        (extend (-> env name value env))
                        (empty env))
                (init (-> (-> name value) name value (-> name value)))
                (depends (env name) (env value)))";
    let base = environment_unit();
    let chain =
        |outer: &str| format!("(seal (seal {base} {translucent_sig}) {outer})");

    // Without the induced dependencies: rejected.
    let err = ty_of(&chain(opaque_sig_missing), Level::Equations).unwrap_err();
    assert!(err.as_check().is_some(), "{err}");

    // With them: accepted, and env is now opaque with declared depends.
    let ty = ty_of(&chain(opaque_sig), Level::Equations).unwrap().unwrap();
    let sig = ty.as_sig().unwrap();
    assert!(sig.exports.ty_port(&"env".into()).is_some());
    assert!(sig.depend_set().contains(&Depend::new("env", "name")));
    assert!(sig.equations.is_empty());
}

#[test]
fn fig20_21_sealed_environment_still_runs() {
    // The whole chain invokes with concrete name/value types and behaves
    // like an association list.
    let base = environment_unit();
    let source = format!(
        r#"(let ((extend-fn (invoke {base}
                 (type name str) (type value int)
                 (val name=? (lambda ((a str) (b str)) (string=? a b)))
                 (val default 0))))
           (let ((e2 (extend-fn (lambda ((n str)) 0) "answer" 42)))
             (tuple (e2 "answer") (e2 "missing"))))"#
    );
    let outcome = at(Level::Equations).invoke(&source).unwrap();
    assert_eq!(
        outcome.value,
        Observation::Tuple(vec![Observation::Int(42), Observation::Int(0)])
    );
}

#[test]
fn sec53_sharing_limitation_two_symbol_instances() {
    // §5.3: "symbol is instantiated twice and there is no way to unify
    // the two sym types" — runtime pin of the limitation.
    let source = "(define symbol (unit (import) (export mk unmk)
          (datatype sym (mk unmk str) sym?)
          (init (tuple mk unmk))))
        (let ((lexer-sym (invoke symbol)) (parser-sym (invoke symbol)))
          ((proj 1 parser-sym) ((proj 0 lexer-sym) \"id\")))";
    let engine = Engine::builder().strictness(Strictness::MzScheme).build();
    let p = engine.load(source).unwrap();
    for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
        let err = p.run_on(backend).unwrap_err();
        assert!(
            matches!(err.as_runtime(), Some(units::RuntimeError::ForeignInstance { .. })),
            "{backend:?}: {err}"
        );
    }
    // Linking lexer, parser, and symbol together at once — the paper's
    // solution — shares one instance and works.
    let shared = "(invoke (compound (import) (export)
        (link ((unit (import) (export mk unmk) (datatype sym (mk unmk str) sym?))
               (with) (provides mk unmk))
              ((unit (import mk) (export lex)
                 (define lex (lambda (s) (mk s))))
               (with mk) (provides lex))
              ((unit (import unmk lex) (export)
                 (init (unmk (lex \"id\"))))
               (with unmk lex) (provides)))))";
    assert_eq!(run_both(shared).value, Observation::Str("id".into()));
}

// ---------------------------------------------------------------------
// §4.1.6: code sharing across instances
// ---------------------------------------------------------------------

#[test]
fn compiled_code_shared_across_instances() {
    use std::sync::Arc;
    use units::{evaluate_program, Machine, Value};
    let unit_expr = parse_expr(
        "(unit (import) (export) (define f (lambda (n) (* n n))) (init (f 4)))",
    )
    .unwrap();
    let mut machine = Machine::new();
    let instances: Vec<Value> =
        (0..10).map(|_| evaluate_program(&unit_expr, &mut machine).unwrap()).collect();
    let sources: Vec<_> = instances
        .iter()
        .map(|v| match v {
            Value::Unit(u) => u.atomic_source().unwrap().clone(),
            other => panic!("expected unit, got {other}"),
        })
        .collect();
    for pair in sources.windows(2) {
        assert!(Arc::ptr_eq(&pair[0], &pair[1]), "code must be shared");
    }
}

// ---------------------------------------------------------------------
// Fig. 5, statically: MakeIPB's argument carries a *signature* type
// ---------------------------------------------------------------------

#[test]
fn fig5_signature_typed_unit_argument() {
    // "The type associated with MakeIPB's argument is a unit type, a
    // signature, that contains all of the information needed to verify
    // its linkage in MakeIPB." — §3.3.
    let gui_sig = "(sig (import (ping (-> int int)))
                        (export (openBook (-> int bool)))
                        (init void))";
    let src = format!(
        "(let ((make-app (lambda ((a-gui {gui_sig}))
             (compound (import) (export)
               (link ((unit (import) (export (ping (-> int int)))
                        (define ping (-> int int) (lambda ((n int)) (+ n 1))))
                      (with) (provides (ping (-> int int))))
                     (a-gui
                      (with (ping (-> int int)))
                      (provides (openBook (-> int bool))))
                     ((unit (import (openBook (-> int bool))) (export)
                        (init (openBook 3)))
                      (with (openBook (-> int bool)))
                      (provides)))))))
           (invoke (make-app
             (unit (import (ping (-> int int)))
                   (export (openBook (-> int bool)))
               (define openBook (-> int bool)
                 (lambda ((n int)) (= (ping n) 4)))))))"
    );
    let outcome = at(Level::Constructed).invoke(&src).unwrap();
    assert_eq!(outcome.value, Observation::Bool(true));

    // Passing a unit that does not satisfy the signature is a type error
    // at the call site — exactly the check the signature buys.
    let bad = format!(
        "(let ((make-app (lambda ((a-gui {gui_sig})) 0)))
           (make-app (unit (import) (export))))"
    );
    let err = ty_of(&bad, Level::Constructed).unwrap_err();
    assert!(err.as_check().is_some());
}

#[test]
fn separate_compilation_units_check_in_isolation() {
    // Assembly-line programming: each unit checks against nothing but
    // its own interface — no partner unit needs to exist yet.
    let database = "(unit (import (type info) (error (-> str void)))
          (export (type db) (new (-> db)))
      (datatype db (mkdb undb (hash info)) db?)
      (define new (-> db) (lambda () (mkdb ((inst hash-new info))))))";
    let gui = "(unit (import (type db) (new (-> db)))
          (export (openBook (-> db bool)))
      (define openBook (-> db bool) (lambda ((d db)) true)))";
    // Both check independently…
    let db_ty = ty_of(database, Level::Constructed).unwrap();
    let gui_ty = ty_of(gui, Level::Constructed).unwrap();
    assert!(db_ty.unwrap().as_sig().is_some());
    assert!(gui_ty.unwrap().as_sig().is_some());
    // …and the assembly step is a separate program, written later —
    // the full assembly is exercised by fig3_ipb_typed.
}
