#!/bin/sh
# Tier-1 verification, fully offline: the workspace has no registry
# dependencies, so everything below must succeed with no network access.
#
# Every gate runs twice — with default features (all tracing hooks are
# no-ops) and with `--features trace` (the live observability layer) —
# so neither configuration can rot.
set -eux

cd "$(dirname "$0")"

# Default features: the production configuration.
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# With tracing compiled in.
cargo build --release --features trace
cargo test -q --features trace
cargo clippy --workspace --all-targets --features trace -- -D warnings

# Engine determinism: with the worker pool pinned to one thread, batch
# loading must degenerate to sequential in-thread loads and the whole
# suite must still pass (tests/engine.rs compares parallel-vs-sequential
# batches and cold-vs-warm trace streams).
UNITS_ENGINE_THREADS=1 cargo test -q --features trace --test engine

# The bench tables must emit a machine-readable summary. The binary
# self-validates the document with units_trace::json before writing;
# cross-check with a second parser when one is available. The summary
# must include the engine cache series.
cargo run --release -p bench --bin tables --features trace -- --quick --json >/dev/null
test -s BENCH_trace.json
grep -q repeat_invoke BENCH_trace.json
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json; json.load(open('BENCH_trace.json'))"
fi
rm -f BENCH_trace.json
