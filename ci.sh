#!/bin/sh
# Tier-1 verification, fully offline: the workspace has no registry
# dependencies, so everything below must succeed with no network access.
#
# Every gate runs twice — with default features (all tracing hooks are
# no-ops) and with `--features trace` (the live observability layer) —
# so neither configuration can rot.
set -eux

cd "$(dirname "$0")"

# Default features: the production configuration.
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Unit service smoke test: boot the release unitsd on a throwaway
# socket and drive the wire protocol end to end from a second-parser
# client (python speaks the 4-byte-length-prefixed JSON frames from
# scratch, so the rust Client cannot mask a framing bug): two tenants,
# load, invoke, hot swap, per-request budgets, admission denial,
# stats, shutdown. The richer concurrency/chaos coverage lives in
# crates/units-serve/tests and runs in the cargo test sweeps.
if command -v python3 >/dev/null 2>&1; then
    ./target/release/unitsd --socket .ci-unitsd.sock --level untyped --fuel 1000000 &
    UNITSD_PID=$!
    python3 - <<'SMOKE'
import json, os, socket, struct, time

def connect():
    deadline = time.time() + 30
    while True:
        try:
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.connect('.ci-unitsd.sock')
            return s
        except OSError:
            assert time.time() < deadline, 'unitsd never came up'
            time.sleep(0.05)

def call(s, obj):
    body = json.dumps(obj).encode()
    s.sendall(struct.pack('>I', len(body)) + body)
    data = b''
    while len(data) < 4:
        chunk = s.recv(4 - len(data))
        assert chunk, 'server hung up'
        data += chunk
    (n,) = struct.unpack('>I', data)
    data = b''
    while len(data) < n:
        chunk = s.recv(n - len(data))
        assert chunk, 'server hung up mid-frame'
        data += chunk
    return json.loads(data)

square = '(unit (import) (export) (init (lambda (n) (* n n))))'
cube = '(unit (import) (export) (init (lambda (n) (* n (* n n)))))'

a, b = connect(), connect()
assert call(a, {'op': 'hello', 'tenant': 'a'})['ok']
assert call(b, {'op': 'hello', 'tenant': 'b'})['ok']

# Private namespaces: both tenants own the name `f`.
assert call(a, {'op': 'load', 'name': 'f', 'source': square})['version'] == 1
assert call(b, {'op': 'load', 'name': 'f', 'source': cube})['version'] == 1
assert call(a, {'op': 'invoke', 'name': 'f', 'arg': 6})['value'] == '36'
assert call(b, {'op': 'invoke', 'name': 'f', 'arg': 6})['value'] == '216'

# Hot swap on tenant a only.
swap = call(a, {'op': 'swap', 'name': 'f', 'source': cube})
assert swap['ok'] and swap['version'] == 2, swap
assert call(a, {'op': 'invoke', 'name': 'f', 'arg': 2})['value'] == '8'

# Admission control: over-asking the daemon cap is a typed refusal.
denied = call(a, {'op': 'invoke', 'name': 'f', 'arg': 2, 'fuel': 10000000})
assert denied == dict(denied, ok=False, kind='admission-denied',
                      requested=10000000, cap=1000000), denied
# Under the cap the same request is served.
ok = call(a, {'op': 'invoke', 'name': 'f', 'arg': 2, 'fuel': 1000})
assert ok['ok'] and ok['value'] == '8', ok

stats = call(b, {'op': 'stats'})['tenants']
assert stats['a']['rejected'] == 1 and stats['b']['ok'] == 1, stats
assert call(b, {'op': 'shutdown'})['stopping']
print('unitsd smoke: 2 tenants, swap, admission, stats, shutdown OK')
SMOKE
    wait "$UNITSD_PID"
    test ! -e .ci-unitsd.sock
fi

# Persistent-store gates. (1) Cross-process warm start: a second daemon
# process over the same --cache-dir must answer the same `run` from
# disk — the engine reports zero parses. (2) Corrupt-cache smoke: flip
# one byte of the on-disk entry; the next process must quarantine it,
# recompile, and still answer correctly.
if command -v python3 >/dev/null 2>&1; then
    cat > .ci-store-gate.py <<'GATECLIENT'
import glob, json, socket, struct, sys, time

mode = sys.argv[1]

if mode == 'flip':
    [path] = glob.glob('.ci-store-cache/*.unit')
    data = bytearray(open(path, 'rb').read())
    data[len(data) // 2] ^= 0x01
    open(path, 'wb').write(data)
    print('store gate: flipped one byte of', path)
    sys.exit(0)

def connect():
    deadline = time.time() + 30
    while True:
        try:
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.connect('.ci-unitsd.sock')
            return s
        except OSError:
            assert time.time() < deadline, 'unitsd never came up'
            time.sleep(0.05)

def call(s, obj):
    body = json.dumps(obj).encode()
    s.sendall(struct.pack('>I', len(body)) + body)
    data = b''
    while len(data) < 4:
        chunk = s.recv(4 - len(data))
        assert chunk, 'server hung up'
        data += chunk
    (n,) = struct.unpack('>I', data)
    data = b''
    while len(data) < n:
        chunk = s.recv(n - len(data))
        assert chunk, 'server hung up mid-frame'
        data += chunk
    return json.loads(data)

program = '(invoke (unit (import) (export) (init (* 21 2))))'
s = connect()
assert call(s, {'op': 'hello', 'tenant': 'ci'})['ok']
reply = call(s, {'op': 'run', 'source': program})
assert reply['ok'] and reply['value'] == '42', reply
if mode != 'cold':
    engine = call(s, {'op': 'stats'})['engine']
    if mode == 'warm':
        assert engine['cache']['parses'] == 0, engine
        assert engine['store']['hits'] == 1, engine
        print('store gate: cross-process warm start, zero re-parses')
    else:
        assert engine['store']['corrupt'] >= 1, engine
        assert engine['cache']['parses'] == 1, engine
        print('store gate: corrupt entry quarantined, recompiled correctly')
assert call(s, {'op': 'shutdown'})['stopping']
GATECLIENT
    rm -rf .ci-store-cache
    ./target/release/unitsd --socket .ci-unitsd.sock --level untyped --cache-dir .ci-store-cache &
    UNITSD_PID=$!
    python3 .ci-store-gate.py cold
    wait "$UNITSD_PID"
    ./target/release/unitsd --socket .ci-unitsd.sock --level untyped --cache-dir .ci-store-cache &
    UNITSD_PID=$!
    python3 .ci-store-gate.py warm
    wait "$UNITSD_PID"
    python3 .ci-store-gate.py flip
    ./target/release/unitsd --socket .ci-unitsd.sock --level untyped --cache-dir .ci-store-cache &
    UNITSD_PID=$!
    python3 .ci-store-gate.py corrupt
    wait "$UNITSD_PID"
    test ! -e .ci-unitsd.sock
    # The bad entry was moved aside, not deleted: the quarantine holds
    # evidence and the recompile rewrote a fresh entry next to it.
    test -n "$(ls .ci-store-cache/corrupt)"
    test -n "$(ls .ci-store-cache/*.unit)"
    rm -rf .ci-store-cache .ci-store-gate.py
fi

# With tracing compiled in.
cargo build --release --features trace
cargo test -q --features trace
cargo clippy --workspace --all-targets --features trace -- -D warnings

# Engine determinism: with the worker pool pinned to one thread, batch
# loading must degenerate to sequential in-thread loads and the whole
# suite must still pass (tests/engine.rs compares parallel-vs-sequential
# batches and cold-vs-warm trace streams).
UNITS_ENGINE_THREADS=1 cargo test -q --features trace --test engine

# And pinned wide: with an 8-thread pool, batch workers run the whole
# parse→check→resolve→lower pipeline per job and share artifacts
# through the Send+Sync cache — the full suite must be thread-count
# invariant, and the chaos harness must keep its per-job fault
# schedules deterministic when jobs land on many workers.
UNITS_ENGINE_THREADS=8 cargo test -q --features trace
UNITS_ENGINE_THREADS=8 cargo test -q --features faults --test faults

# The bench tables must emit a machine-readable summary. The binary
# self-validates the document with units_trace::json before writing;
# cross-check with a second parser when one is available. The summary
# must include the engine cache series, the engine's always-on metrics
# snapshot with invoke-latency percentiles, and (with --chrome-trace) a
# valid Chrome/Perfetto span export.
cargo run --release -p bench --bin tables --features trace -- --quick --json --chrome-trace >/dev/null
test -s BENCH_trace.json
grep -q repeat_invoke BENCH_trace.json
# The bytecode backend's B.2c series must be in the summary.
grep -q invoke_bytecode BENCH_trace.json
# The B.9 parallel-scaling series (threads vs. batch load / invoke).
grep -q parallel_scaling BENCH_trace.json
# The B.10 unit-service throughput series (requests/sec, p50/p99).
grep -q unit_service BENCH_trace.json
grep -q '"req_per_s"' BENCH_trace.json
grep -q '"host_parallelism"' BENCH_trace.json
grep -q '"engine_metrics"' BENCH_trace.json
grep -q '"p50_ns"' BENCH_trace.json
grep -q '"p99_ns"' BENCH_trace.json
test -s CHROME_trace.json
grep -q '"traceEvents"' CHROME_trace.json
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json; json.load(open('BENCH_trace.json'))"
    python3 -c "import json; json.load(open('CHROME_trace.json'))"
fi
mv BENCH_trace.json .ci-bench-trace.tmp
rm -f CHROME_trace.json

# The metrics plane is always on: a default-features build must carry
# the same engine_metrics document (p50/p99 included) — and the trace
# build's hooks must not leak into the default build's dispatch loop.
# The overhead gate compares the bytecode backend's per-point timings:
# the default build must not be slower than a generous multiple of the
# trace build (catches accidentally always-live instrumentation without
# flaking on scheduler noise).
cargo run --release -p bench --bin tables -- --quick --json --chrome-trace >/dev/null
test -s BENCH_trace.json
grep -q '"engine_metrics"' BENCH_trace.json
grep -q '"p50_ns"' BENCH_trace.json
grep -q '"p99_ns"' BENCH_trace.json
test -s CHROME_trace.json
grep -q '"traceEvents"' CHROME_trace.json
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'GATE'
import json
trace = json.load(open('.ci-bench-trace.tmp'))
default = json.load(open('BENCH_trace.json'))
assert trace['trace_compiled'] is True and default['trace_compiled'] is False
def vm_points(doc):
    return {
        (r['series'], r['size']): r['bytecode_us']
        for r in doc['records']
        if r['series'].startswith('invoke_bytecode/')
    }
tp, dp = vm_points(trace), vm_points(default)
assert tp.keys() == dp.keys() and tp, (sorted(tp), sorted(dp))
for key in tp:
    assert dp[key] <= 3.0 * tp[key] + 50.0, (
        f"{key}: default build {dp[key]:.1f}us vs trace build {tp[key]:.1f}us -- "
        "did the default dispatch loop grow live instrumentation?")
print(f"trace-overhead gate: {len(tp)} vm points within tolerance")

# B.9 parallel-scaling gate: the full-pipeline worker pool must turn
# threads into wall-clock batch-load speedup — but only where the
# hardware can express it. On a host with fewer than 4 cores a speedup
# is physically impossible, so the gate degrades to a sanity floor
# (threads must not serialize the pipeline into the ground) and says
# loudly that the scaling assertion was skipped.
b9 = {
    (r['series'], r['size']): r
    for r in default['records']
    if r['experiment'] == 'parallel_scaling'
}
assert ('batch_load', '1') in b9 and ('batch_load', '4') in b9, sorted(b9)
speedup = b9[('batch_load', '1')]['us'] / b9[('batch_load', '4')]['us']
host = default['host_parallelism']
if host >= 4:
    assert speedup >= 1.5, (
        f"B.9: batch load at 4 threads is {speedup:.2f}x vs 1 thread "
        f"(< 1.5x) on a {host}-way host -- the parallel pipeline is not scaling")
    print(f"B.9 scaling gate: {speedup:.2f}x at 4 threads (host parallelism {host})")
else:
    assert speedup >= 0.2, (
        f"B.9: batch load at 4 threads is {speedup:.2f}x vs 1 thread -- "
        "pathological serialization even for a narrow host")
    print(f"B.9 scaling gate: SKIPPED >=1.5x assertion (host parallelism {host} < 4); "
          f"sanity floor held at {speedup:.2f}x")

# B.10 unit-service gate: the requests/sec series must cover 1, 2, and
# 4 concurrent tenants with sane latency percentiles. Absolute
# throughput is host-dependent and tenant scaling is physically
# impossible on a narrow host, so the gate checks shape, not speed:
# every point positive, p50 <= p99, and the 4-tenant point not
# collapsed to a crawl relative to 1 tenant.
b10 = {
    r['size']: r
    for r in default['records']
    if r['experiment'] == 'unit_service' and r['series'] == 'throughput'
}
assert {'1', '2', '4'} <= b10.keys(), sorted(b10)
for size, r in b10.items():
    assert r['req_per_s'] > 0, (size, r)
    assert 0 <= r['p50_us'] <= r['p99_us'], (size, r)
collapse = b10['4']['req_per_s'] / b10['1']['req_per_s']
assert collapse >= 0.2, (
    f"B.10: 4-tenant throughput is {collapse:.2f}x of 1-tenant -- "
    "tenancy bookkeeping is serializing the service into the ground")
print(f"B.10 service gate: {b10['1']['req_per_s']:.0f} req/s at 1 tenant, "
      f"{collapse:.2f}x relative at 4 tenants, p99 {b10['4']['p99_us']:.0f}us")
GATE
fi
rm -f BENCH_trace.json CHROME_trace.json .ci-bench-trace.tmp

# Three-backend agreement: the differential suite runs 600 random link
# topologies on the reducer, the tree-walker, and the bytecode VM, and
# must hold their observations identical in both feature configurations
# (it also runs inside the full `cargo test` sweeps above; this names
# the gate).
cargo test -q --test differential
cargo test -q --features trace --test differential

# Fault plane: the fixed-seed chaos harness (tests/faults.rs sweeps 240
# seeded schedules, including the bytecode VM's vm/dispatch site and
# its fallback path) must pass with injection compiled in, both with
# and without the tracing layer, and stay clippy-clean. The service
# chaos pass (one tenant under an armed plane, bystanders unaffected)
# rides in the same sweep; name it as its own gate.
cargo test -q --features faults
cargo test -q --features "trace faults"
cargo test -q -p units-serve --features faults --test chaos
cargo clippy --workspace --all-targets --features faults -- -D warnings
cargo clippy --workspace --all-targets --features "trace faults" -- -D warnings

# Faults-off byte-identity: the default build's trip() sites are
# inline no-ops, so a fixed REPL session must be reproducible
# byte-for-byte — and a faults build with no plane armed must produce
# exactly the same bytes as the default build.
cat > .ci-faults-session.tmp <<'SESSION'
(invoke (unit (import) (export) (init (+ (* 6 6) (* 50 2)))))
(define u (unit (import) (export) (init (* 7 3))))
(invoke u)
(invoke (compound (import) (export)
  (link ((unit (import odd) (export even)
           (define even (lambda (n) (if (= n 0) true (odd (- n 1))))))
         (with odd) (provides even))
        ((unit (import even) (export odd)
           (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
           (init (odd 13)))
         (with even) (provides odd)))))
SESSION
cargo build --release -p units-repl
./target/release/units-repl -i < .ci-faults-session.tmp > .ci-faults-off-a.tmp 2>&1
./target/release/units-repl -i < .ci-faults-session.tmp > .ci-faults-off-b.tmp 2>&1
cmp .ci-faults-off-a.tmp .ci-faults-off-b.tmp
cargo build --release -p units-repl --features faults
./target/release/units-repl -i < .ci-faults-session.tmp > .ci-faults-on.tmp 2>&1
cmp .ci-faults-off-a.tmp .ci-faults-on.tmp
rm -f .ci-faults-session.tmp .ci-faults-off-a.tmp .ci-faults-off-b.tmp .ci-faults-on.tmp
