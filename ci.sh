#!/bin/sh
# Tier-1 verification, fully offline: the workspace has no registry
# dependencies, so everything below must succeed with no network access.
set -eux

cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
