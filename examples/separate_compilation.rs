//! Assembly-line programming with on-disk artifacts: "standardized parts
//! can be independently manufactured, tested, and replaced" (the paper's
//! opening Henry Ford analogy, backed by its separate-compilation
//! requirement: "a unit's interface provides enough information for the
//! separate compilation of the unit").
//!
//! Run with: `cargo run --example separate_compilation`
//!
//! Three roles, three moments in time:
//! 1. the **provider** publishes `mathlib.unit` + `mathlib.usig`;
//! 2. the **client team** develops and checks its unit against the
//!    `.usig` alone — the provider's source is not on their machine;
//! 3. the **integrator** links the two, re-verifying the provider still
//!    satisfies its published interface (it may have been swapped for a
//!    newer build in the meantime).

use units::{
    load_interface, load_unit, parse_expr, publish_unit, CheckOptions, Engine, Level,
    Observation,
};
use units_kernel::{CompoundExpr, Expr, LinkClause, Ports, ValPort};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("units-assembly-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let opts = CheckOptions::typed(Level::Constructed);

    // -- 1. provider ----------------------------------------------------
    let published = publish_unit(
        &dir,
        "mathlib",
        "(unit (import) (export (add (-> int int int)) (mul (-> int int int)))
           (define add (-> int int int) (lambda ((a int) (b int)) (+ a b)))
           (define mul (-> int int int) (lambda ((a int) (b int)) (* a b))))",
        opts,
    )?;
    println!("provider published:");
    println!("  {}", published.unit_path.display());
    println!("  {}", published.interface_path.display());
    println!(
        "  interface: {}\n",
        std::fs::read_to_string(&published.interface_path)?
    );

    // -- 2. client team -------------------------------------------------
    // They have only the .usig. Their unit imports the published ports.
    let interface = load_interface(&published.interface_path)?;
    let mut imports = String::new();
    for port in &interface.exports.vals {
        let ty = port.ty.as_ref().expect("published interfaces are typed");
        imports.push_str(&format!("({} {}) ", port.name, units::pretty_ty(ty)));
    }
    let client_src = format!(
        "(unit (import {imports}) (export (sum-of-squares (-> int int int)))
           (define sum-of-squares (-> int int int)
             (lambda ((a int) (b int)) (add (mul a a) (mul b b)))))"
    );
    let client = parse_expr(&client_src)?;
    units::check_program(&client, opts).map_err(units::Error::Check)?;
    println!("client checked against the interface alone ✓\n");

    // -- 3. integrator ---------------------------------------------------
    // Re-verify the provider against its published interface, then link.
    let provider = load_unit(&published, opts)?;
    let with_ports = Ports {
        types: vec![],
        vals: interface.exports.vals.clone(),
    };
    let program = Expr::invoke_program(Expr::compound(CompoundExpr {
        imports: Ports::new(),
        exports: Ports::new(),
        links: vec![
            LinkClause::by_name(provider, Ports::new(), with_ports.clone()),
            LinkClause::by_name(client, with_ports, Ports {
                types: vec![],
                vals: vec![ValPort::typed(
                    "sum-of-squares",
                    units::Ty::arrow(vec![units::Ty::Int, units::Ty::Int], units::Ty::Int),
                )],
            }),
            LinkClause::by_name(
                parse_expr(
                    "(unit (import (sum-of-squares (-> int int int))) (export)
                       (init (sum-of-squares 3 4)))",
                )?,
                Ports {
                    types: vec![],
                    vals: vec![ValPort::typed(
                        "sum-of-squares",
                        units::Ty::arrow(vec![units::Ty::Int, units::Ty::Int], units::Ty::Int),
                    )],
                },
                Ports::new(),
            ),
        ],
    }));
    let outcome = Engine::builder()
        .level(Level::Constructed)
        .build()
        .load_expr(program)?
        .run()?;
    println!("integrated program: sum-of-squares(3, 4) = {}", outcome.value);
    assert_eq!(outcome.value, Observation::Int(25));

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
