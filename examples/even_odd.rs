//! Fig. 12: the even/odd unit and its compilation, observed directly.
//!
//! Run with: `cargo run --example even_odd`
//!
//! This example drives both semantics on the same program:
//!
//! * the **reference reducer** shows the first few Fig. 11 rewriting
//!   steps — `invoke` turning into a `letrec`, the `letrec` allocating
//!   cells;
//! * the **cells backend** demonstrates the §4.1.6 claims: imports and
//!   exports are reference cells, and one shared copy of the code serves
//!   every instance.

use units::{parse_expr, pretty_expr, Backend, Engine, Limits, Observation, Reducer, Step};

fn main() -> Result<(), units::Error> {
    let source = "(invoke (unit (import even) (export odd)
        (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
        (init (odd 13)))
      (val even (lambda (n) (= (rem n 2) 0))))";

    // `even` is supplied as a plain closure: dynamic linking of a single
    // import (the paper's §3.4 generalized invoke).
    let expr = parse_expr(source)?;

    println!("== the Fig. 11 reduction sequence (first steps) ==========");
    let mut reducer = Reducer::new();
    let mut current = expr.clone();
    for i in 0..4 {
        match reducer.step(&current).map_err(units::Error::Runtime)? {
            Step::Value => break,
            Step::Reduced(next) => {
                let shown: String = pretty_expr(&next).chars().take(120).collect();
                println!("step {}: {shown}…", i + 1);
                current = next;
            }
        }
    }
    let value = reducer.reduce_to_value(&current).map_err(units::Error::Runtime)?;
    println!("…reference value: {}", pretty_expr(&value));

    println!("\n== the §4.1.6 cells backend ==============================");
    let outcome = Engine::new().load(source)?.run_on(Backend::Compiled)?;
    println!("compiled value: {}", outcome.value);
    assert_eq!(outcome.value, Observation::Bool(true));

    // Fuel comparison: how many machine steps does each backend take?
    for (name, backend) in [("compiled", Backend::Compiled), ("reducer", Backend::Reducer)] {
        let mut lo = 1u64;
        let mut hi = 1_000_000u64;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let engine =
                Engine::builder().limits(Limits::none().fuel(mid)).build();
            let ok = engine.load(source)?.run_on(backend).is_ok();
            if ok {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        println!("{name} backend needs {lo} machine steps for odd(13)");
    }
    Ok(())
}
