//! DrScheme as an operating system (paper §7): "DrScheme also acts as an
//! operating system for client programs that are being developed,
//! launching client programs by dynamically linking them into the system
//! while maintaining the boundaries between clients."
//!
//! Run with: `cargo run --example drscheme_shell`
//!
//! The host publishes a small system interface (console output, a
//! persistent key–value store), retrieves student programs from an
//! archive with a signature check, and launches each by `invoke`-ing it
//! with the system's imports — under a fuel limit, so a runaway client
//! cannot hang the host. Client state is isolated: each launch gets a
//! fresh instance; only the host-provided store is shared deliberately.

use std::collections::HashMap;

use units::{invoke_unit, Archive, CheckOptions, Level, Machine, RuntimeError, Value};
use units_runtime::apply_prim;
use units_compile::evaluate_program;
use units_kernel::{Expr, PrimOp};
use units_syntax::parse_signature;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The system interface every client must program against.
    let system_sig = parse_signature(
        "(sig (import (println (-> str void))
                      (store-put (-> str int void))
                      (store-get (-> str int)))
              (export)
              (init int))",
    )?;

    // The archive of student programs.
    let mut archive = Archive::new();
    archive.publish(
        "fibonacci",
        "(unit (import (println (-> str void))
                       (store-put (-> str int void))
                       (store-get (-> str int)))
               (export)
           (define fib (-> int int)
             (lambda ((n int)) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
           (init (println \"computing fib(12)\")
                 (store-put \"fib\" (fib 12))
                 (store-get \"fib\")))",
    );
    archive.publish(
        "runaway",
        "(unit (import (println (-> str void))
                       (store-put (-> str int void))
                       (store-get (-> str int)))
               (export)
           (define spin (-> int int) (lambda ((n int)) (spin n)))
           (init (println \"entering infinite loop…\") (spin 0)))",
    );
    archive.publish(
        "imposter",
        // Wrong init type: refused before it can run at all.
        "(unit (import (println (-> str void))
                       (store-put (-> str int void))
                       (store-get (-> str int)))
               (export)
           (init \"not an int\"))",
    );

    // The host's shared store, implemented with host closures built from
    // the runtime's own primitives.
    let store = Value::new_hash();

    for name in ["fibonacci", "imposter", "runaway", "missing"] {
        println!("launching `{name}`…");
        let unit_expr =
            match archive.load(name, &system_sig, CheckOptions::typed(Level::Constructed)) {
                Ok(e) => e,
                Err(e) => {
                    println!("  REFUSED: {e}\n");
                    continue;
                }
            };
        // Each launch gets a bounded machine — the client boundary.
        let mut machine = Machine::with_fuel(2_000_000);
        let unit_value = match evaluate_program(&unit_expr, &mut machine)? {
            Value::Unit(u) => u,
            other => {
                println!("  not a unit: {other}\n");
                continue;
            }
        };
        let imports = system_imports(&store, &mut machine)?;
        match invoke_unit(&unit_value, &imports, &mut machine) {
            Ok(v) => {
                for line in machine.output() {
                    println!("  client | {line}");
                }
                println!("  exited with {v}\n");
            }
            Err(RuntimeError::ResourceExhausted { .. }) => {
                for line in machine.output() {
                    println!("  client | {line}");
                }
                println!("  KILLED: exceeded its fuel budget (host stays up)\n");
            }
            Err(e) => println!("  crashed: {e}\n"),
        }
    }

    // The store outlived every client.
    let mut m = Machine::new();
    let fib = apply_prim(PrimOp::HashGet, &[store, Value::str("fib")], &mut m)?;
    println!("host store survives the clients: fib = {fib}");
    assert!(fib.observably_eq(&Value::Int(144)));
    Ok(())
}

/// Builds the system-call closures the host lends to a client. They are
/// ordinary unit-language closures compiled from source, closing over the
/// host's store through the import mechanism itself.
fn system_imports(
    store: &Value,
    machine: &mut Machine,
) -> Result<HashMap<units::Symbol, Value>, Box<dyn std::error::Error>> {
    // A tiny "kernel unit" whose init returns the three system calls.
    let kernel = units_syntax::parse_expr(
        "(invoke (unit (import table) (export)
            (init (tuple
              (lambda (s) (display s))
              (lambda (k v) (hash-set! table k v))
              (lambda (k) (hash-get table k)))))
          (val table table-value))",
    )?;
    // Splice the host's hash table in for `table-value`.
    let Expr::Invoke(inv) = &kernel else { unreachable!() };
    let mut inv = (**inv).clone();
    inv.val_links.clear();
    let unit_value = match evaluate_program(&inv.target, machine)? {
        Value::Unit(u) => u,
        _ => unreachable!(),
    };
    let supplied = HashMap::from([(units::Symbol::new("table"), store.clone())]);
    let Value::Tuple(calls) = invoke_unit(&unit_value, &supplied, machine)? else {
        unreachable!()
    };
    Ok(HashMap::from([
        (units::Symbol::new("println"), calls[0].clone()),
        (units::Symbol::new("store-put"), calls[1].clone()),
        (units::Symbol::new("store-get"), calls[2].clone()),
    ]))
}
