//! The interactive phone book of paper §3 (Figs. 1–3), end to end.
//!
//! Run with: `cargo run --example phonebook`
//!
//! `Database` (Fig. 1) and `NumberInfo` are linked into `PhoneBook`
//! (Fig. 2), which hides `delete` and re-exports everything else; `IPB`
//! (Fig. 3) adds a (simulated, text-mode) GUI and a `Main` unit, with the
//! links flowing cyclically: the phone book calls the GUI's `error`
//! handler, and the GUI calls back into the phone book.

use units::stdlib;
use units::{Backend, Engine, Observation};

fn main() -> Result<(), units::Error> {
    println!("== Fig. 1: the atomic Database unit =====================");
    println!("{}\n", stdlib::database_unit());

    println!("== Fig. 2: PhoneBook hides delete =======================");
    // Proof: linking a client against `delete` fails at link time.
    let bad = format!(
        "(invoke (compound (import) (export)
           (link ({pb} (with error) (provides new delete))
                 ((unit (import new delete) (export error)
                    (define error (lambda (m) void)))
                  (with new delete) (provides error)))))",
        pb = stdlib::phonebook_compound()
    );
    let engine = Engine::new();
    match engine.invoke(&bad) {
        Err(e) => println!("linking against hidden `delete` correctly fails:\n  {e}\n"),
        Ok(_) => unreachable!("delete must be hidden"),
    }

    println!("== Fig. 3: the complete IPB program =====================");
    let outcome = engine.invoke(&stdlib::ipb_program())?;
    for line in &outcome.output {
        println!("  | {line}");
    }
    println!("IPB result (Main's initialization value): {}", outcome.value);
    assert_eq!(outcome.value, Observation::Bool(true));

    // The substitution reducer — the paper's formal semantics — agrees,
    // re-using the cached artifact from the compiled run.
    let reference = engine.load(&stdlib::ipb_program())?.run_on(Backend::Reducer)?;
    assert_eq!(reference, outcome);
    println!("\nFig. 11 reference semantics produces the identical outcome.");
    Ok(())
}
