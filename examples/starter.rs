//! First-class units: `MakeIPB` and `Starter` (paper Figs. 5 and 6).
//!
//! Run with: `cargo run --example starter`
//!
//! Because units are core-language values and `compound`/`invoke` are
//! core expression forms, abstracting a program over one of its
//! constituents is just a λ: `MakeIPB` consumes *any* GUI unit with the
//! right interface and returns a complete program unit, which `Starter`
//! selects and launches at run time — "programs that link and invoke
//! other programs".

use units::stdlib;
use units::{Engine, Observation};

fn main() -> Result<(), units::Error> {
    let engine = Engine::new();
    for expert_mode in [true, false] {
        let source = stdlib::make_ipb_program(expert_mode);
        let outcome = engine.invoke(&source)?;
        println!(
            "expertMode() = {expert_mode:<5} → GUI chosen at run time:"
        );
        for line in &outcome.output {
            println!("  | {line}");
        }
        assert_eq!(outcome.value, Observation::Bool(true));
        println!();
    }

    // The same abstraction, built programmatically: MakeIPB applied to a
    // GUI that logs differently.
    let custom = format!(
        "(define make-ipb (lambda (a-gui)
           (compound (import) (export)
             (link ({phonebook}
                    (with error)
                    (provides new insert lookup has numInfo infoToString))
                   (a-gui
                    (with new insert lookup has numInfo infoToString)
                    (provides openBook error))
                   ({main}
                    (with new openBook)
                    (provides))))))
         (define quiet-gui
           (unit (import new insert lookup has numInfo infoToString)
                 (export openBook error)
             (define error (lambda (m) void))
             (define openBook (lambda (pb) (insert pb \"x\" (numInfo 1)) (has pb \"x\")))))
         (invoke (make-ipb quiet-gui))",
        phonebook = stdlib::phonebook_compound(),
        main = stdlib::main_unit(),
    );
    let outcome = engine.invoke(&custom)?;
    println!("a third, quiet GUI works through the same MakeIPB: {}", outcome.value);
    assert_eq!(outcome.value, Observation::Bool(true));
    Ok(())
}
