//! Quickstart: define two units, link them externally, invoke the result.
//!
//! Run with: `cargo run --example quickstart`
//!
//! This is the paper's elevator pitch in twenty lines: units declare
//! imports and exports but name no other unit; a separate `compound`
//! expression wires them — here cyclically, which no functor-style module
//! system can do — and `invoke` runs the linked program.

use units::{Backend, Engine, Observation};

fn main() -> Result<(), units::Error> {
    // Fig. 12's even/odd pair: each unit imports the other's export.
    let source = "
        (define even-unit
          (unit (import odd) (export even)
            (define even (lambda (n) (if (= n 0) true (odd (- n 1)))))))

        (define odd-unit
          (unit (import even) (export odd)
            (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
            (init (display \"odd unit initialized\"))))

        (define program
          (compound (import) (export even odd)
            (link (even-unit (with odd)  (provides even))
                  (odd-unit  (with even) (provides odd)))))

        (invoke (compound (import) (export)
          (link (program (with) (provides even odd))
                ((unit (import even odd) (export)
                   (init (tuple (even 10) (odd 10))))
                 (with even odd) (provides)))))";

    let engine = Engine::new();
    let outcome = engine.invoke(source)?;

    println!("program output:");
    for line in &outcome.output {
        println!("  | {line}");
    }
    println!("result: {}", outcome.value);
    assert_eq!(
        outcome.value,
        Observation::Tuple(vec![Observation::Bool(true), Observation::Bool(false)])
    );

    // The same program under the reference semantics (Fig. 11's rules);
    // the engine's cache hands back the already-checked artifact.
    let steps = engine.load(source)?.run_on(Backend::Reducer)?;
    assert_eq!(steps.value, outcome.value);
    println!("reference reducer agrees: {}", steps.value);
    assert_eq!(engine.cache_stats().hits, 1);
    Ok(())
}
