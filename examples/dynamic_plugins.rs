//! Dynamic linking of plug-in loaders (paper §3.4, Fig. 7), including the
//! signature-checked archive of §3.4's "retrieve a unit value from an
//! archive … and check that the unit satisfies a particular signature".
//!
//! Run with: `cargo run --example dynamic_plugins`

use units::stdlib;
use units::{Archive, CheckOptions, Engine, Level};
use units_syntax::parse_signature;

fn main() -> Result<(), units::Error> {
    // --- Part 1: Fig. 7 at the language level --------------------------
    // The GUI's add-loader invokes a plug-in unit at run time, satisfying
    // its imports (insert, numInfo, error) from the host's own scope.
    let engine = Engine::new();
    let outcome = engine.invoke(&stdlib::plugin_program(&stdlib::sample_loader_plugin()))?;
    println!("Fig. 7 host with a dynamically linked loader:");
    for line in &outcome.output {
        println!("  | {line}");
    }
    assert!(outcome.output.iter().any(|l| l == "loader ran"));

    // --- Part 2: the signature-checked archive -------------------------
    // Plug-ins come from an archive; each is checked against the loader
    // signature *in the loading context* before it may link (the fix for
    // the Java class-loader unsoundness the paper cites).
    let mut archive = Archive::new();
    archive.publish(
        "carol-loader",
        "(unit (import (type db) (type info)
                       (insert (-> db str info void))
                       (mk (-> int info))
                       (error (-> str void)))
               (export)
           (init (lambda ((pb db))
             (insert pb \"carol\" (mk 5550000)))))",
    );
    archive.publish(
        "evil-loader",
        // Claims the right interface but its initialization value is not
        // a db→void function: rejected by the signature check.
        "(unit (import (type db) (type info)
                       (insert (-> db str info void))
                       (mk (-> int info))
                       (error (-> str void)))
               (export)
           (init 42))",
    );

    // The loader signature from Fig. 7: initialization type db×… → void
    // over the host's (imported) db and info types. We check in a context
    // where db and info are the host's imports.
    let expected = parse_signature(
        "(sig (import (type db) (type info)
                      (insert (-> db str info void))
                      (mk (-> int info))
                      (error (-> str void)))
              (export)
              (init (-> db void)))",
    )
    .expect("signature parses");

    println!("\narchive contents: {:?}", archive.names());
    for name in ["carol-loader", "evil-loader", "missing-loader"] {
        match archive.load(name, &expected, CheckOptions::typed(Level::Constructed)) {
            Ok(_) => println!("  {name}: accepted (signature satisfied)"),
            Err(e) => println!("  {name}: REFUSED — {e}"),
        }
    }
    assert!(archive
        .load("carol-loader", &expected, CheckOptions::typed(Level::Constructed))
        .is_ok());
    assert!(archive
        .load("evil-loader", &expected, CheckOptions::typed(Level::Constructed))
        .is_err());
    Ok(())
}
