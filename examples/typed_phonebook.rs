//! The statically typed phone book: §3's figures exactly as drawn, with
//! every port annotated, checked by the UNITc rules of Fig. 15.
//!
//! Run with: `cargo run --example typed_phonebook`
//!
//! The `info` type links from NumberInfo into Database, `db` links from
//! the phone book into the GUI and Main, and the whole program's type —
//! the type of the last initialization expression — is `bool`, just as
//! the paper says of `IPB`.

use units::{diagram, parse_expr, typed_stdlib, Engine, Level, Observation, Ty};

fn main() -> Result<(), units::Error> {
    println!("== the typed Database unit (Fig. 1) ======================");
    let database = parse_expr(&typed_stdlib::database())?;
    println!("{}\n", diagram::render(&database));

    println!("== the PhoneBook compound's derived signature (Fig. 2) ===");
    let engine = Engine::builder().level(Level::Constructed).build();
    let phonebook = engine.load(&typed_stdlib::phonebook())?;
    let sig_ty = phonebook.ty().expect("typed levels return a type");
    let sig = sig_ty.as_sig().expect("a unit has a signature type");
    println!("exports:");
    for port in &sig.exports.types {
        println!("  type {}::{}", port.name, port.kind);
    }
    for port in &sig.exports.vals {
        println!("  {}: {}", port.name, port.ty.as_ref().expect("typed"));
    }
    assert!(sig.exports.val_port(&"delete".into()).is_none(), "delete is hidden");
    println!("(and `delete` is hidden, per Fig. 2)\n");

    println!("== the complete typed IPB (Fig. 3) =======================");
    let ipb = engine.load(&typed_stdlib::ipb_program())?;
    let program_ty = ipb.ty().expect("typed");
    println!("program type: {program_ty}");
    assert_eq!(program_ty, &Ty::Bool);

    let outcome = ipb.run()?;
    for line in &outcome.output {
        println!("  | {line}");
    }
    println!("result: {}", outcome.value);
    assert_eq!(outcome.value, Observation::Bool(true));
    Ok(())
}
