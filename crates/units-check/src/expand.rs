//! Type-abbreviation expansion `⌊τ⌋_D` (paper Fig. 18) and the
//! depends-on relation `∝_D` (paper §4.3.1).
//!
//! Given a set of type equations `D`, expansion replaces every equation
//! name with its (recursively expanded) body. The typing rules guarantee
//! equations are acyclic, so expansion terminates; this module still guards
//! against cycles and reports them rather than looping.

use std::collections::{BTreeSet, HashMap};

use units_kernel::{Ports, Signature, Symbol, Ty};

use crate::diag::CheckError;

/// A set of type equations `D = {t = τ, …}`.
#[derive(Debug, Clone, Default)]
pub struct Equations {
    map: HashMap<Symbol, Ty>,
}

impl Equations {
    /// An empty equation set.
    pub fn new() -> Equations {
        Equations::default()
    }

    /// Builds a set from `(name, body)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Equations
    where
        I: IntoIterator<Item = (Symbol, Ty)>,
    {
        Equations { map: pairs.into_iter().collect() }
    }

    /// Adds an equation, replacing any previous one for the same name.
    pub fn insert(&mut self, name: Symbol, body: Ty) {
        self.map.insert(name, body);
    }

    /// The body for `name`, if it is an abbreviation.
    pub fn get(&self, name: &Symbol) -> Option<&Ty> {
        self.map.get(name)
    }

    /// Number of equations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when there are no equations.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A copy with the given names removed (used when entering a `sig`
    /// binder, per Fig. 18's side condition `t ∉ t̄i ∪ t̄e`).
    pub fn without(&self, names: &BTreeSet<Symbol>) -> Equations {
        if names.is_empty() {
            return self.clone();
        }
        Equations {
            map: self
                .map
                .iter()
                .filter(|(k, _)| !names.contains(*k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Verifies the equations are acyclic (the Fig. 19 side condition
    /// `τ_a ∝ t_i ⇒ τ_i ∝̸ t_a`, generalized to any cycle).
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::CyclicTypeEquation`] naming a variable on the
    /// cycle.
    pub fn check_acyclic(&self) -> Result<(), CheckError> {
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Visiting,
            Done,
        }
        fn visit(
            name: &Symbol,
            eqs: &HashMap<Symbol, Ty>,
            states: &mut HashMap<Symbol, State>,
        ) -> Result<(), CheckError> {
            match states.get(name) {
                Some(State::Done) => return Ok(()),
                Some(State::Visiting) => {
                    return Err(CheckError::CyclicTypeEquation { name: name.clone() })
                }
                None => {}
            }
            if let Some(body) = eqs.get(name) {
                states.insert(name.clone(), State::Visiting);
                let mut fvs = BTreeSet::new();
                body.free_ty_vars(&mut fvs);
                for fv in &fvs {
                    visit(fv, eqs, states)?;
                }
            }
            states.insert(name.clone(), State::Done);
            Ok(())
        }
        let mut states = HashMap::new();
        for name in self.map.keys() {
            visit(name, &self.map, &mut states)?;
        }
        Ok(())
    }
}

impl<const N: usize> From<[(Symbol, Ty); N]> for Equations {
    fn from(pairs: [(Symbol, Ty); N]) -> Self {
        Equations::from_pairs(pairs)
    }
}

/// Expands every abbreviation in `ty` (Fig. 18's `⌊τ⌋_D`).
///
/// # Errors
///
/// Returns [`CheckError::CyclicTypeEquation`] if the equations are cyclic,
/// or [`CheckError::Capture`] if an expansion would move a type variable
/// under a signature that binds it.
///
/// # Examples
///
/// ```
/// use units_check::{expand_ty, Equations};
/// use units_kernel::Ty;
/// let eqs = Equations::from([("env".into(), Ty::arrow(vec![Ty::Str], Ty::Int))]);
/// let t = expand_ty(&Ty::arrow(vec![Ty::var("env")], Ty::var("env")), &eqs).unwrap();
/// let env = Ty::arrow(vec![Ty::Str], Ty::Int);
/// assert_eq!(t, Ty::arrow(vec![env.clone()], env));
/// ```
pub fn expand_ty(ty: &Ty, eqs: &Equations) -> Result<Ty, CheckError> {
    let mut visiting = BTreeSet::new();
    expand(ty, eqs, &mut visiting)
}

fn expand(ty: &Ty, eqs: &Equations, visiting: &mut BTreeSet<Symbol>) -> Result<Ty, CheckError> {
    Ok(match ty {
        Ty::Var(t) => match eqs.get(t) {
            Some(body) => {
                if !visiting.insert(t.clone()) {
                    return Err(CheckError::CyclicTypeEquation { name: t.clone() });
                }
                let out = expand(body, eqs, visiting)?;
                visiting.remove(t);
                out
            }
            None => ty.clone(),
        },
        Ty::Int | Ty::Bool | Ty::Str | Ty::Void => ty.clone(),
        Ty::Arrow(params, ret) => Ty::Arrow(
            params.iter().map(|p| expand(p, eqs, visiting)).collect::<Result<_, _>>()?,
            Box::new(expand(ret, eqs, visiting)?),
        ),
        Ty::Tuple(items) => {
            Ty::Tuple(items.iter().map(|i| expand(i, eqs, visiting)).collect::<Result<_, _>>()?)
        }
        Ty::Hash(elem) => Ty::Hash(Box::new(expand(elem, eqs, visiting)?)),
        Ty::Sig(sig) => Ty::Sig(Box::new(expand_sig(sig, eqs)?)),
    })
}

/// Expands abbreviations inside a signature, respecting its binders.
///
/// # Errors
///
/// Returns the same errors as [`expand_ty`].
pub fn expand_sig(sig: &Signature, eqs: &Equations) -> Result<Signature, CheckError> {
    let bound = sig.bound_ty_vars();
    let live = eqs.without(&bound);
    if live.is_empty() {
        return Ok(sig.clone());
    }
    // A live equation whose body mentions one of the signature's bound
    // names would be captured by expansion.
    for b in &bound {
        for (name, body) in live.map.iter() {
            let mut fvs = BTreeSet::new();
            body.free_ty_vars(&mut fvs);
            if fvs.contains(b) {
                let _ = name;
                return Err(CheckError::Capture { binder: b.clone() });
            }
        }
    }
    let mut visiting = BTreeSet::new();
    let expand_ports = |ports: &Ports, visiting: &mut BTreeSet<Symbol>| {
        Ok::<Ports, CheckError>(Ports {
            types: ports.types.clone(),
            vals: ports
                .vals
                .iter()
                .map(|p| {
                    Ok(units_kernel::ValPort {
                        name: p.name.clone(),
                        ty: p.ty.as_ref().map(|t| expand(t, &live, visiting)).transpose()?,
                    })
                })
                .collect::<Result<_, CheckError>>()?,
        })
    };
    Ok(Signature {
        imports: expand_ports(&sig.imports, &mut visiting)?,
        exports: expand_ports(&sig.exports, &mut visiting)?,
        depends: sig.depends.clone(),
        equations: sig
            .equations
            .iter()
            .map(|eq| {
                Ok(units_kernel::SigEquation {
                    name: eq.name.clone(),
                    kind: eq.kind.clone(),
                    body: expand(&eq.body, &live, &mut visiting)?,
                })
            })
            .collect::<Result<_, CheckError>>()?,
        init_ty: expand(&sig.init_ty, &live, &mut visiting)?,
    })
}

/// The set of type variables `τ` depends on through `D`: every `t` with
/// `τ ∝_D t` (paper §4.3.1), i.e. the free variables of `τ` plus
/// everything reachable from them through equation bodies.
///
/// # Examples
///
/// ```
/// use units_check::{reachable_tys, Equations};
/// use units_kernel::Ty;
/// let eqs = Equations::from([("env".into(), Ty::arrow(vec![Ty::var("name")], Ty::var("value")))]);
/// let reach = reachable_tys(&Ty::var("env"), &eqs);
/// assert!(reach.contains("env"));
/// assert!(reach.contains("name"));
/// assert!(reach.contains("value"));
/// ```
pub fn reachable_tys(ty: &Ty, eqs: &Equations) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    let mut work: Vec<Symbol> = {
        let mut fvs = BTreeSet::new();
        ty.free_ty_vars(&mut fvs);
        fvs.into_iter().collect()
    };
    while let Some(t) = work.pop() {
        if !out.insert(t.clone()) {
            continue;
        }
        if let Some(body) = eqs.get(&t) {
            let mut fvs = BTreeSet::new();
            body.free_ty_vars(&mut fvs);
            work.extend(fvs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_identity_without_equations() {
        let t = Ty::arrow(vec![Ty::var("a")], Ty::var("b"));
        assert_eq!(expand_ty(&t, &Equations::new()).unwrap(), t);
    }

    #[test]
    fn expansion_chases_chains() {
        let eqs = Equations::from([
            (Symbol::new("a"), Ty::var("b")),
            (Symbol::new("b"), Ty::Int),
        ]);
        assert_eq!(expand_ty(&Ty::var("a"), &eqs).unwrap(), Ty::Int);
    }

    #[test]
    fn cycles_are_detected_not_looped() {
        let eqs = Equations::from([
            (Symbol::new("a"), Ty::var("b")),
            (Symbol::new("b"), Ty::var("a")),
        ]);
        assert!(matches!(
            expand_ty(&Ty::var("a"), &eqs),
            Err(CheckError::CyclicTypeEquation { .. })
        ));
        assert!(matches!(
            eqs.check_acyclic(),
            Err(CheckError::CyclicTypeEquation { .. })
        ));
        // Self-cycle too.
        let selfy = Equations::from([(Symbol::new("t"), Ty::arrow(vec![Ty::var("t")], Ty::Int))]);
        assert!(selfy.check_acyclic().is_err());
    }

    #[test]
    fn acyclic_sets_pass() {
        let eqs = Equations::from([
            (Symbol::new("a"), Ty::var("b")),
            (Symbol::new("b"), Ty::arrow(vec![Ty::var("c")], Ty::Int)),
        ]);
        eqs.check_acyclic().unwrap();
    }

    #[test]
    fn sig_binders_shadow_equations() {
        use units_kernel::{Ports, TyPort, ValPort};
        let eqs = Equations::from([(Symbol::new("t"), Ty::Int)]);
        let sig = Signature {
            imports: Ports { types: vec![TyPort::star("t")], vals: vec![] },
            exports: Ports { types: vec![], vals: vec![ValPort::typed("x", Ty::var("t"))] },
            depends: vec![],
            equations: vec![],
            init_ty: Ty::Void,
        };
        let out = expand_sig(&sig, &eqs).unwrap();
        // Inner `t` is the signature's own import, not the abbreviation.
        assert_eq!(out, sig);
    }

    #[test]
    fn expansion_reports_capture() {
        use units_kernel::{Ports, TyPort, ValPort};
        let eqs = Equations::from([(Symbol::new("u"), Ty::var("t"))]);
        let sig = Signature {
            imports: Ports { types: vec![TyPort::star("t")], vals: vec![] },
            exports: Ports { types: vec![], vals: vec![ValPort::typed("x", Ty::var("u"))] },
            depends: vec![],
            equations: vec![],
            init_ty: Ty::Void,
        };
        assert!(matches!(
            expand_sig(&sig, &eqs),
            Err(CheckError::Capture { binder }) if binder.as_str() == "t"
        ));
    }

    #[test]
    fn reachability_is_transitive() {
        let eqs = Equations::from([
            (Symbol::new("a"), Ty::var("b")),
            (Symbol::new("b"), Ty::var("c")),
            (Symbol::new("unrelated"), Ty::var("z")),
        ]);
        let reach = reachable_tys(&Ty::var("a"), &eqs);
        assert!(reach.contains("b") && reach.contains("c"));
        assert!(!reach.contains("z"));
    }
}
