//! Checking environments `Γ`.
//!
//! An [`Env`] carries the three pieces of context the typing rules thread
//! through derivations: kinds of type variables (`t :: κ`), types of value
//! variables (`x : τ`), and the set of type equations `D` in scope (UNITe,
//! Fig. 18/19). Scoping uses save/restore marks: entering a binder pushes
//! entries, leaving truncates back.

use units_kernel::{Kind, Symbol, Ty};

/// A scoping mark returned by [`Env::mark`]; pass to [`Env::restore`].
#[derive(Debug, Clone, Copy)]
pub struct Mark {
    tys: usize,
    vals: usize,
    eqs: usize,
}

/// The checker's environment `Γ` (plus the equation set `D`).
#[derive(Debug, Default, Clone)]
pub struct Env {
    tys: Vec<(Symbol, Kind)>,
    vals: Vec<(Symbol, Ty)>,
    eqs: Vec<(Symbol, Ty)>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Records the current scope depth.
    pub fn mark(&self) -> Mark {
        Mark { tys: self.tys.len(), vals: self.vals.len(), eqs: self.eqs.len() }
    }

    /// Pops every entry added since `mark`.
    pub fn restore(&mut self, mark: Mark) {
        self.tys.truncate(mark.tys);
        self.vals.truncate(mark.vals);
        self.eqs.truncate(mark.eqs);
    }

    /// Binds a type variable `t :: κ`.
    pub fn bind_ty(&mut self, name: Symbol, kind: Kind) {
        self.tys.push((name, kind));
    }

    /// Binds a value variable `x : τ`.
    pub fn bind_val(&mut self, name: Symbol, ty: Ty) {
        self.vals.push((name, ty));
    }

    /// Adds a type equation `t = τ` to `D` (also binds `t`'s kind).
    pub fn bind_eq(&mut self, name: Symbol, kind: Kind, body: Ty) {
        self.tys.push((name.clone(), kind));
        self.eqs.push((name, body));
    }

    /// The kind of a type variable, innermost binding first.
    pub fn ty_kind(&self, name: &Symbol) -> Option<&Kind> {
        self.tys.iter().rev().find(|(n, _)| n == name).map(|(_, k)| k)
    }

    /// The type of a value variable, innermost binding first.
    pub fn val_ty(&self, name: &Symbol) -> Option<&Ty> {
        self.vals.iter().rev().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// The equation body for `t`, if `t` is an abbreviation in scope.
    pub fn equation(&self, name: &Symbol) -> Option<&Ty> {
        self.eqs.iter().rev().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// All equations currently in scope, outermost first.
    pub fn equations(&self) -> &[(Symbol, Ty)] {
        &self.eqs
    }

    /// Number of value bindings (used by tests and diagnostics).
    pub fn val_depth(&self) -> usize {
        self.vals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_prefers_innermost() {
        let mut env = Env::new();
        env.bind_val("x".into(), Ty::Int);
        let m = env.mark();
        env.bind_val("x".into(), Ty::Bool);
        assert_eq!(env.val_ty(&"x".into()), Some(&Ty::Bool));
        env.restore(m);
        assert_eq!(env.val_ty(&"x".into()), Some(&Ty::Int));
    }

    #[test]
    fn restore_pops_all_namespaces() {
        let mut env = Env::new();
        let m = env.mark();
        env.bind_ty("t".into(), Kind::Star);
        env.bind_eq("e".into(), Kind::Star, Ty::Int);
        env.bind_val("x".into(), Ty::Void);
        assert!(env.ty_kind(&"t".into()).is_some());
        assert!(env.ty_kind(&"e".into()).is_some());
        assert_eq!(env.equation(&"e".into()), Some(&Ty::Int));
        env.restore(m);
        assert!(env.ty_kind(&"t".into()).is_none());
        assert!(env.equation(&"e".into()).is_none());
        assert!(env.val_ty(&"x".into()).is_none());
    }

    #[test]
    fn missing_names_are_none() {
        let env = Env::new();
        assert!(env.val_ty(&"nope".into()).is_none());
        assert!(env.ty_kind(&"nope".into()).is_none());
    }
}
