//! The *valuable* judgment of §4.1.1 (after Harper–Stone).
//!
//! A unit definition `val x = e` must be valuable: "evaluating the
//! expression terminates, does not incur any computational effects
//! (divergence, printing, etc.), and does not refer to variables whose
//! values may still be undetermined (due to an ordering of the mutually
//! recursive definitions)" — "with the restriction that imported and
//! defined variable names are not considered valuable".
//!
//! The judgment is syntactic and conservative: literals, λ-abstractions,
//! primitives, units, tuples of valuables, and variables bound *outside*
//! the recursive block are valuable; applications, conditionals, and
//! anything that can run code are not. A `compound` of valuable
//! constituents is valuable (linking merges text without evaluating it).

use std::collections::BTreeSet;

use units_kernel::{Expr, Symbol};

/// Returns `true` when `expr` is valuable given the set of names whose
/// values may still be undetermined (the enclosing block's imports and
/// definitions).
///
/// # Examples
///
/// ```
/// use std::collections::BTreeSet;
/// use units_check::is_valuable;
/// use units_kernel::{Expr, Param};
///
/// let forbidden: BTreeSet<_> = [units_kernel::Symbol::new("even")].into();
/// // A λ may mention `even` — it is not evaluated yet.
/// let lam = Expr::lambda(vec![Param::untyped("n")], Expr::var("even"));
/// assert!(is_valuable(&lam, &forbidden));
/// // A bare reference to `even` is not valuable.
/// assert!(!is_valuable(&Expr::var("even"), &forbidden));
/// ```
pub fn is_valuable(expr: &Expr, forbidden: &BTreeSet<Symbol>) -> bool {
    // The forbidden set contains the names whose cells may still be
    // undetermined when this expression runs: the block's imports (a
    // linked import may be another constituent's definition that runs
    // *later* in the merged order) and the definitions at or after the
    // current one. Earlier definitions are already determined, so
    // referring to them is valuable — a faithful-to-intent refinement of
    // the paper's blanket rule (documented in DESIGN.md §1).
    match expr {
        Expr::Lit(_) | Expr::Lambda(_) | Expr::Prim(..) | Expr::Unit(_) | Expr::Data(_)
        | Expr::Loc(_) => true,
        Expr::Var(x) | Expr::VarAt(x, _) => !forbidden.contains(x),
        Expr::Tuple(items) => items.iter().all(|e| is_valuable(e, forbidden)),
        Expr::Variant(v) => is_valuable(&v.payload, forbidden),
        Expr::Seal(e, _) => is_valuable(e, forbidden),
        Expr::Compound(c) => c.links.iter().all(|l| is_valuable(&l.expr, forbidden)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units_kernel::{CompoundExpr, Ports, PrimOp};

    fn forbid(names: &[&str]) -> BTreeSet<Symbol> {
        names.iter().map(Symbol::new).collect()
    }

    #[test]
    fn literals_and_prims_are_valuable() {
        let none = forbid(&[]);
        assert!(is_valuable(&Expr::int(1), &none));
        assert!(is_valuable(&Expr::str("s"), &none));
        assert!(is_valuable(&Expr::prim(PrimOp::Add), &none));
    }

    #[test]
    fn applications_are_never_valuable() {
        let none = forbid(&[]);
        let app = Expr::prim2(PrimOp::Add, Expr::int(1), Expr::int(2));
        assert!(!is_valuable(&app, &none));
    }

    #[test]
    fn outer_variables_are_valuable_defined_ones_are_not() {
        let forbidden = forbid(&["defined"]);
        assert!(is_valuable(&Expr::var("outer"), &forbidden));
        assert!(!is_valuable(&Expr::var("defined"), &forbidden));
    }

    #[test]
    fn tuples_are_valuable_pointwise() {
        let forbidden = forbid(&["d"]);
        assert!(is_valuable(&Expr::Tuple(vec![Expr::int(1), Expr::var("ok")]), &forbidden));
        assert!(!is_valuable(&Expr::Tuple(vec![Expr::int(1), Expr::var("d")]), &forbidden));
    }

    #[test]
    fn compound_of_valuables_is_valuable() {
        let mk = |e: Expr| {
            Expr::compound(CompoundExpr {
                imports: Ports::new(),
                exports: Ports::new(),
                links: vec![units_kernel::LinkClause::by_name(e, Ports::new(), Ports::new())],
            })
        };
        let forbidden = forbid(&["u"]);
        assert!(is_valuable(&mk(Expr::var("outer_unit")), &forbidden));
        assert!(!is_valuable(&mk(Expr::var("u")), &forbidden));
    }
}
