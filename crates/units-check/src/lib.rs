//! Static checking for the unit calculi of Flatt & Felleisen, *Units:
//! Cool Modules for HOT Languages* (PLDI 1998).
//!
//! * [`context_check`] — the context-sensitive conditions of Fig. 10,
//!   applied at every level (distinctness, exports-defined, link coverage,
//!   valuability under [`Strictness::Paper`]);
//! * [`type_of`] — the typing rules of Fig. 15 (UNITc) and Fig. 19
//!   (UNITe), selected by [`Level`];
//! * [`subtype`] — signature subtyping (Figs. 14/17) with the §5.2
//!   hiding extension;
//! * [`expand_ty`] / [`Equations`] — abbreviation expansion (Fig. 18) and
//!   the depends-on relation.
//!
//! # Example
//!
//! ```
//! use units_check::{check_program, CheckOptions, Level, Strictness};
//! use units_syntax::parse_expr;
//!
//! let unit = parse_expr(
//!     "(unit (import) (export (one int))
//!        (define one int 1)
//!        (init one))",
//! ).unwrap();
//! let ty = check_program(&unit, CheckOptions::typed(Level::Constructed)).unwrap();
//! assert!(ty.unwrap().as_sig().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod env;
mod expand;
mod subtype;
mod typed;
mod unitd;
mod valuable;

pub use diag::CheckError;
pub use env::{Env, Mark};
pub use expand::{expand_sig, expand_ty, reachable_tys, Equations};
pub use subtype::{subtype, ty_equal, SubtypeError};
pub use typed::{type_of, type_of_in, Level};
pub use unitd::{context_check, port_name_sets, Strictness};
pub use valuable::is_valuable;

/// How a program should be checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CheckOptions {
    /// Which calculus to check against.
    pub level: Level,
    /// Whether to enforce the paper's valuability restriction.
    pub strictness: Strictness,
}

impl CheckOptions {
    /// UNITd with the paper's valuability restriction.
    pub fn untyped() -> CheckOptions {
        CheckOptions { level: Level::Untyped, strictness: Strictness::Paper }
    }

    /// A typed level with the paper's valuability restriction.
    pub fn typed(level: Level) -> CheckOptions {
        CheckOptions { level, strictness: Strictness::Paper }
    }
}

/// Checks a whole program: context conditions always, typing when the
/// level is static. Returns the program's type for typed levels.
///
/// # Errors
///
/// Returns every context violation found, or the first type error.
pub fn check_program(
    expr: &units_kernel::Expr,
    opts: CheckOptions,
) -> Result<Option<units_kernel::Ty>, Vec<CheckError>> {
    let _timer = units_trace::time("check");
    units_trace::faults::trip("check/program")
        .map_err(|f| vec![CheckError::Injected { site: f.site, hit: f.hit }])?;
    context_check(expr, opts.strictness)?;
    let result = match opts.level {
        Level::Untyped => Ok(None),
        level => type_of(expr, level).map(Some).map_err(|e| vec![e]),
    };
    units_trace::emit(
        units_trace::Phase::Check,
        "check/program",
        None,
        || opts.level.name().to_string(),
        &[("check/programs", 1)],
    );
    result
}
