//! Signature subtyping (paper Figs. 14 and 17) and the §5.2 extension for
//! hiding type information.
//!
//! `sig_s ≤ sig_g` holds when a unit with the specific signature can be
//! used wherever the general one is expected:
//!
//! 1. the initialization type is covariant;
//! 2. the subtype has *fewer imports* and *more exports*;
//! 3. import value types are contravariant, export value types covariant;
//! 4. (Fig. 17) the subtype declares *no more dependencies* than the
//!    supertype — the assumed signature must over-approximate the unit's
//!    real dependencies, otherwise a cyclic type definition could slip
//!    through linking (see DESIGN.md §1 for the soundness note);
//! 5. (§5.2) an opaque exported type in the supertype may be satisfied by
//!    a translucent abbreviation in the subtype, hiding its body — in
//!    which case the supertype must declare the dependencies the hidden
//!    body induces.

use std::fmt;

use units_kernel::{Depend, Kind, Signature, Ty};

use crate::diag::CheckError;
use crate::expand::{expand_ty, reachable_tys, Equations};

/// Why a subtype check failed, in prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtypeError {
    /// Human-readable reason (lowercase, no trailing punctuation).
    pub reason: String,
}

impl SubtypeError {
    fn new(reason: impl Into<String>) -> SubtypeError {
        SubtypeError { reason: reason.into() }
    }
}

impl fmt::Display for SubtypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for SubtypeError {}

impl SubtypeError {
    /// Converts into a [`CheckError`] with the position that required the
    /// subtype relation.
    pub fn into_check_error(self, context: impl Into<String>) -> CheckError {
        CheckError::NotSubsignature { reason: self.reason, context: context.into() }
    }
}

/// Checks `sub ≤ sup` under the equation set `D` (paper `≤` judgment,
/// Figs. 14/17). Both types are expanded with `D` first, so abbreviations
/// compare transparently.
///
/// # Errors
///
/// Returns a [`SubtypeError`] naming the first failing condition. Cyclic
/// equations surface as an error mentioning the cycle.
///
/// # Examples
///
/// ```
/// use units_check::{subtype, Equations};
/// use units_kernel::Ty;
/// // int→int ≤ int→int, but not int→int ≤ bool→int
/// subtype(&Equations::new(), &Ty::arrow(vec![Ty::Int], Ty::Int),
///         &Ty::arrow(vec![Ty::Int], Ty::Int)).unwrap();
/// assert!(subtype(&Equations::new(), &Ty::arrow(vec![Ty::Int], Ty::Int),
///                 &Ty::arrow(vec![Ty::Bool], Ty::Int)).is_err());
/// ```
pub fn subtype(eqs: &Equations, sub: &Ty, sup: &Ty) -> Result<(), SubtypeError> {
    let sub = expand_ty(sub, eqs).map_err(|e| SubtypeError::new(e.to_string()))?;
    let sup = expand_ty(sup, eqs).map_err(|e| SubtypeError::new(e.to_string()))?;
    units_trace::count("check/fig14/subtype", 1);
    // Memoize proven judgments. Expansion already folded the equation
    // set into both sides, so `st` is a pure function of the pair; the
    // derived `Debug` rendering is a faithful (injective) key for it.
    // Only successes are cached — failures re-run so error messages
    // keep their exact shape and context.
    let key = format!("{sub:?}\u{0}{sup:?}");
    if PROVEN.with(|cache| cache.borrow().contains(&key)) {
        units_trace::count("check/subtype/cache_hit", 1);
        return Ok(());
    }
    units_trace::count("check/subtype/cache_miss", 1);
    st(&sub, &sup)?;
    PROVEN.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() >= SUBTYPE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key);
    });
    Ok(())
}

/// Bound on the per-thread proven-pair memo; the whole cache is dropped
/// when full (keys can be large for wide signatures, so the cap bounds
/// memory, not entries kept hot).
const SUBTYPE_CACHE_CAP: usize = 1024;

thread_local! {
    static PROVEN: std::cell::RefCell<std::collections::HashSet<String>> =
        std::cell::RefCell::new(std::collections::HashSet::new());
}

/// Type equality under `D`: `a ≤ b` and `b ≤ a`.
pub fn ty_equal(eqs: &Equations, a: &Ty, b: &Ty) -> bool {
    subtype(eqs, a, b).is_ok() && subtype(eqs, b, a).is_ok()
}

fn st(sub: &Ty, sup: &Ty) -> Result<(), SubtypeError> {
    units_trace::count("check/fig14/st", 1);
    match (sub, sup) {
        (Ty::Var(a), Ty::Var(b)) if a == b => Ok(()),
        (Ty::Int, Ty::Int) | (Ty::Bool, Ty::Bool) | (Ty::Str, Ty::Str) | (Ty::Void, Ty::Void) => {
            Ok(())
        }
        (Ty::Arrow(p1, r1), Ty::Arrow(p2, r2)) => {
            if p1.len() != p2.len() {
                return Err(SubtypeError::new(format!(
                    "function arity differs: {} vs {}",
                    p1.len(),
                    p2.len()
                )));
            }
            for (a, b) in p1.iter().zip(p2) {
                st(b, a).map_err(|e| {
                    SubtypeError::new(format!("parameter (contravariant): {e}"))
                })?;
            }
            st(r1, r2)
        }
        (Ty::Tuple(a), Ty::Tuple(b)) => {
            if a.len() != b.len() {
                return Err(SubtypeError::new("tuple widths differ"));
            }
            for (x, y) in a.iter().zip(b) {
                st(x, y)?;
            }
            Ok(())
        }
        (Ty::Hash(a), Ty::Hash(b)) => {
            // Mutable containers are invariant.
            st(a, b).and_then(|_| st(b, a)).map_err(|_| {
                SubtypeError::new(format!("hash element types must be equal: {a} vs {b}"))
            })
        }
        (Ty::Sig(sub), Ty::Sig(sup)) => sig_subtype(sub, sup),
        _ => Err(SubtypeError::new(format!("{sub} is not a subtype of {sup}"))),
    }
}

fn kind_eq(name: &units_kernel::Symbol, a: &Kind, b: &Kind) -> Result<(), SubtypeError> {
    if a == b {
        Ok(())
    } else {
        Err(SubtypeError::new(format!("kind of `{name}` differs: {a} vs {b}")))
    }
}

fn sig_subtype(sub: &Signature, sup: &Signature) -> Result<(), SubtypeError> {
    // Equations are transparent: both sides' port types are compared under
    // the *merged* abbreviation set, so a translucent `env = name→value`
    // in either signature matches its expansion in the other (Fig. 20).
    // Where both sides define the same abbreviation, the bodies must agree;
    // a supertype abbreviation must not claim transparency for a type the
    // subtype exports opaquely (a generative datatype is never an
    // abbreviation).
    let mut local = Equations::new();
    for eq in sub.equations.iter().chain(&sup.equations) {
        local.insert(eq.name.clone(), eq.body.clone());
    }
    for eq in &sup.equations {
        if sub.exports.ty_port(&eq.name).is_some() {
            return Err(SubtypeError::new(format!(
                "supertype claims `{}` is an abbreviation, but the subtype exports it opaquely",
                eq.name
            )));
        }
        if let Some(sub_eq) = sub.equations.iter().find(|e| e.name == eq.name) {
            kind_eq(&eq.name, &sub_eq.kind, &eq.kind)?;
            let a =
                expand_ty(&sub_eq.body, &local).map_err(|e| SubtypeError::new(e.to_string()))?;
            let b = expand_ty(&eq.body, &local).map_err(|e| SubtypeError::new(e.to_string()))?;
            st(&a, &b).and_then(|_| st(&b, &a)).map_err(|_| {
                SubtypeError::new(format!(
                    "abbreviation `{}` differs: {} vs {}",
                    eq.name, sub_eq.body, eq.body
                ))
            })?;
        }
    }

    let ex = |ty: &Ty| expand_ty(ty, &local).map_err(|e| SubtypeError::new(e.to_string()));

    // 1. Initialization type is covariant.
    st(&ex(&sub.init_ty)?, &ex(&sup.init_ty)?)
        .map_err(|e| SubtypeError::new(format!("initialization type: {e}")))?;

    // 2a. Fewer type imports.
    for tp in &sub.imports.types {
        let Some(sup_tp) = sup.imports.ty_port(&tp.name) else {
            return Err(SubtypeError::new(format!(
                "subtype imports type `{}` that the supertype does not",
                tp.name
            )));
        };
        kind_eq(&tp.name, &tp.kind, &sup_tp.kind)?;
    }
    // 2b. Fewer value imports, contravariantly typed.
    for vp in &sub.imports.vals {
        let Some(sup_vp) = sup.imports.val_port(&vp.name) else {
            return Err(SubtypeError::new(format!(
                "subtype imports `{}` that the supertype does not",
                vp.name
            )));
        };
        match (&vp.ty, &sup_vp.ty) {
            (None, None) => {}
            (Some(t_sub), Some(t_sup)) => {
                st(&ex(t_sup)?, &ex(t_sub)?).map_err(|e| {
                    SubtypeError::new(format!("import `{}` (contravariant): {e}", vp.name))
                })?;
            }
            _ => {
                return Err(SubtypeError::new(format!(
                    "import `{}` mixes typed and untyped declarations",
                    vp.name
                )))
            }
        }
    }

    // 3a. More type exports; an opaque supertype export may be satisfied by
    // a subtype abbreviation (§5.2).
    for tp in &sup.exports.types {
        if let Some(sub_tp) = sub.exports.ty_port(&tp.name) {
            kind_eq(&tp.name, &sub_tp.kind, &tp.kind)?;
        } else if let Some(eq) = sub.equations.iter().find(|e| e.name == tp.name) {
            kind_eq(&tp.name, &eq.kind, &tp.kind)?;
            // Hiding the body keeps its link-time constraints: every
            // dependency the hidden abbreviation has on an imported type
            // must be declared by the supertype.
            let reach = reachable_tys(&eq.body, &local);
            for ti in &sub.imports.types {
                if reach.contains(&ti.name) {
                    let need = Depend { export: tp.name.clone(), import: ti.name.clone() };
                    if !sup.depends.contains(&need) {
                        return Err(SubtypeError::new(format!(
                            "hiding abbreviation `{}` requires the supertype to declare `{need}`",
                            tp.name
                        )));
                    }
                }
            }
        } else {
            return Err(SubtypeError::new(format!(
                "supertype exports type `{}` that the subtype does not",
                tp.name
            )));
        }
    }
    // 3b. More value exports, covariantly typed.
    for vp in &sup.exports.vals {
        let Some(sub_vp) = sub.exports.val_port(&vp.name) else {
            return Err(SubtypeError::new(format!(
                "supertype exports `{}` that the subtype does not",
                vp.name
            )));
        };
        match (&sub_vp.ty, &vp.ty) {
            (None, None) => {}
            (Some(t_sub), Some(t_sup)) => {
                st(&ex(t_sub)?, &ex(t_sup)?).map_err(|e| {
                    SubtypeError::new(format!("export `{}`: {e}", vp.name))
                })?;
            }
            _ => {
                return Err(SubtypeError::new(format!(
                    "export `{}` mixes typed and untyped declarations",
                    vp.name
                )))
            }
        }
    }

    // 4. Dependencies: the subtype may declare no more than the supertype
    // (the assumed signature over-approximates; Fig. 17, see DESIGN.md §1).
    let sup_deps = sup.depend_set();
    for d in &sub.depends {
        // A dependency only matters while both ends are part of the
        // supertype's interface.
        let relevant = sup.exports.ty_port(&d.export).is_some()
            && sup.imports.ty_port(&d.import).is_some();
        if relevant && !sup_deps.contains(d) {
            return Err(SubtypeError::new(format!(
                "subtype declares dependency `{d}` that the supertype does not"
            )));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use units_kernel::{Ports, SigEquation, Symbol, TyPort, ValPort};

    fn sig(imports: Ports, exports: Ports, init: Ty) -> Signature {
        Signature::new(imports, exports, init)
    }

    fn no_eqs() -> Equations {
        Equations::new()
    }

    #[test]
    fn base_and_arrow_rules() {
        let e = no_eqs();
        subtype(&e, &Ty::Int, &Ty::Int).unwrap();
        assert!(subtype(&e, &Ty::Int, &Ty::Bool).is_err());
        // Covariant result, contravariant parameter via sig nesting below.
        subtype(
            &e,
            &Ty::arrow(vec![Ty::Str], Ty::Int),
            &Ty::arrow(vec![Ty::Str], Ty::Int),
        )
        .unwrap();
    }

    #[test]
    fn sig_reflexivity() {
        let s = Ty::sig(sig(
            Ports {
                types: vec![TyPort::star("info")],
                vals: vec![ValPort::typed("error", Ty::arrow(vec![Ty::Str], Ty::Void))],
            },
            Ports {
                types: vec![TyPort::star("db")],
                vals: vec![ValPort::typed("new", Ty::thunk(Ty::var("db")))],
            },
            Ty::Void,
        ));
        subtype(&no_eqs(), &s, &s).unwrap();
    }

    #[test]
    fn fewer_imports_and_more_exports_is_a_subtype() {
        let small_needs = Ty::sig(sig(
            Ports { types: vec![], vals: vec![ValPort::typed("error", Ty::arrow(vec![Ty::Str], Ty::Void))] },
            Ports {
                types: vec![],
                vals: vec![
                    ValPort::typed("new", Ty::thunk(Ty::Int)),
                    ValPort::typed("extra", Ty::Int),
                ],
            },
            Ty::Void,
        ));
        let general = Ty::sig(sig(
            Ports {
                types: vec![],
                vals: vec![
                    ValPort::typed("error", Ty::arrow(vec![Ty::Str], Ty::Void)),
                    ValPort::typed("log", Ty::arrow(vec![Ty::Str], Ty::Void)),
                ],
            },
            Ports { types: vec![], vals: vec![ValPort::typed("new", Ty::thunk(Ty::Int))] },
            Ty::Void,
        ));
        subtype(&no_eqs(), &small_needs, &general).unwrap();
        assert!(subtype(&no_eqs(), &general, &small_needs).is_err());
    }

    #[test]
    fn import_types_are_contravariant_export_types_covariant() {
        // Exports: a unit exporting an int-thunk can serve where a
        // void-accepting consumer... use arrow depth to exercise variance.
        let provides_specific = Ty::sig(sig(
            Ports::new(),
            Ports {
                types: vec![],
                // export f : (str→void)→int
                vals: vec![ValPort::typed(
                    "f",
                    Ty::arrow(vec![Ty::arrow(vec![Ty::Str], Ty::Void)], Ty::Int),
                )],
            },
            Ty::Void,
        ));
        subtype(&no_eqs(), &provides_specific, &provides_specific).unwrap();
    }

    #[test]
    fn depends_must_be_over_approximated_by_the_supertype() {
        let imports = Ports { types: vec![TyPort::star("i")], vals: vec![] };
        let exports = Ports { types: vec![TyPort::star("e")], vals: vec![] };
        let mut with_dep = sig(imports.clone(), exports.clone(), Ty::Void);
        with_dep.depends.push(Depend::new("e", "i"));
        let without_dep = sig(imports, exports, Ty::Void);

        // A unit with no real dependencies may be assumed to have some…
        subtype(&no_eqs(), &Ty::sig(without_dep.clone()), &Ty::sig(with_dep.clone())).unwrap();
        // …but a unit *with* a dependency cannot hide it.
        let err =
            subtype(&no_eqs(), &Ty::sig(with_dep), &Ty::sig(without_dep)).unwrap_err();
        assert!(err.reason.contains("dependency"));
    }

    #[test]
    fn equations_expand_transparently() {
        let eqs = Equations::from([(Symbol::new("env"), Ty::arrow(vec![Ty::Str], Ty::Int))]);
        subtype(&eqs, &Ty::var("env"), &Ty::arrow(vec![Ty::Str], Ty::Int)).unwrap();
        assert!(ty_equal(&eqs, &Ty::var("env"), &Ty::arrow(vec![Ty::Str], Ty::Int)));
    }

    #[test]
    fn hiding_an_abbreviation_requires_declared_dependencies() {
        // Fig. 21: RecEnv exposes `env = name→value` translucent; sealing to
        // an opaque `env` must declare env ↝ name, env ↝ value.
        let imports = Ports {
            types: vec![TyPort::star("name"), TyPort::star("value")],
            vals: vec![],
        };
        let translucent = Signature {
            imports: imports.clone(),
            exports: Ports {
                types: vec![],
                vals: vec![ValPort::typed(
                    "extend",
                    Ty::arrow(
                        vec![Ty::var("env"), Ty::var("name"), Ty::var("value")],
                        Ty::var("env"),
                    ),
                )],
            },
            depends: vec![],
            equations: vec![SigEquation {
                name: "env".into(),
                kind: Kind::Star,
                body: Ty::arrow(vec![Ty::var("name")], Ty::var("value")),
            }],
            init_ty: Ty::Void,
        };
        let opaque_exports = Ports {
            types: vec![TyPort::star("env")],
            vals: vec![ValPort::typed(
                "extend",
                Ty::arrow(
                    vec![Ty::var("env"), Ty::var("name"), Ty::var("value")],
                    Ty::var("env"),
                ),
            )],
        };
        // Without depends: rejected.
        let opaque_missing = sig(imports.clone(), opaque_exports.clone(), Ty::Void);
        let err = subtype(&no_eqs(), &Ty::sig(translucent.clone()), &Ty::sig(opaque_missing))
            .unwrap_err();
        assert!(err.reason.contains("depends") || err.reason.contains("declare"), "{err}");
        // With both depends declared: accepted.
        let mut opaque_ok = sig(imports, opaque_exports, Ty::Void);
        opaque_ok.depends.push(Depend::new("env", "name"));
        opaque_ok.depends.push(Depend::new("env", "value"));
        subtype(&no_eqs(), &Ty::sig(translucent), &Ty::sig(opaque_ok)).unwrap();
    }

    #[test]
    fn hash_is_invariant() {
        let e = no_eqs();
        subtype(&e, &Ty::hash(Ty::Int), &Ty::hash(Ty::Int)).unwrap();
        assert!(subtype(&e, &Ty::hash(Ty::Int), &Ty::hash(Ty::Void)).is_err());
    }
}
