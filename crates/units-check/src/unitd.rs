//! Context-sensitive checking for UNITd (paper Fig. 10).
//!
//! These checks apply to *every* level — the typed checkers run them
//! first. They ensure that
//!
//! * no name is multiply defined, imported, or exported;
//! * every exported name is defined;
//! * every variable occurrence is bound;
//! * the `link` clause of a `compound` is locally consistent: each
//!   constituent's `with` names are covered by the compound's imports or
//!   another constituent's `provides`, and the compound's exports are all
//!   provided;
//! * `set!` targets a definition-bound (mutable) variable;
//! * under [`Strictness::Paper`], every definition body is *valuable*.

use std::collections::BTreeSet;

use units_kernel::{Expr, Ports, Symbol, TypeDefn};

use crate::diag::CheckError;
use crate::valuable::is_valuable;

/// Whether to enforce the paper's static valuability restriction or
/// MzScheme's dynamic alternative (§4.1.1 and its footnote: "it can be
/// lifted for an implementation, as in MzScheme, where accessing an
/// undefined variable returns a default value or signals a run-time
/// error").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strictness {
    /// Enforce valuability of definitions statically (the calculi).
    #[default]
    Paper,
    /// Allow arbitrary definition expressions; reading a definition before
    /// it is initialized is a run-time error (the implementation).
    MzScheme,
}

/// Runs the Fig. 10 context-sensitive checks on a whole program (a closed
/// expression).
///
/// # Errors
///
/// Returns every violation found, in source order.
pub fn context_check(expr: &Expr, strictness: Strictness) -> Result<(), Vec<CheckError>> {
    let mut ck = Checker { strictness, errors: Vec::new() };
    let mut scope = Scope::default();
    ck.expr(expr, &mut scope);
    if ck.errors.is_empty() {
        Ok(())
    } else {
        Err(ck.errors)
    }
}

#[derive(Default)]
struct Scope {
    /// Every bound value variable, innermost last.
    bound: Vec<Symbol>,
    /// The subset of `bound` that is assignable (`letrec`/unit definitions).
    mutable: BTreeSet<Symbol>,
}

impl Scope {
    fn contains(&self, name: &Symbol) -> bool {
        self.bound.iter().any(|b| b == name)
    }

    fn with<R>(
        &mut self,
        names: &[Symbol],
        mutable: &[Symbol],
        f: impl FnOnce(&mut Scope) -> R,
    ) -> R {
        let depth = self.bound.len();
        self.bound.extend_from_slice(names);
        let newly_mutable: Vec<Symbol> =
            mutable.iter().filter(|m| self.mutable.insert((*m).clone())).cloned().collect();
        let r = f(self);
        self.bound.truncate(depth);
        for m in newly_mutable {
            self.mutable.remove(&m);
        }
        r
    }
}

struct Checker {
    strictness: Strictness,
    errors: Vec<CheckError>,
}

impl Checker {
    fn duplicate_check<'a>(
        &mut self,
        names: impl IntoIterator<Item = &'a Symbol>,
        context: &str,
    ) {
        let mut seen = BTreeSet::new();
        for name in names {
            if !seen.insert(name.clone()) {
                self.errors
                    .push(CheckError::Duplicate { name: name.clone(), context: context.into() });
            }
        }
    }

    fn expr(&mut self, expr: &Expr, scope: &mut Scope) {
        units_trace::count("check/fig10/exprs", 1);
        match expr {
            Expr::Unit(_) => units_trace::count("check/fig10/unit", 1),
            Expr::Compound(_) => units_trace::count("check/fig10/compound", 1),
            Expr::Invoke(_) => units_trace::count("check/fig10/invoke", 1),
            _ => {}
        }
        match expr {
            Expr::Var(x) | Expr::VarAt(x, _) => {
                if !scope.contains(x) {
                    self.errors.push(CheckError::Unbound { name: x.clone() });
                }
            }
            Expr::Lit(_) | Expr::Prim(..) | Expr::Loc(_) | Expr::CellRef(_) | Expr::Data(_) => {}
            Expr::Lambda(lam) => {
                let params: Vec<Symbol> = lam.params.iter().map(|p| p.name.clone()).collect();
                self.duplicate_check(params.iter(), "lambda parameters");
                scope.with(&params, &[], |scope| self.expr(&lam.body, scope));
            }
            Expr::App(f, args) => {
                self.expr(f, scope);
                for a in args {
                    self.expr(a, scope);
                }
            }
            Expr::If(c, t, e) => {
                self.expr(c, scope);
                self.expr(t, scope);
                self.expr(e, scope);
            }
            Expr::Seq(es) | Expr::Tuple(es) => {
                for e in es {
                    self.expr(e, scope);
                }
            }
            Expr::Let(bindings, body) => {
                let names: Vec<Symbol> = bindings.iter().map(|b| b.name.clone()).collect();
                self.duplicate_check(names.iter(), "let bindings");
                for b in bindings {
                    self.expr(&b.expr, scope);
                }
                scope.with(&names, &[], |scope| self.expr(body, scope));
            }
            Expr::Letrec(lr) => {
                let val_names: Vec<Symbol> = lr.vals.iter().map(|d| d.name.clone()).collect();
                let mut all_names = val_names.clone();
                for td in &lr.types {
                    if let TypeDefn::Data(d) = td {
                        all_names.extend(d.bound_val_names());
                    }
                }
                self.duplicate_check(all_names.iter(), "letrec definitions");
                self.duplicate_check(
                    lr.types.iter().map(|t| t.name()),
                    "letrec type definitions",
                );
                scope.with(&all_names, &val_names, |scope| {
                    for (i, d) in lr.vals.iter().enumerate() {
                        // Undetermined at this point: this definition and
                        // every later one. (Datatype operations and
                        // earlier definitions are already determined.)
                        let forbidden: BTreeSet<Symbol> =
                            lr.vals[i..].iter().map(|d| d.name.clone()).collect();
                        if self.strictness == Strictness::Paper
                            && !is_valuable(&d.body, &forbidden)
                        {
                            self.errors.push(CheckError::NotValuable { name: d.name.clone() });
                        }
                        self.expr(&d.body, scope);
                    }
                    self.expr(&lr.body, scope);
                });
            }
            Expr::Set(target, value) => {
                match &**target {
                    Expr::Var(x) | Expr::VarAt(x, _) => {
                        if !scope.contains(x) {
                            self.errors.push(CheckError::Unbound { name: x.clone() });
                        } else if !scope.mutable.contains(x) {
                            self.errors.push(CheckError::Duplicate {
                                name: x.clone(),
                                context: "set! of a non-definition variable (only letrec/unit \
                                          definitions are assignable)"
                                    .into(),
                            });
                        }
                    }
                    Expr::CellRef(_) => {}
                    other => self.expr(other, scope),
                }
                self.expr(value, scope);
            }
            Expr::Proj(_, e) => self.expr(e, scope),
            Expr::Unit(u) => self.unit(u, scope),
            Expr::Compound(c) => self.compound(c, scope),
            Expr::Invoke(inv) => {
                self.expr(&inv.target, scope);
                self.duplicate_check(
                    inv.ty_links.iter().map(|(n, _)| n),
                    "invoke type links",
                );
                self.duplicate_check(
                    inv.val_links.iter().map(|(n, _)| n),
                    "invoke value links",
                );
                for (_, e) in &inv.val_links {
                    self.expr(e, scope);
                }
            }
            Expr::Seal(e, _) => self.expr(e, scope),
            Expr::Variant(v) => self.expr(&v.payload, scope),
        }
    }

    fn unit(&mut self, u: &units_kernel::UnitExpr, scope: &mut Scope) {
        let defined_vals = u.defined_val_names();
        let defined_tys = u.defined_ty_names();
        // Imports and definitions must be pairwise distinct.
        let import_vals: Vec<Symbol> = u.imports.vals.iter().map(|p| p.name.clone()).collect();
        let import_tys: Vec<Symbol> = u.imports.types.iter().map(|p| p.name.clone()).collect();
        self.duplicate_check(
            import_vals.iter().chain(defined_vals.iter()),
            "unit imports and definitions",
        );
        self.duplicate_check(
            import_tys.iter().chain(defined_tys.iter()),
            "unit type imports and type definitions",
        );
        self.duplicate_check(u.exports.names(), "unit exports");
        // Every export must be defined.
        for port in &u.exports.vals {
            if !defined_vals.contains(&port.name) {
                self.errors
                    .push(CheckError::ExportUndefined { name: port.name.clone(), is_type: false });
            }
        }
        for port in &u.exports.types {
            if !defined_tys.contains(&port.name) {
                self.errors
                    .push(CheckError::ExportUndefined { name: port.name.clone(), is_type: true });
            }
        }
        // Definitions and the initialization expression see imports and
        // definitions (plus the outer scope — units close over it).
        let mut names = import_vals.clone();
        names.extend(defined_vals.iter().cloned());
        let val_defn_names: Vec<Symbol> = u.vals.iter().map(|d| d.name.clone()).collect();
        scope.with(&names, &val_defn_names, |scope| {
            for (i, d) in u.vals.iter().enumerate() {
                // Imports are always undetermined for valuability: a
                // linked import may be a sibling constituent's definition
                // that runs later in the merged order. Definitions at or
                // after this one are undetermined too.
                let forbidden: BTreeSet<Symbol> = import_vals
                    .iter()
                    .cloned()
                    .chain(u.vals[i..].iter().map(|d| d.name.clone()))
                    .collect();
                if self.strictness == Strictness::Paper && !is_valuable(&d.body, &forbidden) {
                    self.errors.push(CheckError::NotValuable { name: d.name.clone() });
                }
                self.expr(&d.body, scope);
            }
            self.expr(&u.init, scope);
        });
    }

    fn compound(&mut self, c: &units_kernel::CompoundExpr, scope: &mut Scope) {
        // Linking happens in the compound's *outer* namespace: a provide
        // named `x` inside a constituent occupies the outer name chosen by
        // its clause's rename pairs (or `x` itself). Imports and every
        // provides set must be pairwise distinct there, per namespace.
        let val_space: Vec<Symbol> = c
            .imports
            .vals
            .iter()
            .map(|p| p.name.clone())
            .chain(c.links.iter().flat_map(|l| {
                l.provides.vals.iter().map(|p| l.renames.outer_export_val(&p.name).clone())
            }))
            .collect();
        self.duplicate_check(val_space.iter(), "compound imports and provided values");
        let ty_space: Vec<Symbol> = c
            .imports
            .types
            .iter()
            .map(|p| p.name.clone())
            .chain(c.links.iter().flat_map(|l| {
                l.provides.types.iter().map(|p| l.renames.outer_export_ty(&p.name).clone())
            }))
            .collect();
        self.duplicate_check(ty_space.iter(), "compound imports and provided types");
        self.duplicate_check(c.exports.names(), "compound exports");

        // Each constituent's `with` must be satisfied — through its
        // rename pairs — by the compound's imports or by another
        // constituent's provides.
        for (i, link) in c.links.iter().enumerate() {
            let satisfiable_val = |outer: &Symbol| {
                c.imports.val_port(outer).is_some()
                    || c.links.iter().enumerate().any(|(j, other)| {
                        j != i
                            && other
                                .provides
                                .vals
                                .iter()
                                .any(|p| other.renames.outer_export_val(&p.name) == outer)
                    })
            };
            let satisfiable_ty = |outer: &Symbol| {
                c.imports.ty_port(outer).is_some()
                    || c.links.iter().enumerate().any(|(j, other)| {
                        j != i
                            && other
                                .provides
                                .types
                                .iter()
                                .any(|p| other.renames.outer_export_ty(&p.name) == outer)
                    })
            };
            for port in &link.with.vals {
                let outer = link.renames.outer_import_val(&port.name);
                if !satisfiable_val(outer) {
                    self.errors
                        .push(CheckError::UnsatisfiedLink { name: outer.clone(), clause: i });
                }
            }
            for port in &link.with.types {
                let outer = link.renames.outer_import_ty(&port.name);
                if !satisfiable_ty(outer) {
                    self.errors
                        .push(CheckError::UnsatisfiedLink { name: outer.clone(), clause: i });
                }
            }
            self.duplicate_check(link.with.names(), "link clause `with`");
            self.duplicate_check(link.provides.names(), "link clause `provides`");
        }

        // Exports must be provided (under outer names).
        let provided_vals: BTreeSet<Symbol> = c
            .links
            .iter()
            .flat_map(|l| {
                l.provides
                    .vals
                    .iter()
                    .map(|p| l.renames.outer_export_val(&p.name).clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        let provided_tys: BTreeSet<Symbol> = c
            .links
            .iter()
            .flat_map(|l| {
                l.provides
                    .types
                    .iter()
                    .map(|p| l.renames.outer_export_ty(&p.name).clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        for port in &c.exports.vals {
            if !provided_vals.contains(&port.name) {
                self.errors.push(CheckError::ExportNotProvided { name: port.name.clone() });
            }
        }
        for port in &c.exports.types {
            if !provided_tys.contains(&port.name) {
                self.errors.push(CheckError::ExportNotProvided { name: port.name.clone() });
            }
        }

        for link in &c.links {
            self.expr(&link.expr, scope);
        }
    }
}

/// Convenience: returns the combined import/export names of a [`Ports`]
/// pair as sets, used by several callers of the checker.
pub fn port_name_sets(ports: &Ports) -> (BTreeSet<Symbol>, BTreeSet<Symbol>) {
    (ports.ty_names(), ports.val_names())
}

#[cfg(test)]
mod tests {
    use super::*;
    use units_syntax::parse_expr;

    fn check(src: &str) -> Result<(), Vec<CheckError>> {
        context_check(&parse_expr(src).unwrap(), Strictness::Paper)
    }

    fn check_lax(src: &str) -> Result<(), Vec<CheckError>> {
        context_check(&parse_expr(src).unwrap(), Strictness::MzScheme)
    }

    #[test]
    fn accepts_the_even_odd_unit() {
        check(
            "(unit (import even) (export odd)
               (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
               (init (odd 13)))",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unbound_variables() {
        let errs = check("(+ x 1)").unwrap_err();
        assert!(matches!(&errs[0], CheckError::Unbound { name } if name.as_str() == "x"));
    }

    #[test]
    fn rejects_duplicate_definitions() {
        let errs = check("(unit (import) (export) (define x 1) (define x 2))").unwrap_err();
        assert!(matches!(&errs[0], CheckError::Duplicate { name, .. } if name.as_str() == "x"));
    }

    #[test]
    fn rejects_import_definition_clash() {
        let errs = check("(unit (import x) (export) (define x 1))").unwrap_err();
        assert!(matches!(&errs[0], CheckError::Duplicate { name, .. } if name.as_str() == "x"));
    }

    #[test]
    fn rejects_undefined_exports() {
        let errs = check("(unit (import) (export ghost))").unwrap_err();
        assert!(
            matches!(&errs[0], CheckError::ExportUndefined { name, .. } if name.as_str() == "ghost")
        );
    }

    #[test]
    fn rejects_unprovided_compound_exports() {
        let errs = check(
            "(compound (import) (export missing)
               (link ((unit (import) (export)) (with) (provides))))",
        )
        .unwrap_err();
        assert!(matches!(&errs[0], CheckError::ExportNotProvided { name } if name.as_str() == "missing"));
    }

    #[test]
    fn rejects_unsatisfiable_with_clause() {
        let errs = check(
            "(compound (import) (export)
               (link ((unit (import x) (export)) (with x) (provides))))",
        )
        .unwrap_err();
        assert!(
            matches!(&errs[0], CheckError::UnsatisfiedLink { name, clause: 0 } if name.as_str() == "x")
        );
    }

    #[test]
    fn accepts_cyclic_linking() {
        // Links may flow in both directions (paper §3.2: "Linking can
        // connect units in a mutually recursive manner").
        check(
            "(compound (import) (export)
               (link ((unit (import b) (export a) (define a (lambda () (b))))
                      (with b) (provides a))
                     ((unit (import a) (export b) (define b (lambda () (a))))
                      (with a) (provides b))))",
        )
        .unwrap();
    }

    #[test]
    fn rejects_nonvaluable_definitions_in_paper_mode() {
        let errs = check("(unit (import) (export) (define x (+ 1 2)))").unwrap_err();
        assert!(matches!(&errs[0], CheckError::NotValuable { name } if name.as_str() == "x"));
        // MzScheme mode permits it.
        check_lax("(unit (import) (export) (define x (+ 1 2)))").unwrap();
    }

    #[test]
    fn rejects_forward_reference_in_definition_position() {
        let errs = check("(unit (import) (export) (define x y) (define y 1))").unwrap_err();
        assert!(matches!(&errs[0], CheckError::NotValuable { name } if name.as_str() == "x"));
    }

    #[test]
    fn set_requires_a_definition_variable() {
        // OK: assigning a unit definition from the init expression.
        check("(unit (import) (export) (define x 1) (init (set! x 2)))").unwrap();
        // Not OK: assigning a lambda parameter.
        assert!(check("(lambda (p) (set! p 1))").is_err());
        // Not OK: assigning a let binding.
        assert!(check("(let ((x 1)) (set! x 2))").is_err());
    }

    #[test]
    fn units_close_over_outer_scope() {
        check(
            "(lambda (outer)
               (unit (import) (export) (define f (lambda () outer))))",
        )
        .unwrap();
    }

    #[test]
    fn invoke_link_names_must_be_distinct() {
        let errs = check("(invoke (unit (import x) (export)) (val x 1) (val x 2))").unwrap_err();
        assert!(matches!(&errs[0], CheckError::Duplicate { name, .. } if name.as_str() == "x"));
    }

    #[test]
    fn multiple_errors_are_accumulated() {
        let errs = check("(unit (import) (export ghost1 ghost2))").unwrap_err();
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn datatype_operation_names_count_as_definitions() {
        let errs = check(
            "(unit (import) (export)
               (datatype t (mk unmk int) t?)
               (define mk 1))",
        )
        .unwrap_err();
        assert!(matches!(&errs[0], CheckError::Duplicate { name, .. } if name.as_str() == "mk"));
    }
}
