//! Checker diagnostics.
//!
//! Every rejection the checkers can produce is a [`CheckError`]; the
//! variants map onto the side conditions of the paper's rules (Figs. 10,
//! 14, 15, 17, 18, 19) so tests can assert *which* rule fired.

use std::fmt;

use units_kernel::{Kind, Symbol, Ty};

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// A name is declared twice where the rules require distinctness
    /// (Fig. 10 / Fig. 15 side conditions).
    Duplicate {
        /// The offending name.
        name: Symbol,
        /// Where it was duplicated (e.g. "unit imports and definitions").
        context: String,
    },
    /// An exported name has no definition ("all exported variables must be
    /// defined within the unit").
    ExportUndefined {
        /// The undefined export.
        name: Symbol,
        /// `true` when a type export, `false` for a value export.
        is_type: bool,
    },
    /// A variable occurrence is not bound.
    Unbound {
        /// The unbound variable.
        name: Symbol,
    },
    /// A type variable occurrence is not bound.
    UnboundTy {
        /// The unbound type variable.
        name: Symbol,
    },
    /// A `with` name of a compound link clause is satisfied by neither the
    /// compound's imports nor another constituent's `provides` (Fig. 10's
    /// `x̄w1 ⊆ x̄i ∪ x̄p2` condition).
    UnsatisfiedLink {
        /// The name that nothing supplies.
        name: Symbol,
        /// Index of the link clause that wanted it.
        clause: usize,
    },
    /// A compound export is not provided by any constituent
    /// (`x̄e ⊆ x̄p1 ∪ x̄p2`).
    ExportNotProvided {
        /// The unprovided export.
        name: Symbol,
    },
    /// A definition's right-hand side is not *valuable* (Harper–Stone
    /// restriction of §4.1.1).
    NotValuable {
        /// The definition whose body is rejected.
        name: Symbol,
    },
    /// Two types failed to match where the rules require subtyping.
    Mismatch {
        /// The type required by the context.
        expected: Ty,
        /// The type actually found.
        found: Ty,
        /// Which rule or position required it.
        context: String,
    },
    /// A signature subtype check failed (Fig. 14/17).
    NotSubsignature {
        /// Human-readable reason produced by the subtype checker.
        reason: String,
        /// Which rule or position required it.
        context: String,
    },
    /// Kinds disagree.
    KindMismatch {
        /// The type variable at issue.
        name: Symbol,
        /// The kind required.
        expected: Kind,
        /// The kind found.
        found: Kind,
    },
    /// An application's arity does not match the function type.
    Arity {
        /// Parameters the function type has.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// A non-function was applied.
    NotAFunction {
        /// The type in operator position.
        found: Ty,
    },
    /// A non-tuple was projected.
    NotATuple {
        /// The type in projection position.
        found: Ty,
    },
    /// `invoke`/`compound` applied to an expression that is not a unit.
    NotAUnit {
        /// The type found where a signature was required.
        found: Ty,
    },
    /// Static levels require annotations the program omitted.
    MissingAnnotation {
        /// What is missing an annotation (parameter, definition, port…).
        what: String,
        /// The name involved.
        name: Symbol,
    },
    /// A form is not part of the selected language level (e.g. a type
    /// equation in UNITc).
    UnsupportedAtLevel {
        /// Description of the form.
        form: String,
        /// The level's name.
        level: String,
    },
    /// An `invoke` leaves an import unsatisfied.
    MissingInvokeLink {
        /// The unsatisfied import.
        name: Symbol,
        /// `true` when a type import.
        is_type: bool,
    },
    /// The type of a unit's initialization expression mentions a type that
    /// does not survive the unit's boundary (Fig. 15's `FTV(τb) ∩ t̄e = ∅`
    /// condition, extended to local types).
    InitTypeEscape {
        /// The escaping type variable.
        name: Symbol,
    },
    /// A locally defined type occurs in an exported value's type without
    /// being exported itself.
    TypeEscape {
        /// The escaping type variable.
        name: Symbol,
        /// The export whose type mentions it.
        export: Symbol,
    },
    /// Type equations form a cycle (rejected by the Fig. 19 side
    /// condition `τa ∝ ti ⇒ τi ∝̸ ta`).
    CyclicTypeEquation {
        /// A type variable on the cycle.
        name: Symbol,
    },
    /// Linking two units would create a cyclic type definition (the UNITe
    /// compound rule's dependency test).
    CyclicLink {
        /// A type variable on the would-be cycle.
        name: Symbol,
    },
    /// Substitution failed because it would capture an interface name.
    Capture {
        /// The interface name.
        binder: Symbol,
    },
    /// A primitive was used with the wrong number of type arguments.
    PrimInstantiation {
        /// The primitive's name.
        prim: &'static str,
        /// Type arguments required.
        expected: usize,
        /// Type arguments given.
        found: usize,
    },
    /// A fault deliberately fired by an armed
    /// `units_trace::faults::FaultPlane` schedule while the checker
    /// ran. Never occurs in production builds (the `faults` feature
    /// compiles the plane out).
    Injected {
        /// The injection point that fired (e.g. `"check/program"`).
        site: &'static str,
        /// The 1-based trip count at that site when it fired.
        hit: u64,
    },
}

impl CheckError {
    /// The paper figure (or section) whose rule rejected the program —
    /// the stable rule name `units::Error`'s `Display` reports.
    pub fn figure(&self) -> &'static str {
        match self {
            CheckError::Duplicate { .. }
            | CheckError::ExportUndefined { .. }
            | CheckError::Unbound { .. }
            | CheckError::UnsatisfiedLink { .. }
            | CheckError::ExportNotProvided { .. }
            | CheckError::NotValuable { .. } => "Fig. 10",
            CheckError::NotSubsignature { .. } => "Fig. 14/17",
            CheckError::Mismatch { .. }
            | CheckError::Arity { .. }
            | CheckError::NotAFunction { .. }
            | CheckError::NotATuple { .. }
            | CheckError::NotAUnit { .. }
            | CheckError::MissingAnnotation { .. }
            | CheckError::MissingInvokeLink { .. }
            | CheckError::InitTypeEscape { .. }
            | CheckError::TypeEscape { .. }
            | CheckError::PrimInstantiation { .. }
            | CheckError::UnboundTy { .. } => "Fig. 15",
            CheckError::KindMismatch { .. }
            | CheckError::CyclicTypeEquation { .. }
            | CheckError::CyclicLink { .. } => "Fig. 19",
            CheckError::Capture { .. } => "Fig. 18",
            CheckError::UnsupportedAtLevel { .. } => "§4.1.1",
            // Not a paper rule: the deterministic fault plane
            // (DESIGN.md §10) fired inside the checker.
            CheckError::Injected { .. } => "§fault-plane",
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Duplicate { name, context } => {
                write!(f, "duplicate name `{name}` in {context}")
            }
            CheckError::ExportUndefined { name, is_type } => {
                let what = if *is_type { "type" } else { "value" };
                write!(f, "exported {what} `{name}` is not defined in the unit")
            }
            CheckError::Unbound { name } => write!(f, "unbound variable `{name}`"),
            CheckError::UnboundTy { name } => write!(f, "unbound type variable `{name}`"),
            CheckError::UnsatisfiedLink { name, clause } => write!(
                f,
                "link clause {clause} imports `{name}`, which neither the compound's imports nor another constituent provides"
            ),
            CheckError::ExportNotProvided { name } => {
                write!(f, "compound export `{name}` is not provided by any constituent")
            }
            CheckError::NotValuable { name } => write!(
                f,
                "definition of `{name}` is not valuable (it may diverge, have effects, or read an undetermined definition)"
            ),
            CheckError::Mismatch { expected, found, context } => {
                write!(f, "type mismatch in {context}: expected {expected}, found {found}")
            }
            CheckError::NotSubsignature { reason, context } => {
                write!(f, "signature mismatch in {context}: {reason}")
            }
            CheckError::KindMismatch { name, expected, found } => {
                write!(f, "kind mismatch for `{name}`: expected {expected}, found {found}")
            }
            CheckError::Arity { expected, found } => {
                write!(f, "arity mismatch: function takes {expected} argument(s), found {found}")
            }
            CheckError::NotAFunction { found } => {
                write!(f, "application of a non-function of type {found}")
            }
            CheckError::NotATuple { found } => {
                write!(f, "projection from a non-tuple of type {found}")
            }
            CheckError::NotAUnit { found } => {
                write!(f, "expected a unit (signature type), found {found}")
            }
            CheckError::MissingAnnotation { what, name } => {
                write!(f, "statically typed units require a type annotation on {what} `{name}`")
            }
            CheckError::UnsupportedAtLevel { form, level } => {
                write!(f, "{form} is not part of {level}")
            }
            CheckError::MissingInvokeLink { name, is_type } => {
                let what = if *is_type { "type" } else { "value" };
                write!(f, "invoke does not supply the unit's {what} import `{name}`")
            }
            CheckError::InitTypeEscape { name } => write!(
                f,
                "the initialization expression's type mentions `{name}`, which does not survive the unit boundary"
            ),
            CheckError::TypeEscape { name, export } => write!(
                f,
                "export `{export}`'s type mentions local type `{name}`, which is not exported"
            ),
            CheckError::CyclicTypeEquation { name } => {
                write!(f, "type equations form a cycle through `{name}`")
            }
            CheckError::CyclicLink { name } => {
                write!(f, "linking would create a cyclic type definition through `{name}`")
            }
            CheckError::Capture { binder } => write!(
                f,
                "type substitution would capture interface name `{binder}`"
            ),
            CheckError::PrimInstantiation { prim, expected, found } => write!(
                f,
                "primitive `{prim}` takes {expected} type argument(s), found {found}"
            ),
            CheckError::Injected { site, hit } => {
                write!(f, "injected fault at {site} (hit {hit})")
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl From<units_kernel::CaptureError> for CheckError {
    fn from(err: units_kernel::CaptureError) -> Self {
        CheckError::Capture { binder: err.binder }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CheckError::Duplicate { name: "db".into(), context: "unit exports".into() };
        assert_eq!(e.to_string(), "duplicate name `db` in unit exports");

        let e = CheckError::Mismatch {
            expected: Ty::Int,
            found: Ty::Bool,
            context: "argument 1".into(),
        };
        assert!(e.to_string().contains("expected int, found bool"));
    }

    #[test]
    fn capture_errors_convert() {
        let e: CheckError = units_kernel::CaptureError { binder: "t".into() }.into();
        assert_eq!(e, CheckError::Capture { binder: "t".into() });
    }
}

#[cfg(test)]
mod display_coverage {
    use super::*;

    /// Every variant renders a non-empty, informative message
    /// (C-DEBUG-NONEMPTY for user-facing errors).
    #[test]
    fn all_variants_display_informatively() {
        let cases: Vec<CheckError> = vec![
            CheckError::Duplicate { name: "x".into(), context: "c".into() },
            CheckError::ExportUndefined { name: "x".into(), is_type: true },
            CheckError::Unbound { name: "x".into() },
            CheckError::UnboundTy { name: "t".into() },
            CheckError::UnsatisfiedLink { name: "x".into(), clause: 1 },
            CheckError::ExportNotProvided { name: "x".into() },
            CheckError::NotValuable { name: "x".into() },
            CheckError::Mismatch { expected: Ty::Int, found: Ty::Bool, context: "c".into() },
            CheckError::NotSubsignature { reason: "r".into(), context: "c".into() },
            CheckError::KindMismatch {
                name: "t".into(),
                expected: Kind::Star,
                found: Kind::arrow(Kind::Star, Kind::Star),
            },
            CheckError::Arity { expected: 2, found: 1 },
            CheckError::NotAFunction { found: Ty::Int },
            CheckError::NotATuple { found: Ty::Int },
            CheckError::NotAUnit { found: Ty::Int },
            CheckError::MissingAnnotation { what: "parameter".into(), name: "x".into() },
            CheckError::UnsupportedAtLevel { form: "f".into(), level: "UNITc".into() },
            CheckError::MissingInvokeLink { name: "x".into(), is_type: false },
            CheckError::InitTypeEscape { name: "t".into() },
            CheckError::TypeEscape { name: "t".into(), export: "x".into() },
            CheckError::CyclicTypeEquation { name: "t".into() },
            CheckError::CyclicLink { name: "t".into() },
            CheckError::Capture { binder: "t".into() },
            CheckError::PrimInstantiation { prim: "fail", expected: 1, found: 0 },
            CheckError::Injected { site: "check/program", hit: 1 },
        ];
        for err in cases {
            let shown = err.to_string();
            assert!(shown.len() > 8, "too terse: {shown}");
            assert!(!shown.ends_with('.'), "no trailing punctuation: {shown}");
            assert_eq!(shown, shown.trim());
            let fig = err.figure();
            assert!(
                fig.starts_with("Fig.") || fig.starts_with('§'),
                "rule name must cite the paper: {fig}"
            );
        }
    }
}
