//! Type checking for UNITc (Fig. 15) and UNITe (Fig. 19).
//!
//! One checker covers both calculi, gated by [`Level`]:
//!
//! * [`Level::Constructed`] — UNITc: datatype definitions, signature
//!   subtyping, no type equations;
//! * [`Level::Equations`] — UNITe: adds type equations (`alias`),
//!   `depends` tracking in derived signatures, and the cyclic-link test in
//!   the `compound` rule.
//!
//! Derived unit signatures never carry `where` equations: a unit's
//! non-exported abbreviations are expanded away in its interface types,
//! exactly as §5.1 observes ("the resulting unit and signature are
//! equivalent to the unit and signature that expands env in all type
//! expressions"). Translucent signatures arise only where the programmer
//! writes them (`seal`, annotations), and subtyping treats them
//! transparently.
//!
//! Run [`crate::context_check`] first; this checker assumes the Fig. 10
//! conditions (distinctness, exports-defined, scoping) already hold.

use std::collections::{BTreeSet, HashMap};

use units_kernel::{
    Depend, Expr, Kind, Ports, Signature, Symbol, Ty, TyPort, TypeDefn, UnitExpr, ValPort,
};

use crate::diag::CheckError;
use crate::env::Env;
use crate::expand::{expand_ty, reachable_tys, Equations};
use crate::subtype::subtype;

/// Which calculus a program is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// UNITd — dynamically typed; only [`crate::context_check`] applies.
    Untyped,
    /// UNITc — constructed types (Fig. 15).
    #[default]
    Constructed,
    /// UNITe — type equations and dependencies (Fig. 19).
    Equations,
}

impl Level {
    /// The level's display name, used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Level::Untyped => "UNITd",
            Level::Constructed => "UNITc",
            Level::Equations => "UNITe",
        }
    }
}

/// Infers the type of a closed, context-checked expression.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered, mapped onto the failing
/// rule of Fig. 15/19.
pub fn type_of(expr: &Expr, level: Level) -> Result<Ty, CheckError> {
    let mut env = Env::new();
    type_of_in(expr, level, &mut env)
}

/// Infers a type in a caller-supplied environment (used by the facade to
/// type-check against preludes).
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered.
pub fn type_of_in(expr: &Expr, level: Level, env: &mut Env) -> Result<Ty, CheckError> {
    let mut ck = Typer { level, pending: Vec::new() };
    ck.infer(env, expr)
}

struct Typer {
    level: Level,
    /// Names of definitions currently being processed whose types are not
    /// yet known (unannotated `letrec`/unit definitions).
    pending: Vec<Symbol>,
}

impl Typer {
    fn eqs(&self, env: &Env) -> Equations {
        Equations::from_pairs(env.equations().iter().cloned())
    }

    fn check_sub(
        &self,
        env: &Env,
        found: &Ty,
        expected: &Ty,
        context: &str,
    ) -> Result<(), CheckError> {
        subtype(&self.eqs(env), found, expected).map_err(|e| {
            if let Ty::Sig(_) = expected {
                e.into_check_error(context)
            } else {
                CheckError::Mismatch {
                    expected: expected.clone(),
                    found: found.clone(),
                    context: context.to_string(),
                }
            }
        })
    }

    /// Well-formedness `Γ ⊢ τ :: Ω`.
    fn wf_ty(&mut self, env: &mut Env, ty: &Ty) -> Result<(), CheckError> {
        match ty {
            Ty::Var(t) => match env.ty_kind(t) {
                Some(k) if k.is_star() => Ok(()),
                Some(k) => Err(CheckError::KindMismatch {
                    name: t.clone(),
                    expected: Kind::Star,
                    found: k.clone(),
                }),
                None => Err(CheckError::UnboundTy { name: t.clone() }),
            },
            Ty::Int | Ty::Bool | Ty::Str | Ty::Void => Ok(()),
            Ty::Arrow(params, ret) => {
                for p in params {
                    self.wf_ty(env, p)?;
                }
                self.wf_ty(env, ret)
            }
            Ty::Tuple(items) => items.iter().try_for_each(|i| self.wf_ty(env, i)),
            Ty::Hash(elem) => self.wf_ty(env, elem),
            Ty::Sig(sig) => self.wf_sig(env, sig),
        }
    }

    /// Well-formedness of a signature (Fig. 15's first rule, extended with
    /// equations and depends for UNITe).
    fn wf_sig(&mut self, env: &mut Env, sig: &Signature) -> Result<(), CheckError> {
        if (!sig.depends.is_empty() || !sig.equations.is_empty())
            && self.level != Level::Equations
        {
            return Err(CheckError::UnsupportedAtLevel {
                form: "a signature with `depends` or `where` clauses".into(),
                level: self.level.name().into(),
            });
        }
        let mark = env.mark();
        let result = (|| {
            // Fig. 15's first rule: the signature's port names must be
            // distinct per namespace.
            let mut seen_tys = BTreeSet::new();
            for tp in sig
                .imports
                .types
                .iter()
                .chain(&sig.exports.types)
                .map(|p| &p.name)
                .chain(sig.equations.iter().map(|e| &e.name))
            {
                if !seen_tys.insert(tp.clone()) {
                    return Err(CheckError::Duplicate {
                        name: tp.clone(),
                        context: "signature type ports".into(),
                    });
                }
            }
            let mut seen_vals = BTreeSet::new();
            for vp in sig.imports.vals.iter().chain(&sig.exports.vals) {
                if !seen_vals.insert(vp.name.clone()) {
                    return Err(CheckError::Duplicate {
                        name: vp.name.clone(),
                        context: "signature value ports".into(),
                    });
                }
            }
            for tp in sig.imports.types.iter().chain(&sig.exports.types) {
                env.bind_ty(tp.name.clone(), tp.kind.clone());
            }
            // Equation names are bound and transparent within the signature.
            let local =
                Equations::from_pairs(sig.equations.iter().map(|e| (e.name.clone(), e.body.clone())));
            local.check_acyclic()?;
            for eq in &sig.equations {
                env.bind_ty(eq.name.clone(), eq.kind.clone());
            }
            for eq in &sig.equations {
                self.wf_ty(env, &eq.body)?;
            }
            for (ports, side) in [(&sig.imports, "import"), (&sig.exports, "export")] {
                for vp in &ports.vals {
                    let Some(ty) = &vp.ty else {
                        return Err(CheckError::MissingAnnotation {
                            what: format!("signature {side} port"),
                            name: vp.name.clone(),
                        });
                    };
                    self.wf_ty(env, ty)?;
                }
            }
            self.wf_ty(env, &sig.init_ty)?;
            // The initialization type cannot depend on exported types.
            let expanded_init = expand_ty(&sig.init_ty, &local)?;
            let mut fvs = BTreeSet::new();
            expanded_init.free_ty_vars(&mut fvs);
            for te in &sig.exports.types {
                if fvs.contains(&te.name) {
                    return Err(CheckError::InitTypeEscape { name: te.name.clone() });
                }
            }
            // Depends endpoints must be interface types.
            for d in &sig.depends {
                if sig.exports.ty_port(&d.export).is_none()
                    && !sig.equations.iter().any(|e| e.name == d.export)
                {
                    return Err(CheckError::UnboundTy { name: d.export.clone() });
                }
                if sig.imports.ty_port(&d.import).is_none() {
                    return Err(CheckError::UnboundTy { name: d.import.clone() });
                }
            }
            Ok(())
        })();
        env.restore(mark);
        result
    }

    fn infer(&mut self, env: &mut Env, expr: &Expr) -> Result<Ty, CheckError> {
        // One typing rule fires per node: Fig. 15 for UNITc, Fig. 19
        // for UNITe (UNITd never reaches the typer).
        units_trace::count(
            match self.level {
                Level::Equations => "check/fig19/rules",
                _ => "check/fig15/rules",
            },
            1,
        );
        match expr {
            Expr::Var(x) => match env.val_ty(x) {
                Some(ty) => Ok(ty.clone()),
                None if self.pending.contains(x) => Err(CheckError::MissingAnnotation {
                    what: "recursively used definition".into(),
                    name: x.clone(),
                }),
                None => Err(CheckError::Unbound { name: x.clone() }),
            },
            Expr::Lit(lit) => Ok(lit.ty()),
            Expr::Prim(op, ty_args) => {
                for t in ty_args {
                    self.wf_ty(env, t)?;
                }
                match op.instantiate(ty_args) {
                    Some((params, ret)) => Ok(Ty::arrow(params, ret)),
                    None => Err(CheckError::PrimInstantiation {
                        prim: op.name(),
                        expected: op.ty_arity(),
                        found: ty_args.len(),
                    }),
                }
            }
            Expr::Lambda(lam) => {
                let mark = env.mark();
                let result = (|| {
                    let mut params = Vec::with_capacity(lam.params.len());
                    for p in &lam.params {
                        let Some(ty) = &p.ty else {
                            return Err(CheckError::MissingAnnotation {
                                what: "parameter".into(),
                                name: p.name.clone(),
                            });
                        };
                        self.wf_ty(env, ty)?;
                        env.bind_val(p.name.clone(), ty.clone());
                        params.push(ty.clone());
                    }
                    let body_ty = self.infer(env, &lam.body)?;
                    let ret = match &lam.ret_ty {
                        Some(declared) => {
                            self.wf_ty(env, declared)?;
                            self.check_sub(env, &body_ty, declared, "declared result type")?;
                            declared.clone()
                        }
                        None => body_ty,
                    };
                    Ok(Ty::arrow(params, ret))
                })();
                env.restore(mark);
                result
            }
            Expr::App(f, args) => {
                let f_ty = self.infer(env, f)?;
                let f_ty = expand_ty(&f_ty, &self.eqs(env))?;
                let Ty::Arrow(params, ret) = f_ty else {
                    return Err(CheckError::NotAFunction { found: f_ty });
                };
                if params.len() != args.len() {
                    return Err(CheckError::Arity { expected: params.len(), found: args.len() });
                }
                for (i, (arg, param)) in args.iter().zip(&params).enumerate() {
                    let arg_ty = self.infer(env, arg)?;
                    self.check_sub(env, &arg_ty, param, &format!("argument {}", i + 1))?;
                }
                Ok(*ret)
            }
            Expr::If(c, t, e) => {
                let c_ty = self.infer(env, c)?;
                self.check_sub(env, &c_ty, &Ty::Bool, "if condition")?;
                let t_ty = self.infer(env, t)?;
                let e_ty = self.infer(env, e)?;
                let eqs = self.eqs(env);
                if subtype(&eqs, &t_ty, &e_ty).is_ok() {
                    Ok(e_ty)
                } else if subtype(&eqs, &e_ty, &t_ty).is_ok() {
                    Ok(t_ty)
                } else {
                    Err(CheckError::Mismatch {
                        expected: t_ty,
                        found: e_ty,
                        context: "if branches".into(),
                    })
                }
            }
            Expr::Seq(es) => {
                let mut last = Ty::Void;
                for e in es {
                    last = self.infer(env, e)?;
                }
                Ok(last)
            }
            Expr::Let(bindings, body) => {
                let tys: Vec<Ty> = bindings
                    .iter()
                    .map(|b| self.infer(env, &b.expr))
                    .collect::<Result<_, _>>()?;
                let mark = env.mark();
                for (b, ty) in bindings.iter().zip(tys) {
                    env.bind_val(b.name.clone(), ty);
                }
                let result = self.infer(env, body);
                env.restore(mark);
                result
            }
            Expr::Letrec(lr) => {
                let mark = env.mark();
                let result = (|| {
                    self.bind_type_defns(env, &lr.types)?;
                    self.bind_val_defns(env, &lr.vals)?;
                    self.infer(env, &lr.body)
                })();
                env.restore(mark);
                result
            }
            Expr::Set(target, value) => {
                let Expr::Var(x) = &**target else {
                    return Err(CheckError::UnsupportedAtLevel {
                        form: "machine-internal assignment target".into(),
                        level: self.level.name().into(),
                    });
                };
                let Some(var_ty) = env.val_ty(x).cloned() else {
                    return Err(CheckError::Unbound { name: x.clone() });
                };
                let val_ty = self.infer(env, value)?;
                self.check_sub(env, &val_ty, &var_ty, &format!("assignment to `{x}`"))?;
                Ok(Ty::Void)
            }
            Expr::Tuple(items) => Ok(Ty::Tuple(
                items.iter().map(|i| self.infer(env, i)).collect::<Result<_, _>>()?,
            )),
            Expr::Proj(i, e) => {
                let ty = self.infer(env, e)?;
                let ty = expand_ty(&ty, &self.eqs(env))?;
                let Ty::Tuple(items) = ty else {
                    return Err(CheckError::NotATuple { found: ty });
                };
                items
                    .get(*i)
                    .cloned()
                    .ok_or(CheckError::Arity { expected: items.len(), found: *i })
            }
            Expr::Unit(u) => self.infer_unit(env, u),
            Expr::Compound(c) => self.infer_compound(env, c),
            Expr::Invoke(inv) => self.infer_invoke(env, inv),
            Expr::Seal(e, sig) => {
                self.wf_sig(env, sig)?;
                let ty = self.infer(env, e)?;
                self.check_sub(env, &ty, &Ty::Sig(sig.clone()), "seal")?;
                Ok(Ty::Sig(sig.clone()))
            }
            Expr::Loc(_) | Expr::CellRef(_) | Expr::Data(_) | Expr::Variant(_)
            | Expr::VarAt(..) => {
                Err(CheckError::UnsupportedAtLevel {
                    form: "a machine-internal form".into(),
                    level: self.level.name().into(),
                })
            }
        }
    }

    /// Binds a block's type definitions: datatype names, their operations'
    /// types, and (UNITe) alias equations. Returns the equation set the
    /// block introduces.
    fn bind_type_defns(
        &mut self,
        env: &mut Env,
        types: &[TypeDefn],
    ) -> Result<Equations, CheckError> {
        // All defined type names are in scope in every definition
        // (mutual recursion).
        for td in types {
            match td {
                TypeDefn::Data(d) => env.bind_ty(d.name.clone(), Kind::Star),
                TypeDefn::Alias(a) => {
                    if self.level != Level::Equations {
                        return Err(CheckError::UnsupportedAtLevel {
                            form: format!("type equation `{}`", a.name),
                            level: self.level.name().into(),
                        });
                    }
                    env.bind_eq(a.name.clone(), a.kind.clone(), a.body.clone());
                }
            }
        }
        let eqs = Equations::from_pairs(types.iter().filter_map(|td| match td {
            TypeDefn::Alias(a) => Some((a.name.clone(), a.body.clone())),
            TypeDefn::Data(_) => None,
        }));
        eqs.check_acyclic()?;
        for td in types {
            match td {
                TypeDefn::Data(d) => {
                    let t = Ty::Var(d.name.clone());
                    for v in &d.variants {
                        self.wf_ty(env, &v.payload)?;
                        env.bind_val(
                            v.ctor.clone(),
                            Ty::arrow(vec![v.payload.clone()], t.clone()),
                        );
                        env.bind_val(
                            v.dtor.clone(),
                            Ty::arrow(vec![t.clone()], v.payload.clone()),
                        );
                    }
                    env.bind_val(d.predicate.clone(), Ty::arrow(vec![t.clone()], Ty::Bool));
                }
                TypeDefn::Alias(a) => self.wf_ty(env, &a.body)?,
            }
        }
        Ok(eqs)
    }

    /// Binds a block's value definitions: annotated ones first, then
    /// unannotated ones in order, then re-checks annotated bodies.
    fn bind_val_defns(
        &mut self,
        env: &mut Env,
        vals: &[units_kernel::ValDefn],
    ) -> Result<(), CheckError> {
        for d in vals {
            if let Some(ty) = &d.ty {
                self.wf_ty(env, ty)?;
                env.bind_val(d.name.clone(), ty.clone());
            }
        }
        let pending_base = self.pending.len();
        self.pending
            .extend(vals.iter().filter(|d| d.ty.is_none()).map(|d| d.name.clone()));
        let result = (|| {
            for d in vals {
                if d.ty.is_none() {
                    let inferred = self.infer(env, &d.body)?;
                    env.bind_val(d.name.clone(), inferred);
                    self.pending.retain(|p| p != &d.name);
                }
            }
            for d in vals {
                if let Some(ty) = &d.ty {
                    let body_ty = self.infer(env, &d.body)?;
                    self.check_sub(env, &body_ty, ty, &format!("definition of `{}`", d.name))?;
                }
            }
            Ok(())
        })();
        self.pending.truncate(pending_base);
        result
    }

    /// The Fig. 15/19 `unit` rule.
    fn infer_unit(&mut self, env: &mut Env, u: &UnitExpr) -> Result<Ty, CheckError> {
        let mark = env.mark();
        let result = (|| {
            for tp in &u.imports.types {
                env.bind_ty(tp.name.clone(), tp.kind.clone());
            }
            let eqs = self.bind_type_defns(env, &u.types)?;
            // Import value ports must be annotated and well-formed.
            for vp in &u.imports.vals {
                let Some(ty) = &vp.ty else {
                    return Err(CheckError::MissingAnnotation {
                        what: "unit import".into(),
                        name: vp.name.clone(),
                    });
                };
                self.wf_ty(env, ty)?;
                env.bind_val(vp.name.clone(), ty.clone());
            }
            self.bind_val_defns(env, &u.vals)?;
            let init_ty = self.infer(env, &u.init)?;

            // Assemble the derived signature. Abbreviations are expanded
            // away; only imported types and exported (generative or
            // alias-exported) types may survive in interface positions.
            let exported_ty_names: BTreeSet<Symbol> = u.exports.ty_names();
            let import_ty_names: BTreeSet<Symbol> = u.imports.ty_names();
            let datatype_names: BTreeSet<Symbol> = u
                .types
                .iter()
                .filter_map(|td| match td {
                    TypeDefn::Data(d) => Some(d.name.clone()),
                    TypeDefn::Alias(_) => None,
                })
                .collect();

            let surviving = |name: &Symbol| {
                import_ty_names.contains(name) || exported_ty_names.contains(name)
            };

            // An alias that is itself exported stays opaque in the derived
            // interface; only non-exported abbreviations are expanded away.
            let eqs_visible = eqs.without(&exported_ty_names);

            let mut export_vals = Vec::with_capacity(u.exports.vals.len());
            for port in &u.exports.vals {
                let defined_ty = env
                    .val_ty(&port.name)
                    .cloned()
                    .ok_or_else(|| CheckError::Unbound { name: port.name.clone() })?;
                let ty = match &port.ty {
                    Some(declared) => {
                        self.wf_ty(env, declared)?;
                        self.check_sub(
                            env,
                            &defined_ty,
                            declared,
                            &format!("export `{}`", port.name),
                        )?;
                        declared.clone()
                    }
                    None => defined_ty,
                };
                let ty = expand_ty(&ty, &eqs_visible)?;
                let mut fvs = BTreeSet::new();
                ty.free_ty_vars(&mut fvs);
                for fv in &fvs {
                    if datatype_names.contains(fv) && !surviving(fv) {
                        return Err(CheckError::TypeEscape {
                            name: fv.clone(),
                            export: port.name.clone(),
                        });
                    }
                }
                export_vals.push(ValPort::typed(port.name.clone(), ty));
            }

            // Exported types: datatypes are generative; exported aliases
            // become opaque with computed dependencies (UNITe).
            let mut depends = Vec::new();
            let mut export_tys = Vec::with_capacity(u.exports.types.len());
            for port in &u.exports.types {
                export_tys.push(TyPort { name: port.name.clone(), kind: Kind::Star });
                if let Some(body) = eqs.get(&port.name) {
                    for ti in reachable_tys(body, &eqs) {
                        if import_ty_names.contains(&ti) {
                            depends.push(Depend { export: port.name.clone(), import: ti });
                        }
                    }
                }
            }

            // The initialization type expands *all* abbreviations (even
            // exported ones): it cannot depend on exported types, but an
            // abbreviation's body made of imports is fine.
            let init_ty = expand_ty(&init_ty, &eqs)?;
            let mut fvs = BTreeSet::new();
            init_ty.free_ty_vars(&mut fvs);
            for fv in &fvs {
                if !import_ty_names.contains(fv) {
                    return Err(CheckError::InitTypeEscape { name: fv.clone() });
                }
            }

            let sig = Signature {
                imports: u.imports.clone(),
                exports: Ports { types: export_tys, vals: export_vals },
                depends,
                equations: Vec::new(),
                init_ty,
            };
            Ok(Ty::Sig(Box::new(sig)))
        })();
        env.restore(mark);
        result
    }

    /// The Fig. 15/19 `compound` rule.
    fn infer_compound(
        &mut self,
        env: &mut Env,
        c: &units_kernel::CompoundExpr,
    ) -> Result<Ty, CheckError> {
        // Constituent unit expressions are typed in the *outer*
        // environment (they are ordinary core expressions).
        let mut actual_sigs = Vec::with_capacity(c.links.len());
        for link in &c.links {
            let ty = self.infer(env, &link.expr)?;
            let ty = expand_ty(&ty, &self.eqs(env))?;
            let Ty::Sig(sig) = ty else {
                return Err(CheckError::NotAUnit { found: ty });
            };
            actual_sigs.push(*sig);
        }

        let mark = env.mark();
        let result = (|| {
            // Compound imports and every constituent's provided types are
            // in scope for the clause annotations.
            for tp in &c.imports.types {
                env.bind_ty(tp.name.clone(), tp.kind.clone());
            }
            for link in &c.links {
                for tp in &link.provides.types {
                    env.bind_ty(link.renames.outer_export_ty(&tp.name).clone(), tp.kind.clone());
                }
            }
            for vp in &c.imports.vals {
                let Some(ty) = &vp.ty else {
                    return Err(CheckError::MissingAnnotation {
                        what: "compound import".into(),
                        name: vp.name.clone(),
                    });
                };
                self.wf_ty(env, ty)?;
            }

            // Check each constituent against its clause's expected
            // signature (actual ≤ expected). Clause annotations are
            // written over the constituent's *inner* type names, which are
            // bound for the duration of the clause.
            for (i, (link, actual)) in c.links.iter().zip(&actual_sigs).enumerate() {
                let clause_mark = env.mark();
                for tp in link.with.types.iter().chain(&link.provides.types) {
                    env.bind_ty(tp.name.clone(), tp.kind.clone());
                }
                let result = (|| {
                    let expected = self.clause_signature(env, link, actual, i)?;
                    let eqs = self.eqs(env);
                    subtype(
                        &eqs,
                        &Ty::Sig(Box::new(actual.clone())),
                        &Ty::Sig(Box::new(expected)),
                    )
                    .map_err(|e| e.into_check_error(format!("link clause {i}")))
                })();
                env.restore(clause_mark);
                result?;
            }

            // Linking types: every `with` port must be satisfied by its
            // source — a compound import or another constituent's
            // `provides`, resolved through the clauses' rename pairs — at
            // a compatible type (the ⊆ conditions of the compound rule,
            // Fig. 15).
            for (i, link) in c.links.iter().enumerate() {
                for tp in &link.with.types {
                    let outer = link.renames.outer_import_ty(&tp.name);
                    let source_kind = c
                        .imports
                        .ty_port(outer)
                        .map(|p| &p.kind)
                        .or_else(|| {
                            c.links.iter().enumerate().find_map(|(j, other)| {
                                (j != i)
                                    .then(|| {
                                        other.provides.types.iter().find(|p| {
                                            other.renames.outer_export_ty(&p.name) == outer
                                        })
                                    })
                                    .flatten()
                                    .map(|p| &p.kind)
                            })
                        })
                        .ok_or_else(|| CheckError::UnsatisfiedLink {
                            name: outer.clone(),
                            clause: i,
                        })?;
                    if *source_kind != tp.kind {
                        return Err(CheckError::KindMismatch {
                            name: tp.name.clone(),
                            expected: tp.kind.clone(),
                            found: source_kind.clone(),
                        });
                    }
                }
                for vp in &link.with.vals {
                    let outer = link.renames.outer_import_val(&vp.name);
                    let source_ty = c
                        .imports
                        .val_port(outer)
                        .map(|p| p.ty.clone())
                        .or_else(|| {
                            c.links.iter().enumerate().find_map(|(j, other)| {
                                (j != i)
                                    .then(|| {
                                        other.provides.vals.iter().find(|p| {
                                            other.renames.outer_export_val(&p.name) == outer
                                        })
                                    })
                                    .flatten()
                                    .map(|p| p.ty.clone())
                            })
                        })
                        .ok_or_else(|| CheckError::UnsatisfiedLink {
                            name: outer.clone(),
                            clause: i,
                        })?;
                    if let (Some(source), Some(wanted)) = (source_ty, &vp.ty) {
                        // Find which clause supplied the source so its
                        // annotation can be translated to outer names.
                        let source = match c.links.iter().enumerate().find(|(j, other)| {
                            *j != i
                                && other
                                    .provides
                                    .vals
                                    .iter()
                                    .any(|p| other.renames.outer_export_val(&p.name) == outer)
                        }) {
                            Some((_, provider)) => self.to_outer_ty(provider, &source)?,
                            None => source, // a compound import: already outer
                        };
                        let wanted = self.to_outer_ty(link, wanted)?;
                        self.check_sub(
                            env,
                            &source,
                            &wanted,
                            &format!("link of `{}` into clause {i}", vp.name),
                        )?;
                    }
                }
            }

            // UNITe: linking must not create a cyclic type definition.
            let depends = self.compound_depends(c, &actual_sigs)?;

            // Exports: each must be provided; derive or check its type.
            let mut export_vals = Vec::with_capacity(c.exports.vals.len());
            for port in &c.exports.vals {
                let (provider, provided) = c
                    .links
                    .iter()
                    .find_map(|l| {
                        l.provides
                            .vals
                            .iter()
                            .find(|p| l.renames.outer_export_val(&p.name) == &port.name)
                            .map(|p| (l, p))
                    })
                    .ok_or_else(|| CheckError::ExportNotProvided { name: port.name.clone() })?;
                let provided_ty = provided.ty.clone().ok_or_else(|| {
                    CheckError::MissingAnnotation {
                        what: "link clause `provides` port".into(),
                        name: port.name.clone(),
                    }
                })?;
                let provided_ty = self.to_outer_ty(provider, &provided_ty)?;
                let ty = match &port.ty {
                    Some(declared) => {
                        self.wf_ty(env, declared)?;
                        self.check_sub(
                            env,
                            &provided_ty,
                            declared,
                            &format!("compound export `{}`", port.name),
                        )?;
                        declared.clone()
                    }
                    None => provided_ty,
                };
                export_vals.push(ValPort::typed(port.name.clone(), ty));
            }
            let export_tys: Vec<TyPort> = c
                .exports
                .types
                .iter()
                .map(|p| TyPort { name: p.name.clone(), kind: p.kind.clone() })
                .collect();

            // The compound's interface may only mention its own imports
            // and exports: a hidden provided type leaking into an exported
            // value's type is an escape.
            let visible: BTreeSet<Symbol> = c
                .imports
                .ty_names()
                .into_iter()
                .chain(export_tys.iter().map(|p| p.name.clone()))
                .collect();
            for port in &export_vals {
                let mut fvs = BTreeSet::new();
                if let Some(ty) = &port.ty {
                    ty.free_ty_vars(&mut fvs);
                }
                for fv in fvs {
                    if !visible.contains(&fv) {
                        return Err(CheckError::TypeEscape {
                            name: fv,
                            export: port.name.clone(),
                        });
                    }
                }
            }

            // Initialization expressions are sequenced; the value is the
            // last constituent's.
            let init_ty = match actual_sigs.last() {
                Some(sig) => {
                    let ty = sig.init_ty.clone();
                    let mut fvs = BTreeSet::new();
                    ty.free_ty_vars(&mut fvs);
                    for fv in fvs {
                        if !visible.contains(&fv) {
                            return Err(CheckError::InitTypeEscape { name: fv });
                        }
                    }
                    ty
                }
                None => Ty::Void,
            };

            Ok(Ty::Sig(Box::new(Signature {
                imports: c.imports.clone(),
                exports: Ports { types: export_tys, vals: export_vals },
                depends,
                equations: Vec::new(),
                init_ty,
            })))
        })();
        env.restore(mark);
        result
    }

    /// Translates a clause-annotation type from the constituent's inner
    /// type namespace into the compound's outer linking namespace, using
    /// the clause's rename pairs.
    fn to_outer_ty(
        &self,
        link: &units_kernel::LinkClause,
        ty: &Ty,
    ) -> Result<Ty, CheckError> {
        if link.renames.is_empty() {
            return Ok(ty.clone());
        }
        let mut map: HashMap<Symbol, Ty> = HashMap::new();
        for tp in &link.with.types {
            let outer = link.renames.outer_import_ty(&tp.name);
            if outer != &tp.name {
                map.insert(tp.name.clone(), Ty::Var(outer.clone()));
            }
        }
        for tp in &link.provides.types {
            let outer = link.renames.outer_export_ty(&tp.name);
            if outer != &tp.name {
                map.insert(tp.name.clone(), Ty::Var(outer.clone()));
            }
        }
        Ok(units_kernel::subst_ty(ty, &map)?)
    }

    /// Builds the expected signature `sig[w, p, b]` for one link clause.
    fn clause_signature(
        &mut self,
        env: &mut Env,
        link: &units_kernel::LinkClause,
        actual: &Signature,
        index: usize,
    ) -> Result<Signature, CheckError> {
        let mut imports = Ports { types: link.with.types.clone(), vals: Vec::new() };
        for vp in &link.with.vals {
            let Some(ty) = &vp.ty else {
                return Err(CheckError::MissingAnnotation {
                    what: format!("link clause {index} `with` port"),
                    name: vp.name.clone(),
                });
            };
            self.wf_ty(env, ty)?;
            imports.vals.push(ValPort::typed(vp.name.clone(), ty.clone()));
        }
        let mut exports = Ports { types: link.provides.types.clone(), vals: Vec::new() };
        for vp in &link.provides.vals {
            let Some(ty) = &vp.ty else {
                return Err(CheckError::MissingAnnotation {
                    what: format!("link clause {index} `provides` port"),
                    name: vp.name.clone(),
                });
            };
            self.wf_ty(env, ty)?;
            exports.vals.push(ValPort::typed(vp.name.clone(), ty.clone()));
        }
        Ok(Signature {
            imports,
            exports,
            // The clause inherits the constituent's declared dependencies;
            // the explicit link-graph cycle test below does the real work.
            depends: actual.depends.clone(),
            equations: Vec::new(),
            init_ty: actual.init_ty.clone(),
        })
    }

    /// Traces dependencies through the link graph: detects cyclic type
    /// definitions (UNITe compound rule) and computes the compound's own
    /// `depends` declarations.
    fn compound_depends(
        &self,
        c: &units_kernel::CompoundExpr,
        actual_sigs: &[Signature],
    ) -> Result<Vec<Depend>, CheckError> {
        // Nodes are type names (linking is by name, so a constituent's
        // import `t` and another's export `t` are the same node). Edges
        // point from an exported type to an imported type it depends on.
        let mut edges: HashMap<Symbol, BTreeSet<Symbol>> = HashMap::new();
        for (link, sig) in c.links.iter().zip(actual_sigs) {
            for d in &sig.depends {
                // A constituent's dependency is stated over its inner
                // interface names; linking identifies them with outer
                // names through the clause's rename pairs.
                let export = link.renames.outer_export_ty(&d.export).clone();
                let import = link.renames.outer_import_ty(&d.import).clone();
                edges.entry(export).or_default().insert(import);
            }
        }
        // Cycle detection over the dependency edges.
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Visiting,
            Done,
        }
        fn visit(
            node: &Symbol,
            edges: &HashMap<Symbol, BTreeSet<Symbol>>,
            states: &mut HashMap<Symbol, State>,
        ) -> Result<(), CheckError> {
            match states.get(node) {
                Some(State::Done) => return Ok(()),
                Some(State::Visiting) => {
                    return Err(CheckError::CyclicLink { name: node.clone() })
                }
                None => {}
            }
            states.insert(node.clone(), State::Visiting);
            if let Some(next) = edges.get(node) {
                for n in next {
                    visit(n, edges, states)?;
                }
            }
            states.insert(node.clone(), State::Done);
            Ok(())
        }
        let mut states = HashMap::new();
        for node in edges.keys() {
            visit(node, &edges, &mut states)?;
        }
        // The compound depends on `te ↝ ti` when an exported type reaches
        // an imported type through the graph.
        let import_tys = c.imports.ty_names();
        let mut out = Vec::new();
        for te in &c.exports.types {
            let mut seen = BTreeSet::new();
            let mut work = vec![te.name.clone()];
            while let Some(node) = work.pop() {
                if !seen.insert(node.clone()) {
                    continue;
                }
                if let Some(next) = edges.get(&node) {
                    work.extend(next.iter().cloned());
                }
            }
            for ti in &import_tys {
                if seen.contains(ti) && *ti != te.name {
                    out.push(Depend { export: te.name.clone(), import: ti.clone() });
                }
            }
        }
        Ok(out)
    }

    /// The Fig. 15/19 `invoke` rule.
    fn infer_invoke(
        &mut self,
        env: &mut Env,
        inv: &units_kernel::InvokeExpr,
    ) -> Result<Ty, CheckError> {
        let target_ty = self.infer(env, &inv.target)?;
        let target_ty = expand_ty(&target_ty, &self.eqs(env))?;
        let Ty::Sig(sig) = target_ty else {
            return Err(CheckError::NotAUnit { found: target_ty });
        };

        // Supplied types must cover the unit's type imports.
        let mut ty_map: HashMap<Symbol, Ty> = HashMap::new();
        for (name, ty) in &inv.ty_links {
            self.wf_ty(env, ty)?;
            ty_map.insert(name.clone(), expand_ty(ty, &self.eqs(env))?);
        }
        for tp in &sig.imports.types {
            if !ty_map.contains_key(&tp.name) {
                return Err(CheckError::MissingInvokeLink {
                    name: tp.name.clone(),
                    is_type: true,
                });
            }
        }

        // Supplied values must cover the unit's value imports, at the
        // substituted types.
        let export_tys = sig.exports.ty_names();
        for vp in &sig.imports.vals {
            let Some((_, supplied)) = inv.val_links.iter().find(|(n, _)| n == &vp.name) else {
                return Err(CheckError::MissingInvokeLink {
                    name: vp.name.clone(),
                    is_type: false,
                });
            };
            let declared = vp.ty.clone().ok_or_else(|| CheckError::MissingAnnotation {
                what: "unit import".into(),
                name: vp.name.clone(),
            })?;
            let mut fvs = BTreeSet::new();
            declared.free_ty_vars(&mut fvs);
            if let Some(escapee) = fvs.iter().find(|fv| export_tys.contains(*fv)) {
                return Err(CheckError::TypeEscape {
                    name: escapee.clone(),
                    export: vp.name.clone(),
                });
            }
            let expected = units_kernel::subst_ty(&declared, &ty_map)?;
            let supplied_ty = self.infer(env, supplied)?;
            self.check_sub(env, &supplied_ty, &expected, &format!("invoke link `{}`", vp.name))?;
        }

        // Extra value links are typed (they may have effects) and ignored.
        for (name, e) in &inv.val_links {
            if sig.imports.val_port(name).is_none() {
                self.infer(env, e)?;
            }
        }

        // The result is the initialization type under the supplied types
        // (invocation "immediately expands all type abbreviations").
        Ok(units_kernel::subst_ty(&sig.init_ty, &ty_map)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::CheckError;
    use units_syntax::parse_expr;

    fn infer(src: &str, level: Level) -> Result<Ty, CheckError> {
        let e = parse_expr(src).unwrap_or_else(|err| panic!("parse: {err}"));
        type_of(&e, level)
    }

    fn infer_c(src: &str) -> Result<Ty, CheckError> {
        infer(src, Level::Constructed)
    }

    fn infer_e(src: &str) -> Result<Ty, CheckError> {
        infer(src, Level::Equations)
    }

    fn sig_of(src: &str, level: Level) -> Signature {
        match infer(src, level) {
            Ok(Ty::Sig(sig)) => *sig,
            other => panic!("expected a signature, got {other:?}"),
        }
    }

    #[test]
    fn literals_and_prims() {
        assert_eq!(infer_c("42").unwrap(), Ty::Int);
        assert_eq!(infer_c("(+ 1 2)").unwrap(), Ty::Int);
        assert_eq!(infer_c("(string-append \"a\" \"b\")").unwrap(), Ty::Str);
        assert!(matches!(infer_c("(+ 1 true)"), Err(CheckError::Mismatch { .. })));
        assert!(matches!(infer_c("(+ 1)"), Err(CheckError::Arity { .. })));
        assert!(matches!(infer_c("(1 2)"), Err(CheckError::NotAFunction { .. })));
    }

    #[test]
    fn lambdas_require_annotations() {
        assert_eq!(
            infer_c("(lambda ((n int)) (+ n 1))").unwrap(),
            Ty::arrow(vec![Ty::Int], Ty::Int)
        );
        assert!(matches!(
            infer_c("(lambda (n) n)"),
            Err(CheckError::MissingAnnotation { .. })
        ));
    }

    #[test]
    fn if_requires_bool_and_joins_branches() {
        assert_eq!(infer_c("(if true 1 2)").unwrap(), Ty::Int);
        assert!(matches!(infer_c("(if 1 2 3)"), Err(CheckError::Mismatch { .. })));
        assert!(matches!(infer_c("(if true 1 \"s\")"), Err(CheckError::Mismatch { .. })));
    }

    #[test]
    fn tuples_and_projections() {
        assert_eq!(
            infer_c("(proj 1 (tuple 1 \"a\"))").unwrap(),
            Ty::Str
        );
        assert!(matches!(infer_c("(proj 5 (tuple 1))"), Err(CheckError::Arity { .. })));
        assert!(matches!(infer_c("(proj 0 1)"), Err(CheckError::NotATuple { .. })));
    }

    #[test]
    fn unit_rule_derives_signature() {
        let sig = sig_of(
            "(unit (import (type info) (error (-> str void)))
                   (export (new (-> int)))
                   (define new (-> int) (lambda () 7))
                   (init (new)))",
            Level::Constructed,
        );
        assert_eq!(sig.imports.types.len(), 1);
        assert_eq!(sig.exports.vals[0].ty, Some(Ty::thunk(Ty::Int)));
        assert_eq!(sig.init_ty, Ty::Int);
    }

    #[test]
    fn datatype_operations_are_typed() {
        let sig = sig_of(
            "(unit (import) (export (type db) (mk (-> int db)) (db? (-> db bool)))
                   (datatype db (mk unmk int) (no unno void) db?)
                   (init void))",
            Level::Constructed,
        );
        assert!(sig.exports.ty_port(&"db".into()).is_some());
        assert_eq!(
            sig.exports.val_port(&"mk".into()).unwrap().ty,
            Some(Ty::arrow(vec![Ty::Int], Ty::var("db")))
        );
    }

    #[test]
    fn recursive_datatypes_are_fine() {
        infer_c(
            "(unit (import) (export (type tree))
               (datatype tree (node unnode (tuple tree tree)) (leaf unleaf int) tree?)
               (init void))",
        )
        .unwrap();
    }

    #[test]
    fn init_type_cannot_mention_local_or_exported_types() {
        // Exported datatype in init position.
        let err = infer_c(
            "(unit (import) (export (type db) (mk (-> int db)))
               (datatype db (mk unmk int) db?)
               (init (mk 1)))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::InitTypeEscape { name } if name.as_str() == "db"));
        // Local (non-exported) datatype too.
        let err = infer_c(
            "(unit (import) (export)
               (datatype secret (mk unmk int) secret?)
               (init (mk 1)))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::InitTypeEscape { .. }));
    }

    #[test]
    fn export_types_cannot_leak_local_datatypes() {
        let err = infer_c(
            "(unit (import) (export (get (-> secret)))
               (datatype secret (mk unmk int) secret?)
               (define get (-> secret) (lambda () (mk 1)))
               (init void))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::TypeEscape { name, .. } if name.as_str() == "secret"));
    }

    #[test]
    fn compound_links_types_between_constituents() {
        // A provides type t and f : →t; B consumes them.
        let sig = sig_of(
            "(compound (import) (export (g (-> t bool)) (type t))
               (link ((unit (import) (export (type t) (f (-> t)))
                        (datatype t (mk unmk int) t?)
                        (define f (-> t) (lambda () (mk 1))))
                      (with) (provides (type t) (f (-> t))))
                     ((unit (import (type t) (f (-> t)))
                            (export (g (-> t bool)))
                        (define g (-> t bool) (lambda ((x t)) true)))
                      (with (type t) (f (-> t))) (provides (g (-> t bool))))))",
            Level::Constructed,
        );
        assert!(sig.exports.ty_port(&"t".into()).is_some());
        assert!(sig.is_program());
    }

    #[test]
    fn fig4_bad_type_mismatch_is_rejected() {
        // Gui exports openBook over its *own* opaque db2; Main expects
        // openBook over PhoneBook's db. The subtype check on Main's with
        // clause fails — "db and openBook:db→bool refer to types named db
        // that originate from different units".
        let err = infer_c(
            "(compound (import) (export)
               (link ((unit (import) (export (type db) (new (-> db)))
                        (datatype db (mkdb undb int) db?)
                        (define new (-> db) (lambda () (mkdb 0))))
                      (with) (provides (type db) (new (-> db))))
                     ((unit (import) (export (type db2) (openBook (-> db2 bool)))
                        (datatype db2 (mkg ung int) g?)
                        (define openBook (-> db2 bool) (lambda ((x db2)) true)))
                      (with) (provides (type db2) (openBook (-> db2 bool))))
                     ((unit (import (type db) (new (-> db)) (openBook (-> db bool)))
                            (export)
                        (init (openBook (new))))
                      (with (type db) (new (-> db)) (openBook (-> db bool)))
                      (provides))))",
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                CheckError::Mismatch { .. }
                    | CheckError::UnsatisfiedLink { .. }
                    | CheckError::NotSubsignature { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn fig4_bad_duplicate_db_is_rejected_by_distinctness() {
        // The other reading of Fig. 4: both units provide a type named
        // `db`. The by-name calculus rejects this via the distinctness
        // side condition (checked by context_check).
        let e = parse_expr(
            "(compound (import) (export)
               (link ((unit (import) (export (type db)) (datatype db (a b int) p?))
                      (with) (provides (type db)))
                     ((unit (import) (export (type db)) (datatype db (c d int) q?))
                      (with) (provides (type db)))))",
        )
        .unwrap();
        let errs = crate::context_check(&e, crate::Strictness::Paper).unwrap_err();
        assert!(matches!(&errs[0], CheckError::Duplicate { name, .. } if name.as_str() == "db"));
    }

    #[test]
    fn invoke_complete_program_yields_init_type() {
        assert_eq!(
            infer_c("(invoke (unit (import) (export) (init 42)))").unwrap(),
            Ty::Int
        );
    }

    #[test]
    fn invoke_substitutes_supplied_types() {
        let ty = infer_c(
            "(invoke (unit (import (type info) (get (-> info))) (export)
                       (init (get)))
                     (type info int)
                     (val get (lambda () 9)))",
        )
        .unwrap();
        assert_eq!(ty, Ty::Int);
    }

    #[test]
    fn invoke_missing_links_are_rejected() {
        let err = infer_c(
            "(invoke (unit (import (x int)) (export) (init x)))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::MissingInvokeLink { name, is_type: false } if name.as_str() == "x"));
        let err = infer_c(
            "(invoke (unit (import (type t)) (export) (init void)))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::MissingInvokeLink { is_type: true, .. }));
    }

    #[test]
    fn invoke_link_type_mismatch_is_rejected() {
        let err = infer_c(
            "(invoke (unit (import (x int)) (export) (init x)) (val x true))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::Mismatch { .. }));
    }

    #[test]
    fn aliases_are_unitc_illegal_unite_legal() {
        let src = "(unit (import) (export (f (-> str int)))
                     (alias env (-> str int))
                     (define f env (lambda ((s str)) 0))
                     (init void))";
        assert!(matches!(
            infer_c(src),
            Err(CheckError::UnsupportedAtLevel { .. })
        ));
        // UNITe: ok, and the alias is expanded away in the interface.
        let sig = sig_of(src, Level::Equations);
        assert_eq!(
            sig.exports.val_port(&"f".into()).unwrap().ty,
            Some(Ty::arrow(vec![Ty::Str], Ty::Int))
        );
    }

    #[test]
    fn exported_alias_is_opaque_with_computed_depends() {
        let sig = sig_of(
            "(unit (import (type name) (type value)) (export (type env) (empty env))
               (alias env (-> name value))
               (define empty env (lambda ((n name)) ((inst fail value) \"empty\")))
               (init void))",
            Level::Equations,
        );
        assert!(sig.exports.ty_port(&"env".into()).is_some());
        let deps = sig.depend_set();
        assert!(deps.contains(&Depend::new("env", "name")), "deps: {deps:?}");
        assert!(deps.contains(&Depend::new("env", "value")), "deps: {deps:?}");
        // The exported alias stays opaque in export value types.
        assert_eq!(
            sig.exports.val_port(&"empty".into()).unwrap().ty,
            Some(Ty::var("env"))
        );
    }

    #[test]
    fn cyclic_aliases_are_rejected() {
        let err = infer_e(
            "(letrec ((alias a b) (alias b a)) void)",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::CyclicTypeEquation { .. }));
    }

    #[test]
    fn cyclic_link_of_type_dependencies_is_rejected() {
        // Unit 1: exports alias a = i1 → i1 where i1 is imported (a ↝ i1).
        // Unit 2: exports alias b = i2 → i2 (b ↝ i2). Linking a→i2's
        // position and b→i1's position creates a definitional cycle.
        let err = infer_e(
            "(compound (import) (export)
               (link ((unit (import (type b)) (export (type a))
                        (alias a (-> b b)))
                      (with (type b)) (provides (type a)))
                     ((unit (import (type a)) (export (type b))
                        (alias b (-> a a)))
                      (with (type a)) (provides (type b)))))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::CyclicLink { .. }), "got {err:?}");
    }

    #[test]
    fn acyclic_type_links_propagate_depends() {
        let sig = sig_of(
            "(compound (import (type base)) (export (type a))
               (link ((unit (import (type b)) (export (type a))
                        (alias a (-> b b)))
                      (with (type b)) (provides (type a)))
                     ((unit (import (type base)) (export (type b))
                        (alias b (-> base base)))
                      (with (type base)) (provides (type b)))))",
            Level::Equations,
        );
        assert!(sig.depend_set().contains(&Depend::new("a", "base")), "{:?}", sig.depends);
    }

    #[test]
    fn seal_restricts_a_signature() {
        let ty = infer_c(
            "(seal (unit (import) (export (one int) (two int))
                     (define one int 1) (define two int 2))
                   (sig (import) (export (one int)) (init void)))",
        )
        .unwrap();
        let sig = ty.as_sig().unwrap();
        assert!(sig.exports.val_port(&"one".into()).is_some());
        assert!(sig.exports.val_port(&"two".into()).is_none());
    }

    #[test]
    fn seal_cannot_invent_exports() {
        let err = infer_c(
            "(seal (unit (import) (export))
                   (sig (import) (export (ghost int)) (init void)))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::NotSubsignature { .. }));
    }

    #[test]
    fn set_is_typed() {
        infer_c(
            "(unit (import) (export)
               (define counter int 0)
               (init (set! counter (+ counter 1))))",
        )
        .unwrap();
        let err = infer_c(
            "(unit (import) (export)
               (define counter int 0)
               (init (set! counter \"no\")))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::Mismatch { .. }));
    }

    #[test]
    fn unannotated_definitions_are_inferred_in_order() {
        let sig = sig_of(
            "(unit (import) (export (a int))
               (define a 1)
               (define b (tuple a 2))
               (init void))",
            Level::Constructed,
        );
        // Hmm: `b = (tuple a 2)` reads `a`… which is forbidden by
        // valuability but typable; typing is what we test here.
        assert_eq!(sig.exports.val_port(&"a".into()).unwrap().ty, Some(Ty::Int));
    }

    #[test]
    fn recursive_unannotated_definitions_need_annotations() {
        let err = infer_c(
            "(letrec ((define f (lambda ((n int)) (f n)))) (f 1))",
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::MissingAnnotation { .. }));
        // With an annotation the recursion checks.
        infer_c(
            "(letrec ((define f (-> int int) (lambda ((n int)) (f n)))) (f 1))",
        )
        .unwrap();
    }

    #[test]
    fn hash_prims_are_typed_via_instantiation() {
        assert_eq!(infer_c("((inst hash-new int))").unwrap(), Ty::hash(Ty::Int));
        assert_eq!(
            infer_c("((inst hash-get int) ((inst hash-new int)) \"k\")").unwrap(),
            Ty::Int
        );
        assert!(matches!(
            infer_c("((inst hash-set! int) ((inst hash-new int)) \"k\" true)"),
            Err(CheckError::Mismatch { .. })
        ));
    }
}
