//! Byte-level wire primitives: a growable [`Writer`], a bounds-checked
//! [`Reader`], and the FNV-1a content checksum.
//!
//! Everything is little-endian and length-prefixed. The reader is the
//! robustness boundary of the whole crate: every access is
//! bounds-checked, every length is sanity-checked against the bytes
//! actually remaining (so a bit-flipped length field cannot drive a
//! multi-gigabyte allocation), and every failure is a typed
//! [`DecodeError`] — never a panic. Arbitrary bytes fed to any decoder
//! in this crate must produce `Err`, not undefined structure.

use std::fmt;

/// Why a decode was rejected. Any variant means "treat as cache miss".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The file does not start with the format magic.
    BadMagic,
    /// The format version is not the one this build writes.
    BadVersion(u32),
    /// The crate-version stamp differs — a different build wrote this.
    BadStamp(String),
    /// The `CheckOptions` fingerprint differs from the reader's.
    BadFingerprint,
    /// The raw-source hash in the header does not match the source the
    /// reader is loading (a key collision or a misfiled entry).
    BadSourceHash,
    /// The trailing content checksum does not match the bytes.
    BadChecksum,
    /// A structurally impossible value (bad tag, bad UTF-8, oversized
    /// length, out-of-range index).
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("entry truncated"),
            DecodeError::BadMagic => f.write_str("bad format magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadStamp(s) => write!(f, "written by a different build ({s})"),
            DecodeError::BadFingerprint => f.write_str("check-options fingerprint mismatch"),
            DecodeError::BadSourceHash => f.write_str("raw-source hash mismatch"),
            DecodeError::BadChecksum => f.write_str("content checksum mismatch"),
            DecodeError::Malformed(what) => write!(f, "malformed entry: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Whether a failed decode indicts the file itself (corruption or
/// version skew — quarantine it) or only this read (leave it alone).
impl DecodeError {
    /// `true` when the on-disk file is bad for every possible reader
    /// and should be quarantined; `false` for [`DecodeError::BadSourceHash`],
    /// where the file may be a perfectly healthy entry for a *different*
    /// source that collided on the same key.
    pub fn indicts_file(&self) -> bool {
        !matches!(self, DecodeError::BadSourceHash)
    }
}

/// 64-bit FNV-1a over `bytes` — the trailing content checksum and the
/// header's independent raw-source hash.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before the first write.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw bytes, unprefixed.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize` widened to `u64` (indexes, tags, arities).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// A boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// A collection length (`u64`).
    pub fn len_of(&mut self, len: usize) {
        self.usize(len);
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len_of(s.len());
        self.bytes(s.as_bytes());
    }
}

/// A bounds-checked decode cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// The current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// A little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("take(2)")))
    }

    /// A little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }

    /// A little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    /// A little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }

    /// A little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    /// A `u64` narrowed back to `usize`, rejecting overflow.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::Malformed("usize overflow"))
    }

    /// A strict boolean: exactly 0 or 1.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Malformed("bad bool")),
        }
    }

    /// A collection length, sanity-bounded by the bytes remaining:
    /// every element of every sequence in this format occupies at least
    /// one byte, so a length exceeding `remaining()` is corruption —
    /// reject it *before* any allocation sized by it.
    pub fn len_of(&mut self) -> Result<usize, DecodeError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(DecodeError::Malformed("length exceeds remaining bytes"));
        }
        Ok(len)
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.len_of()?;
        std::str::from_utf8(self.take(len)?).map_err(|_| DecodeError::Malformed("bad utf-8"))
    }

    /// Succeeds only when every byte has been consumed — trailing
    /// garbage is corruption, not padding.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65_535);
        w.u32(123_456_789);
        w.u64(u64::MAX);
        w.i32(-42);
        w.i64(i64::MIN);
        w.bool(true);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_535);
        assert_eq!(r.u32().unwrap(), 123_456_789);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_prefix() {
        let mut w = Writer::new();
        w.u64(99);
        w.str("abcdef");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let outcome = r.u64().and_then(|_| r.str().map(str::to_string));
            assert!(outcome.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // an absurd length field
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.len_of().unwrap_err(), DecodeError::Malformed(_)));
        let mut w = Writer::new();
        w.u64(1_000_000); // plausible but bigger than the buffer
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.len_of().unwrap_err(),
            DecodeError::Malformed("length exceeds remaining bytes")
        );
    }

    #[test]
    fn non_canonical_bools_are_rejected() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool().unwrap_err(), DecodeError::Malformed("bad bool"));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }
}
