//! Crash-safe persistent artifact store for the Units engine.
//!
//! This crate gives compiled artifacts a life beyond the process: a
//! from-scratch binary serialization format for checked+resolved
//! kernel terms and lowered bytecode [`Chunk`]s, plus an on-disk cache
//! directory ([`Store`]) keyed by the engine's existing content
//! hashes. A fresh engine pointed at a warm directory skips parsing,
//! checking, resolution, and lowering entirely — §4.1.6's "one copy of
//! the code", now one copy *on disk* too.
//!
//! Robustness is the design center, not a bolt-on:
//!
//! * **Crash-safe writes** — temp file + `fsync` + atomic rename; a
//!   crash mid-write leaves only swept-on-open garbage ([`Store`]).
//! * **Verified reads** — format magic, format version, a
//!   crate-version build stamp, the engine's `CheckOptions`
//!   fingerprint, an independent hash of the raw source, and a
//!   trailing FNV-1a content checksum all have to agree before a byte
//!   of payload is trusted; structural decode is fully bounds-checked
//!   on top ([`decode_entry`]).
//! * **Typed degradation** — every failure is a cache miss (corrupt
//!   files are quarantined to `corrupt/`), never a panic and never a
//!   wrong answer.
//! * **Concurrent sharing** — lock-free readers, one advisory-locked
//!   writer per directory, losers degrade to read-only.
//!
//! # Entry layout
//!
//! ```text
//! magic        8 bytes   b"UNITCACH"
//! version      u32       FORMAT_VERSION
//! stamp        str       env!("CARGO_PKG_VERSION") of the writer
//! fingerprint  u64       engine CheckOptions/resolve fingerprint
//! source_fnv   u64       FNV-1a of the raw source text
//! payload      u64+bytes length-prefixed sections (terms, chunk)
//! checksum     u64       FNV-1a over everything above
//! ```
//!
//! Like `units-serve`'s JSON layer, everything here is from scratch on
//! `std` — no serialization framework, no external hash crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
mod store;
mod term;
mod wire;

use units_kernel::{Expr, Ty};
use units_runtime::Chunk;

pub use store::{Lookup, Store};
pub use wire::{fnv1a_64, DecodeError, Reader, Writer};

/// The 8-byte format magic at offset 0 of every entry.
pub const MAGIC: &[u8; 8] = b"UNITCACH";

/// The serialization format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// The build stamp written into every entry: artifacts do not cross
/// crate versions (hash functions, term shapes, and opcode sets may
/// all have changed), so a stamp mismatch is version skew.
pub const BUILD_STAMP: &str = env!("CARGO_PKG_VERSION");

/// One persisted artifact: everything the engine computes between
/// parsing and execution.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The checked program term.
    pub expr: Expr,
    /// Its type, for typed levels.
    pub ty: Option<Ty>,
    /// The lexical-address-resolved form, when resolution ran.
    pub resolved: Option<Expr>,
    /// The lowered bytecode, when the writer had lowered it.
    pub chunk: Option<Chunk>,
}

/// Encodes `entry` into a self-verifying byte image.
///
/// `source_fnv` is the FNV-1a of the raw source this artifact was
/// compiled from (guards the key→entry association against u64 key
/// collisions); `fingerprint` is the engine's check-options
/// fingerprint (guards against two configurations sharing a key
/// space).
pub fn encode_entry(entry: &Entry, source_fnv: u64, fingerprint: u64) -> Vec<u8> {
    let mut payload = Writer::new();
    term::write_expr(&mut payload, &entry.expr);
    match &entry.ty {
        None => payload.u8(0),
        Some(ty) => {
            payload.u8(1);
            term::write_ty(&mut payload, ty);
        }
    }
    match &entry.resolved {
        None => payload.u8(0),
        Some(resolved) => {
            payload.u8(1);
            term::write_expr(&mut payload, resolved);
        }
    }
    match &entry.chunk {
        None => payload.u8(0),
        Some(chunk) => {
            payload.u8(1);
            chunk::write_chunk(&mut payload, chunk);
        }
    }
    let payload = payload.into_bytes();

    let mut w = Writer::new();
    w.bytes(MAGIC);
    w.u32(FORMAT_VERSION);
    w.str(BUILD_STAMP);
    w.u64(fingerprint);
    w.u64(source_fnv);
    w.len_of(payload.len());
    w.bytes(&payload);
    let mut bytes = w.into_bytes();
    let sum = fnv1a_64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Decodes and fully verifies an entry image.
///
/// Verification order: magic, format version (both readable in any
/// future layout), trailing checksum over the whole image, then build
/// stamp, fingerprint, source hash, and finally the structural decode
/// of the payload — which must consume every payload byte.
///
/// # Errors
///
/// A typed [`DecodeError`]; [`DecodeError::indicts_file`] says whether
/// the file itself is bad (quarantine) or merely not the entry the
/// caller wanted (plain miss).
pub fn decode_entry(
    bytes: &[u8],
    source_fnv: u64,
    fingerprint: u64,
) -> Result<Entry, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    // Checksum next: nothing beyond the fixed prefix is interpreted
    // until the image as a whole proves intact.
    if bytes.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let body = &bytes[..bytes.len() - 8];
    let stored: [u8; 8] = bytes[bytes.len() - 8..].try_into().expect("8-byte tail");
    if fnv1a_64(body) != u64::from_le_bytes(stored) {
        return Err(DecodeError::BadChecksum);
    }
    let stamp = r.str()?;
    if stamp != BUILD_STAMP {
        return Err(DecodeError::BadStamp(stamp.to_string()));
    }
    if r.u64()? != fingerprint {
        return Err(DecodeError::BadFingerprint);
    }
    if r.u64()? != source_fnv {
        return Err(DecodeError::BadSourceHash);
    }
    let payload_len = r.len_of()?;
    if payload_len != r.remaining().saturating_sub(8) {
        return Err(DecodeError::Malformed("payload length disagrees with image size"));
    }
    let mut p = Reader::new(r.take(payload_len)?);
    let expr = term::read_expr(&mut p)?;
    let ty = match p.u8()? {
        0 => None,
        1 => Some(term::read_ty(&mut p)?),
        _ => return Err(DecodeError::Malformed("bad ty presence tag")),
    };
    let resolved = match p.u8()? {
        0 => None,
        1 => Some(term::read_expr(&mut p)?),
        _ => return Err(DecodeError::Malformed("bad resolved presence tag")),
    };
    let chunk = match p.u8()? {
        0 => None,
        1 => Some(chunk::read_chunk(&mut p)?),
        _ => return Err(DecodeError::Malformed("bad chunk presence tag")),
    };
    p.finish()?;
    Ok(Entry { expr, ty, resolved, chunk })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> Entry {
        let src = "(invoke (unit (import) (export) (init ((lambda (n) (* n n)) 9))))";
        let expr = units_syntax::parse_expr(src).unwrap();
        let resolved = units_compile::resolve_program(&expr);
        let chunk = units_compile::lower_program(&resolved);
        Entry {
            expr,
            ty: Some(Ty::Int),
            resolved: Some(resolved),
            chunk: Some((*chunk).clone()),
        }
    }

    #[test]
    fn entries_round_trip_through_the_full_image() {
        let entry = sample_entry();
        let image = encode_entry(&entry, 111, 222);
        let back = decode_entry(&image, 111, 222).expect("verified decode");
        assert_eq!(back.expr, entry.expr);
        assert_eq!(back.ty, entry.ty);
        assert_eq!(back.resolved, entry.resolved);
        let (a, b) = (back.chunk.unwrap(), entry.chunk.unwrap());
        assert_eq!(a.code, b.code);
        assert_eq!(a.entry, b.entry);
    }

    #[test]
    fn wrong_source_and_wrong_fingerprint_are_typed() {
        let entry = sample_entry();
        let image = encode_entry(&entry, 111, 222);
        assert_eq!(decode_entry(&image, 999, 222).unwrap_err(), DecodeError::BadSourceHash);
        assert!(!DecodeError::BadSourceHash.indicts_file());
        assert_eq!(decode_entry(&image, 111, 999).unwrap_err(), DecodeError::BadFingerprint);
        assert!(DecodeError::BadFingerprint.indicts_file());
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let entry = sample_entry();
        let image = encode_entry(&entry, 111, 222);
        for i in 0..image.len() {
            for mask in [0x01, 0x80] {
                let mut mutated = image.clone();
                mutated[i] ^= mask;
                assert!(
                    decode_entry(&mutated, 111, 222).is_err(),
                    "flip {mask:#x} at byte {i}/{} verified",
                    image.len()
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let entry = sample_entry();
        let image = encode_entry(&entry, 111, 222);
        for cut in 0..image.len() {
            assert!(decode_entry(&image[..cut], 111, 222).is_err(), "{cut}-byte prefix");
        }
        // Zero-length files and pure garbage too.
        assert_eq!(decode_entry(&[], 0, 0).unwrap_err(), DecodeError::Truncated);
        assert!(decode_entry(&[0xff; 64], 0, 0).is_err());
    }

    #[test]
    fn version_skew_is_bad_version() {
        let entry = sample_entry();
        let mut image = encode_entry(&entry, 1, 2);
        // Bump the version field in place and re-stamp the checksum so
        // only the version disagrees.
        let at = MAGIC.len();
        image[at..at + 4].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let body_len = image.len() - 8;
        let sum = fnv1a_64(&image[..body_len]);
        image[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_entry(&image, 1, 2).unwrap_err(),
            DecodeError::BadVersion(FORMAT_VERSION + 1)
        );
    }
}
