//! Codec for lowered bytecode: [`Chunk`], its [`Op`] array, and the
//! pooled side tables.
//!
//! Ops are one tag byte plus fixed-width operands in declaration order.
//! The two ops carrying `&'static str` operands ([`Op::AsUnit`],
//! [`Op::Unsupported`]) write the string and re-intern it through the
//! kernel's leaked symbol table on decode — the lowerer only ever emits
//! a small fixed set of these, so the leak is bounded the same way
//! symbol interning is.
//!
//! The decoded chunk's [`OpProfile`] is freshly sized in `trace` builds
//! and empty otherwise, mirroring `units-compile`'s lowering: profile
//! counters are process-local observability state, never persisted.

use std::sync::Arc;

use units_kernel::Symbol;
use units_runtime::{Chunk, Op, OpProfile, Proto, UnitProto};

use crate::term::{
    read_compound, read_invoke, read_lambda, read_letrec, read_prim, read_signature,
    read_symbol, read_unit, write_compound, write_invoke, write_lambda, write_letrec,
    write_prim, write_signature, write_symbol, write_unit,
};
use crate::wire::{DecodeError, Reader, Writer};

/// Re-interns a decoded string as `&'static str` via the kernel's
/// leaked symbol table (the operand set is small and fixed).
fn static_str(s: &str) -> &'static str {
    Symbol::new(s).as_str()
}

fn write_op(w: &mut Writer, op: &Op) {
    match op {
        Op::Int(n) => {
            w.u8(0);
            w.i64(*n);
        }
        Op::Bool(b) => {
            w.u8(1);
            w.bool(*b);
        }
        Op::Void => w.u8(2),
        Op::Const(i) => {
            w.u8(3);
            w.u32(*i);
        }
        Op::PrimVal(op) => {
            w.u8(4);
            write_prim(w, *op);
        }
        Op::Load { depth, slot, name } => {
            w.u8(5);
            w.u16(*depth);
            w.u16(*slot);
            write_symbol(w, name);
        }
        Op::LoadName(name) => {
            w.u8(6);
            write_symbol(w, name);
        }
        Op::Store { depth, slot, name } => {
            w.u8(7);
            w.u16(*depth);
            w.u16(*slot);
            write_symbol(w, name);
        }
        Op::StoreName(name) => {
            w.u8(8);
            write_symbol(w, name);
        }
        Op::Bind(i) => {
            w.u8(9);
            w.u32(*i);
        }
        Op::BindRec(i) => {
            w.u8(10);
            w.u32(*i);
        }
        Op::InitCell(slot) => {
            w.u8(11);
            w.u16(*slot);
        }
        Op::PopFrame => w.u8(12),
        Op::Jump(offset) => {
            w.u8(13);
            w.i32(*offset);
        }
        Op::JumpIfFalse(offset) => {
            w.u8(14);
            w.i32(*offset);
        }
        Op::MakeClosure(i) => {
            w.u8(15);
            w.u32(*i);
        }
        Op::Call(argc) => {
            w.u8(16);
            w.u16(*argc);
        }
        Op::TailCall(argc) => {
            w.u8(17);
            w.u16(*argc);
        }
        Op::CallPrim { op, argc } => {
            w.u8(18);
            write_prim(w, *op);
            w.u16(*argc);
        }
        Op::CallPrimImm { op, imm, rev } => {
            w.u8(19);
            write_prim(w, *op);
            w.i32(*imm);
            w.bool(*rev);
        }
        Op::Return => w.u8(20),
        Op::MakeTuple(n) => {
            w.u8(21);
            w.u16(*n);
        }
        Op::Proj(i) => {
            w.u8(22);
            w.u32(*i);
        }
        Op::Pop => w.u8(23),
        Op::MakeUnit(i) => {
            w.u8(24);
            w.u32(*i);
        }
        Op::AsUnit(rule) => {
            w.u8(25);
            w.str(rule);
        }
        Op::CheckLink { compound, link } => {
            w.u8(26);
            w.u32(*compound);
            w.u32(*link);
        }
        Op::MakeCompound(i) => {
            w.u8(27);
            w.u32(*i);
        }
        Op::Invoke(i) => {
            w.u8(28);
            w.u32(*i);
        }
        Op::InvokeUnit(i) => {
            w.u8(29);
            w.u32(*i);
        }
        Op::Seal(i) => {
            w.u8(30);
            w.u32(*i);
        }
        Op::Unsupported(what) => {
            w.u8(31);
            w.str(what);
        }
    }
}

fn read_op(r: &mut Reader) -> Result<Op, DecodeError> {
    Ok(match r.u8()? {
        0 => Op::Int(r.i64()?),
        1 => Op::Bool(r.bool()?),
        2 => Op::Void,
        3 => Op::Const(r.u32()?),
        4 => Op::PrimVal(read_prim(r)?),
        5 => Op::Load { depth: r.u16()?, slot: r.u16()?, name: read_symbol(r)? },
        6 => Op::LoadName(read_symbol(r)?),
        7 => Op::Store { depth: r.u16()?, slot: r.u16()?, name: read_symbol(r)? },
        8 => Op::StoreName(read_symbol(r)?),
        9 => Op::Bind(r.u32()?),
        10 => Op::BindRec(r.u32()?),
        11 => Op::InitCell(r.u16()?),
        12 => Op::PopFrame,
        13 => Op::Jump(r.i32()?),
        14 => Op::JumpIfFalse(r.i32()?),
        15 => Op::MakeClosure(r.u32()?),
        16 => Op::Call(r.u16()?),
        17 => Op::TailCall(r.u16()?),
        18 => Op::CallPrim { op: read_prim(r)?, argc: r.u16()? },
        19 => Op::CallPrimImm { op: read_prim(r)?, imm: r.i32()?, rev: r.bool()? },
        20 => Op::Return,
        21 => Op::MakeTuple(r.u16()?),
        22 => Op::Proj(r.u32()?),
        23 => Op::Pop,
        24 => Op::MakeUnit(r.u32()?),
        25 => Op::AsUnit(static_str(r.str()?)),
        26 => Op::CheckLink { compound: r.u32()?, link: r.u32()? },
        27 => Op::MakeCompound(r.u32()?),
        28 => Op::Invoke(r.u32()?),
        29 => Op::InvokeUnit(r.u32()?),
        30 => Op::Seal(r.u32()?),
        31 => Op::Unsupported(static_str(r.str()?)),
        _ => return Err(DecodeError::Malformed("bad op tag")),
    })
}

/// Encodes a lowered chunk (without its transient profile).
pub fn write_chunk(w: &mut Writer, chunk: &Chunk) {
    w.len_of(chunk.code.len());
    for op in &chunk.code {
        write_op(w, op);
    }
    w.len_of(chunk.consts.len());
    for s in &chunk.consts {
        w.str(s);
    }
    w.len_of(chunk.frames.len());
    for frame in &chunk.frames {
        w.len_of(frame.len());
        for sym in frame.iter() {
            write_symbol(w, sym);
        }
    }
    w.len_of(chunk.protos.len());
    for proto in &chunk.protos {
        write_lambda(w, &proto.lambda);
        w.u32(proto.entry);
    }
    w.len_of(chunk.units.len());
    for unit in &chunk.units {
        write_unit(w, &unit.source);
        w.len_of(unit.def_entries.len());
        for &entry in &unit.def_entries {
            w.u32(entry);
        }
        w.u32(unit.init_entry);
    }
    w.len_of(chunk.recs.len());
    for rec in &chunk.recs {
        write_letrec(w, rec);
    }
    w.len_of(chunk.compounds.len());
    for compound in &chunk.compounds {
        write_compound(w, compound);
    }
    w.len_of(chunk.invokes.len());
    for invoke in &chunk.invokes {
        write_invoke(w, invoke);
    }
    w.len_of(chunk.sigs.len());
    for sig in &chunk.sigs {
        write_signature(w, sig);
    }
    w.u32(chunk.entry);
}

/// Decodes a chunk; the profile is rebuilt fresh (sized in `trace`
/// builds, disabled otherwise), exactly as lowering would.
pub fn read_chunk(r: &mut Reader) -> Result<Chunk, DecodeError> {
    let code = {
        let len = r.len_of()?;
        let mut code = Vec::with_capacity(len);
        for _ in 0..len {
            code.push(read_op(r)?);
        }
        code
    };
    let consts = {
        let len = r.len_of()?;
        let mut consts: Vec<Arc<str>> = Vec::with_capacity(len);
        for _ in 0..len {
            consts.push(Arc::from(r.str()?));
        }
        consts
    };
    let frames = {
        let len = r.len_of()?;
        let mut frames: Vec<Arc<[Symbol]>> = Vec::with_capacity(len);
        for _ in 0..len {
            let flen = r.len_of()?;
            let mut frame = Vec::with_capacity(flen);
            for _ in 0..flen {
                frame.push(read_symbol(r)?);
            }
            frames.push(Arc::from(frame));
        }
        frames
    };
    let protos = {
        let len = r.len_of()?;
        let mut protos = Vec::with_capacity(len);
        for _ in 0..len {
            protos.push(Proto { lambda: Arc::new(read_lambda(r)?), entry: r.u32()? });
        }
        protos
    };
    let units = {
        let len = r.len_of()?;
        let mut units = Vec::with_capacity(len);
        for _ in 0..len {
            let source = Arc::new(read_unit(r)?);
            let elen = r.len_of()?;
            let mut def_entries = Vec::with_capacity(elen);
            for _ in 0..elen {
                def_entries.push(r.u32()?);
            }
            units.push(UnitProto { source, def_entries, init_entry: r.u32()? });
        }
        units
    };
    let recs = {
        let len = r.len_of()?;
        let mut recs = Vec::with_capacity(len);
        for _ in 0..len {
            recs.push(Arc::new(read_letrec(r)?));
        }
        recs
    };
    let compounds = {
        let len = r.len_of()?;
        let mut compounds = Vec::with_capacity(len);
        for _ in 0..len {
            compounds.push(Arc::new(read_compound(r)?));
        }
        compounds
    };
    let invokes = {
        let len = r.len_of()?;
        let mut invokes = Vec::with_capacity(len);
        for _ in 0..len {
            invokes.push(Arc::new(read_invoke(r)?));
        }
        invokes
    };
    let sigs = {
        let len = r.len_of()?;
        let mut sigs = Vec::with_capacity(len);
        for _ in 0..len {
            sigs.push(Arc::new(read_signature(r)?));
        }
        sigs
    };
    let entry = r.u32()?;
    let profile =
        if units_trace::COMPILED { OpProfile::sized(code.len()) } else { OpProfile::default() };
    Ok(Chunk {
        code,
        consts,
        frames,
        protos,
        units,
        recs,
        compounds,
        invokes,
        sigs,
        entry,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parse, check, resolve, and lower a source program — the same
    /// shape the engine persists.
    fn lowered(source: &str) -> Arc<Chunk> {
        let expr = units_syntax::parse_expr(source).expect("parse");
        units_check::check_program(
            &expr,
            units_check::CheckOptions {
                level: units_check::Level::Untyped,
                strictness: units_check::Strictness::Paper,
            },
        )
        .expect("check");
        let resolved = units_compile::resolve_program(&expr);
        units_compile::lower_program(&resolved)
    }

    fn round_trip(chunk: &Chunk) -> Chunk {
        let mut w = Writer::new();
        write_chunk(&mut w, chunk);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_chunk(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        back
    }

    fn assert_chunks_equal(a: &Chunk, b: &Chunk) {
        assert_eq!(a.code, b.code);
        assert_eq!(a.consts, b.consts);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.protos.len(), b.protos.len());
        for (x, y) in a.protos.iter().zip(&b.protos) {
            assert_eq!((&*x.lambda, x.entry), (&*y.lambda, y.entry));
        }
        assert_eq!(a.units.len(), b.units.len());
        for (x, y) in a.units.iter().zip(&b.units) {
            assert_eq!(&*x.source, &*y.source);
            assert_eq!((&x.def_entries, x.init_entry), (&y.def_entries, y.init_entry));
        }
        let pairwise = |xs: usize, ys: usize| assert_eq!(xs, ys);
        pairwise(a.recs.len(), b.recs.len());
        a.recs.iter().zip(&b.recs).for_each(|(x, y)| assert_eq!(&**x, &**y));
        pairwise(a.compounds.len(), b.compounds.len());
        a.compounds.iter().zip(&b.compounds).for_each(|(x, y)| assert_eq!(&**x, &**y));
        pairwise(a.invokes.len(), b.invokes.len());
        a.invokes.iter().zip(&b.invokes).for_each(|(x, y)| assert_eq!(&**x, &**y));
        pairwise(a.sigs.len(), b.sigs.len());
        a.sigs.iter().zip(&b.sigs).for_each(|(x, y)| assert_eq!(&**x, &**y));
    }

    #[test]
    fn lowered_programs_round_trip() {
        let sources = [
            "(invoke (unit (import) (export) (init ((lambda (n) (* n n)) 7))))",
            r#"(invoke (unit (import) (export)
                 (define fact (lambda (n) (if (< n 2) 1 (* n (fact (- n 1))))))
                 (init (fact 10))))"#,
            "(let ((x 1)) (begin (display \"hi\") (+ x 41)))",
        ];
        for src in sources {
            let chunk = lowered(src);
            let back = round_trip(&chunk);
            assert_chunks_equal(&chunk, &back);
        }
    }

    #[test]
    fn decoded_chunks_execute_identically() {
        let src = r#"(invoke (unit (import) (export)
             (define even (lambda (n) (if (= n 0) true (odd (- n 1)))))
             (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
             (init (even 64))))"#;
        let chunk = lowered(src);
        let back = Arc::new(round_trip(&chunk));
        let mut m1 = units_runtime::Machine::new();
        let mut m2 = units_runtime::Machine::new();
        let v1 = units_runtime::execute(&chunk, &mut m1).expect("original runs");
        let v2 = units_runtime::execute(&back, &mut m2).expect("decoded runs");
        assert!(v1.observably_eq(&v2), "decoded chunk diverged: {v1:?} vs {v2:?}");
    }

    #[test]
    fn garbage_never_panics_the_chunk_decoder() {
        let chunk = lowered("(invoke (unit (import) (export) (init (+ 1 2))))");
        let mut w = Writer::new();
        write_chunk(&mut w, &chunk);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(read_chunk(&mut Reader::new(&bytes[..cut])).is_err(), "prefix decoded");
        }
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            let _ = read_chunk(&mut Reader::new(&mutated));
        }
    }
}
