//! Codecs for the kernel term language: [`Expr`], [`Ty`], [`Signature`],
//! and every node they reach.
//!
//! The encoding is a straightforward tagged pre-order walk. Symbols are
//! written as their interned *strings*, not their `u32` handles — handle
//! numbering depends on interning order inside one process, so an
//! on-disk entry must carry names and re-intern on decode. `PrimOp` is
//! written as its index into [`ALL_PRIMS`], which is append-only (a
//! reordering would be caught by the crate-version stamp in the entry
//! header before any codec runs).
//!
//! Decoders mirror encoders exactly and reject unknown tags with
//! [`DecodeError::Malformed`]; nothing here panics on garbage input.

use std::sync::Arc;

use units_kernel::{
    AliasDefn, Binding, CompoundExpr, DataDefn, DataOp, DataRole, DataVariant, Depend, Expr,
    InvokeExpr, Kind, LetrecExpr, LexAddr, LinkClause, LinkRenames, Lit, Loc, Param, Ports,
    PrimOp, SigEquation, Signature, Symbol, Ty, TyPort, TypeDefn, UnitExpr, ValDefn, ValPort,
    VariantVal, ALL_PRIMS,
};

use crate::wire::{DecodeError, Reader, Writer};

// ---------------------------------------------------------------- leaves

pub fn write_symbol(w: &mut Writer, sym: &Symbol) {
    w.str(sym.as_str());
}

pub fn read_symbol(r: &mut Reader) -> Result<Symbol, DecodeError> {
    Ok(Symbol::new(r.str()?))
}

pub fn write_prim(w: &mut Writer, op: PrimOp) {
    let index = ALL_PRIMS.iter().position(|&p| p == op).expect("PrimOp missing from ALL_PRIMS");
    w.u8(u8::try_from(index).expect("ALL_PRIMS outgrew u8"));
}

pub fn read_prim(r: &mut Reader) -> Result<PrimOp, DecodeError> {
    let index = usize::from(r.u8()?);
    ALL_PRIMS.get(index).copied().ok_or(DecodeError::Malformed("bad prim index"))
}

fn write_option<T>(w: &mut Writer, v: &Option<T>, mut f: impl FnMut(&mut Writer, &T)) {
    match v {
        None => w.u8(0),
        Some(inner) => {
            w.u8(1);
            f(w, inner);
        }
    }
}

fn read_option<T>(
    r: &mut Reader,
    mut f: impl FnMut(&mut Reader) -> Result<T, DecodeError>,
) -> Result<Option<T>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(f(r)?)),
        _ => Err(DecodeError::Malformed("bad option tag")),
    }
}

fn write_seq<T>(w: &mut Writer, items: &[T], mut f: impl FnMut(&mut Writer, &T)) {
    w.len_of(items.len());
    for item in items {
        f(w, item);
    }
}

fn read_seq<T>(
    r: &mut Reader,
    mut f: impl FnMut(&mut Reader) -> Result<T, DecodeError>,
) -> Result<Vec<T>, DecodeError> {
    let len = r.len_of()?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(f(r)?);
    }
    Ok(out)
}

fn write_pairs(w: &mut Writer, pairs: &[(Symbol, Symbol)]) {
    write_seq(w, pairs, |w, (a, b)| {
        write_symbol(w, a);
        write_symbol(w, b);
    });
}

fn read_pairs(r: &mut Reader) -> Result<Vec<(Symbol, Symbol)>, DecodeError> {
    read_seq(r, |r| Ok((read_symbol(r)?, read_symbol(r)?)))
}

// ----------------------------------------------------------------- kinds

pub fn write_kind(w: &mut Writer, kind: &Kind) {
    match kind {
        Kind::Star => w.u8(0),
        Kind::Arrow(from, to) => {
            w.u8(1);
            write_kind(w, from);
            write_kind(w, to);
        }
    }
}

pub fn read_kind(r: &mut Reader) -> Result<Kind, DecodeError> {
    match r.u8()? {
        0 => Ok(Kind::Star),
        1 => Ok(Kind::Arrow(Box::new(read_kind(r)?), Box::new(read_kind(r)?))),
        _ => Err(DecodeError::Malformed("bad kind tag")),
    }
}

// ----------------------------------------------------------------- types

pub fn write_ty(w: &mut Writer, ty: &Ty) {
    match ty {
        Ty::Var(name) => {
            w.u8(0);
            write_symbol(w, name);
        }
        Ty::Int => w.u8(1),
        Ty::Bool => w.u8(2),
        Ty::Str => w.u8(3),
        Ty::Void => w.u8(4),
        Ty::Arrow(params, ret) => {
            w.u8(5);
            write_seq(w, params, write_ty);
            write_ty(w, ret);
        }
        Ty::Tuple(items) => {
            w.u8(6);
            write_seq(w, items, write_ty);
        }
        Ty::Hash(elem) => {
            w.u8(7);
            write_ty(w, elem);
        }
        Ty::Sig(sig) => {
            w.u8(8);
            write_signature(w, sig);
        }
    }
}

pub fn read_ty(r: &mut Reader) -> Result<Ty, DecodeError> {
    match r.u8()? {
        0 => Ok(Ty::Var(read_symbol(r)?)),
        1 => Ok(Ty::Int),
        2 => Ok(Ty::Bool),
        3 => Ok(Ty::Str),
        4 => Ok(Ty::Void),
        5 => Ok(Ty::Arrow(read_seq(r, read_ty)?, Box::new(read_ty(r)?))),
        6 => Ok(Ty::Tuple(read_seq(r, read_ty)?)),
        7 => Ok(Ty::Hash(Box::new(read_ty(r)?))),
        8 => Ok(Ty::Sig(Box::new(read_signature(r)?))),
        _ => Err(DecodeError::Malformed("bad ty tag")),
    }
}

fn write_opt_ty(w: &mut Writer, ty: &Option<Ty>) {
    write_option(w, ty, write_ty);
}

fn read_opt_ty(r: &mut Reader) -> Result<Option<Ty>, DecodeError> {
    read_option(r, read_ty)
}

// ------------------------------------------------------------ signatures

fn write_ty_port(w: &mut Writer, port: &TyPort) {
    write_symbol(w, &port.name);
    write_kind(w, &port.kind);
}

fn read_ty_port(r: &mut Reader) -> Result<TyPort, DecodeError> {
    Ok(TyPort { name: read_symbol(r)?, kind: read_kind(r)? })
}

fn write_val_port(w: &mut Writer, port: &ValPort) {
    write_symbol(w, &port.name);
    write_opt_ty(w, &port.ty);
}

fn read_val_port(r: &mut Reader) -> Result<ValPort, DecodeError> {
    Ok(ValPort { name: read_symbol(r)?, ty: read_opt_ty(r)? })
}

fn write_ports(w: &mut Writer, ports: &Ports) {
    write_seq(w, &ports.types, write_ty_port);
    write_seq(w, &ports.vals, write_val_port);
}

fn read_ports(r: &mut Reader) -> Result<Ports, DecodeError> {
    Ok(Ports { types: read_seq(r, read_ty_port)?, vals: read_seq(r, read_val_port)? })
}

pub fn write_signature(w: &mut Writer, sig: &Signature) {
    write_ports(w, &sig.imports);
    write_ports(w, &sig.exports);
    write_seq(w, &sig.depends, |w, d: &Depend| {
        write_symbol(w, &d.export);
        write_symbol(w, &d.import);
    });
    write_seq(w, &sig.equations, |w, eq: &SigEquation| {
        write_symbol(w, &eq.name);
        write_kind(w, &eq.kind);
        write_ty(w, &eq.body);
    });
    write_ty(w, &sig.init_ty);
}

pub fn read_signature(r: &mut Reader) -> Result<Signature, DecodeError> {
    Ok(Signature {
        imports: read_ports(r)?,
        exports: read_ports(r)?,
        depends: read_seq(r, |r| {
            Ok(Depend { export: read_symbol(r)?, import: read_symbol(r)? })
        })?,
        equations: read_seq(r, |r| {
            Ok(SigEquation { name: read_symbol(r)?, kind: read_kind(r)?, body: read_ty(r)? })
        })?,
        init_ty: read_ty(r)?,
    })
}

// ------------------------------------------------------------ definitions

fn write_param(w: &mut Writer, param: &Param) {
    write_symbol(w, &param.name);
    write_opt_ty(w, &param.ty);
}

fn read_param(r: &mut Reader) -> Result<Param, DecodeError> {
    Ok(Param { name: read_symbol(r)?, ty: read_opt_ty(r)? })
}

fn write_type_defn(w: &mut Writer, defn: &TypeDefn) {
    match defn {
        TypeDefn::Data(data) => {
            w.u8(0);
            write_symbol(w, &data.name);
            write_seq(w, &data.variants, |w, v: &DataVariant| {
                write_symbol(w, &v.ctor);
                write_symbol(w, &v.dtor);
                write_ty(w, &v.payload);
            });
            write_symbol(w, &data.predicate);
        }
        TypeDefn::Alias(alias) => {
            w.u8(1);
            write_symbol(w, &alias.name);
            write_kind(w, &alias.kind);
            write_ty(w, &alias.body);
        }
    }
}

fn read_type_defn(r: &mut Reader) -> Result<TypeDefn, DecodeError> {
    match r.u8()? {
        0 => Ok(TypeDefn::Data(DataDefn {
            name: read_symbol(r)?,
            variants: read_seq(r, |r| {
                Ok(DataVariant {
                    ctor: read_symbol(r)?,
                    dtor: read_symbol(r)?,
                    payload: read_ty(r)?,
                })
            })?,
            predicate: read_symbol(r)?,
        })),
        1 => Ok(TypeDefn::Alias(AliasDefn {
            name: read_symbol(r)?,
            kind: read_kind(r)?,
            body: read_ty(r)?,
        })),
        _ => Err(DecodeError::Malformed("bad type-defn tag")),
    }
}

fn write_val_defn(w: &mut Writer, defn: &ValDefn) {
    write_symbol(w, &defn.name);
    write_opt_ty(w, &defn.ty);
    write_expr(w, &defn.body);
}

fn read_val_defn(r: &mut Reader) -> Result<ValDefn, DecodeError> {
    Ok(ValDefn { name: read_symbol(r)?, ty: read_opt_ty(r)?, body: read_expr(r)? })
}

pub fn write_unit(w: &mut Writer, unit: &UnitExpr) {
    write_ports(w, &unit.imports);
    write_ports(w, &unit.exports);
    write_seq(w, &unit.types, write_type_defn);
    write_seq(w, &unit.vals, write_val_defn);
    write_expr(w, &unit.init);
}

pub fn read_unit(r: &mut Reader) -> Result<UnitExpr, DecodeError> {
    Ok(UnitExpr {
        imports: read_ports(r)?,
        exports: read_ports(r)?,
        types: read_seq(r, read_type_defn)?,
        vals: read_seq(r, read_val_defn)?,
        init: read_expr(r)?,
    })
}

pub fn write_letrec(w: &mut Writer, letrec: &LetrecExpr) {
    write_seq(w, &letrec.types, write_type_defn);
    write_seq(w, &letrec.vals, write_val_defn);
    write_expr(w, &letrec.body);
}

pub fn read_letrec(r: &mut Reader) -> Result<LetrecExpr, DecodeError> {
    Ok(LetrecExpr {
        types: read_seq(r, read_type_defn)?,
        vals: read_seq(r, read_val_defn)?,
        body: read_expr(r)?,
    })
}

pub fn write_compound(w: &mut Writer, compound: &CompoundExpr) {
    write_ports(w, &compound.imports);
    write_ports(w, &compound.exports);
    write_seq(w, &compound.links, |w, link: &LinkClause| {
        write_expr(w, &link.expr);
        write_ports(w, &link.with);
        write_ports(w, &link.provides);
        write_pairs(w, &link.renames.import_vals);
        write_pairs(w, &link.renames.import_tys);
        write_pairs(w, &link.renames.export_vals);
        write_pairs(w, &link.renames.export_tys);
    });
}

pub fn read_compound(r: &mut Reader) -> Result<CompoundExpr, DecodeError> {
    Ok(CompoundExpr {
        imports: read_ports(r)?,
        exports: read_ports(r)?,
        links: read_seq(r, |r| {
            Ok(LinkClause {
                expr: read_expr(r)?,
                with: read_ports(r)?,
                provides: read_ports(r)?,
                renames: LinkRenames {
                    import_vals: read_pairs(r)?,
                    import_tys: read_pairs(r)?,
                    export_vals: read_pairs(r)?,
                    export_tys: read_pairs(r)?,
                },
            })
        })?,
    })
}

pub fn write_invoke(w: &mut Writer, invoke: &InvokeExpr) {
    write_expr(w, &invoke.target);
    write_seq(w, &invoke.ty_links, |w, (name, ty)| {
        write_symbol(w, name);
        write_ty(w, ty);
    });
    write_seq(w, &invoke.val_links, |w, (name, expr)| {
        write_symbol(w, name);
        write_expr(w, expr);
    });
}

pub fn read_invoke(r: &mut Reader) -> Result<InvokeExpr, DecodeError> {
    Ok(InvokeExpr {
        target: read_expr(r)?,
        ty_links: read_seq(r, |r| Ok((read_symbol(r)?, read_ty(r)?)))?,
        val_links: read_seq(r, |r| Ok((read_symbol(r)?, read_expr(r)?)))?,
    })
}

pub fn write_lambda(w: &mut Writer, lambda: &units_kernel::Lambda) {
    write_seq(w, &lambda.params, write_param);
    write_opt_ty(w, &lambda.ret_ty);
    write_expr(w, &lambda.body);
}

pub fn read_lambda(r: &mut Reader) -> Result<units_kernel::Lambda, DecodeError> {
    Ok(units_kernel::Lambda {
        params: read_seq(r, read_param)?,
        ret_ty: read_opt_ty(r)?,
        body: read_expr(r)?,
    })
}

// ----------------------------------------------------------- expressions

pub fn write_expr(w: &mut Writer, expr: &Expr) {
    match expr {
        Expr::Var(name) => {
            w.u8(0);
            write_symbol(w, name);
        }
        Expr::Lit(lit) => {
            w.u8(1);
            match lit {
                Lit::Int(n) => {
                    w.u8(0);
                    w.i64(*n);
                }
                Lit::Bool(b) => {
                    w.u8(1);
                    w.bool(*b);
                }
                Lit::Str(s) => {
                    w.u8(2);
                    w.str(s);
                }
                Lit::Void => w.u8(3),
            }
        }
        Expr::Prim(op, ty_args) => {
            w.u8(2);
            write_prim(w, *op);
            write_seq(w, ty_args, write_ty);
        }
        Expr::Lambda(lambda) => {
            w.u8(3);
            write_lambda(w, lambda);
        }
        Expr::App(func, args) => {
            w.u8(4);
            write_expr(w, func);
            write_seq(w, args, write_expr);
        }
        Expr::If(cond, then, els) => {
            w.u8(5);
            write_expr(w, cond);
            write_expr(w, then);
            write_expr(w, els);
        }
        Expr::Seq(exprs) => {
            w.u8(6);
            write_seq(w, exprs, write_expr);
        }
        Expr::Let(bindings, body) => {
            w.u8(7);
            write_seq(w, bindings, |w, b: &Binding| {
                write_symbol(w, &b.name);
                write_expr(w, &b.expr);
            });
            write_expr(w, body);
        }
        Expr::Letrec(letrec) => {
            w.u8(8);
            write_letrec(w, letrec);
        }
        Expr::Set(target, value) => {
            w.u8(9);
            write_expr(w, target);
            write_expr(w, value);
        }
        Expr::Tuple(items) => {
            w.u8(10);
            write_seq(w, items, write_expr);
        }
        Expr::Proj(index, tuple) => {
            w.u8(11);
            w.usize(*index);
            write_expr(w, tuple);
        }
        Expr::Unit(unit) => {
            w.u8(12);
            write_unit(w, unit);
        }
        Expr::Compound(compound) => {
            w.u8(13);
            write_compound(w, compound);
        }
        Expr::Invoke(invoke) => {
            w.u8(14);
            write_invoke(w, invoke);
        }
        Expr::Seal(target, sig) => {
            w.u8(15);
            write_expr(w, target);
            write_signature(w, sig);
        }
        Expr::Loc(loc) => {
            w.u8(16);
            w.usize(loc.0);
        }
        Expr::CellRef(loc) => {
            w.u8(17);
            w.usize(loc.0);
        }
        Expr::Data(op) => {
            w.u8(18);
            write_symbol(w, &op.ty_name);
            w.u64(op.instance);
            match op.role {
                DataRole::Construct(tag) => {
                    w.u8(0);
                    w.usize(tag);
                }
                DataRole::Deconstruct(tag) => {
                    w.u8(1);
                    w.usize(tag);
                }
                DataRole::Predicate => w.u8(2),
            }
        }
        Expr::Variant(variant) => {
            w.u8(19);
            write_symbol(w, &variant.ty_name);
            w.u64(variant.instance);
            w.usize(variant.tag);
            write_expr(w, &variant.payload);
        }
        Expr::VarAt(name, addr) => {
            w.u8(20);
            write_symbol(w, name);
            w.u32(addr.depth);
            w.u32(addr.slot);
        }
    }
}

pub fn read_expr(r: &mut Reader) -> Result<Expr, DecodeError> {
    match r.u8()? {
        0 => Ok(Expr::Var(read_symbol(r)?)),
        1 => match r.u8()? {
            0 => Ok(Expr::Lit(Lit::Int(r.i64()?))),
            1 => Ok(Expr::Lit(Lit::Bool(r.bool()?))),
            2 => Ok(Expr::Lit(Lit::Str(Arc::from(r.str()?)))),
            3 => Ok(Expr::Lit(Lit::Void)),
            _ => Err(DecodeError::Malformed("bad lit tag")),
        },
        2 => Ok(Expr::Prim(read_prim(r)?, read_seq(r, read_ty)?)),
        3 => Ok(Expr::Lambda(Arc::new(read_lambda(r)?))),
        4 => Ok(Expr::App(Box::new(read_expr(r)?), read_seq(r, read_expr)?)),
        5 => Ok(Expr::If(
            Box::new(read_expr(r)?),
            Box::new(read_expr(r)?),
            Box::new(read_expr(r)?),
        )),
        6 => Ok(Expr::Seq(read_seq(r, read_expr)?)),
        7 => Ok(Expr::Let(
            read_seq(r, |r| Ok(Binding { name: read_symbol(r)?, expr: read_expr(r)? }))?,
            Box::new(read_expr(r)?),
        )),
        8 => Ok(Expr::Letrec(Arc::new(read_letrec(r)?))),
        9 => Ok(Expr::Set(Box::new(read_expr(r)?), Box::new(read_expr(r)?))),
        10 => Ok(Expr::Tuple(read_seq(r, read_expr)?)),
        11 => Ok(Expr::Proj(r.usize()?, Box::new(read_expr(r)?))),
        12 => Ok(Expr::Unit(Arc::new(read_unit(r)?))),
        13 => Ok(Expr::Compound(Arc::new(read_compound(r)?))),
        14 => Ok(Expr::Invoke(Arc::new(read_invoke(r)?))),
        15 => Ok(Expr::Seal(Box::new(read_expr(r)?), Box::new(read_signature(r)?))),
        16 => Ok(Expr::Loc(Loc(r.usize()?))),
        17 => Ok(Expr::CellRef(Loc(r.usize()?))),
        18 => {
            let ty_name = read_symbol(r)?;
            let instance = r.u64()?;
            let role = match r.u8()? {
                0 => DataRole::Construct(r.usize()?),
                1 => DataRole::Deconstruct(r.usize()?),
                2 => DataRole::Predicate,
                _ => return Err(DecodeError::Malformed("bad data-role tag")),
            };
            Ok(Expr::Data(Arc::new(DataOp { ty_name, instance, role })))
        }
        19 => Ok(Expr::Variant(Arc::new(VariantVal {
            ty_name: read_symbol(r)?,
            instance: r.u64()?,
            tag: r.usize()?,
            payload: read_expr(r)?,
        }))),
        20 => {
            let name = read_symbol(r)?;
            let addr = LexAddr { depth: r.u32()?, slot: r.u32()? };
            Ok(Expr::VarAt(name, addr))
        }
        _ => Err(DecodeError::Malformed("bad expr tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(expr: &Expr) -> Expr {
        let mut w = Writer::new();
        write_expr(&mut w, expr);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_expr(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        back
    }

    #[test]
    fn parsed_programs_round_trip_structurally_equal() {
        let sources = [
            "(+ 1 2)",
            "(invoke (unit (import) (export) (init (lambda (n) (* n n)))))",
            "(let ((x 1) (y \"two\")) (begin (set! x 3) (tuple x y)))",
            "(if (< 1 2) void (proj 0 (tuple 1)))",
        ];
        for src in sources {
            let expr = units_syntax::parse_expr(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(round_trip(&expr), expr, "round trip changed {src}");
        }
    }

    #[test]
    fn compound_and_seal_nodes_round_trip() {
        let unit = units_syntax::parse_expr(
            "(unit (import) (export f) (define f (lambda (n) n)) (init void))",
        )
        .unwrap();
        let compound = Expr::Compound(Arc::new(CompoundExpr {
            imports: Ports::new(),
            exports: Ports::new(),
            links: vec![LinkClause::by_name(
                unit.clone(),
                Ports::new(),
                Ports::untyped(Vec::<&str>::new(), vec!["f"]),
            )],
        }));
        assert_eq!(round_trip(&compound), compound);
        let sealed = Expr::Seal(Box::new(unit), Box::new(Signature::empty()));
        assert_eq!(round_trip(&sealed), sealed);
    }

    #[test]
    fn machine_internal_forms_round_trip() {
        let exprs = [
            Expr::Loc(Loc(7)),
            Expr::CellRef(Loc(0)),
            Expr::VarAt(Symbol::new("x"), LexAddr { depth: 3, slot: 1 }),
            Expr::Data(Arc::new(DataOp {
                ty_name: Symbol::new("list"),
                instance: 42,
                role: DataRole::Deconstruct(1),
            })),
            Expr::Variant(Arc::new(VariantVal {
                ty_name: Symbol::new("list"),
                instance: 42,
                tag: 0,
                payload: Expr::int(5),
            })),
        ];
        for expr in exprs {
            assert_eq!(round_trip(&expr), expr);
        }
    }

    #[test]
    fn every_prim_survives_the_index_encoding() {
        for &op in ALL_PRIMS {
            let mut w = Writer::new();
            write_prim(&mut w, op);
            let bytes = w.into_bytes();
            assert_eq!(read_prim(&mut Reader::new(&bytes)).unwrap(), op);
        }
    }

    #[test]
    fn garbage_never_panics_the_expr_decoder() {
        // A cheap deterministic fuzz: decode every suffix of a real
        // encoding plus mutated copies; all outcomes must be Ok or a
        // typed error, enforced by the type system — this test exists
        // to catch panics.
        let expr = units_syntax::parse_expr(
            "(invoke (unit (import) (export) (init (lambda (n) (* n n)))))",
        )
        .unwrap();
        let mut w = Writer::new();
        write_expr(&mut w, &expr);
        let bytes = w.into_bytes();
        for start in 0..bytes.len() {
            let _ = read_expr(&mut Reader::new(&bytes[start..]));
        }
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            let _ = read_expr(&mut Reader::new(&mutated));
        }
    }
}
