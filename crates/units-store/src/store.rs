//! The on-disk cache directory: crash-safe writes, verified reads,
//! quarantine, and multi-process sharing.
//!
//! # Atomicity
//!
//! A write goes to a process-unique `<key>.<pid>.tmp` sibling, is
//! `fsync`ed, and then renamed over the final `<key>.unit` name — the
//! only mutation a concurrent reader can ever observe is the atomic
//! rename, so a reader sees either no entry or a complete one. A crash
//! mid-write leaves only a garbage temp file, which [`Store::open`]
//! sweeps. The `store/write` fault site sits *between* the temp write
//! and the rename, simulating exactly that crash.
//!
//! # Verification and quarantine
//!
//! Every read re-verifies the whole entry (magic, format version,
//! build stamp, options fingerprint, raw-source hash, trailing
//! checksum, and full structural decode). Any failure that indicts the
//! file is a [`Lookup::Corrupt`]: the file is renamed into the
//! `corrupt/` subdirectory for post-mortem and the caller counts a
//! miss. A raw-source hash mismatch (a key collision: the entry is
//! healthy, just not for this source) is a plain [`Lookup::Miss`] and
//! the file is left alone.
//!
//! # Concurrent writers
//!
//! Readers take no lock — they only ever see complete files (see
//! above). Writers hold a process-wide advisory `flock` on the
//! directory's `.lock` file, taken non-blockingly at open: the loser
//! degrades to a read-only view of the store ([`Store::writable`]
//! returns `false`) and the engine keeps its in-memory cache as the
//! only write path. The lock dies with the process, so a crashed
//! writer cannot wedge the directory.

use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};

use units_trace::faults;

use crate::wire::fnv1a_64;
use crate::{decode_entry, encode_entry, Entry};

/// The result of probing the store for a key.
#[derive(Debug)]
pub enum Lookup {
    /// A verified entry.
    Hit(Box<Entry>),
    /// No entry (or an injected/transient read failure, or an entry
    /// for a different source that collided on the key).
    Miss,
    /// The entry failed verification and was quarantined.
    Corrupt,
}

/// One cache directory, opened by an engine session.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    fingerprint: u64,
    writable: bool,
    // Held for the lifetime of the store; dropping releases the
    // advisory write lock.
    _lock: Option<File>,
}

impl Store {
    /// Opens (creating if needed) the cache directory.
    ///
    /// Sweeps temp files left by crashed writers, ensures the
    /// `corrupt/` quarantine subdirectory exists, and tries the
    /// advisory write lock; on contention the store opens read-only
    /// rather than failing.
    ///
    /// # Errors
    ///
    /// Only genuinely unusable directories (cannot create, cannot
    /// stat) error — the caller is expected to degrade to in-memory
    /// operation.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        fs::create_dir_all(dir.join("corrupt"))?;
        sweep_temp_files(&dir);
        let lock_file =
            fs::OpenOptions::new().create(true).truncate(false).write(true).open(dir.join(".lock"))?;
        let writable = lock_file.try_lock().is_ok();
        units_trace::count("store/open", 1);
        Ok(Store {
            dir,
            fingerprint,
            writable,
            _lock: writable.then_some(lock_file),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `false` when another live process holds the write lock: reads
    /// still work, writes silently no-op.
    pub fn writable(&self) -> bool {
        self.writable
    }

    /// The on-disk path for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.unit"))
    }

    /// The quarantine subdirectory.
    pub fn corrupt_dir(&self) -> PathBuf {
        self.dir.join("corrupt")
    }

    /// Probes the store for `key`, verifying the entry end to end
    /// against `source` before trusting it.
    pub fn read(&self, key: u64, source: &str) -> Lookup {
        // An injected read fault models a transient I/O error: the
        // entry itself is (presumably) fine, so miss without
        // quarantining.
        if faults::trip("store/read").is_err() {
            return Lookup::Miss;
        }
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => return Lookup::Miss,
        };
        match decode_entry(&bytes, fnv1a_64(source.as_bytes()), self.fingerprint) {
            Ok(entry) => Lookup::Hit(Box::new(entry)),
            Err(e) if e.indicts_file() => {
                units_trace::emit(
                    units_trace::Phase::Engine,
                    "store/corrupt",
                    None,
                    || format!("{}: {e}", path.display()),
                    &[("store/corrupt", 1)],
                );
                self.quarantine(&path);
                Lookup::Corrupt
            }
            Err(_) => Lookup::Miss,
        }
    }

    /// Writes `entry` under `key` with temp-file + fsync + atomic
    /// rename. Returns `true` when the entry landed; `false` for a
    /// read-only store, an injected fault, or any I/O failure — a
    /// store write must never surface as an engine error.
    pub fn write(&self, key: u64, source: &str, entry: &Entry) -> bool {
        if !self.writable {
            return false;
        }
        let bytes = encode_entry(entry, fnv1a_64(source.as_bytes()), self.fingerprint);
        let tmp = self.dir.join(format!("{key:016x}.{}.tmp", std::process::id()));
        if write_synced(&tmp, &bytes).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        // The crash window: a fault here leaves the temp file behind,
        // exactly like a process dying between write and rename.
        if faults::trip("store/write").is_err() {
            return false;
        }
        if fs::rename(&tmp, self.entry_path(key)).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        true
    }

    /// Moves a failed entry into `corrupt/`, falling back to deletion
    /// so a bad entry can never be re-read either way.
    fn quarantine(&self, path: &Path) {
        let Some(name) = path.file_name() else { return };
        let dest = self.corrupt_dir().join(name);
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }
}

/// Deletes stragglers from crashed writers. Only `*.tmp` files are
/// touched; a concurrent writer's live temp file may be swept too,
/// which that writer observes as a failed rename — a lost write, never
/// a torn one.
fn sweep_temp_files(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|ext| ext == "tmp") {
            let _ = fs::remove_file(&path);
        }
    }
}

fn write_synced(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write;
    let mut file = File::create(path)?;
    file.write_all(bytes)?;
    file.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use units_kernel::Expr;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("units-store-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry() -> Entry {
        Entry { expr: Expr::int(42), ty: None, resolved: Some(Expr::int(42)), chunk: None }
    }

    #[test]
    fn write_then_read_hits() {
        let dir = temp_store_dir("rw");
        let store = Store::open(&dir, 7).unwrap();
        assert!(store.writable());
        assert!(store.write(1, "src", &entry()));
        match store.read(1, "src") {
            Lookup::Hit(e) => assert_eq!(e.expr, Expr::int(42)),
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_source_is_a_miss_not_a_quarantine() {
        let dir = temp_store_dir("collide");
        let store = Store::open(&dir, 7).unwrap();
        store.write(1, "src", &entry());
        assert!(matches!(store.read(1, "other source"), Lookup::Miss));
        // The entry survives for its rightful owner.
        assert!(matches!(store.read(1, "src"), Lookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_skew_quarantines() {
        let dir = temp_store_dir("fp");
        {
            let store = Store::open(&dir, 7).unwrap();
            store.write(1, "src", &entry());
        }
        let store = Store::open(&dir, 8).unwrap();
        assert!(matches!(store.read(1, "src"), Lookup::Corrupt));
        assert!(!store.entry_path(1).exists());
        assert!(store.corrupt_dir().join("0000000000000001.unit").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_anywhere_quarantine_and_never_panic() {
        let dir = temp_store_dir("flip");
        let store = Store::open(&dir, 7).unwrap();
        store.write(1, "src", &entry());
        let path = store.entry_path(1);
        let pristine = fs::read(&path).unwrap();
        for i in 0..pristine.len() {
            let mut mutated = pristine.clone();
            mutated[i] ^= 0x20;
            fs::write(&path, &mutated).unwrap();
            match store.read(1, "src") {
                Lookup::Corrupt => {
                    assert!(!path.exists(), "byte {i}: quarantine left the file");
                }
                Lookup::Miss => {} // a flip inside the source-hash field
                Lookup::Hit(_) => panic!("byte {i}: mutated entry verified"),
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_length_is_corrupt_or_miss() {
        let dir = temp_store_dir("trunc");
        let store = Store::open(&dir, 7).unwrap();
        store.write(1, "src", &entry());
        let path = store.entry_path(1);
        let pristine = fs::read(&path).unwrap();
        for cut in 0..pristine.len() {
            fs::write(&path, &pristine[..cut]).unwrap();
            match store.read(1, "src") {
                Lookup::Hit(_) => panic!("{cut}-byte prefix verified"),
                Lookup::Corrupt | Lookup::Miss => {}
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_crashed_writer_temp_files() {
        let dir = temp_store_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        let straggler = dir.join("00000000000000aa.9999.tmp");
        fs::write(&straggler, b"half-written garbage").unwrap();
        let _store = Store::open(&dir, 7).unwrap();
        assert!(!straggler.exists(), "open left the temp file");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_opener_degrades_to_read_only() {
        let dir = temp_store_dir("lock");
        let first = Store::open(&dir, 7).unwrap();
        assert!(first.writable());
        let second = Store::open(&dir, 7).unwrap();
        assert!(!second.writable(), "two live writers on one directory");
        first.write(1, "src", &entry());
        assert!(matches!(second.read(1, "src"), Lookup::Hit(_)));
        assert!(!second.write(2, "other", &entry()));
        drop(first);
        let third = Store::open(&dir, 7).unwrap();
        assert!(third.writable(), "lock must die with its holder");
        let _ = fs::remove_dir_all(&dir);
    }
}
