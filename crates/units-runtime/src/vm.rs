//! The bytecode backend's dispatch loop.
//!
//! `units-compile::lower` flattens a resolved program into a [`Chunk`] —
//! one linear [`Op`] array holding every λ-body and unit definition/init
//! segment, plus pooled constants and the shared side tables. This module
//! executes chunks: a stack machine whose environment register reuses the
//! tree-walker's persistent [`Env`] frames, so closures and unit values
//! flow between the two compiled backends unchanged and the resolver's
//! `(depth, slot)` addresses mean the same thing under both.
//!
//! Design points:
//!
//! * **Budget parity.** Fuel is charged through [`Machine::charge`],
//!   batched per basic block and flushed at back-edges, call sites, and
//!   returns — a diverging program cannot outrun its budget, and the
//!   error is the same typed [`RuntimeError::ResourceExhausted`] the
//!   tree-walkers raise. Depth is charged per non-tail activation and per
//!   nested invocation; store cells go through the shared
//!   [`crate::wiring`] layer, so cell counts are identical by
//!   construction.
//! * **Tail calls.** [`Op::TailCall`] replaces the running activation
//!   instead of pushing one, so mutual tail recursion (Fig. 12's
//!   even/odd units) runs in constant space, like the tree-walker's
//!   trampoline.
//! * **Invocation.** [`Op::Invoke`] wires cells with the shared
//!   [`wiring::wire`](crate::wiring::wire), then executes the lowered
//!   definition segments in link order followed by the init segments —
//!   the Fig. 11 protocol, byte-for-byte the tree-walker's observable
//!   behaviour.
//! * **Faults.** The `vm/dispatch` site trips once per chunk entry and
//!   once per invocation, mirroring `compile/eval` / `compile/instantiate`
//!   on the tree-walking backend, so the chaos harness covers the VM.
//! * **Tracing.** Each dispatched opcode bumps a `vm/op/...` counter
//!   (free in non-`trace` builds, where `units_trace::count` is a no-op).
//! * **Profiling.** In `trace` builds every chunk carries an
//!   [`OpProfile`] — per-op execution counts plus batched-fuel
//!   attribution, filled by the dispatch loop and rendered by
//!   [`disassemble_profiled`]. In default builds the profile is an
//!   empty vector and the counting code is removed by constant folding
//!   on [`units_trace::COMPILED`].

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use units_kernel::{
    CompoundExpr, InvokeExpr, LetrecExpr, LexAddr, PrimOp, Signature, Symbol, UnitExpr,
};

use crate::env::{read_binding, Binding, Env};
use crate::error::RuntimeError;
use crate::machine::Machine;
use crate::prim::apply_prim;
use crate::value::{AtomicUnit, Closure, LinkedConstituent, LinkedUnit, UnitValue, Value};
use crate::wiring::{
    apply_data, as_unit, check_link, emit_invoke_event, import_cells, seal_unit, wire,
};

/// One instruction of the flat bytecode ISA.
///
/// The machine is stack-based; variables resolve against the environment
/// register, which holds the same persistent frames the tree-walker
/// builds. Symbols are the interned `u32` handles of `units-kernel`, so
/// operands stay compact. `CallPrim` and `InvokeUnit` are
/// superinstructions fusing the hot Fig. 11 sequences (primitive
/// application, and `(invoke (unit …))` with no links).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push an integer immediate.
    Int(i64),
    /// Push a boolean immediate.
    Bool(bool),
    /// Push void.
    Void,
    /// Push `consts[i]` (pooled string literals).
    Const(u32),
    /// Push a first-class primitive.
    PrimVal(PrimOp),
    /// Push a variable through its resolved lexical address (name kept
    /// for the verify-and-degrade contract of [`Env::lookup_at`]).
    Load {
        /// Frames to walk outward.
        depth: u16,
        /// Slot within the frame.
        slot: u16,
        /// The variable (for verification and error messages).
        name: Symbol,
    },
    /// Push a variable through the by-name scan (unresolved code).
    LoadName(Symbol),
    /// `set!` through a resolved address; pushes void.
    Store {
        /// Frames to walk outward.
        depth: u16,
        /// Slot within the frame.
        slot: u16,
        /// The variable being assigned.
        name: Symbol,
    },
    /// `set!` through the by-name scan; pushes void.
    StoreName(Symbol),
    /// Pop `frames[i].len()` values into a new `let` frame.
    Bind(u32),
    /// Push the recursive frame of `recs[i]` (datatype operations, then
    /// one empty cell per definition) — the shared
    /// [`wiring::bind_letrec_frame`](crate::wiring::bind_letrec_frame).
    BindRec(u32),
    /// Pop a value into the cell at `slot` of the innermost frame (a
    /// `letrec` definition result).
    InitCell(u16),
    /// Rewind the environment register one frame.
    PopFrame,
    /// Relative jump (offset from the next instruction).
    Jump(i32),
    /// Pop a boolean; jump when false.
    JumpIfFalse(i32),
    /// Push a closure over `protos[i]` and the current environment.
    MakeClosure(u32),
    /// Pop `argc` arguments and a callee; push an activation and enter
    /// the callee (or apply a primitive/datatype operation in place).
    Call(u16),
    /// Like [`Op::Call`] but replaces the running activation — constant
    /// space for tail recursion.
    TailCall(u16),
    /// Superinstruction: apply a known primitive to the top `argc`
    /// values without materializing the callee.
    CallPrim {
        /// The primitive.
        op: PrimOp,
        /// Argument count.
        argc: u16,
    },
    /// Superinstruction: apply a binary primitive to the top of the
    /// stack and a small integer immediate in place — the fused
    /// `…; Int k; CallPrim` sequence (a literal operand has no effects,
    /// so fusing preserves evaluation order).
    CallPrimImm {
        /// The primitive.
        op: PrimOp,
        /// The literal operand, fused when it fits 32 bits.
        imm: i32,
        /// Whether the immediate is the *left* operand (`(op k x)`).
        rev: bool,
    },
    /// Leave the current segment, restoring the caller's activation.
    Return,
    /// Pop `n` values into a tuple.
    MakeTuple(u16),
    /// Project field `i` of a tuple.
    Proj(u32),
    /// Discard the top of stack (non-final `begin` expressions).
    Pop,
    /// Push an atomic unit value over `units[i]` and the current
    /// environment.
    MakeUnit(u32),
    /// Assert the top of stack is a unit, naming the Fig. 11 rule.
    AsUnit(&'static str),
    /// Check the Fig. 11 side conditions of link `link` of
    /// `compounds[compound]` against the unit on top of the stack.
    CheckLink {
        /// Index into the compound table.
        compound: u32,
        /// Which link clause.
        link: u32,
    },
    /// Pop the (checked) constituent units and push the linked compound.
    MakeCompound(u32),
    /// Pop the link values and target of `invokes[i]`; wire and run it.
    Invoke(u32),
    /// Superinstruction: `(invoke (unit …))` with no links — build and
    /// invoke `units[i]` without touching the stack.
    InvokeUnit(u32),
    /// Seal the unit on top of the stack against `sigs[i]`.
    Seal(u32),
    /// A machine-internal form reached evaluation; fails like the
    /// tree-walker's `WrongType` with this expectation.
    Unsupported(&'static str),
}

impl Op {
    /// The opcode's mnemonic, doubling as its per-opcode trace-counter
    /// key (`vm/op/…`).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Int(_) => "vm/op/int",
            Op::Bool(_) => "vm/op/bool",
            Op::Void => "vm/op/void",
            Op::Const(_) => "vm/op/const",
            Op::PrimVal(_) => "vm/op/primval",
            Op::Load { .. } => "vm/op/load",
            Op::LoadName(_) => "vm/op/load-name",
            Op::Store { .. } => "vm/op/store",
            Op::StoreName(_) => "vm/op/store-name",
            Op::Bind(_) => "vm/op/bind",
            Op::BindRec(_) => "vm/op/bind-rec",
            Op::InitCell(_) => "vm/op/init-cell",
            Op::PopFrame => "vm/op/pop-frame",
            Op::Jump(_) => "vm/op/jump",
            Op::JumpIfFalse(_) => "vm/op/jump-if-false",
            Op::MakeClosure(_) => "vm/op/make-closure",
            Op::Call(_) => "vm/op/call",
            Op::TailCall(_) => "vm/op/tail-call",
            Op::CallPrim { .. } => "vm/op/call-prim",
            Op::CallPrimImm { .. } => "vm/op/call-prim-imm",
            Op::Return => "vm/op/return",
            Op::MakeTuple(_) => "vm/op/make-tuple",
            Op::Proj(_) => "vm/op/proj",
            Op::Pop => "vm/op/pop",
            Op::MakeUnit(_) => "vm/op/make-unit",
            Op::AsUnit(_) => "vm/op/as-unit",
            Op::CheckLink { .. } => "vm/op/check-link",
            Op::MakeCompound(_) => "vm/op/make-compound",
            Op::Invoke(_) => "vm/op/invoke",
            Op::InvokeUnit(_) => "vm/op/invoke-unit",
            Op::Seal(_) => "vm/op/seal",
            Op::Unsupported(_) => "vm/op/unsupported",
        }
    }
}

/// A lowered λ-abstraction: the source node (arity, parameter names, and
/// inspectability) plus where its body segment starts.
#[derive(Debug, Clone)]
pub struct Proto {
    /// The shared source λ.
    pub lambda: Arc<units_kernel::Lambda>,
    /// Entry of the body segment.
    pub entry: u32,
}

/// A lowered unit: the shared source plus one segment per definition and
/// one for the init expression.
#[derive(Debug, Clone)]
pub struct UnitProto {
    /// The shared unit source (interfaces, definition order).
    pub source: Arc<UnitExpr>,
    /// Entry of each definition-body segment, in definition order.
    pub def_entries: Vec<u32>,
    /// Entry of the init segment.
    pub init_entry: u32,
}

/// A compiled program: flat code plus the pooled constants and side
/// tables every segment shares. One chunk holds *all* segments of a
/// program — the single-copy-of-the-code invariant of §4.1.6, in flat
/// form.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    /// The instruction stream (all segments, each ending in `Return`).
    pub code: Vec<Op>,
    /// Pooled literal constants (deduplicated strings).
    pub consts: Vec<Arc<str>>,
    /// Binder-name lists for [`Op::Bind`] frames.
    pub frames: Vec<Arc<[Symbol]>>,
    /// λ prototypes for [`Op::MakeClosure`].
    pub protos: Vec<Proto>,
    /// Unit prototypes for [`Op::MakeUnit`] / [`Op::InvokeUnit`].
    pub units: Vec<UnitProto>,
    /// `letrec` descriptors for [`Op::BindRec`].
    pub recs: Vec<Arc<LetrecExpr>>,
    /// Compound descriptors for [`Op::CheckLink`] / [`Op::MakeCompound`].
    pub compounds: Vec<Arc<CompoundExpr>>,
    /// Invoke descriptors (link names) for [`Op::Invoke`].
    pub invokes: Vec<Arc<InvokeExpr>>,
    /// Signatures for [`Op::Seal`].
    pub sigs: Vec<Arc<Signature>>,
    /// Entry of the program's top-level segment.
    pub entry: u32,
    /// Per-op execution counters (empty unless allocated by the
    /// lowerer in `trace` builds — see [`OpProfile::sized`]).
    pub profile: OpProfile,
}

/// The bytecode profiler's raw storage: one execution counter per op in
/// the owning [`Chunk`], plus how much batched fuel the dispatch loop
/// attributed to this chunk at flush points. Relaxed atomics let the
/// dispatch loop count through the shared `Arc<Chunk>` without
/// threading `&mut` through every activation — and let concurrent
/// bytecode runs of one cached chunk count without tearing.
///
/// A default-constructed profile is *disabled* (no counter storage);
/// counting only happens when the lowerer allocated counters, which it
/// does exactly when `units_trace::COMPILED` — so default builds pay
/// nothing, matching the trace/faults gating story.
#[derive(Debug, Default)]
pub struct OpProfile {
    counts: Vec<AtomicU64>,
    fuel: AtomicU64,
}

impl Clone for OpProfile {
    fn clone(&self) -> OpProfile {
        OpProfile {
            counts: self.counts.iter().map(|c| AtomicU64::new(c.load(Relaxed))).collect(),
            fuel: AtomicU64::new(self.fuel.load(Relaxed)),
        }
    }
}

impl OpProfile {
    /// A profile with one counter per op of a `len`-op chunk.
    pub fn sized(len: usize) -> OpProfile {
        OpProfile {
            counts: (0..len).map(|_| AtomicU64::new(0)).collect(),
            fuel: AtomicU64::new(0),
        }
    }

    /// Whether this profile has counter storage.
    pub fn enabled(&self) -> bool {
        !self.counts.is_empty()
    }

    /// Bumps the counter for op `i` (no-op when disabled).
    #[inline]
    pub fn hit(&self, i: usize) {
        if let Some(c) = self.counts.get(i) {
            c.fetch_add(1, Relaxed);
        }
    }

    /// Attributes `n` units of batched fuel to this chunk.
    #[inline]
    pub fn add_fuel(&self, n: u64) {
        if self.enabled() {
            self.fuel.fetch_add(n, Relaxed);
        }
    }

    /// The execution count of op `i` (0 when disabled or out of range).
    pub fn count_at(&self, i: usize) -> u64 {
        self.counts.get(i).map(|c| c.load(Relaxed)).unwrap_or(0)
    }

    /// All per-op counts, in instruction order (empty when disabled).
    pub fn counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Relaxed)).collect()
    }

    /// Fuel attributed to this chunk at flush points so far.
    pub fn fuel(&self) -> u64 {
        self.fuel.load(Relaxed)
    }

    /// Total ops executed (the sum of all counters).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Zeroes every counter, keeping the storage.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Relaxed);
        }
        self.fuel.store(0, Relaxed);
    }
}

/// A handle from a run-time value back into its chunk: the closure's
/// proto or the atomic unit's unit proto.
#[derive(Debug, Clone)]
pub struct VmCode {
    /// The owning chunk (shared — one copy of the code).
    pub chunk: Arc<Chunk>,
    /// Index into [`Chunk::protos`] (closures) or [`Chunk::units`]
    /// (atomic units).
    pub index: u32,
}

/// A suspended caller: where to resume when the callee returns.
struct Activation {
    chunk: Arc<Chunk>,
    ip: usize,
    env: Env,
}

/// Addresses at least this deep go through the frame display instead of
/// walking parent links. Shallow walks (the common case: parameters and
/// the enclosing unit frame) are one or two pointer hops and never pay
/// the display's build cost.
const DEEP_LOAD: u16 = 4;

/// A cache of the running activation's static chain, innermost
/// environment last, so a resolved `(depth, slot)` address indexes its
/// frame in O(1) instead of walking `depth` parent links. Built lazily
/// on the first deep load, kept in sync by `Bind`/`BindRec`/`PopFrame`,
/// and invalidated whenever the chain changes wholesale (calls, tail
/// calls, returns). The tree-walker has no analogue — its variable
/// references always walk — which is most of the VM's advantage on
/// deeply nested scopes.
struct Display {
    chain: Vec<Env>,
    built: bool,
}

impl Display {
    fn new() -> Display {
        Display { chain: Vec::new(), built: false }
    }

    fn invalidate(&mut self) {
        if self.built {
            self.chain.clear();
            self.built = false;
        }
    }

    fn ensure(&mut self, env: &Env) {
        if self.built {
            return;
        }
        let mut e = env.clone();
        while !e.is_empty() {
            let parent = e.parent();
            self.chain.push(e);
            e = parent;
        }
        self.chain.reverse();
        self.built = true;
    }

    fn pushed(&mut self, env: &Env) {
        if self.built {
            self.chain.push(env.clone());
        }
    }

    fn popped(&mut self) {
        if self.built {
            self.chain.pop();
        }
    }

    fn get(&self, depth: u16, slot: u16, name: &Symbol) -> Option<&Binding> {
        let i = self.chain.len().checked_sub(1 + depth as usize)?;
        self.chain[i].slot_binding(slot as usize, name)
    }
}

/// Applies a hot binary integer primitive inline, in builds where both
/// tracing and fault injection are compiled out — `apply_prim` is
/// observably identical on these operands but pays the (dead) event and
/// fault-site plumbing. Traced and chaos builds always take the shared
/// path, so their `prim` event streams and `runtime/prim` fault site
/// stay aligned with the tree-walker's. Returns `None` for any operand
/// or operator outside the fast set; the caller falls through.
#[inline(always)]
fn fast_prim(op: PrimOp, args: &[Value]) -> Option<Value> {
    if units_trace::COMPILED || units_trace::faults::COMPILED {
        return None;
    }
    match args {
        [Value::Int(a), Value::Int(b)] => Some(match op {
            PrimOp::Add => Value::Int(a.wrapping_add(*b)),
            PrimOp::Sub => Value::Int(a.wrapping_sub(*b)),
            PrimOp::Mul => Value::Int(a.wrapping_mul(*b)),
            PrimOp::Lt => Value::Bool(a < b),
            PrimOp::Le => Value::Bool(a <= b),
            PrimOp::NumEq => Value::Bool(a == b),
            _ => return None,
        }),
        _ => None,
    }
}

/// Finds a resolved variable's binding: shallow addresses walk the
/// environment directly ([`Env::lookup_at`]), deep addresses index the
/// frame display. Either way a verify failure degrades to the by-name
/// scan, so a stale address can cost time but never a wrong binding.
fn addressed<'a>(
    display: &'a mut Display,
    env: &'a Env,
    depth: u16,
    slot: u16,
    name: &Symbol,
) -> Option<&'a Binding> {
    if depth >= DEEP_LOAD {
        display.ensure(env);
        if let Some(b) = display.get(depth, slot, name) {
            return Some(b);
        }
        units_trace::count("runtime/lookup_at/miss", 1);
        return env.lookup(name);
    }
    env.lookup_at(name, LexAddr { depth: depth.into(), slot: slot.into() })
}

/// Executes a chunk's top-level segment in the empty environment.
///
/// # Errors
///
/// Any [`RuntimeError`] the program signals, including budget exhaustion
/// from the machine's [`Limits`](crate::machine::Limits).
pub fn execute(chunk: &Arc<Chunk>, machine: &mut Machine) -> Result<Value, RuntimeError> {
    units_trace::faults::trip("vm/dispatch")?;
    run(chunk.clone(), chunk.entry, Env::new(), machine)
}

/// Wires and runs an invocation whose constituents carry lowered code —
/// the VM counterpart of the tree-walker's `invoke_unit`, sharing its
/// cell protocol through [`crate::wiring`].
fn vm_invoke(
    unit: &UnitValue,
    supplied: &HashMap<Symbol, Value>,
    machine: &mut Machine,
) -> Result<Value, RuntimeError> {
    let _timer = units_trace::time("link");
    units_trace::faults::trip("vm/dispatch")?;
    let cells = import_cells(unit, supplied, machine)?;
    let mut wired = Vec::new();
    wire(unit, &cells, &HashMap::new(), machine, &mut wired)?;
    emit_invoke_event(unit, wired.len());
    // All definitions in link order, then all inits in link order; the
    // last init value is the result (Fig. 11's merged letrec).
    for w in &wired {
        let code = w.code.as_ref().ok_or(RuntimeError::WrongType {
            expected: "a bytecode-compiled unit",
            found: String::from("a unit without lowered code"),
        })?;
        let proto = &code.chunk.units[code.index as usize];
        for (entry, cell) in proto.def_entries.iter().zip(&w.def_cells) {
            let v = run(code.chunk.clone(), *entry, w.env.clone(), machine)?;
            *cell.borrow_mut() = Some(v);
        }
    }
    let mut result = Value::Void;
    for w in &wired {
        let code = w.code.as_ref().expect("checked while running definitions");
        let proto = &code.chunk.units[code.index as usize];
        result = run(code.chunk.clone(), proto.init_entry, w.env.clone(), machine)?;
    }
    Ok(result)
}

/// Runs one segment to its final `Return`. Calls stay inside the loop on
/// an explicit activation stack; only nested invocations recurse in Rust
/// (guarded by the machine's depth budget, like the tree-walker).
fn run(
    chunk: Arc<Chunk>,
    entry: u32,
    env: Env,
    machine: &mut Machine,
) -> Result<Value, RuntimeError> {
    machine.enter()?;
    let result = dispatch(chunk, entry, env, machine);
    machine.exit();
    result
}

fn dispatch(
    mut chunk: Arc<Chunk>,
    entry: u32,
    mut env: Env,
    machine: &mut Machine,
) -> Result<Value, RuntimeError> {
    let mut ip = entry as usize;
    let mut stack: Vec<Value> = Vec::with_capacity(16);
    let mut calls: Vec<Activation> = Vec::new();
    let mut display = Display::new();
    // Fuel accumulates locally and flushes at back-edges, call sites, and
    // returns — every loop a program can write passes a flush point.
    let mut pending: u64 = 0;
    macro_rules! flush {
        () => {
            if pending > 0 {
                if units_trace::COMPILED {
                    // Attribute the batch to the chunk it ran in — at a
                    // flush point `pending` belongs entirely to the
                    // chunk in the register.
                    chunk.profile.add_fuel(pending);
                }
                machine.charge(pending)?;
                pending = 0;
            }
        };
    }
    macro_rules! pop {
        () => {
            stack.pop().expect("the lowerer balances the value stack")
        };
    }
    loop {
        // Dispatch on a borrow of the instruction — no per-op clone. The
        // arms copy the scalar operands they need, which frees the arms
        // that swap chunks (calls, returns) to reassign the register.
        let op = &chunk.code[ip];
        ip += 1;
        pending += 1;
        units_trace::count(op.name(), 1);
        if units_trace::COMPILED {
            chunk.profile.hit(ip - 1);
        }
        match op {
            Op::Int(n) => stack.push(Value::Int(*n)),
            Op::Bool(b) => stack.push(Value::Bool(*b)),
            Op::Void => stack.push(Value::Void),
            Op::Const(i) => stack.push(Value::Str(chunk.consts[*i as usize].clone())),
            Op::PrimVal(p) => stack.push(Value::Prim(*p)),
            Op::Load { depth, slot, name } => {
                let v =
                    read_binding(addressed(&mut display, &env, *depth, *slot, name), name)?;
                stack.push(v);
            }
            Op::LoadName(name) => {
                stack.push(read_binding(env.lookup(name), name)?);
            }
            Op::Store { depth, slot, name } => {
                let v = pop!();
                store(addressed(&mut display, &env, *depth, *slot, name), name, v)?;
                stack.push(Value::Void);
            }
            Op::StoreName(name) => {
                let v = pop!();
                store(env.lookup(name), name, v)?;
                stack.push(Value::Void);
            }
            Op::Bind(i) => {
                let names = &chunk.frames[*i as usize];
                let mut frame = Vec::with_capacity(names.len());
                let at = stack.len() - names.len();
                for (name, v) in names.iter().zip(stack.drain(at..)) {
                    frame.push((name.clone(), Binding::Val(v)));
                }
                env = env.extend(frame);
                display.pushed(&env);
            }
            Op::BindRec(i) => {
                let lr = chunk.recs[*i as usize].clone();
                let (inner, _cells) =
                    crate::wiring::bind_letrec_frame(&lr.types, &lr.vals, &env, machine)?;
                env = inner;
                display.pushed(&env);
            }
            Op::InitCell(slot) => {
                let v = pop!();
                match env.top_binding((*slot).into()) {
                    Some(Binding::Cell(c)) => *c.borrow_mut() = Some(v),
                    _ => {
                        return Err(RuntimeError::WrongType {
                            expected: "a definition cell",
                            found: String::from("a machine-internal form"),
                        })
                    }
                }
            }
            Op::PopFrame => {
                env = env.parent();
                display.popped();
            }
            Op::Jump(off) => {
                let off = *off;
                if off < 0 {
                    flush!();
                }
                ip = (ip as i64 + i64::from(off)) as usize;
            }
            Op::JumpIfFalse(off) => {
                let off = *off;
                match pop!() {
                    Value::Bool(true) => {}
                    Value::Bool(false) => {
                        if off < 0 {
                            flush!();
                        }
                        ip = (ip as i64 + i64::from(off)) as usize;
                    }
                    other => {
                        return Err(RuntimeError::WrongType {
                            expected: "a boolean",
                            found: other.to_string(),
                        })
                    }
                }
            }
            Op::MakeClosure(i) => {
                let i = *i;
                let proto = &chunk.protos[i as usize];
                stack.push(Value::Closure(Rc::new(Closure {
                    lambda: proto.lambda.clone(),
                    env: env.clone(),
                    code: Some(VmCode { chunk: chunk.clone(), index: i }),
                })));
            }
            Op::Call(argc) | Op::TailCall(argc) => {
                flush!();
                let argc = *argc as usize;
                let tail = matches!(op, Op::TailCall(_));
                let callee = stack.remove(stack.len() - 1 - argc);
                match callee {
                    Value::Closure(closure) => {
                        if closure.arity() != argc {
                            return Err(RuntimeError::Arity {
                                expected: closure.arity(),
                                found: argc,
                            });
                        }
                        let Some(code) = &closure.code else {
                            return Err(RuntimeError::WrongType {
                                expected: "a bytecode-compiled procedure",
                                found: String::from("a closure without lowered code"),
                            });
                        };
                        // The arguments move straight into the callee's
                        // frame — no intermediate vector, and a unary
                        // frame is stored inline.
                        let callee_env = if argc == 1 {
                            let v = pop!();
                            closure
                                .env
                                .extend1(closure.lambda.params[0].name.clone(), Binding::Val(v))
                        } else {
                            let mut frame = Vec::with_capacity(argc);
                            let at = stack.len() - argc;
                            for (p, v) in closure.lambda.params.iter().zip(stack.drain(at..)) {
                                frame.push((p.name.clone(), Binding::Val(v)));
                            }
                            closure.env.extend(frame)
                        };
                        let callee_entry =
                            code.chunk.protos[code.index as usize].entry as usize;
                        display.invalidate();
                        if tail {
                            // Replace the running activation: constant
                            // space for tail recursion, like the
                            // tree-walker's trampoline.
                            if !Arc::ptr_eq(&chunk, &code.chunk) {
                                chunk = code.chunk.clone();
                            }
                            env = callee_env;
                        } else {
                            machine.enter()?;
                            calls.push(Activation {
                                chunk: std::mem::replace(&mut chunk, code.chunk.clone()),
                                ip,
                                env: std::mem::replace(&mut env, callee_env),
                            });
                        }
                        ip = callee_entry;
                    }
                    Value::Prim(p) => {
                        let at = stack.len() - argc;
                        let v = match fast_prim(p, &stack[at..]) {
                            Some(v) => v,
                            None => apply_prim(p, &stack[at..], machine)?,
                        };
                        stack.truncate(at);
                        stack.push(v);
                    }
                    Value::Data(d) => {
                        let args = stack.split_off(stack.len() - argc);
                        stack.push(apply_data(&d, args)?);
                    }
                    other => {
                        return Err(RuntimeError::NotAFunction { found: other.to_string() })
                    }
                }
            }
            Op::CallPrim { op: p, argc } => {
                // Applied to a slice of the value stack in place — the
                // superinstruction allocates nothing. No flush: a prim
                // cannot form a loop, so back-edges and calls still
                // bound the pending fuel.
                let at = stack.len() - *argc as usize;
                let v = match fast_prim(*p, &stack[at..]) {
                    Some(v) => v,
                    None => apply_prim(*p, &stack[at..], machine)?,
                };
                stack.truncate(at);
                stack.push(v);
            }
            Op::CallPrimImm { op: p, imm, rev } => {
                let (p, imm, rev) = (*p, i64::from(*imm), *rev);
                let fast = if units_trace::COMPILED || units_trace::faults::COMPILED {
                    // Traced and chaos builds take the shared prim path
                    // below, keeping their event streams and fault sites
                    // aligned with the unfused form.
                    None
                } else {
                    match stack.last() {
                        Some(Value::Int(a)) => {
                            let (a, b) = if rev { (imm, *a) } else { (*a, imm) };
                            match p {
                                PrimOp::Add => Some(Value::Int(a.wrapping_add(b))),
                                PrimOp::Sub => Some(Value::Int(a.wrapping_sub(b))),
                                PrimOp::Mul => Some(Value::Int(a.wrapping_mul(b))),
                                PrimOp::Lt => Some(Value::Bool(a < b)),
                                PrimOp::Le => Some(Value::Bool(a <= b)),
                                PrimOp::NumEq => Some(Value::Bool(a == b)),
                                _ => None,
                            }
                        }
                        _ => None,
                    }
                };
                match fast {
                    Some(v) => {
                        *stack.last_mut().expect("fast path saw the operand") = v;
                    }
                    None => {
                        // Materialize the immediate and run the shared
                        // path — observably identical to the unfused
                        // `Int; CallPrim` sequence, errors included.
                        let at = stack.len() - 1;
                        if rev {
                            stack.insert(at, Value::Int(imm));
                        } else {
                            stack.push(Value::Int(imm));
                        }
                        let v = apply_prim(p, &stack[at..], machine)?;
                        stack.truncate(at);
                        stack.push(v);
                    }
                }
            }
            Op::Return => {
                flush!();
                match calls.pop() {
                    Some(a) => {
                        machine.exit();
                        chunk = a.chunk;
                        ip = a.ip;
                        env = a.env;
                        display.invalidate();
                    }
                    None => return Ok(pop!()),
                }
            }
            Op::MakeTuple(n) => {
                let vals = stack.split_off(stack.len() - *n as usize);
                stack.push(Value::Tuple(Rc::new(vals)));
            }
            Op::Proj(i) => {
                let i = *i as usize;
                match pop!() {
                    Value::Tuple(items) => {
                        stack.push(items.get(i).cloned().ok_or(
                            RuntimeError::BadProjection { index: i, width: items.len() },
                        )?);
                    }
                    other => {
                        return Err(RuntimeError::WrongType {
                            expected: "a tuple",
                            found: other.to_string(),
                        })
                    }
                }
            }
            Op::Pop => {
                pop!();
            }
            Op::MakeUnit(i) => {
                let i = *i;
                let proto = &chunk.units[i as usize];
                stack.push(Value::Unit(Rc::new(UnitValue::Atomic(AtomicUnit {
                    source: proto.source.clone(),
                    env: env.clone(),
                    code: Some(VmCode { chunk: chunk.clone(), index: i }),
                }))));
            }
            Op::AsUnit(rule) => {
                let u = as_unit(pop!(), rule)?;
                stack.push(Value::Unit(u));
            }
            Op::CheckLink { compound, link } => {
                let u = as_unit(pop!(), "compound")?;
                let lc = &chunk.compounds[*compound as usize].links[*link as usize];
                check_link(&u, &lc.with, &lc.provides)?;
                stack.push(Value::Unit(u));
            }
            Op::MakeCompound(i) => {
                let c = &chunk.compounds[*i as usize];
                let vals = stack.split_off(stack.len() - c.links.len());
                let links = c
                    .links
                    .iter()
                    .zip(vals)
                    .map(|(l, v)| {
                        let Value::Unit(unit) = v else {
                            unreachable!("CheckLink verified every constituent")
                        };
                        LinkedConstituent {
                            unit,
                            with: l.with.clone(),
                            provides: l.provides.clone(),
                            renames: l.renames.clone(),
                        }
                    })
                    .collect();
                stack.push(Value::Unit(Rc::new(UnitValue::Linked(LinkedUnit {
                    imports: c.imports.clone(),
                    exports: c.exports.clone(),
                    links,
                }))));
            }
            Op::Invoke(i) => {
                flush!();
                let inv = chunk.invokes[*i as usize].clone();
                let vals = stack.split_off(stack.len() - inv.val_links.len());
                let unit = as_unit(pop!(), "invoke")?;
                let mut supplied = HashMap::with_capacity(inv.val_links.len());
                for ((name, _), v) in inv.val_links.iter().zip(vals) {
                    supplied.insert(name.clone(), v);
                }
                stack.push(vm_invoke(&unit, &supplied, machine)?);
            }
            Op::InvokeUnit(i) => {
                flush!();
                let i = *i;
                let proto = &chunk.units[i as usize];
                let unit = UnitValue::Atomic(AtomicUnit {
                    source: proto.source.clone(),
                    env: env.clone(),
                    code: Some(VmCode { chunk: chunk.clone(), index: i }),
                });
                stack.push(vm_invoke(&unit, &HashMap::new(), machine)?);
            }
            Op::Seal(i) => {
                let u = as_unit(pop!(), "seal")?;
                let sealed = seal_unit(u, &chunk.sigs[*i as usize])?;
                stack.push(Value::Unit(Rc::new(sealed)));
            }
            Op::Unsupported(expected) => {
                return Err(RuntimeError::WrongType {
                    expected,
                    found: String::from("a machine-internal form"),
                })
            }
        }
    }
}

/// The `set!` store half, shared by both addressing modes.
fn store(
    binding: Option<&Binding>,
    name: &Symbol,
    v: Value,
) -> Result<(), RuntimeError> {
    match binding {
        Some(Binding::Cell(c)) => {
            *c.borrow_mut() = Some(v);
            Ok(())
        }
        Some(Binding::Val(_)) => Err(RuntimeError::WrongType {
            expected: "an assignable (definition) variable",
            found: format!("immutable binding `{name}`"),
        }),
        None => Err(RuntimeError::Unbound { name: name.clone() }),
    }
}

/// Pretty-prints a chunk — one line per instruction with resolved
/// operands, followed by the constant pool and segment tables. Backs the
/// REPL's `:disasm`.
pub fn disassemble(chunk: &Chunk) -> String {
    render(chunk, false)
}

/// Like [`disassemble`], but prefixes every instruction with its
/// execution count from the chunk's [`OpProfile`] and reports the
/// totals — the REPL's `:disasm --profile`. Counts are only collected
/// in `trace` builds; elsewhere (or before any bytecode run) the
/// header says so instead of printing a column of zeros.
pub fn disassemble_profiled(chunk: &Chunk) -> String {
    render(chunk, true)
}

fn render(chunk: &Chunk, profiled: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "chunk: {} ops, entry @{}", chunk.code.len(), chunk.entry);
    let counts = if profiled {
        if !chunk.profile.enabled() {
            let _ = writeln!(
                out,
                "profile: unavailable — per-op counters need a build with --features trace"
            );
            None
        } else if chunk.profile.total() == 0 {
            let _ = writeln!(out, "profile: no bytecode run recorded yet (all counts zero)");
            None
        } else {
            let _ = writeln!(
                out,
                "profile: {} ops executed, {} fuel attributed",
                chunk.profile.total(),
                chunk.profile.fuel()
            );
            Some(chunk.profile.counts())
        }
    } else {
        None
    };
    for (i, op) in chunk.code.iter().enumerate() {
        let mnemonic = op.name().trim_start_matches("vm/op/");
        let operands = match op {
            Op::Int(n) => format!("{n}"),
            Op::Bool(b) => format!("{b}"),
            Op::Const(c) => format!("#{c} = {:?}", chunk.consts[*c as usize]),
            Op::PrimVal(p) | Op::CallPrim { op: p, argc: 0 } => format!("{p}"),
            Op::CallPrim { op: p, argc } => format!("{p} argc={argc}"),
            Op::CallPrimImm { op: p, imm, rev: false } => format!("{p} _ {imm}"),
            Op::CallPrimImm { op: p, imm, rev: true } => format!("{p} {imm} _"),
            Op::Load { depth, slot, name } | Op::Store { depth, slot, name } => {
                format!("{name} @({depth},{slot})")
            }
            Op::LoadName(n) | Op::StoreName(n) => format!("{n}"),
            Op::Bind(f) => {
                let names: Vec<&str> =
                    chunk.frames[*f as usize].iter().map(Symbol::as_str).collect();
                format!("[{}]", names.join(" "))
            }
            Op::BindRec(r) => {
                let lr = &chunk.recs[*r as usize];
                format!("{} defs", lr.vals.len())
            }
            Op::InitCell(s) => format!("slot {s}"),
            Op::Jump(off) | Op::JumpIfFalse(off) => {
                format!("→ {}", i as i64 + 1 + i64::from(*off))
            }
            Op::MakeClosure(p) => {
                let proto = &chunk.protos[*p as usize];
                format!("proto {p} (arity {}) @{}", proto.lambda.params.len(), proto.entry)
            }
            Op::Call(argc) | Op::TailCall(argc) | Op::MakeTuple(argc) => format!("{argc}"),
            Op::Proj(idx) => format!("{idx}"),
            Op::MakeUnit(u) | Op::InvokeUnit(u) => {
                let proto = &chunk.units[*u as usize];
                let entries: Vec<String> =
                    proto.def_entries.iter().map(|e| format!("@{e}")).collect();
                format!(
                    "unit {u} defs[{}] init @{}",
                    entries.join(" "),
                    proto.init_entry
                )
            }
            Op::AsUnit(rule) | Op::Unsupported(rule) => format!("{rule:?}"),
            Op::CheckLink { compound, link } => format!("compound {compound} link {link}"),
            Op::MakeCompound(c) => {
                format!("{} links", chunk.compounds[*c as usize].links.len())
            }
            Op::Invoke(v) => {
                let inv = &chunk.invokes[*v as usize];
                format!("{} links", inv.val_links.len())
            }
            Op::Seal(s) => {
                format!("{} exports", chunk.sigs[*s as usize].exports.vals.len())
            }
            Op::Void | Op::PopFrame | Op::Return | Op::Pop => String::new(),
        };
        if let Some(counts) = &counts {
            let _ = write!(out, "{:>9}× ", counts.get(i).copied().unwrap_or(0));
        }
        if operands.is_empty() {
            let _ = writeln!(out, "{i:>5}  {mnemonic}");
        } else {
            let _ = writeln!(out, "{i:>5}  {mnemonic:<14} {operands}");
        }
    }
    if !chunk.consts.is_empty() {
        let _ = writeln!(out, "consts:");
        for (i, v) in chunk.consts.iter().enumerate() {
            let _ = writeln!(out, "{i:>5}  {v:?}");
        }
    }
    out
}
