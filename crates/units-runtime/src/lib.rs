//! Run-time substrate for the unit language: values, environments,
//! primitives, and machine state.
//!
//! This crate is the dynamic half of the paper's implementation story
//! (§4.1.6): unit values carry *unevaluated, shared* code; definitions and
//! imports live in externally created reference cells. The evaluators —
//! the cells-based backend in `units-compile` and the substitution
//! reducer in `units-reduce` — both build on these types.
//!
//! # Example
//!
//! ```
//! use units_kernel::PrimOp;
//! use units_runtime::{apply_prim, Machine, Value};
//!
//! let mut machine = Machine::new();
//! let table = apply_prim(PrimOp::HashNew, &[], &mut machine)?;
//! apply_prim(PrimOp::HashSet, &[table.clone(), Value::str("bob"), Value::Int(555)], &mut machine)?;
//! let n = apply_prim(PrimOp::HashGet, &[table, Value::str("bob")], &mut machine)?;
//! assert!(n.observably_eq(&Value::Int(555)));
//! # Ok::<(), units_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod env;
mod error;
mod machine;
mod prim;
mod value;
pub mod vm;
pub mod wiring;

pub use env::{read_binding, Binding, Env};
pub use error::{Resource, RuntimeError};
pub use machine::{Limits, Machine};
pub use prim::{apply_prim, render_prim_call};
pub use value::{
    filled_cell, new_cell, AtomicUnit, CellRef, Closure, DataOpValue, LinkedConstituent,
    LinkedUnit, UnitValue, Value, VariantValue,
};
pub use vm::{disassemble, disassemble_profiled, execute, Chunk, Op, OpProfile, Proto, UnitProto, VmCode};
pub use wiring::{
    apply_data, as_unit, bind_letrec_frame, check_link, emit_invoke_event, import_cells,
    seal_unit, wire, WiredUnit,
};
