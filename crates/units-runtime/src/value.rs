//! Run-time values of the cells-based backend (§4.1.6).
//!
//! A unit value is *unevaluated code*: either an atomic unit (shared
//! source plus its captured lexical environment) or a linked compound of
//! other unit values. "There exists a single copy of the definition and
//! initialization code regardless of how many times the unit is linked or
//! invoked" — instances share the [`AtomicUnit::source`] `Arc`; only the
//! import/export *cells* created at invocation differ.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use units_kernel::{DataRole, LinkRenames, Ports, PrimOp, Symbol, UnitExpr};

use crate::env::Env;

/// A mutable definition cell. `None` means "not yet initialized" — reading
/// it is the MzScheme-strictness run-time error of §4.1.1.
pub type CellRef = Rc<RefCell<Option<Value>>>;

/// Creates a fresh, uninitialized cell.
pub fn new_cell() -> CellRef {
    units_trace::count("runtime/cells", 1);
    Rc::new(RefCell::new(None))
}

/// Creates a cell already holding a value.
pub fn filled_cell(value: Value) -> CellRef {
    Rc::new(RefCell::new(Some(value)))
}

/// A closure: the shared λ-node plus its captured environment.
#[derive(Debug, Clone)]
pub struct Closure {
    /// The λ-abstraction (shared with the source AST — evaluating the same
    /// λ twice allocates no new code).
    pub lambda: Arc<units_kernel::Lambda>,
    /// The captured lexical environment.
    pub env: Env,
    /// The lowered body, when the closure was created by the bytecode VM
    /// (`None` for tree-walker closures). Both evaluators keep the
    /// `lambda` source, so the value is inspectable either way.
    pub code: Option<crate::vm::VmCode>,
}

impl Closure {
    /// A tree-walker closure: source λ plus captured environment.
    pub fn new(lambda: Arc<units_kernel::Lambda>, env: Env) -> Closure {
        Closure { lambda, env, code: None }
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.lambda.params.len()
    }
}

/// A first-class datatype operation (constructor/deconstructor/predicate).
#[derive(Debug, Clone, PartialEq)]
pub struct DataOpValue {
    /// The datatype's source name (for error messages).
    pub ty_name: Symbol,
    /// Instance nonce: each evaluation of the defining `letrec`/unit body
    /// generates fresh operations (§5.3 behaviour).
    pub instance: u64,
    /// What the operation does.
    pub role: DataRole,
}

/// A constructed datatype value.
#[derive(Debug, Clone)]
pub struct VariantValue {
    /// The datatype's source name.
    pub ty_name: Symbol,
    /// The instance nonce of the constructor that made it.
    pub instance: u64,
    /// Which variant.
    pub tag: usize,
    /// The payload.
    pub payload: Value,
}

/// An atomic unit value: shared, compiled-once code plus its captured
/// environment.
#[derive(Debug, Clone)]
pub struct AtomicUnit {
    /// The unit's source — one copy shared by every link and invocation.
    pub source: Arc<UnitExpr>,
    /// The lexical environment the unit expression was evaluated in.
    pub env: Env,
    /// Lowered definition/init segments, when the unit value was created
    /// by the bytecode VM (`None` for tree-walker units).
    pub code: Option<crate::vm::VmCode>,
}

impl AtomicUnit {
    /// A tree-walker unit value: shared source plus captured environment.
    pub fn new(source: Arc<UnitExpr>, env: Env) -> AtomicUnit {
        AtomicUnit { source, env, code: None }
    }
}

/// One wired constituent of a [`LinkedUnit`].
#[derive(Debug, Clone)]
pub struct LinkedConstituent {
    /// The constituent unit value.
    pub unit: Rc<UnitValue>,
    /// Its expected imports (inner names).
    pub with: Ports,
    /// Its promised exports (inner names).
    pub provides: Ports,
    /// Source/destination pairs into the compound's linking namespace.
    pub renames: LinkRenames,
}

/// A compound unit value produced by `compound` linking.
#[derive(Debug, Clone)]
pub struct LinkedUnit {
    /// The compound's imports (names; types erased at run time).
    pub imports: Ports,
    /// The compound's exports.
    pub exports: Ports,
    /// The constituents with their wiring, in initialization order.
    pub links: Vec<LinkedConstituent>,
}

/// A unit value.
#[derive(Debug, Clone)]
pub enum UnitValue {
    /// An atomic unit.
    Atomic(AtomicUnit),
    /// A linked compound.
    Linked(LinkedUnit),
    /// A sealed view of another unit: exports outside the retained set are
    /// hidden (run-time effect of §5.2's signature ascription).
    Restricted {
        /// The underlying unit.
        inner: Rc<UnitValue>,
        /// The retained interface.
        exports: Ports,
    },
}

impl UnitValue {
    /// The unit's import ports (names).
    pub fn imports(&self) -> &Ports {
        match self {
            UnitValue::Atomic(a) => &a.source.imports,
            UnitValue::Linked(l) => &l.imports,
            UnitValue::Restricted { inner, .. } => inner.imports(),
        }
    }

    /// The unit's export ports (names).
    pub fn exports(&self) -> &Ports {
        match self {
            UnitValue::Atomic(a) => &a.source.exports,
            UnitValue::Linked(l) => &l.exports,
            UnitValue::Restricted { exports, .. } => exports,
        }
    }

    /// True when the unit needs no imports (a complete program).
    pub fn is_program(&self) -> bool {
        self.imports().is_empty()
    }

    /// The shared code behind this unit, if atomic — used by tests that
    /// pin the §4.1.6 code-sharing claim.
    pub fn atomic_source(&self) -> Option<&Arc<UnitExpr>> {
        match self {
            UnitValue::Atomic(a) => Some(&a.source),
            UnitValue::Restricted { inner, .. } => inner.atomic_source(),
            UnitValue::Linked(_) => None,
        }
    }
}

/// A run-time value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A machine integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An immutable string.
    Str(Arc<str>),
    /// The void value.
    Void,
    /// A tuple.
    Tuple(Rc<Vec<Value>>),
    /// A closure.
    Closure(Rc<Closure>),
    /// A primitive operation value.
    Prim(PrimOp),
    /// A mutable string-keyed hash table.
    Hash(Rc<RefCell<HashMap<String, Value>>>),
    /// A datatype operation.
    Data(Rc<DataOpValue>),
    /// A constructed datatype value.
    Variant(Rc<VariantValue>),
    /// A first-class unit.
    Unit(Rc<UnitValue>),
}

impl Value {
    /// A new string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// A fresh empty hash table (the `makeStringHashTable()` of Fig. 1).
    pub fn new_hash() -> Value {
        Value::Hash(Rc::new(RefCell::new(HashMap::new())))
    }

    /// A short description of the value's shape, for error messages.
    pub fn shape(&self) -> &'static str {
        match self {
            Value::Int(_) => "an integer",
            Value::Bool(_) => "a boolean",
            Value::Str(_) => "a string",
            Value::Void => "void",
            Value::Tuple(_) => "a tuple",
            Value::Closure(_) => "a function",
            Value::Prim(_) => "a primitive",
            Value::Hash(_) => "a hash table",
            Value::Data(_) => "a datatype operation",
            Value::Variant(_) => "a datatype value",
            Value::Unit(_) => "a unit",
        }
    }

    /// Structural equality for observable (first-order) values; functions,
    /// hashes, and units compare by identity. Used by tests and the
    /// differential harness.
    pub fn observably_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Void, Value::Void) => true,
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.observably_eq(y))
            }
            (Value::Variant(a), Value::Variant(b)) => {
                a.ty_name == b.ty_name && a.tag == b.tag && a.payload.observably_eq(&b.payload)
            }
            (Value::Closure(a), Value::Closure(b)) => Rc::ptr_eq(a, b),
            (Value::Prim(a), Value::Prim(b)) => a == b,
            (Value::Hash(a), Value::Hash(b)) => Rc::ptr_eq(a, b),
            (Value::Data(a), Value::Data(b)) => a == b,
            (Value::Unit(a), Value::Unit(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Void => f.write_str("void"),
            Value::Tuple(items) => {
                f.write_str("⟨")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("⟩")
            }
            Value::Closure(c) => write!(f, "#⟨procedure/{}⟩", c.arity()),
            Value::Prim(op) => write!(f, "#⟨prim {op}⟩"),
            Value::Hash(h) => write!(f, "#⟨hash·{}⟩", h.borrow().len()),
            Value::Data(d) => write!(f, "#⟨{:?} of {}⟩", d.role, d.ty_name),
            Value::Variant(v) => write!(f, "({}·{} {})", v.ty_name, v.tag, v.payload),
            Value::Unit(u) => write!(
                f,
                "#⟨unit imports:{} exports:{}⟩",
                u.imports().len(),
                u.exports().len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observable_equality_is_structural_for_data() {
        let a = Value::Tuple(Rc::new(vec![Value::Int(1), Value::str("x")]));
        let b = Value::Tuple(Rc::new(vec![Value::Int(1), Value::str("x")]));
        assert!(a.observably_eq(&b));
        assert!(!a.observably_eq(&Value::Int(1)));
    }

    #[test]
    fn hash_equality_is_identity() {
        let a = Value::new_hash();
        let b = Value::new_hash();
        assert!(a.observably_eq(&a));
        assert!(!a.observably_eq(&b));
    }

    #[test]
    fn display_is_nonempty_for_everything() {
        for v in [
            Value::Int(0),
            Value::Bool(false),
            Value::str(""),
            Value::Void,
            Value::Tuple(Rc::new(vec![])),
            Value::Prim(PrimOp::Add),
            Value::new_hash(),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn cells_start_empty() {
        let c = new_cell();
        assert!(c.borrow().is_none());
        *c.borrow_mut() = Some(Value::Int(3));
        assert!(c.borrow().is_some());
    }
}
