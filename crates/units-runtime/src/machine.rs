//! Shared machine state: instance nonces, the output buffer, and
//! resource budgets.
//!
//! Both evaluators (the cells backend and the substitution reducer) thread
//! a [`Machine`] through evaluation. It is deliberately small: datatype
//! instantiation needs fresh nonces (§5.3), `display` needs somewhere to
//! write, and callers want [`Limits`] so a hostile or merely deep program
//! fails with a typed [`RuntimeError::ResourceExhausted`] instead of
//! hanging or overflowing the stack.

use crate::error::{Resource, RuntimeError};

/// Resource budgets for one evaluation.
///
/// Every field defaults to `None` (unlimited). Exhausting a budget
/// surfaces as [`RuntimeError::ResourceExhausted`] naming the
/// [`Resource`] that ran out — never a panic or a stack overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Limits {
    /// Maximum evaluation steps.
    pub fuel: Option<u64>,
    /// Maximum term-nesting depth the evaluator will descend.
    pub max_depth: Option<u64>,
    /// Maximum mutable store cells allocated over the run.
    pub max_store_cells: Option<u64>,
}

impl Limits {
    /// No budgets at all (the default).
    pub fn none() -> Limits {
        Limits::default()
    }

    /// Bounds evaluation steps.
    pub fn fuel(mut self, fuel: u64) -> Limits {
        self.fuel = Some(fuel);
        self
    }

    /// Bounds evaluation depth.
    pub fn max_depth(mut self, depth: u64) -> Limits {
        self.max_depth = Some(depth);
        self
    }

    /// Bounds store-cell allocation.
    pub fn max_store_cells(mut self, cells: u64) -> Limits {
        self.max_store_cells = Some(cells);
        self
    }
}

/// Mutable machine-wide state.
#[derive(Debug)]
pub struct Machine {
    next_instance: u64,
    /// Everything `display` wrote, in order.
    output: Vec<String>,
    limits: Limits,
    fuel_left: Option<u64>,
    steps_taken: u64,
    depth: u64,
    cells_allocated: u64,
}

impl Machine {
    /// A machine with no budgets.
    pub fn new() -> Machine {
        Machine::with_limits(Limits::none())
    }

    /// A machine that fails with [`RuntimeError::ResourceExhausted`]
    /// (fuel) after `fuel` steps.
    pub fn with_fuel(fuel: u64) -> Machine {
        Machine::with_limits(Limits::none().fuel(fuel))
    }

    /// A machine governed by `limits`.
    pub fn with_limits(limits: Limits) -> Machine {
        Machine {
            next_instance: 0,
            output: Vec::new(),
            limits,
            fuel_left: limits.fuel,
            steps_taken: 0,
            depth: 0,
            cells_allocated: 0,
        }
    }

    /// The budgets this machine enforces.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Draws a fresh datatype-instance nonce (never zero — zero marks
    /// uninstantiated source operations).
    pub fn fresh_instance(&mut self) -> u64 {
        self.next_instance += 1;
        self.next_instance
    }

    /// Records one evaluation step against the fuel budget.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ResourceExhausted`] when the budget is
    /// exhausted.
    pub fn step(&mut self) -> Result<(), RuntimeError> {
        if let Some(fuel) = &mut self.fuel_left {
            if *fuel == 0 {
                return Err(RuntimeError::ResourceExhausted {
                    resource: Resource::Fuel,
                    limit: self.limits.fuel.unwrap_or(0),
                });
            }
            *fuel -= 1;
        }
        self.steps_taken += 1;
        Ok(())
    }

    /// Records `n` evaluation steps at once against the fuel budget — the
    /// batched form of [`Machine::step`] used by the bytecode VM, which
    /// accumulates a local opcode count and flushes it at back-edges and
    /// call sites instead of paying a budget check per instruction.
    ///
    /// # Errors
    ///
    /// Returns the same [`RuntimeError::ResourceExhausted`] (fuel) as
    /// [`Machine::step`], carrying the configured limit.
    pub fn charge(&mut self, n: u64) -> Result<(), RuntimeError> {
        if let Some(fuel) = &mut self.fuel_left {
            if *fuel < n {
                self.steps_taken += *fuel;
                *fuel = 0;
                return Err(RuntimeError::ResourceExhausted {
                    resource: Resource::Fuel,
                    limit: self.limits.fuel.unwrap_or(0),
                });
            }
            *fuel -= n;
        }
        self.steps_taken += n;
        Ok(())
    }

    /// Steps taken so far (fuel consumed, whether or not a limit is set).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Store cells allocated so far. Cells are never freed within a
    /// run, so at completion this is the run's high-water mark.
    pub fn cells_allocated(&self) -> u64 {
        self.cells_allocated
    }

    /// Enters one level of term nesting; pair with [`Machine::exit`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ResourceExhausted`] when descending would
    /// exceed the depth budget.
    pub fn enter(&mut self) -> Result<(), RuntimeError> {
        self.depth += 1;
        self.check_depth(self.depth)
    }

    /// Leaves one level of term nesting.
    pub fn exit(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Checks an externally tracked nesting depth against the budget
    /// (used by the reducer, whose spine is an explicit worklist rather
    /// than Rust recursion).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ResourceExhausted`] when `depth` exceeds
    /// the budget.
    pub fn check_depth(&self, depth: u64) -> Result<(), RuntimeError> {
        match self.limits.max_depth {
            Some(max) if depth > max => Err(RuntimeError::ResourceExhausted {
                resource: Resource::Depth,
                limit: max,
            }),
            _ => Ok(()),
        }
    }

    /// Records `n` store-cell allocations against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ResourceExhausted`] when the allocation
    /// would exceed the cell budget.
    pub fn alloc_cells(&mut self, n: u64) -> Result<(), RuntimeError> {
        self.cells_allocated += n;
        match self.limits.max_store_cells {
            Some(max) if self.cells_allocated > max => Err(RuntimeError::ResourceExhausted {
                resource: Resource::StoreCells,
                limit: max,
            }),
            _ => Ok(()),
        }
    }

    /// Appends a line to the output buffer (the `display` primitive).
    pub fn write(&mut self, text: impl Into<String>) {
        self.output.push(text.into());
    }

    /// Everything displayed so far.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Drains and returns the output buffer.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_fresh_and_nonzero() {
        let mut m = Machine::new();
        let a = m.fresh_instance();
        let b = m.fresh_instance();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn fuel_runs_out() {
        let mut m = Machine::with_fuel(2);
        m.step().unwrap();
        m.step().unwrap();
        assert_eq!(
            m.step(),
            Err(RuntimeError::ResourceExhausted { resource: Resource::Fuel, limit: 2 })
        );
        assert_eq!(m.steps_taken(), 2);
    }

    #[test]
    fn charge_batches_fuel_and_reports_the_configured_limit() {
        let mut m = Machine::with_fuel(10);
        m.charge(4).unwrap();
        m.charge(6).unwrap();
        assert_eq!(
            m.charge(1),
            Err(RuntimeError::ResourceExhausted { resource: Resource::Fuel, limit: 10 })
        );
        assert_eq!(m.steps_taken(), 10);
        // Overshooting consumes only the remaining fuel.
        let mut m = Machine::with_fuel(3);
        assert!(m.charge(100).is_err());
        assert_eq!(m.steps_taken(), 3);
    }

    #[test]
    fn unlimited_machines_never_tire() {
        let mut m = Machine::new();
        for _ in 0..10_000 {
            m.step().unwrap();
        }
        assert_eq!(m.steps_taken(), 10_000);
    }

    #[test]
    fn depth_budget_trips_on_entry() {
        let mut m = Machine::with_limits(Limits::none().max_depth(2));
        m.enter().unwrap();
        m.enter().unwrap();
        assert_eq!(
            m.enter(),
            Err(RuntimeError::ResourceExhausted { resource: Resource::Depth, limit: 2 })
        );
        m.exit();
        m.exit();
        m.exit();
        m.enter().unwrap();
    }

    #[test]
    fn cell_budget_counts_cumulatively() {
        let mut m = Machine::with_limits(Limits::none().max_store_cells(3));
        m.alloc_cells(2).unwrap();
        m.alloc_cells(1).unwrap();
        assert_eq!(
            m.alloc_cells(1),
            Err(RuntimeError::ResourceExhausted { resource: Resource::StoreCells, limit: 3 })
        );
    }

    #[test]
    fn output_accumulates_and_drains() {
        let mut m = Machine::new();
        m.write("a");
        m.write("b");
        assert_eq!(m.output(), ["a", "b"]);
        assert_eq!(m.take_output(), vec!["a".to_string(), "b".to_string()]);
        assert!(m.output().is_empty());
    }
}
