//! Shared machine state: instance nonces, the output buffer, and a step
//! budget.
//!
//! Both evaluators (the cells backend and the substitution reducer) thread
//! a [`Machine`] through evaluation. It is deliberately small: datatype
//! instantiation needs fresh nonces (§5.3), `display` needs somewhere to
//! write, and tests/benches want a fuel limit so accidental divergence
//! fails fast instead of hanging.

use crate::error::RuntimeError;

/// Mutable machine-wide state.
#[derive(Debug)]
pub struct Machine {
    next_instance: u64,
    /// Everything `display` wrote, in order.
    output: Vec<String>,
    fuel: Option<u64>,
}

impl Machine {
    /// A machine with no step limit.
    pub fn new() -> Machine {
        Machine { next_instance: 0, output: Vec::new(), fuel: None }
    }

    /// A machine that fails with [`RuntimeError::OutOfFuel`] after `fuel`
    /// steps.
    pub fn with_fuel(fuel: u64) -> Machine {
        Machine { next_instance: 0, output: Vec::new(), fuel: Some(fuel) }
    }

    /// Draws a fresh datatype-instance nonce (never zero — zero marks
    /// uninstantiated source operations).
    pub fn fresh_instance(&mut self) -> u64 {
        self.next_instance += 1;
        self.next_instance
    }

    /// Records one evaluation step against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::OutOfFuel`] when the budget is exhausted.
    pub fn step(&mut self) -> Result<(), RuntimeError> {
        if let Some(fuel) = &mut self.fuel {
            if *fuel == 0 {
                return Err(RuntimeError::OutOfFuel);
            }
            *fuel -= 1;
        }
        Ok(())
    }

    /// Appends a line to the output buffer (the `display` primitive).
    pub fn write(&mut self, text: impl Into<String>) {
        self.output.push(text.into());
    }

    /// Everything displayed so far.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Drains and returns the output buffer.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_fresh_and_nonzero() {
        let mut m = Machine::new();
        let a = m.fresh_instance();
        let b = m.fresh_instance();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn fuel_runs_out() {
        let mut m = Machine::with_fuel(2);
        m.step().unwrap();
        m.step().unwrap();
        assert_eq!(m.step(), Err(RuntimeError::OutOfFuel));
    }

    #[test]
    fn unlimited_machines_never_tire() {
        let mut m = Machine::new();
        for _ in 0..10_000 {
            m.step().unwrap();
        }
    }

    #[test]
    fn output_accumulates_and_drains() {
        let mut m = Machine::new();
        m.write("a");
        m.write("b");
        assert_eq!(m.output(), ["a", "b"]);
        assert_eq!(m.take_output(), vec!["a".to_string(), "b".to_string()]);
        assert!(m.output().is_empty());
    }
}
