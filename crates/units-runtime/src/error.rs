//! Run-time errors.
//!
//! The untyped calculus UNITd relies on dynamic checks where UNITc/UNITe
//! use static ones; this module enumerates every dynamic failure the
//! evaluator can signal. Well-typed programs can still raise
//! [`RuntimeError::User`] (the `fail` primitive), [`RuntimeError::WrongVariant`]
//! (deconstructing the wrong variant — the paper makes this a checked
//! run-time error), division by zero, missing hash keys, and — under
//! MzScheme strictness — reads of not-yet-initialized definitions.

use std::fmt;

use units_kernel::Symbol;

/// A bounded resource an evaluator can run out of.
///
/// Budgets are set via [`crate::Limits`]; exhausting one surfaces as
/// [`RuntimeError::ResourceExhausted`] naming the resource, so callers
/// can distinguish "the program loops" (fuel) from "the program is too
/// deep" (depth) from "the program allocates too much" (store cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Evaluation steps (β/δ contractions, machine steps).
    Fuel,
    /// Nesting depth of the term being evaluated.
    Depth,
    /// Mutable store cells (letrec frames, import wiring, hash tables).
    StoreCells,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Fuel => "fuel",
            Resource::Depth => "depth",
            Resource::StoreCells => "store cells",
        })
    }
}

/// A dynamic failure during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A variable had no binding (impossible after `context_check`).
    Unbound {
        /// The variable.
        name: Symbol,
    },
    /// A non-function was applied.
    NotAFunction {
        /// Rendering of the value in operator position.
        found: String,
    },
    /// Wrong number of arguments.
    Arity {
        /// Parameters expected.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// A value of one shape appeared where another was required
    /// (dynamic typing error in UNITd programs).
    WrongType {
        /// What the operation needed.
        expected: &'static str,
        /// Rendering of what it got.
        found: String,
    },
    /// A deconstructor was applied to the wrong variant ("applying a
    /// deconstructor to the wrong variant signals a run-time error").
    WrongVariant {
        /// The datatype's name.
        ty_name: Symbol,
        /// Variant index the deconstructor wanted.
        expected: usize,
        /// Variant index the value carried.
        found: usize,
    },
    /// A datatype operation received a value from a *different instance*
    /// of the same unit (§5.3: instances do not share types).
    ForeignInstance {
        /// The datatype's name.
        ty_name: Symbol,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// `hash-get` on an absent key.
    MissingKey {
        /// The key.
        key: String,
    },
    /// The `fail` primitive was invoked.
    User {
        /// The message carried by `fail`.
        message: String,
    },
    /// A definition was read before its defining expression ran
    /// (MzScheme-strictness dynamic check, §4.1.1 footnote).
    UndefinedRead {
        /// The definition's name.
        name: Symbol,
    },
    /// `invoke` did not supply a value for one of the unit's imports
    /// ("otherwise, a run-time error is signalled").
    UnsatisfiedImport {
        /// The import's name.
        name: Symbol,
    },
    /// Linking found a constituent that does not actually export a name
    /// its `provides` clause promised.
    MissingProvide {
        /// The promised name.
        name: Symbol,
    },
    /// Linking found a constituent whose imports exceed its `with` clause.
    ExcessImport {
        /// The undeclared import.
        name: Symbol,
    },
    /// `seal` (or a signature check at a dynamic-linking boundary) failed.
    SealFailure {
        /// Why.
        reason: String,
    },
    /// Tuple projection out of range.
    BadProjection {
        /// Index requested.
        index: usize,
        /// Tuple width.
        width: usize,
    },
    /// The reducer/evaluator exceeded one of its [`crate::Limits`]
    /// budgets.
    ResourceExhausted {
        /// Which budget ran out.
        resource: Resource,
        /// The configured limit that was hit.
        limit: u64,
    },
    /// A linking rule found a constituent that is not a unit value —
    /// `rule` names the Fig. 11 rule that was mid-fire (`compound`,
    /// `invoke`) when the malformed constituent surfaced.
    NotAUnit {
        /// The Fig. 11 rule that was firing.
        rule: &'static str,
        /// Rendering of the non-unit value.
        found: String,
    },
    /// A fault deliberately fired by an armed
    /// [`units_trace::faults::FaultPlane`] schedule. Never occurs in
    /// production builds (the `faults` feature compiles the plane out).
    Injected {
        /// The injection point that fired (e.g. `"reduce/prim"`).
        site: &'static str,
        /// The 1-based trip count at that site when it fired.
        hit: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Unbound { name } => write!(f, "unbound variable `{name}`"),
            RuntimeError::NotAFunction { found } => {
                write!(f, "application of a non-function: {found}")
            }
            RuntimeError::Arity { expected, found } => {
                write!(f, "arity mismatch: expected {expected} argument(s), got {found}")
            }
            RuntimeError::WrongType { expected, found } => {
                write!(f, "expected {expected}, got {found}")
            }
            RuntimeError::WrongVariant { ty_name, expected, found } => write!(
                f,
                "deconstructor for variant {expected} of `{ty_name}` applied to variant {found}"
            ),
            RuntimeError::ForeignInstance { ty_name } => write!(
                f,
                "`{ty_name}` value belongs to a different instance of its defining unit"
            ),
            RuntimeError::DivisionByZero => f.write_str("division by zero"),
            RuntimeError::MissingKey { key } => write!(f, "hash table has no key {key:?}"),
            RuntimeError::User { message } => write!(f, "error: {message}"),
            RuntimeError::UndefinedRead { name } => {
                write!(f, "definition `{name}` read before initialization")
            }
            RuntimeError::UnsatisfiedImport { name } => {
                write!(f, "invoke does not supply import `{name}`")
            }
            RuntimeError::MissingProvide { name } => {
                write!(f, "constituent does not export promised name `{name}`")
            }
            RuntimeError::ExcessImport { name } => {
                write!(f, "constituent imports `{name}`, which its link clause does not declare")
            }
            RuntimeError::SealFailure { reason } => write!(f, "signature check failed: {reason}"),
            RuntimeError::BadProjection { index, width } => {
                write!(f, "projection {index} out of range for width-{width} tuple")
            }
            RuntimeError::ResourceExhausted { resource, limit } => {
                write!(f, "evaluation exceeded its {resource} budget of {limit}")
            }
            RuntimeError::NotAUnit { rule, found } => {
                write!(f, "Fig. 11 `{rule}` rule applied to a non-unit constituent: {found}")
            }
            RuntimeError::Injected { site, hit } => {
                write!(f, "injected fault at {site} (hit {hit})")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<units_trace::faults::Injected> for RuntimeError {
    fn from(fault: units_trace::faults::Injected) -> RuntimeError {
        RuntimeError::Injected { site: fault.site, hit: fault.hit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure() {
        let e = RuntimeError::WrongVariant { ty_name: "db".into(), expected: 0, found: 1 };
        assert!(e.to_string().contains("variant 0"));
        assert!(RuntimeError::DivisionByZero.to_string().contains("zero"));
        let e = RuntimeError::User { message: "boom".into() };
        assert_eq!(e.to_string(), "error: boom");
    }
}
