//! Run-time environments.
//!
//! A persistent association structure: extending an environment creates a
//! new frame sharing the parent, so closures capture their environment in
//! O(1). Bindings are either direct values (λ-parameters, `let`) or
//! [`CellRef`]s (`letrec`/unit definitions and unit imports — the paper's
//! "first-class reference cells that are externally created and passed to
//! the function when the unit is invoked").

use std::rc::Rc;

use units_kernel::{LexAddr, Symbol};

use crate::error::RuntimeError;
use crate::value::{CellRef, Value};

/// Reads a variable's value out of a binding lookup result: direct
/// bindings clone, cells dereference (an empty cell is the
/// MzScheme-strictness [`RuntimeError::UndefinedRead`]), and a missing
/// binding is [`RuntimeError::Unbound`]. Shared by the tree-walker and
/// the bytecode VM so both report the same error classes.
pub fn read_binding(binding: Option<&Binding>, name: &Symbol) -> Result<Value, RuntimeError> {
    match binding {
        Some(Binding::Val(v)) => Ok(v.clone()),
        Some(Binding::Cell(c)) => match &*c.borrow() {
            Some(v) => Ok(v.clone()),
            None => Err(RuntimeError::UndefinedRead { name: name.clone() }),
        },
        None => Err(RuntimeError::Unbound { name: name.clone() }),
    }
}

/// A binding: immediate or through a cell.
#[derive(Debug, Clone)]
pub enum Binding {
    /// A direct, immutable binding.
    Val(Value),
    /// A mutable definition/import cell.
    Cell(CellRef),
}

/// Frame storage. Most frames bind exactly one name — λ-parameters in
/// curried and accumulator-style code — so that case lives inline in the
/// frame and skips the vector's heap block; both backends' call paths
/// build it through [`Env::extend1`].
#[derive(Debug)]
enum Bindings {
    One([(Symbol, Binding); 1]),
    Many(Vec<(Symbol, Binding)>),
}

impl std::ops::Deref for Bindings {
    type Target = [(Symbol, Binding)];

    fn deref(&self) -> &Self::Target {
        match self {
            Bindings::One(b) => b,
            Bindings::Many(v) => v,
        }
    }
}

#[derive(Debug)]
struct Frame {
    bindings: Bindings,
    parent: Env,
}

/// A persistent run-time environment.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<Frame>>);

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env(None)
    }

    /// A new environment with one extra frame of bindings.
    pub fn extend(&self, bindings: Vec<(Symbol, Binding)>) -> Env {
        units_trace::count("runtime/frames", 1);
        Env(Some(Rc::new(Frame { bindings: Bindings::Many(bindings), parent: self.clone() })))
    }

    /// A new environment with a single-binding frame, stored inline — the
    /// unary λ application case, with no vector allocation.
    pub fn extend1(&self, name: Symbol, binding: Binding) -> Env {
        units_trace::count("runtime/frames", 1);
        Env(Some(Rc::new(Frame {
            bindings: Bindings::One([(name, binding)]),
            parent: self.clone(),
        })))
    }

    /// Looks a name up, innermost frame first.
    pub fn lookup(&self, name: &Symbol) -> Option<&Binding> {
        let mut frame = self.0.as_deref();
        while let Some(f) = frame {
            // Within a frame, later bindings shadow earlier ones.
            if let Some((_, b)) = f.bindings.iter().rev().find(|(n, _)| n == name) {
                return Some(b);
            }
            frame = f.parent.0.as_deref();
        }
        None
    }

    /// Looks a resolved variable up by its lexical address: walk
    /// `addr.depth` frames outward, index `addr.slot` directly — no
    /// per-frame scanning. The slot's recorded name is verified with a
    /// single interned-symbol compare; on any mismatch (an address
    /// computed against a different frame discipline than the one that
    /// built this environment) the lookup degrades to the by-name scan,
    /// so a stale address can cost time but never return a wrong binding.
    pub fn lookup_at(&self, name: &Symbol, addr: LexAddr) -> Option<&Binding> {
        let mut frame = self.0.as_deref();
        for _ in 0..addr.depth {
            match frame {
                Some(f) => frame = f.parent.0.as_deref(),
                None => {
                    units_trace::count("runtime/lookup_at/miss", 1);
                    return self.lookup(name);
                }
            }
        }
        match frame.and_then(|f| f.bindings.get(addr.slot as usize)) {
            Some((n, b)) if n == name => {
                units_trace::count("runtime/lookup_at/hit", 1);
                Some(b)
            }
            _ => {
                units_trace::count("runtime/lookup_at/miss", 1);
                self.lookup(name)
            }
        }
    }

    /// The environment one frame out (the empty environment when there is
    /// no frame to pop). The VM's `PopFrame` uses this to rewind the
    /// environment register after a balanced `let`/`letrec` region.
    pub(crate) fn parent(&self) -> Env {
        match self.0.as_deref() {
            Some(f) => f.parent.clone(),
            None => Env::new(),
        }
    }

    /// Whether the environment has no frames at all.
    pub(crate) fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// The verified binding at `slot` of the innermost frame: the slot's
    /// recorded name must match, mirroring the verify half of
    /// [`Env::lookup_at`]. The VM's frame display resolves deep addresses
    /// through this; on `None` the caller degrades to the by-name scan,
    /// preserving the stale-address contract.
    pub(crate) fn slot_binding(&self, slot: usize, name: &Symbol) -> Option<&Binding> {
        match self.0.as_deref()?.bindings.get(slot) {
            Some((n, b)) if n == name => {
                units_trace::count("runtime/lookup_at/hit", 1);
                Some(b)
            }
            _ => None,
        }
    }

    /// The binding at `slot` of the innermost frame, if any — the VM's
    /// `InitCell` writes `letrec` definition results through this without
    /// re-scanning by name.
    pub(crate) fn top_binding(&self, slot: usize) -> Option<&Binding> {
        self.0.as_deref().and_then(|f| f.bindings.get(slot)).map(|(_, b)| b)
    }

    /// Number of frames (for diagnostics and tests).
    pub fn depth(&self) -> usize {
        let mut n = 0;
        let mut frame = self.0.as_deref();
        while let Some(f) = frame {
            n += 1;
            frame = f.parent.0.as_deref();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::filled_cell;

    fn val(env: &Env, name: &str) -> Option<Value> {
        match env.lookup(&Symbol::new(name))? {
            Binding::Val(v) => Some(v.clone()),
            Binding::Cell(c) => c.borrow().clone(),
        }
    }

    #[test]
    fn extension_shadows_lexically() {
        let base = Env::new().extend(vec![("x".into(), Binding::Val(Value::Int(1)))]);
        let inner = base.extend(vec![("x".into(), Binding::Val(Value::Int(2)))]);
        assert!(matches!(val(&inner, "x"), Some(Value::Int(2))));
        assert!(matches!(val(&base, "x"), Some(Value::Int(1))));
        assert!(val(&base, "y").is_none());
    }

    #[test]
    fn same_frame_shadowing_prefers_later_bindings() {
        let env = Env::new().extend(vec![
            ("x".into(), Binding::Val(Value::Int(1))),
            ("x".into(), Binding::Val(Value::Int(2))),
        ]);
        assert!(matches!(val(&env, "x"), Some(Value::Int(2))));
    }

    #[test]
    fn cells_are_shared_between_environments() {
        let cell = filled_cell(Value::Int(10));
        let a = Env::new().extend(vec![("c".into(), Binding::Cell(cell.clone()))]);
        let b = a.extend(vec![("unrelated".into(), Binding::Val(Value::Void))]);
        *cell.borrow_mut() = Some(Value::Int(99));
        assert!(matches!(val(&a, "c"), Some(Value::Int(99))));
        assert!(matches!(val(&b, "c"), Some(Value::Int(99))));
    }

    #[test]
    fn lookup_at_indexes_directly_and_falls_back() {
        let base = Env::new().extend(vec![
            ("x".into(), Binding::Val(Value::Int(1))),
            ("y".into(), Binding::Val(Value::Int(2))),
        ]);
        let inner = base.extend(vec![("z".into(), Binding::Val(Value::Int(3)))]);
        let at = |d, s| LexAddr { depth: d, slot: s };
        assert!(matches!(
            inner.lookup_at(&"z".into(), at(0, 0)),
            Some(Binding::Val(Value::Int(3)))
        ));
        assert!(matches!(
            inner.lookup_at(&"y".into(), at(1, 1)),
            Some(Binding::Val(Value::Int(2)))
        ));
        // Out-of-range slot, wrong name at the slot, or excessive depth
        // all degrade to the by-name scan.
        assert!(matches!(
            inner.lookup_at(&"y".into(), at(0, 5)),
            Some(Binding::Val(Value::Int(2)))
        ));
        assert!(matches!(
            inner.lookup_at(&"x".into(), at(1, 1)),
            Some(Binding::Val(Value::Int(1)))
        ));
        assert!(matches!(
            inner.lookup_at(&"x".into(), at(7, 0)),
            Some(Binding::Val(Value::Int(1)))
        ));
        assert!(inner.lookup_at(&"w".into(), at(9, 9)).is_none());
    }

    #[test]
    fn depth_counts_frames() {
        let e = Env::new().extend(vec![]).extend(vec![]);
        assert_eq!(e.depth(), 2);
        assert_eq!(Env::new().depth(), 0);
    }
}
