//! The backend-neutral half of unit instantiation (§4.1.6).
//!
//! Wiring — creating one reference cell per interface name and threading
//! the cells through the link graph — is pure runtime logic: it never
//! evaluates an expression. Both evaluators that *do* evaluate (the
//! tree-walking cells backend in `units-compile` and the bytecode VM in
//! [`crate::vm`]) share this module, so cell accounting, link-error
//! ordering, and frame discipline cannot drift between them.
//!
//! The shared pieces are:
//!
//! * [`bind_letrec_frame`] — the recursive frame for a `letrec` or unit
//!   body: freshly instantiated datatype operations, then one cell per
//!   value definition (the slot order the resolver mirrors);
//! * [`apply_data`] — first-class datatype operations (§5.3);
//! * [`check_link`] / [`seal_unit`] — the Fig. 11 side conditions and the
//!   §5.2 signature-ascription checks, with their exact error strings;
//! * [`wire`] — the recursive cell-threading walk, producing one
//!   [`WiredUnit`] per atomic constituent in initialization order.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use units_kernel::{DataRole, Ports, Signature, Symbol, TypeDefn, UnitExpr, ValDefn};

use crate::env::{Binding, Env};
use crate::error::RuntimeError;
use crate::machine::Machine;
use crate::value::{
    filled_cell, new_cell, CellRef, DataOpValue, UnitValue, Value, VariantValue,
};
use crate::vm::VmCode;

/// Builds the recursive frame for a `letrec` or unit body: fresh cells for
/// value definitions and freshly instantiated datatype operations.
/// Returns the extended environment and the definition cells in order.
///
/// # Errors
///
/// Returns [`RuntimeError::ResourceExhausted`] when allocating the
/// definition cells would exceed the machine's store-cell budget.
pub fn bind_letrec_frame(
    types: &[TypeDefn],
    vals: &[ValDefn],
    env: &Env,
    machine: &mut Machine,
) -> Result<(Env, Vec<CellRef>), RuntimeError> {
    machine.alloc_cells(vals.len() as u64)?;
    let mut frame = Vec::new();
    for td in types {
        if let TypeDefn::Data(d) = td {
            let instance = machine.fresh_instance();
            for (tag, v) in d.variants.iter().enumerate() {
                frame.push((
                    v.ctor.clone(),
                    Binding::Val(Value::Data(Rc::new(DataOpValue {
                        ty_name: d.name.clone(),
                        instance,
                        role: DataRole::Construct(tag),
                    }))),
                ));
                frame.push((
                    v.dtor.clone(),
                    Binding::Val(Value::Data(Rc::new(DataOpValue {
                        ty_name: d.name.clone(),
                        instance,
                        role: DataRole::Deconstruct(tag),
                    }))),
                ));
            }
            frame.push((
                d.predicate.clone(),
                Binding::Val(Value::Data(Rc::new(DataOpValue {
                    ty_name: d.name.clone(),
                    instance,
                    role: DataRole::Predicate,
                }))),
            ));
        }
    }
    let mut cells = Vec::with_capacity(vals.len());
    for defn in vals {
        let cell = new_cell();
        frame.push((defn.name.clone(), Binding::Cell(cell.clone())));
        cells.push(cell);
    }
    Ok((env.extend(frame), cells))
}

/// Applies a first-class datatype operation (§5.3): construct, deconstruct,
/// or discriminate a variant of the operation's own instance.
///
/// # Errors
///
/// [`RuntimeError::Arity`] off one argument;
/// [`RuntimeError::WrongVariant`] / [`RuntimeError::ForeignInstance`] /
/// [`RuntimeError::WrongType`] when the argument is not the operation's.
pub fn apply_data(op: &DataOpValue, mut args: Vec<Value>) -> Result<Value, RuntimeError> {
    if args.len() != 1 {
        return Err(RuntimeError::Arity { expected: 1, found: args.len() });
    }
    let Some(arg) = args.pop() else {
        return Err(RuntimeError::Arity { expected: 1, found: 0 });
    };
    match op.role {
        DataRole::Construct(tag) => Ok(Value::Variant(Rc::new(VariantValue {
            ty_name: op.ty_name.clone(),
            instance: op.instance,
            tag,
            payload: arg,
        }))),
        DataRole::Deconstruct(tag) => {
            let v = expect_own_variant(op, arg)?;
            if v.tag != tag {
                return Err(RuntimeError::WrongVariant {
                    ty_name: op.ty_name.clone(),
                    expected: tag,
                    found: v.tag,
                });
            }
            Ok(v.payload.clone())
        }
        DataRole::Predicate => {
            let v = expect_own_variant(op, arg)?;
            Ok(Value::Bool(v.tag == 0))
        }
    }
}

fn expect_own_variant(
    op: &DataOpValue,
    arg: Value,
) -> Result<Rc<VariantValue>, RuntimeError> {
    match arg {
        Value::Variant(v) if v.ty_name == op.ty_name && v.instance == op.instance => Ok(v),
        Value::Variant(v) if v.ty_name == op.ty_name => {
            Err(RuntimeError::ForeignInstance { ty_name: op.ty_name.clone() })
        }
        other => Err(RuntimeError::WrongType {
            expected: "a datatype value of the defining instance",
            found: other.to_string(),
        }),
    }
}

/// Narrows to a unit value, or reports which Fig. 11 rule was applied to a
/// non-unit — the same variant the reference reducer raises, so all three
/// backends agree on the error class.
///
/// # Errors
///
/// [`RuntimeError::NotAUnit`] naming `rule`.
pub fn as_unit(v: Value, rule: &'static str) -> Result<Rc<UnitValue>, RuntimeError> {
    match v {
        Value::Unit(u) => Ok(u),
        other => Err(RuntimeError::NotAUnit { rule, found: other.to_string() }),
    }
}

/// The Fig. 11 side conditions for one `compound` link clause: the
/// constituent needs no more than the `with` clause grants, and provides
/// at least what the clause promises.
///
/// # Errors
///
/// [`RuntimeError::ExcessImport`] / [`RuntimeError::MissingProvide`],
/// imports checked first — the order both backends must agree on.
pub fn check_link(
    unit: &UnitValue,
    with: &Ports,
    provides: &Ports,
) -> Result<(), RuntimeError> {
    for name in unit.imports().vals.iter().map(|p| &p.name) {
        if with.val_port(name).is_none() {
            return Err(RuntimeError::ExcessImport { name: name.clone() });
        }
    }
    for name in provides.vals.iter().map(|p| &p.name) {
        if unit.exports().val_port(name).is_none() {
            return Err(RuntimeError::MissingProvide { name: name.clone() });
        }
    }
    Ok(())
}

/// The run-time effect of §5.2 signature ascription: imports may only be
/// narrowed, exports only restricted. Returns the sealed view.
///
/// # Errors
///
/// [`RuntimeError::SealFailure`] naming the offending port, imports
/// checked first.
pub fn seal_unit(unit: Rc<UnitValue>, sig: &Signature) -> Result<UnitValue, RuntimeError> {
    for port in &unit.imports().vals {
        if sig.imports.val_port(&port.name).is_none() {
            return Err(RuntimeError::SealFailure {
                reason: format!("unit imports `{}`, signature does not", port.name),
            });
        }
    }
    for port in &sig.exports.vals {
        if unit.exports().val_port(&port.name).is_none() {
            return Err(RuntimeError::SealFailure {
                reason: format!("signature exports `{}`, unit does not", port.name),
            });
        }
    }
    Ok(UnitValue::Restricted { inner: unit, exports: sig.exports.clone() })
}

/// One atomic constituent, wired and awaiting its definition/init phases.
/// The evaluator that triggered the invocation decides *how* the phases
/// run: the tree-walker evaluates `source.vals[i].body` / `source.init`,
/// the VM executes the segments behind `code`.
pub struct WiredUnit {
    /// The constituent's environment: captured env, import cells, the
    /// internal letrec frame, and the export-rebinding frame — in that
    /// order (the discipline `resolve_program` mirrors).
    pub env: Env,
    /// The shared unit source.
    pub source: Arc<UnitExpr>,
    /// The lowered segments, when the unit value came from the VM.
    pub code: Option<VmCode>,
    /// One cell per value definition, already redirected to the caller's
    /// cells for exported definitions.
    pub def_cells: Vec<CellRef>,
}

/// Creates the import cells for an invocation, one filled cell per
/// supplied import.
///
/// # Errors
///
/// [`RuntimeError::UnsatisfiedImport`] when `supplied` misses an import;
/// [`RuntimeError::ResourceExhausted`] on the cell budget.
pub fn import_cells(
    unit: &UnitValue,
    supplied: &HashMap<Symbol, Value>,
    machine: &mut Machine,
) -> Result<HashMap<Symbol, CellRef>, RuntimeError> {
    machine.alloc_cells(unit.imports().vals.len() as u64)?;
    let mut cells = HashMap::with_capacity(unit.imports().vals.len());
    for port in &unit.imports().vals {
        match supplied.get(&port.name) {
            Some(v) => {
                cells.insert(port.name.clone(), filled_cell(v.clone()));
            }
            None => return Err(RuntimeError::UnsatisfiedImport { name: port.name.clone() }),
        }
    }
    Ok(cells)
}

/// Emits the per-invocation trace event (sorted export names, invocation
/// and constituent counters) — shared so both backends' traces line up.
pub fn emit_invoke_event(unit: &UnitValue, constituents: usize) {
    units_trace::emit(
        units_trace::Phase::Link,
        "link/invoke",
        None,
        || {
            let mut names: Vec<&str> =
                unit.exports().vals.iter().map(|p| p.name.as_str()).collect();
            names.sort_unstable();
            names.join(" ")
        },
        &[("link/invocations", 1), ("link/constituents", constituents as u64)],
    );
}

/// Recursively wires a unit: `imports` supplies a cell per import name,
/// `wanted_exports` lists the cells the caller wants this unit's exports
/// to fill. Appends the atomic constituents to `out` in initialization
/// order.
///
/// # Errors
///
/// [`RuntimeError::UnsatisfiedImport`] / [`RuntimeError::MissingProvide`]
/// when the link graph does not satisfy an interface;
/// [`RuntimeError::ResourceExhausted`] on the cell budget.
pub fn wire(
    unit: &UnitValue,
    imports: &HashMap<Symbol, CellRef>,
    wanted_exports: &HashMap<Symbol, CellRef>,
    machine: &mut Machine,
    out: &mut Vec<WiredUnit>,
) -> Result<(), RuntimeError> {
    match unit {
        UnitValue::Restricted { inner, exports } => {
            // Only visible exports may be requested.
            for name in wanted_exports.keys() {
                if exports.val_port(name).is_none() {
                    return Err(RuntimeError::MissingProvide { name: name.clone() });
                }
            }
            wire(inner, imports, wanted_exports, machine, out)
        }
        UnitValue::Atomic(atomic) => {
            let source = &atomic.source;
            // Every import must be supplied.
            let mut frame = Vec::new();
            for port in &source.imports.vals {
                let cell = imports
                    .get(&port.name)
                    .cloned()
                    .ok_or_else(|| RuntimeError::UnsatisfiedImport { name: port.name.clone() })?;
                frame.push((port.name.clone(), Binding::Cell(cell)));
            }
            let pre_env = atomic.env.extend(frame);
            let (env, mut def_cells) =
                bind_letrec_frame(&source.types, &source.vals, &pre_env, machine)?;
            // Exported definitions write directly into the caller's cells.
            let defined: Vec<&Symbol> = source.vals.iter().map(|d| &d.name).collect();
            for (name, cell) in wanted_exports {
                if source.exports.val_port(name).is_none() {
                    return Err(RuntimeError::MissingProvide { name: name.clone() });
                }
                if let Some(pos) = defined.iter().position(|d| *d == name) {
                    def_cells[pos] = cell.clone();
                } else {
                    // A datatype operation export: its value exists now.
                    match env.lookup(name) {
                        Some(Binding::Val(v)) => *cell.borrow_mut() = Some(v.clone()),
                        _ => return Err(RuntimeError::MissingProvide { name: name.clone() }),
                    }
                }
            }
            // Rebind exported definitions to the caller's cells so that
            // internal references and external consumers share storage.
            let rebound: Vec<(Symbol, Binding)> = source
                .vals
                .iter()
                .zip(&def_cells)
                .map(|(d, c)| (d.name.clone(), Binding::Cell(c.clone())))
                .collect();
            let env = env.extend(rebound);
            out.push(WiredUnit {
                env,
                source: source.clone(),
                code: atomic.code.clone(),
                def_cells,
            });
            Ok(())
        }
        UnitValue::Linked(linked) => {
            // One cell per provided *outer* name; compound exports reuse
            // the caller's cells (linking identifies a constituent's
            // inner export name with the outer name its rename pairs
            // choose — the same name in the paper's by-name core form).
            let mut cell_of: HashMap<Symbol, CellRef> = HashMap::new();
            for lc in &linked.links {
                for port in &lc.provides.vals {
                    let outer = lc.renames.outer_export_val(&port.name).clone();
                    let cell = match wanted_exports.get(&outer) {
                        Some(c) => c.clone(),
                        None => {
                            machine.alloc_cells(1)?;
                            new_cell()
                        }
                    };
                    cell_of.insert(outer, cell);
                }
            }
            for name in wanted_exports.keys() {
                if !cell_of.contains_key(name) {
                    return Err(RuntimeError::MissingProvide { name: name.clone() });
                }
            }
            for lc in &linked.links {
                let mut constituent_imports = HashMap::new();
                for port in &lc.with.vals {
                    let outer = lc.renames.outer_import_val(&port.name);
                    let cell = imports
                        .get(outer)
                        .or_else(|| cell_of.get(outer))
                        .cloned()
                        .ok_or_else(|| RuntimeError::UnsatisfiedImport {
                            name: outer.clone(),
                        })?;
                    // The constituent sees the cell under its inner name.
                    constituent_imports.insert(port.name.clone(), cell);
                }
                let mut wanted: HashMap<Symbol, CellRef> =
                    HashMap::with_capacity(lc.provides.vals.len());
                for p in &lc.provides.vals {
                    let outer = lc.renames.outer_export_val(&p.name);
                    let cell = cell_of
                        .get(outer)
                        .cloned()
                        .ok_or_else(|| RuntimeError::MissingProvide { name: outer.clone() })?;
                    wanted.insert(p.name.clone(), cell);
                }
                wire(&lc.unit, &constituent_imports, &wanted, machine, out)?;
            }
            Ok(())
        }
    }
}
