//! Application of primitive operations to run-time values.
//!
//! Primitives perform full dynamic checking, which is what makes the
//! untyped calculus UNITd safe; in well-typed UNITc/UNITe programs the
//! shape checks never fire (types are erased before evaluation).

use units_kernel::PrimOp;

use crate::error::RuntimeError;
use crate::machine::Machine;
use crate::value::Value;

fn int(v: &Value) -> Result<i64, RuntimeError> {
    match v {
        Value::Int(n) => Ok(*n),
        other => Err(RuntimeError::WrongType { expected: "an integer", found: other.to_string() }),
    }
}

fn boolean(v: &Value) -> Result<bool, RuntimeError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(RuntimeError::WrongType { expected: "a boolean", found: other.to_string() }),
    }
}

fn string(v: &Value) -> Result<&str, RuntimeError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(RuntimeError::WrongType { expected: "a string", found: other.to_string() }),
    }
}

fn hash(v: &Value) -> Result<&std::rc::Rc<std::cell::RefCell<std::collections::HashMap<String, Value>>>, RuntimeError> {
    match v {
        Value::Hash(h) => Ok(h),
        other => {
            Err(RuntimeError::WrongType { expected: "a hash table", found: other.to_string() })
        }
    }
}

/// Applies a primitive to fully evaluated arguments.
///
/// # Errors
///
/// Returns a [`RuntimeError`] on arity or shape violations, division by
/// zero, missing hash keys, or an explicit `fail`.
///
/// # Examples
///
/// ```
/// use units_kernel::PrimOp;
/// use units_runtime::{apply_prim, Machine, Value};
/// let mut m = Machine::new();
/// let v = apply_prim(PrimOp::Add, &[Value::Int(2), Value::Int(3)], &mut m)?;
/// assert!(v.observably_eq(&Value::Int(5)));
/// # Ok::<(), units_runtime::RuntimeError>(())
/// ```
pub fn apply_prim(
    op: PrimOp,
    args: &[Value],
    machine: &mut Machine,
) -> Result<Value, RuntimeError> {
    units_trace::faults::trip("runtime/prim")?;
    let result = prim_result(op, args, machine)?;
    units_trace::emit(
        units_trace::Phase::Eval,
        "prim",
        None,
        || render_prim_call(op, args.iter().map(ground_value), &ground_value(&result)),
        &[("prim/calls", 1), (prim_counter(op), 1)],
    );
    Ok(result)
}

/// Renders a prim call as `(op arg…) -> result` from already-ground
/// pieces. The reducer's delta events use the same renderer, so the two
/// backends' `"prim"` event streams are directly comparable — that
/// alignment is what lets divergence diagnosis name the first
/// disagreeing step.
pub fn render_prim_call(
    op: PrimOp,
    args: impl Iterator<Item = String>,
    result: &str,
) -> String {
    let mut out = String::from("(");
    out.push_str(op.name());
    for arg in args {
        out.push(' ');
        out.push_str(&arg);
    }
    out.push_str(") -> ");
    out.push_str(result);
    out
}

/// Ground rendering of a value for prim events: literals print
/// canonically, anything higher-order is an opaque `·` (both backends
/// agree on that by construction).
fn ground_value(v: &Value) -> String {
    match v {
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Void => "void".to_string(),
        _ => "·".to_string(),
    }
}

/// The per-operation counter name (`"prim/<surface name>"`).
fn prim_counter(op: PrimOp) -> &'static str {
    match op {
        PrimOp::Add => "prim/+",
        PrimOp::Sub => "prim/-",
        PrimOp::Mul => "prim/*",
        PrimOp::Div => "prim//",
        PrimOp::Rem => "prim/rem",
        PrimOp::Lt => "prim/<",
        PrimOp::Le => "prim/<=",
        PrimOp::NumEq => "prim/=",
        PrimOp::Not => "prim/not",
        PrimOp::BoolEq => "prim/bool=?",
        PrimOp::StrAppend => "prim/string-append",
        PrimOp::StrEq => "prim/string=?",
        PrimOp::StrLen => "prim/string-length",
        PrimOp::IntToStr => "prim/int->string",
        PrimOp::Display => "prim/display",
        PrimOp::Fail => "prim/fail",
        PrimOp::HashNew => "prim/hash-new",
        PrimOp::HashSet => "prim/hash-set!",
        PrimOp::HashGet => "prim/hash-get",
        PrimOp::HashHas => "prim/hash-has?",
        PrimOp::HashRemove => "prim/hash-remove!",
        PrimOp::HashCount => "prim/hash-count",
    }
}

fn prim_result(
    op: PrimOp,
    args: &[Value],
    machine: &mut Machine,
) -> Result<Value, RuntimeError> {
    if args.len() != op.arity() {
        return Err(RuntimeError::Arity { expected: op.arity(), found: args.len() });
    }
    Ok(match op {
        PrimOp::Add => Value::Int(int(&args[0])?.wrapping_add(int(&args[1])?)),
        PrimOp::Sub => Value::Int(int(&args[0])?.wrapping_sub(int(&args[1])?)),
        PrimOp::Mul => Value::Int(int(&args[0])?.wrapping_mul(int(&args[1])?)),
        PrimOp::Div => {
            let (a, b) = (int(&args[0])?, int(&args[1])?);
            if b == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Value::Int(a.wrapping_div(b))
        }
        PrimOp::Rem => {
            let (a, b) = (int(&args[0])?, int(&args[1])?);
            if b == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Value::Int(a.wrapping_rem(b))
        }
        PrimOp::Lt => Value::Bool(int(&args[0])? < int(&args[1])?),
        PrimOp::Le => Value::Bool(int(&args[0])? <= int(&args[1])?),
        PrimOp::NumEq => Value::Bool(int(&args[0])? == int(&args[1])?),
        PrimOp::Not => Value::Bool(!boolean(&args[0])?),
        PrimOp::BoolEq => Value::Bool(boolean(&args[0])? == boolean(&args[1])?),
        PrimOp::StrAppend => {
            let mut s = string(&args[0])?.to_string();
            s.push_str(string(&args[1])?);
            Value::str(s)
        }
        PrimOp::StrEq => Value::Bool(string(&args[0])? == string(&args[1])?),
        PrimOp::StrLen => Value::Int(string(&args[0])?.chars().count() as i64),
        PrimOp::IntToStr => Value::str(int(&args[0])?.to_string()),
        PrimOp::Display => {
            machine.write(string(&args[0])?);
            Value::Void
        }
        PrimOp::Fail => {
            return Err(RuntimeError::User { message: string(&args[0])?.to_string() })
        }
        PrimOp::HashNew => Value::new_hash(),
        PrimOp::HashSet => {
            let table = hash(&args[0])?;
            let key = string(&args[1])?.to_string();
            table.borrow_mut().insert(key, args[2].clone());
            Value::Void
        }
        PrimOp::HashGet => {
            let table = hash(&args[0])?;
            let key = string(&args[1])?;
            let found = table.borrow().get(key).cloned();
            found.ok_or_else(|| RuntimeError::MissingKey { key: key.to_string() })?
        }
        PrimOp::HashHas => {
            let table = hash(&args[0])?;
            Value::Bool(table.borrow().contains_key(string(&args[1])?))
        }
        PrimOp::HashRemove => {
            let table = hash(&args[0])?;
            let key = string(&args[1])?;
            table.borrow_mut().remove(key);
            Value::Void
        }
        PrimOp::HashCount => Value::Int(hash(&args[0])?.borrow().len() as i64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(op: PrimOp, args: &[Value]) -> Result<Value, RuntimeError> {
        apply_prim(op, args, &mut Machine::new())
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert!(run(PrimOp::Mul, &[Value::Int(6), Value::Int(7)])
            .unwrap()
            .observably_eq(&Value::Int(42)));
        assert!(run(PrimOp::Lt, &[Value::Int(1), Value::Int(2)])
            .unwrap()
            .observably_eq(&Value::Bool(true)));
        assert!(matches!(
            run(PrimOp::Div, &[Value::Int(1), Value::Int(0)]),
            Err(RuntimeError::DivisionByZero)
        ));
        assert!(matches!(
            run(PrimOp::Rem, &[Value::Int(1), Value::Int(0)]),
            Err(RuntimeError::DivisionByZero)
        ));
    }

    #[test]
    fn dynamic_type_checks_fire() {
        assert!(matches!(
            run(PrimOp::Add, &[Value::Int(1), Value::Bool(true)]),
            Err(RuntimeError::WrongType { .. })
        ));
        assert!(matches!(
            run(PrimOp::Add, &[Value::Int(1)]),
            Err(RuntimeError::Arity { expected: 2, found: 1 })
        ));
    }

    #[test]
    fn strings() {
        let v = run(PrimOp::StrAppend, &[Value::str("ph"), Value::str("one")]).unwrap();
        assert!(v.observably_eq(&Value::str("phone")));
        assert!(run(PrimOp::StrLen, &[Value::str("abc")])
            .unwrap()
            .observably_eq(&Value::Int(3)));
        assert!(run(PrimOp::IntToStr, &[Value::Int(-4)])
            .unwrap()
            .observably_eq(&Value::str("-4")));
    }

    #[test]
    fn hash_tables_store_and_miss() {
        let mut m = Machine::new();
        let table = apply_prim(PrimOp::HashNew, &[], &mut m).unwrap();
        apply_prim(
            PrimOp::HashSet,
            &[table.clone(), Value::str("alice"), Value::Int(41)],
            &mut m,
        )
        .unwrap();
        let got =
            apply_prim(PrimOp::HashGet, &[table.clone(), Value::str("alice")], &mut m).unwrap();
        assert!(got.observably_eq(&Value::Int(41)));
        assert!(apply_prim(PrimOp::HashHas, &[table.clone(), Value::str("bob")], &mut m)
            .unwrap()
            .observably_eq(&Value::Bool(false)));
        assert!(matches!(
            apply_prim(PrimOp::HashGet, &[table.clone(), Value::str("bob")], &mut m),
            Err(RuntimeError::MissingKey { key }) if key == "bob"
        ));
        apply_prim(PrimOp::HashRemove, &[table.clone(), Value::str("alice")], &mut m).unwrap();
        assert!(apply_prim(PrimOp::HashCount, &[table], &mut m)
            .unwrap()
            .observably_eq(&Value::Int(0)));
    }

    #[test]
    fn display_writes_fail_raises() {
        let mut m = Machine::new();
        apply_prim(PrimOp::Display, &[Value::str("hello")], &mut m).unwrap();
        assert_eq!(m.output(), ["hello"]);
        assert!(matches!(
            apply_prim(PrimOp::Fail, &[Value::str("nope")], &mut m),
            Err(RuntimeError::User { message }) if message == "nope"
        ));
    }
}
