//! Experiment: Figs. 18/19 — abbreviation expansion, cycle detection, and
//! UNITe signature derivation versus equation-chain length.
//!
//! Series printed: time vs. chain length for (a) `⌊τ⌋_D` expansion plus
//! the acyclicity check, and (b) full UNITe type checking of a unit whose
//! interface requires expanding the chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{alias_chain, alias_chain_unit};
use units::{expand_ty, type_of, Level, Ty};

fn run(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_analysis");
    group.sample_size(30);
    for n in [4usize, 16, 64, 256] {
        let eqs = alias_chain(n);
        let target = Ty::var(format!("a{}", n - 1));
        group.bench_with_input(
            BenchmarkId::new("expand", n),
            &(eqs.clone(), target),
            |b, (eqs, t)| {
                b.iter(|| {
                    eqs.check_acyclic().unwrap();
                    black_box(expand_ty(t, eqs).unwrap())
                })
            },
        );
    }
    for n in [4usize, 16, 64] {
        let unit = alias_chain_unit(n);
        group.bench_with_input(BenchmarkId::new("unite_check", n), &unit, |b, u| {
            b.iter(|| black_box(type_of(u, Level::Equations).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, run);
criterion_main!(benches);
