//! Experiment: Figs. 18/19 — abbreviation expansion, cycle detection, and
//! UNITe signature derivation versus equation-chain length.
//!
//! Series printed: time vs. chain length for (a) `⌊τ⌋_D` expansion plus
//! the acyclicity check, and (b) full UNITe type checking of a unit whose
//! interface requires expanding the chain.

use std::hint::black_box;

use bench::harness::{median_us, report};
use bench::{alias_chain, alias_chain_unit};
use units::{expand_ty, type_of, Level, Ty};

fn main() {
    for n in [4usize, 16, 64, 256] {
        let eqs = alias_chain(n);
        let target = Ty::var(format!("a{}", n - 1));
        let us = median_us(30, || {
            eqs.check_acyclic().unwrap();
            black_box(expand_ty(&target, &eqs).unwrap());
        });
        report("dependency_analysis/expand", n, us);
    }
    for n in [4usize, 16, 64] {
        let unit = alias_chain_unit(n);
        let us = median_us(30, || {
            black_box(type_of(&unit, Level::Equations).unwrap());
        });
        report("dependency_analysis/unite_check", n, us);
    }
}
