//! Experiment: §4.1.6 — the compiled cells backend against the Fig. 11
//! substitution reducer on the even/odd counting workload (Fig. 12).
//!
//! Series printed: time vs. counting depth for both backends, plus the
//! compiled backend with lexical-address resolution disabled (the by-name
//! environment-scan baseline this repository's resolver replaces).
//! Expected shape: the compiled backend wins by a widening factor as
//! depth grows — substitution copies the λ body at every β-step, while
//! the cells backend reads one cell per call — and slot-resolved lookup
//! beats the by-name scan on every call into the unit's frames.

// Benches measure the raw per-run Program pipeline on purpose.
#![allow(deprecated)]

use std::hint::black_box;

use bench::harness::{median_us, report};
use bench::{even_odd_program, even_odd_wide_program};
use units::{Backend, Program, Strictness};

fn main() {
    for depth in [25i64, 100, 400] {
        let program =
            Program::from_expr(even_odd_program(depth)).with_strictness(Strictness::MzScheme);
        let by_name = program.clone().with_resolution(false);
        let us = median_us(20, || {
            black_box(program.run_unchecked(Backend::Compiled).unwrap());
        });
        report("invoke_backends/compiled", depth, us);
        let us = median_us(20, || {
            black_box(by_name.run_unchecked(Backend::Compiled).unwrap());
        });
        report("invoke_backends/compiled_by_name", depth, us);
        let us = median_us(20, || {
            black_box(program.run_unchecked(Backend::Reducer).unwrap());
        });
        report("invoke_backends/reducer", depth, us);
    }
    // The trampoline inside wide units (extra inert definitions): the
    // production shape where the by-name frame scan costs real time.
    for extra in [16usize, 64] {
        let program = Program::from_expr(even_odd_wide_program(400, extra))
            .with_strictness(Strictness::MzScheme);
        let by_name = program.clone().with_resolution(false);
        let us = median_us(20, || {
            black_box(program.run_unchecked(Backend::Compiled).unwrap());
        });
        report("invoke_backends/wide_compiled", extra, us);
        let us = median_us(20, || {
            black_box(by_name.run_unchecked(Backend::Compiled).unwrap());
        });
        report("invoke_backends/wide_compiled_by_name", extra, us);
    }
}
