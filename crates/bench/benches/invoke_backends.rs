//! Experiment: §4.1.6 — the compiled cells backend against the Fig. 11
//! substitution reducer on the even/odd counting workload (Fig. 12).
//!
//! Series printed: time vs. counting depth for both backends, plus the
//! compiled backend with lexical-address resolution disabled (the by-name
//! environment-scan baseline this repository's resolver replaces).
//! Expected shape: the compiled backend wins by a widening factor as
//! depth grows — substitution copies the λ body at every β-step, while
//! the cells backend reads one cell per call — and slot-resolved lookup
//! beats the by-name scan on every call into the unit's frames.

use std::hint::black_box;

use bench::harness::{median_us, report};
use bench::{even_odd_program, even_odd_wide_program};
use units::{Backend, Engine, Strictness};

fn main() {
    let engine = Engine::builder().strictness(Strictness::MzScheme).build();
    let by_name_engine =
        Engine::builder().strictness(Strictness::MzScheme).resolution(false).build();
    for depth in [25i64, 100, 400] {
        let program = engine.load_expr(even_odd_program(depth)).unwrap();
        let by_name = by_name_engine.load_expr(even_odd_program(depth)).unwrap();
        let us = median_us(20, || {
            black_box(program.run_on(Backend::Compiled).unwrap());
        });
        report("invoke_backends/compiled", depth, us);
        let us = median_us(20, || {
            black_box(by_name.run_on(Backend::Compiled).unwrap());
        });
        report("invoke_backends/compiled_by_name", depth, us);
        let us = median_us(20, || {
            black_box(program.run_on(Backend::Reducer).unwrap());
        });
        report("invoke_backends/reducer", depth, us);
    }
    // The trampoline inside wide units (extra inert definitions): the
    // production shape where the by-name frame scan costs real time.
    for extra in [16usize, 64] {
        let program = engine.load_expr(even_odd_wide_program(400, extra)).unwrap();
        let by_name = by_name_engine.load_expr(even_odd_wide_program(400, extra)).unwrap();
        let us = median_us(20, || {
            black_box(program.run_on(Backend::Compiled).unwrap());
        });
        report("invoke_backends/wide_compiled", extra, us);
        let us = median_us(20, || {
            black_box(by_name.run_on(Backend::Compiled).unwrap());
        });
        report("invoke_backends/wide_compiled_by_name", extra, us);
    }
}
