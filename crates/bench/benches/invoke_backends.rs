//! Experiment: §4.1.6 — the compiled cells backend against the Fig. 11
//! substitution reducer on the even/odd counting workload (Fig. 12).
//!
//! Series printed: time vs. counting depth for both backends. Expected
//! shape: the compiled backend wins by a widening factor as depth grows —
//! substitution copies the λ body at every β-step, while the cells
//! backend reads one cell per call.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::even_odd_program;
use units::{Backend, Program, Strictness};

fn run(c: &mut Criterion) {
    let mut group = c.benchmark_group("invoke_backends");
    group.sample_size(20);
    for depth in [25i64, 100, 400] {
        let program =
            Program::from_expr(even_odd_program(depth)).with_strictness(Strictness::MzScheme);
        group.bench_with_input(BenchmarkId::new("compiled", depth), &program, |b, p| {
            b.iter(|| black_box(p.run_unchecked(Backend::Compiled).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("reducer", depth), &program, |b, p| {
            b.iter(|| black_box(p.run_unchecked(Backend::Reducer).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, run);
criterion_main!(benches);
