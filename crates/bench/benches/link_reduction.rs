//! Experiment: Figs. 8/11 — cost of `compound` linking as the number and
//! shape of linked units grows, on both semantics.
//!
//! Series printed: time vs. N for chain / star / cycle link graphs.
//! Expected shape: the cells backend links in time linear in the graph
//! size; the substitution reducer pays the textual merge (α-renaming and
//! substitution), growing super-linearly — which is exactly why §4.1.6
//! compiles units instead of rewriting them.

// Benches measure the raw per-run Program pipeline on purpose.
#![allow(deprecated)]

use std::hint::black_box;

use bench::harness::{median_us, report};
use bench::{chain_program, cycle_program, star_program};
use units::{Backend, Program, Strictness};

fn main() {
    for (shape, make) in [
        ("chain", chain_program as fn(usize) -> units::Expr),
        ("star", star_program as fn(usize) -> units::Expr),
        ("cycle", cycle_program as fn(usize) -> units::Expr),
    ] {
        for n in [2usize, 4, 8, 16] {
            let program = Program::from_expr(make(n)).with_strictness(Strictness::MzScheme);
            let us = median_us(20, || {
                black_box(program.run_unchecked(Backend::Compiled).unwrap());
            });
            report(&format!("link_reduction/{shape}/compiled"), n, us);
            let us = median_us(20, || {
                black_box(program.run_unchecked(Backend::Reducer).unwrap());
            });
            report(&format!("link_reduction/{shape}/reducer"), n, us);
        }
    }
}
