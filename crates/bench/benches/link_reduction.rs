//! Experiment: Figs. 8/11 — cost of `compound` linking as the number and
//! shape of linked units grows, on both semantics.
//!
//! Series printed: time vs. N for chain / star / cycle link graphs.
//! Expected shape: the cells backend links in time linear in the graph
//! size; the substitution reducer pays the textual merge (α-renaming and
//! substitution), growing super-linearly — which is exactly why §4.1.6
//! compiles units instead of rewriting them.

use std::hint::black_box;

use bench::harness::{median_us, report};
use bench::{chain_program, cycle_program, star_program};
use units::{Backend, Engine, Strictness};

fn main() {
    let engine = Engine::builder().strictness(Strictness::MzScheme).build();
    for (shape, make) in [
        ("chain", chain_program as fn(usize) -> units::Expr),
        ("star", star_program as fn(usize) -> units::Expr),
        ("cycle", cycle_program as fn(usize) -> units::Expr),
    ] {
        for n in [2usize, 4, 8, 16] {
            let program = engine.load_expr(make(n)).unwrap();
            let us = median_us(20, || {
                black_box(program.run_on(Backend::Compiled).unwrap());
            });
            report(&format!("link_reduction/{shape}/compiled"), n, us);
            let us = median_us(20, || {
                black_box(program.run_on(Backend::Reducer).unwrap());
            });
            report(&format!("link_reduction/{shape}/reducer"), n, us);
        }
    }
}
