//! Experiment: Fig. 15 — type-checking cost versus interface width and
//! link-graph depth.
//!
//! Series printed: time vs. number of exports for a single unit, and time
//! vs. constituent count for linked chains (checked as whole programs),
//! plus the DESIGN.md §5 ablation: the cost of the §4.1.1 valuability
//! analysis — Paper strictness runs it, MzScheme skips it.

use std::hint::black_box;

use bench::harness::{median_us, report};
use bench::{chain_program, wide_typed_unit};
use units::{check_program, type_of, CheckOptions, Level};

fn main() {
    for width in [4usize, 16, 64, 256] {
        let unit = wide_typed_unit(width);
        let us = median_us(20, || {
            black_box(type_of(&unit, Level::Constructed).unwrap());
        });
        report("typecheck/unit_width", width, us);
    }
    // Untyped context checking over growing link graphs (Fig. 10 at
    // scale).
    for n in [4usize, 16, 64] {
        let program = chain_program(n);
        let us = median_us(20, || {
            black_box(
                check_program(
                    &program,
                    CheckOptions {
                        level: Level::Untyped,
                        strictness: units::Strictness::MzScheme,
                    },
                )
                .unwrap(),
            );
        });
        report("typecheck/context_chain", n, us);
    }
    // Ablation: valuability analysis on versus off.
    for n in [16usize, 64] {
        let program = chain_program(n);
        for (label, strictness) in [
            ("paper", units::Strictness::Paper),
            ("mzscheme", units::Strictness::MzScheme),
        ] {
            let us = median_us(20, || {
                black_box(
                    check_program(&program, CheckOptions { level: Level::Untyped, strictness })
                        .unwrap(),
                );
            });
            report(&format!("typecheck_ablation/valuability/{label}"), n, us);
        }
    }
}
