//! Experiment: Fig. 15 — type-checking cost versus interface width and
//! link-graph depth.
//!
//! Series printed: time vs. number of exports for a single unit, and time
//! vs. constituent count for linked chains (checked as whole programs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{chain_program, wide_typed_unit};
use units::{check_program, type_of, CheckOptions, Level};

fn run(c: &mut Criterion) {
    let mut group = c.benchmark_group("typecheck");
    group.sample_size(20);
    for width in [4usize, 16, 64, 256] {
        let unit = wide_typed_unit(width);
        group.bench_with_input(BenchmarkId::new("unit_width", width), &unit, |b, u| {
            b.iter(|| black_box(type_of(u, Level::Constructed).unwrap()))
        });
    }
    // Untyped context checking over growing link graphs (Fig. 10 at
    // scale).
    for n in [4usize, 16, 64] {
        let program = chain_program(n);
        group.bench_with_input(BenchmarkId::new("context_chain", n), &program, |b, p| {
            b.iter(|| {
                black_box(
                    check_program(
                        p,
                        CheckOptions {
                            level: Level::Untyped,
                            strictness: units::Strictness::MzScheme,
                        },
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, run, ablation);
criterion_main!(benches);

// Ablation (DESIGN.md §5 / process step 5): the cost of the §4.1.1
// valuability analysis — Paper strictness runs it, MzScheme skips it.
fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("typecheck_ablation");
    group.sample_size(20);
    for n in [16usize, 64] {
        let program = chain_program(n);
        for (label, strictness) in [
            ("paper", units::Strictness::Paper),
            ("mzscheme", units::Strictness::MzScheme),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("valuability/{label}"), n),
                &program,
                |b, p| {
                    b.iter(|| {
                        black_box(
                            check_program(
                                p,
                                CheckOptions { level: Level::Untyped, strictness },
                            )
                            .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}
