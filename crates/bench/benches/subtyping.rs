//! Experiment: Figs. 14/17 — signature subtype checks on wide and deeply
//! nested signatures.
//!
//! Series printed: time vs. export width (specific ≤ general with 8 extra
//! exports on the specific side), and time vs. nesting depth for
//! reflexive checks on signature-in-signature types.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{deep_signature, wide_signature};
use units::{subtype, Equations, Ty};

fn run(c: &mut Criterion) {
    let mut group = c.benchmark_group("subtyping");
    group.sample_size(30);
    for width in [4usize, 16, 64, 256] {
        let specific = Ty::sig(wide_signature(width, 8));
        let general = Ty::sig(wide_signature(width, 0));
        group.bench_with_input(
            BenchmarkId::new("width", width),
            &(specific, general),
            |b, (s, g)| b.iter(|| black_box(subtype(&Equations::new(), s, g).is_ok())),
        );
    }
    for depth in [2usize, 4, 8, 16] {
        let ty = deep_signature(depth);
        group.bench_with_input(BenchmarkId::new("depth", depth), &ty, |b, t| {
            b.iter(|| black_box(subtype(&Equations::new(), t, t).is_ok()))
        });
    }
    group.finish();
}

criterion_group!(benches, run);
criterion_main!(benches);
