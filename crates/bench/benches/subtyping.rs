//! Experiment: Figs. 14/17 — signature subtype checks on wide and deeply
//! nested signatures.
//!
//! Series printed: time vs. export width (specific ≤ general with 8 extra
//! exports on the specific side), and time vs. nesting depth for
//! reflexive checks on signature-in-signature types.

use std::hint::black_box;

use bench::harness::{median_us, report};
use bench::{deep_signature, wide_signature};
use units::{subtype, Equations, Ty};

fn main() {
    for width in [4usize, 16, 64, 256] {
        let specific = Ty::sig(wide_signature(width, 8));
        let general = Ty::sig(wide_signature(width, 0));
        let us = median_us(30, || {
            black_box(subtype(&Equations::new(), &specific, &general).is_ok());
        });
        report("subtyping/width", width, us);
    }
    for depth in [2usize, 4, 8, 16] {
        let ty = deep_signature(depth);
        let us = median_us(30, || {
            black_box(subtype(&Equations::new(), &ty, &ty).is_ok());
        });
        report("subtyping/depth", depth, us);
    }
}
