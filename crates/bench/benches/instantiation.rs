//! Experiment: §4.1.6 — "there exists a single copy of the definition and
//! initialization code regardless of how many times the unit is linked or
//! invoked": per-instance cost stays flat as instances accumulate.
//!
//! Series printed: total time vs. instance count (compiled backend); a
//! flat per-instance figure demonstrates O(1) instantiation over shared
//! code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench::{one_unit, repeated_invoke};
use units::{Backend, Program, Strictness};

fn run(c: &mut Criterion) {
    let mut group = c.benchmark_group("instantiation");
    group.sample_size(20);
    for count in [1usize, 10, 100, 1000] {
        let program = Program::from_expr(repeated_invoke(one_unit(), count))
            .with_strictness(Strictness::MzScheme);
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::new("compiled", count), &program, |b, p| {
            b.iter(|| black_box(p.run_unchecked(Backend::Compiled).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, run);
criterion_main!(benches);
