//! Experiment: §4.1.6 — "there exists a single copy of the definition and
//! initialization code regardless of how many times the unit is linked or
//! invoked": per-instance cost stays flat as instances accumulate.
//!
//! Series printed: total time vs. instance count (compiled backend, with
//! lexical-address resolution on and off); a flat per-instance figure
//! demonstrates O(1) instantiation over shared code.

use std::hint::black_box;

use bench::harness::{median_us, report};
use bench::{one_unit, repeated_invoke};
use units::{Backend, Engine, Strictness};

fn main() {
    let engine = Engine::builder().strictness(Strictness::MzScheme).build();
    let by_name_engine =
        Engine::builder().strictness(Strictness::MzScheme).resolution(false).build();
    for count in [1usize, 10, 100, 1000] {
        let resolved = engine.load_expr(repeated_invoke(one_unit(), count)).unwrap();
        let by_name = by_name_engine.load_expr(repeated_invoke(one_unit(), count)).unwrap();
        let us = median_us(20, || {
            black_box(resolved.run_on(Backend::Compiled).unwrap());
        });
        report("instantiation/compiled", count, us);
        let us = median_us(20, || {
            black_box(by_name.run_on(Backend::Compiled).unwrap());
        });
        report("instantiation/by_name", count, us);
    }
}
