//! Experiment: Fig. 7 / §3.4 — dynamic-linking overhead: retrieving a
//! plug-in from the archive, checking it against the loader signature,
//! and invoking it with imports from the host.
//!
//! Series printed: time per load (check only) and per load-and-run, vs.
//! archive size (lookup is O(1); the cost is the signature check).

use std::hint::black_box;

use bench::harness::{median_us, report};
use bench::{plugin_signature, plugin_source};
use units::{Archive, Backend, CheckOptions, Engine, Level, Strictness};

fn main() {
    let engine = Engine::builder().strictness(Strictness::MzScheme).build();
    for count in [1usize, 8, 64] {
        let mut archive = Archive::new();
        for i in 0..count {
            archive.publish(format!("p{i}"), plugin_source(i));
        }
        let expected = plugin_signature();
        let us = median_us(30, || {
            black_box(
                archive.load("p0", &expected, CheckOptions::typed(Level::Constructed)).unwrap(),
            );
        });
        report("dynlink/load_checked", count, us);
        let us = median_us(30, || {
            let unit =
                archive.load("p0", &expected, CheckOptions::typed(Level::Constructed)).unwrap();
            let program = engine
                .load_expr(units::Expr::app(
                    units::Expr::invoke(units_kernel::InvokeExpr {
                        target: unit,
                        ty_links: vec![],
                        val_links: vec![(
                            "log".into(),
                            units::parse_expr("(lambda (s) void)").unwrap(),
                        )],
                    }),
                    vec![units::Expr::int(1)],
                ))
                .unwrap();
            black_box(program.run_on(Backend::Compiled).unwrap());
        });
        report("dynlink/load_and_run", count, us);
    }
}
