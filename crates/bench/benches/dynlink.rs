//! Experiment: Fig. 7 / §3.4 — dynamic-linking overhead: retrieving a
//! plug-in from the archive, checking it against the loader signature,
//! and invoking it with imports from the host.
//!
//! Series printed: time per load (check only) and per load-and-run, vs.
//! archive size (lookup is O(1); the cost is the signature check).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{plugin_signature, plugin_source};
use units::{Archive, Backend, CheckOptions, Level, Program, Strictness};

fn run(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynlink");
    group.sample_size(30);
    for count in [1usize, 8, 64] {
        let mut archive = Archive::new();
        for i in 0..count {
            archive.publish(format!("p{i}"), plugin_source(i));
        }
        let expected = plugin_signature();
        group.bench_with_input(
            BenchmarkId::new("load_checked", count),
            &(archive.clone(), expected.clone()),
            |b, (archive, expected)| {
                b.iter(|| {
                    black_box(
                        archive
                            .load("p0", expected, CheckOptions::typed(Level::Constructed))
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("load_and_run", count),
            &(archive, expected),
            |b, (archive, expected)| {
                b.iter(|| {
                    let unit = archive
                        .load("p0", expected, CheckOptions::typed(Level::Constructed))
                        .unwrap();
                    let program = Program::from_expr(units::Expr::app(
                        units::Expr::invoke(units_kernel::InvokeExpr {
                            target: unit,
                            ty_links: vec![],
                            val_links: vec![(
                                "log".into(),
                                units::parse_expr("(lambda (s) void)").unwrap(),
                            )],
                        }),
                        vec![units::Expr::int(1)],
                    ))
                    .with_strictness(Strictness::MzScheme);
                    black_box(program.run_unchecked(Backend::Compiled).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, run);
criterion_main!(benches);
