//! Workload generators for the benchmark harness (see DESIGN.md §5).
//!
//! Each generator builds a family of programs parameterized by size so
//! the benches can sweep and print the series EXPERIMENTS.md records:
//! link graphs of three shapes (chain, star, cycle), counting workloads
//! for the backend comparison, wide/deep signatures for the checker, and
//! alias chains for the UNITe machinery.

use units::{Expr, Ports, Signature, Symbol, Ty, TyPort, UnitExpr, ValPort};
use units_kernel::{
    AliasDefn, CompoundExpr, InvokeExpr, Kind, LinkClause, Param, PrimOp, TypeDefn, ValDefn,
};

pub mod rng;

pub mod harness {
    //! A tiny std-only timing harness: the workspace builds with no
    //! registry access, so the bench binaries print their own series
    //! instead of linking criterion.

    use std::time::Instant;

    /// Median wall-clock microseconds of `runs` executions of `f`.
    pub fn median_us(runs: usize, mut f: impl FnMut()) -> f64 {
        assert!(runs > 0);
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let t = Instant::now();
            f();
            samples.push(t.elapsed().as_secs_f64() * 1e6);
        }
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    }

    /// Minimum wall-clock microseconds of `runs` executions of `f` —
    /// the statistic of choice for an A/B microbenchmark, since noise
    /// from scheduling and caches is strictly additive.
    pub fn min_us(runs: usize, mut f: impl FnMut()) -> f64 {
        assert!(runs > 0);
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64() * 1e6);
        }
        best
    }

    /// Prints one `name/param: median µs` line in a stable format.
    pub fn report(name: &str, param: impl std::fmt::Display, us: f64) {
        println!("{name}/{param}: {us:.1} µs");
    }
}

fn untyped_unit(
    imports: Vec<&str>,
    exports: Vec<&str>,
    vals: Vec<(String, Expr)>,
    init: Expr,
) -> Expr {
    Expr::unit(UnitExpr {
        imports: Ports::untyped(Vec::<&str>::new(), imports),
        exports: Ports::untyped(Vec::<&str>::new(), exports),
        types: vec![],
        vals: vals
            .into_iter()
            .map(|(name, body)| ValDefn { name: name.into(), ty: None, body })
            .collect(),
        init,
    })
}

fn clause(expr: Expr, with: Vec<String>, provides: Vec<String>) -> LinkClause {
    LinkClause::by_name(
        expr,
        Ports::untyped(Vec::<&str>::new(), with.iter().map(String::as_str)),
        Ports::untyped(Vec::<&str>::new(), provides.iter().map(String::as_str)),
    )
}

/// `invoke` of a compound chaining `n ≥ 1` units: unit 0 exports `f0`,
/// unit i exports `fi(x) = f(i-1)(x) + 1`; the last constituent's
/// initialization calls the end of the chain, so the result is `n - 1`.
pub fn chain_program(n: usize) -> Expr {
    assert!(n >= 1);
    let mut links = Vec::with_capacity(n + 1);
    links.push(clause(
        untyped_unit(
            vec![],
            vec!["f0"],
            vec![("f0".to_string(), Expr::lambda(vec![Param::untyped("x")], Expr::var("x")))],
            Expr::void(),
        ),
        vec![],
        vec!["f0".to_string()],
    ));
    for i in 1..n {
        let prev = format!("f{}", i - 1);
        let name = format!("f{i}");
        let body = Expr::lambda(
            vec![Param::untyped("x")],
            Expr::app(
                Expr::var(prev.as_str()),
                vec![Expr::prim2(PrimOp::Add, Expr::var("x"), Expr::int(1))],
            ),
        );
        links.push(clause(
            untyped_unit(
                vec![prev.as_str()],
                vec![name.as_str()],
                vec![(name.clone(), body)],
                Expr::void(),
            ),
            vec![prev],
            vec![name],
        ));
    }
    let last = format!("f{}", n - 1);
    links.push(clause(
        untyped_unit(
            vec![last.as_str()],
            vec![],
            vec![],
            Expr::app(Expr::var(last.as_str()), vec![Expr::int(0)]),
        ),
        vec![last],
        vec![],
    ));
    Expr::invoke_program(Expr::compound(CompoundExpr {
        imports: Ports::new(),
        exports: Ports::new(),
        links,
    }))
}

/// A star: one hub unit exporting `hub`, `n` satellites each importing it
/// and exporting `s{i}`, and a collector that sums every satellite.
pub fn star_program(n: usize) -> Expr {
    let mut links = Vec::with_capacity(n + 2);
    links.push(clause(
        untyped_unit(
            vec![],
            vec!["hub"],
            vec![("hub".to_string(), Expr::lambda(vec![Param::untyped("x")], Expr::var("x")))],
            Expr::void(),
        ),
        vec![],
        vec!["hub".to_string()],
    ));
    let mut sat_names = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("s{i}");
        links.push(clause(
            untyped_unit(
                vec!["hub"],
                vec![name.as_str()],
                vec![(
                    name.clone(),
                    Expr::thunk(Expr::app(Expr::var("hub"), vec![Expr::int(i as i64)])),
                )],
                Expr::void(),
            ),
            vec!["hub".to_string()],
            vec![name.clone()],
        ));
        sat_names.push(name);
    }
    let sum = sat_names.iter().fold(Expr::int(0), |acc, s| {
        Expr::prim2(PrimOp::Add, acc, Expr::app(Expr::var(s.as_str()), vec![]))
    });
    links.push(clause(
        untyped_unit(sat_names.iter().map(String::as_str).collect(), vec![], vec![], sum),
        sat_names,
        vec![],
    ));
    Expr::invoke_program(Expr::compound(CompoundExpr {
        imports: Ports::new(),
        exports: Ports::new(),
        links,
    }))
}

/// A ring of `n ≥ 2` mutually recursive units: `g{i}(k)` returns `i` at
/// `k = 0` and otherwise calls `g{(i+1) mod n}(k - 1)`. The last
/// constituent's initialization starts the ring at `g{n-1}` with
/// `k = n`, so every unit participates and the walk returns to its
/// starting point: the result is `n - 1`.
pub fn cycle_program(n: usize) -> Expr {
    assert!(n >= 2);
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("g{i}");
        let next = format!("g{}", (i + 1) % n);
        let body = Expr::lambda(
            vec![Param::untyped("k")],
            Expr::if_(
                Expr::prim2(PrimOp::NumEq, Expr::var("k"), Expr::int(0)),
                Expr::int(i as i64),
                Expr::app(
                    Expr::var(next.as_str()),
                    vec![Expr::prim2(PrimOp::Sub, Expr::var("k"), Expr::int(1))],
                ),
            ),
        );
        let init = if i == n - 1 {
            Expr::app(Expr::var(name.as_str()), vec![Expr::int(n as i64)])
        } else {
            Expr::void()
        };
        links.push(clause(
            untyped_unit(vec![next.as_str()], vec![name.as_str()], vec![(name.clone(), body)], init),
            vec![next],
            vec![name],
        ));
    }
    Expr::invoke_program(Expr::compound(CompoundExpr {
        imports: Ports::new(),
        exports: Ports::new(),
        links,
    }))
}

/// The even/odd counting workload (Fig. 12) for a given depth: two
/// mutually recursive units counting down from `depth`.
pub fn even_odd_program(depth: i64) -> Expr {
    let count = |this: &str, other: &str, base: bool| {
        Expr::lambda(
            vec![Param::untyped("n")],
            Expr::if_(
                Expr::prim2(PrimOp::NumEq, Expr::var("n"), Expr::int(0)),
                Expr::bool(base),
                Expr::app(
                    Expr::var(other),
                    vec![Expr::prim2(PrimOp::Sub, Expr::var("n"), Expr::int(1))],
                ),
            ),
        )
        .pipe(|body| (this.to_string(), body))
    };
    let even = untyped_unit(
        vec!["odd"],
        vec!["even"],
        vec![count("even", "odd", true)],
        Expr::void(),
    );
    let odd = untyped_unit(
        vec!["even"],
        vec!["odd"],
        vec![count("odd", "even", false)],
        Expr::app(Expr::var("odd"), vec![Expr::int(depth)]),
    );
    Expr::invoke_program(Expr::compound(CompoundExpr {
        imports: Ports::new(),
        exports: Ports::new(),
        links: vec![
            clause(even, vec!["odd".to_string()], vec!["even".to_string()]),
            clause(odd, vec!["even".to_string()], vec!["odd".to_string()]),
        ],
    }))
}

/// `depth` nested `let`s, each binding `width` variables, whose innermost
/// expression sums the first and last binding of *every* level — so the
/// evaluator performs lookups at every frame depth. By-name lookup scans
/// `width` bindings in each of up to `depth` frames per reference; the
/// resolver turns each into a direct `(depth, slot)` access. The value is
/// `depth * (width - 1)`.
pub fn deep_let_program(depth: usize, width: usize) -> Expr {
    assert!(depth >= 1 && width >= 1);
    let mut sum = Expr::int(0);
    for level in 0..depth {
        sum = Expr::prim2(PrimOp::Add, sum, Expr::var(format!("v{level}_0").as_str()));
        sum = Expr::prim2(
            PrimOp::Add,
            sum,
            Expr::var(format!("v{level}_{}", width - 1).as_str()),
        );
    }
    let mut body = sum;
    for level in (0..depth).rev() {
        let bindings = (0..width)
            .map(|k| units_kernel::Binding {
                name: format!("v{level}_{k}").into(),
                expr: Expr::int(k as i64),
            })
            .collect();
        body = Expr::Let(bindings, Box::new(body));
    }
    body
}

/// The even/odd trampoline (Fig. 12) inside *wide* units: each unit
/// additionally defines `extra` inert values, declared after the
/// counting function. Production units export many definitions, and the
/// by-name scan pays for every one of them on every reference that
/// lives in an outer frame — the innermost-first scan must reject all
/// `extra` pads in the rebound-values and letrec frames before reaching
/// the import. Slot resolution indexes past them.
pub fn even_odd_wide_program(depth: i64, extra: usize) -> Expr {
    let count = |this: &str, other: &str, base: bool| {
        Expr::lambda(
            vec![Param::untyped("n")],
            Expr::if_(
                Expr::prim2(PrimOp::NumEq, Expr::var("n"), Expr::int(0)),
                Expr::bool(base),
                Expr::app(
                    Expr::var(other),
                    vec![Expr::prim2(PrimOp::Sub, Expr::var("n"), Expr::int(1))],
                ),
            ),
        )
        .pipe(|body| (this.to_string(), body))
    };
    let pad = |tag: &str, extra: usize| {
        (0..extra).map(move |k| (format!("{tag}_pad{k}"), Expr::int(k as i64))).collect::<Vec<_>>()
    };
    let mut even_vals = vec![count("even", "odd", true)];
    even_vals.extend(pad("e", extra));
    let mut odd_vals = vec![count("odd", "even", false)];
    odd_vals.extend(pad("o", extra));
    let even = untyped_unit(vec!["odd"], vec!["even"], even_vals, Expr::void());
    let odd = untyped_unit(
        vec!["even"],
        vec!["odd"],
        odd_vals,
        Expr::app(Expr::var("odd"), vec![Expr::int(depth)]),
    );
    Expr::invoke_program(Expr::compound(CompoundExpr {
        imports: Ports::new(),
        exports: Ports::new(),
        links: vec![
            clause(even, vec!["odd".to_string()], vec!["even".to_string()]),
            clause(odd, vec!["even".to_string()], vec!["odd".to_string()]),
        ],
    }))
}

/// Tiny pipe helper so the workload builders read top-down.
trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}

/// A typed unit exporting `width` integer constants — the wide-signature
/// workload for the Fig. 15 checker.
pub fn wide_typed_unit(width: usize) -> Expr {
    let mut exports = Vec::with_capacity(width);
    let mut vals = Vec::with_capacity(width);
    for i in 0..width {
        let name = format!("v{i}");
        exports.push(ValPort::typed(name.as_str(), Ty::Int));
        vals.push(ValDefn { name: name.into(), ty: Some(Ty::Int), body: Expr::int(i as i64) });
    }
    Expr::unit(UnitExpr {
        imports: Ports::new(),
        exports: Ports { types: vec![], vals: exports },
        types: vec![],
        vals,
        init: Expr::void(),
    })
}

/// A signature with `width + extra_exports` arrow-typed value ports, for
/// the Fig. 14 subtype benchmarks.
pub fn wide_signature(width: usize, extra_exports: usize) -> Signature {
    let port_ty = || Ty::arrow(vec![Ty::Int, Ty::Str], Ty::Tuple(vec![Ty::Int, Ty::Bool]));
    let exports: Vec<ValPort> = (0..width + extra_exports)
        .map(|i| ValPort::typed(format!("p{i}").as_str(), port_ty()))
        .collect();
    Signature::new(
        Ports {
            types: vec![TyPort::star("t")],
            vals: vec![ValPort::typed("dep", Ty::arrow(vec![Ty::var("t")], Ty::Void))],
        },
        Ports { types: vec![], vals: exports },
        Ty::Void,
    )
}

/// A nested signature type of the given depth: each level exports a value
/// whose type is the next level's signature.
pub fn deep_signature(depth: usize) -> Ty {
    let mut ty = Ty::Int;
    for i in 0..depth {
        let sig = Signature::new(
            Ports::new(),
            Ports {
                types: vec![],
                vals: vec![ValPort::typed(format!("level{i}").as_str(), ty)],
            },
            Ty::Void,
        );
        ty = Ty::sig(sig);
    }
    ty
}

/// An `Equations` chain `a0 = int`, `a{i} = ⟨a{i-1}⟩` of the given
/// length, for the Fig. 18 expansion benchmarks.
pub fn alias_chain(n: usize) -> units::Equations {
    let mut eqs = units::Equations::new();
    eqs.insert(Symbol::new("a0"), Ty::Int);
    for i in 1..n {
        let prev = Ty::var(format!("a{}", i - 1));
        eqs.insert(Symbol::new(format!("a{i}")), Ty::Tuple(vec![prev]));
    }
    eqs
}

/// A typed UNITe unit whose alias chain of length `n` must be expanded
/// away when deriving its signature.
pub fn alias_chain_unit(n: usize) -> Expr {
    assert!(n >= 1);
    let mut types = vec![TypeDefn::Alias(AliasDefn {
        name: "a0".into(),
        kind: Kind::Star,
        body: Ty::Int,
    })];
    for i in 1..n {
        types.push(TypeDefn::Alias(AliasDefn {
            name: format!("a{i}").into(),
            kind: Kind::Star,
            body: Ty::Tuple(vec![Ty::var(format!("a{}", i - 1))]),
        }));
    }
    let last = format!("a{}", n - 1);
    Expr::unit(UnitExpr {
        imports: Ports::new(),
        exports: Ports {
            types: vec![],
            vals: vec![ValPort::typed("get", Ty::arrow(vec![Ty::var(last.as_str())], Ty::Int))],
        },
        types,
        vals: vec![ValDefn {
            name: "get".into(),
            ty: Some(Ty::arrow(vec![Ty::var(last.as_str())], Ty::Int)),
            body: Expr::lambda(vec![Param::typed("x", Ty::var(last.as_str()))], Expr::int(0)),
        }],
        init: Expr::void(),
    })
}

/// `invoke` the unit bound to `u` a number of times, summing the results
/// so the work cannot be discarded.
pub fn repeated_invoke(unit: Expr, count: usize) -> Expr {
    let uses: Vec<Expr> = (0..count)
        .map(|_| {
            Expr::invoke(InvokeExpr {
                target: Expr::var("u"),
                ty_links: vec![],
                val_links: vec![],
            })
        })
        .collect();
    let sum = uses.into_iter().fold(Expr::int(0), |acc, e| Expr::prim2(PrimOp::Add, acc, e));
    Expr::Let(vec![units_kernel::Binding { name: "u".into(), expr: unit }], Box::new(sum))
}

/// A simple unit whose invocation returns 1 (for [`repeated_invoke`]).
pub fn one_unit() -> Expr {
    untyped_unit(
        vec![],
        vec!["f"],
        vec![("f".to_string(), Expr::thunk(Expr::int(1)))],
        Expr::app(Expr::var("f"), vec![]),
    )
}

/// A loader-plugin source for the dynamic-linking bench.
pub fn plugin_source(i: usize) -> String {
    format!(
        "(unit (import (log (-> str void))) (export)
           (init (lambda ((n int)) (+ n {i}))))"
    )
}

/// The signature every plug-in must satisfy.
pub fn plugin_signature() -> Signature {
    units::parse_signature("(sig (import (log (-> str void))) (export) (init (-> int int)))")
        .expect("static signature parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::{Backend, Engine, Observation, Strictness};

    fn run(expr: Expr) -> Observation {
        Engine::builder()
            .strictness(Strictness::MzScheme)
            .build()
            .load_expr(expr)
            .expect("workload checks")
            .run_differential()
            .expect("workload runs")
            .value
    }

    #[test]
    fn chain_counts_its_length() {
        assert_eq!(run(chain_program(1)), Observation::Int(0));
        assert_eq!(run(chain_program(5)), Observation::Int(4));
        assert_eq!(run(chain_program(12)), Observation::Int(11));
    }

    #[test]
    fn star_sums_satellites() {
        assert_eq!(run(star_program(4)), Observation::Int(6));
    }

    #[test]
    fn cycle_walks_the_whole_ring() {
        assert_eq!(run(cycle_program(2)), Observation::Int(1));
        assert_eq!(run(cycle_program(5)), Observation::Int(4));
    }

    #[test]
    fn even_odd_alternates() {
        assert_eq!(run(even_odd_program(10)), Observation::Bool(false));
        assert_eq!(run(even_odd_program(11)), Observation::Bool(true));
    }

    #[test]
    fn deep_let_sums_first_and_last_of_every_level() {
        assert_eq!(run(deep_let_program(1, 1)), Observation::Int(0));
        assert_eq!(run(deep_let_program(3, 4)), Observation::Int(9));
        // And the by-name fallback computes the same thing.
        let engine = Engine::builder().resolution(false).build();
        let p = engine.load_expr(deep_let_program(5, 3)).unwrap();
        assert_eq!(p.run_on(Backend::Compiled).unwrap().value, Observation::Int(10));
    }

    #[test]
    fn typed_workloads_check() {
        use units::{type_of, Level};
        type_of(&wide_typed_unit(32), Level::Constructed).unwrap();
        type_of(&alias_chain_unit(16), Level::Equations).unwrap();
        let deep = deep_signature(8);
        units::subtype(&units::Equations::new(), &deep, &deep).unwrap();
        let wide = Ty::sig(wide_signature(16, 4));
        let narrow = Ty::sig(wide_signature(16, 0));
        units::subtype(&units::Equations::new(), &wide, &narrow).unwrap();
    }

    #[test]
    fn repeated_invocations_sum() {
        let expr = repeated_invoke(one_unit(), 7);
        let engine = Engine::new();
        assert_eq!(
            engine.load_expr(expr).unwrap().run_on(Backend::Compiled).unwrap().value,
            Observation::Int(7)
        );
    }

    #[test]
    fn alias_chain_is_acyclic_and_expands() {
        let eqs = alias_chain(64);
        eqs.check_acyclic().unwrap();
        let t = units::expand_ty(&Ty::var("a63"), &eqs).unwrap();
        assert!(matches!(t, Ty::Tuple(_)));
    }

    #[test]
    fn plugins_load_against_their_signature() {
        use units::{Archive, CheckOptions, Level};
        let mut a = Archive::new();
        a.publish("p0", plugin_source(0));
        a.load("p0", &plugin_signature(), CheckOptions::typed(Level::Constructed)).unwrap();
    }
}

/// Like [`chain_program`], but every constituent defines the *same*
/// internal helper name, forcing the reducer's merge to α-rename at every
/// link — the ablation for the freshening machinery of Fig. 11.
pub fn colliding_chain_program(n: usize) -> Expr {
    assert!(n >= 1);
    let mut links = Vec::with_capacity(n + 1);
    for i in 0..n {
        let name = format!("f{i}");
        let prev = if i == 0 { None } else { Some(format!("f{}", i - 1)) };
        // Every unit has an internal, non-exported `helper` whose body
        // mentions the exported definition (so renaming must substitute).
        let helper = Expr::lambda(
            vec![Param::untyped("x")],
            match &prev {
                Some(p) => Expr::app(
                    Expr::var(p.as_str()),
                    vec![Expr::prim2(PrimOp::Add, Expr::var("x"), Expr::int(1))],
                ),
                None => Expr::var("x"),
            },
        );
        let public = Expr::lambda(
            vec![Param::untyped("x")],
            Expr::app(Expr::var("helper"), vec![Expr::var("x")]),
        );
        links.push(clause(
            untyped_unit(
                prev.iter().map(String::as_str).collect(),
                vec![name.as_str()],
                vec![("helper".to_string(), helper), (name.clone(), public)],
                Expr::void(),
            ),
            prev.into_iter().collect(),
            vec![name],
        ));
    }
    let last = format!("f{}", n - 1);
    links.push(clause(
        untyped_unit(
            vec![last.as_str()],
            vec![],
            vec![],
            Expr::app(Expr::var(last.as_str()), vec![Expr::int(0)]),
        ),
        vec![last],
        vec![],
    ));
    Expr::invoke_program(Expr::compound(CompoundExpr {
        imports: Ports::new(),
        exports: Ports::new(),
        links,
    }))
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use units::{Engine, Observation, Strictness};

    #[test]
    fn colliding_chain_computes_like_the_plain_chain() {
        let engine = Engine::builder().strictness(Strictness::MzScheme).build();
        for n in [1usize, 3, 7] {
            let v = engine
                .load_expr(colliding_chain_program(n))
                .expect("checks")
                .run_differential()
                .expect("runs")
                .value;
            assert_eq!(v, Observation::Int(n as i64 - 1));
        }
    }
}
