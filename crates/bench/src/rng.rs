//! A self-contained deterministic PRNG (SplitMix64).
//!
//! The workspace must build with no registry access, so the random
//! program generators in the benches and the differential test suite use
//! this instead of the `rand` crate. SplitMix64 (Steele, Lea & Flood,
//! OOPSLA 2014) passes BigCrush, needs eight lines of code, and — unlike
//! `rand` — guarantees the same stream on every platform forever, which
//! keeps recorded differential-test seeds reproducible.

/// A 64-bit SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Equal seeds yield equal streams, on every
    /// platform and in every future version of this repository.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `usize` in `[lo, hi)`. Uses the high bits via widening
    /// multiply, so small ranges don't inherit low-bit structure.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u64;
        let wide = u128::from(self.next_u64()) * u128::from(span);
        lo + (wide >> 64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = lo.abs_diff(hi);
        let wide = u128::from(self.next_u64()) * u128::from(span);
        lo.wrapping_add((wide >> 64) as i64)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_stable() {
        // Reference values for seed 1234567 from the published SplitMix64
        // recurrence; pinning them keeps recorded test seeds meaningful.
        let mut r = SplitMix64::seed_from_u64(1234567);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut again = SplitMix64::seed_from_u64(1234567);
        let second: Vec<u64> = (0..3).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn ranges_are_in_bounds_and_hit_ends() {
        let mut r = SplitMix64::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(10, 15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values of a small range appear");
        for _ in 0..200 {
            let v = r.gen_range_i64(-3, 3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut r = SplitMix64::seed_from_u64(7);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads), "fair coin is roughly fair: {heads}");
    }
}
