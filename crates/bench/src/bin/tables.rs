//! Prints every experiment's series as aligned text tables — the
//! numbers recorded in EXPERIMENTS.md. The per-experiment binaries under
//! `benches/` print the same series one experiment at a time; this binary
//! gives the at-a-glance shape: who wins, by what factor, and how each
//! system scales.
//!
//! Run with: `cargo run --release -p bench --bin tables`

use std::time::Instant;

use bench::{
    alias_chain, alias_chain_unit, chain_program, cycle_program, deep_let_program,
    deep_signature, even_odd_program, even_odd_wide_program, one_unit, plugin_signature,
    plugin_source, repeated_invoke, star_program, wide_signature, wide_typed_unit,
};
use units::{
    check_program, expand_ty, subtype, type_of, Archive, Backend, CheckOptions, Equations,
    Level, Program, Strictness, Ty,
};

/// Median wall time of `runs` executions, in microseconds.
fn time_us(runs: u32, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn header(title: &str) {
    println!("\n== {title} {}", "=".repeat(60usize.saturating_sub(title.len())));
}

fn main() {
    let runs = 9;

    header("link_reduction (Figs. 8/11): linking time vs. graph size");
    println!("{:>6} {:>8} {:>14} {:>14} {:>8}", "shape", "units", "compiled µs", "reducer µs", "ratio");
    for (shape, make) in [
        ("chain", chain_program as fn(usize) -> units::Expr),
        ("star", star_program as fn(usize) -> units::Expr),
        ("cycle", cycle_program as fn(usize) -> units::Expr),
    ] {
        for n in [2usize, 4, 8, 16] {
            let p = Program::from_expr(make(n)).with_strictness(Strictness::MzScheme);
            let c = time_us(runs, || {
                p.run_unchecked(Backend::Compiled).unwrap();
            });
            let r = time_us(runs, || {
                p.run_unchecked(Backend::Reducer).unwrap();
            });
            println!("{shape:>6} {n:>8} {c:>14.1} {r:>14.1} {:>8.1}", r / c);
        }
    }

    header("invoke_backends (§4.1.6): compiled vs. substitution");
    println!("{:>8} {:>14} {:>14} {:>8}", "depth", "compiled µs", "reducer µs", "ratio");
    for depth in [25i64, 100, 400, 1600] {
        let p = Program::from_expr(even_odd_program(depth)).with_strictness(Strictness::MzScheme);
        let c = time_us(runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        let r = time_us(runs, || {
            p.run_unchecked(Backend::Reducer).unwrap();
        });
        println!("{depth:>8} {c:>14.1} {r:>14.1} {:>8.1}", r / c);
    }

    header("resolution: slot-resolved vs. by-name variable lookup");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>8}",
        "series", "size", "resolved µs", "by-name µs", "speedup"
    );
    // Minimum over many runs: the A/B delta on even/odd is a few percent
    // of a ~100 µs run, well under median-of-9 scheduling noise.
    let ab_runs = 60;
    for depth in [25i64, 100, 400, 1600] {
        let p = Program::from_expr(even_odd_program(depth)).with_strictness(Strictness::MzScheme);
        let off = p.clone().with_resolution(false);
        let on_us = bench::harness::min_us(ab_runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        let off_us = bench::harness::min_us(ab_runs, || {
            off.run_unchecked(Backend::Compiled).unwrap();
        });
        println!("{:>10} {depth:>8} {on_us:>14.1} {off_us:>14.1} {:>7.2}x", "even_odd", off_us / on_us);
    }
    // The same trampoline inside units that carry extra definitions — the
    // production shape whose frame scans the resolver eliminates.
    for extra in [4usize, 16, 64] {
        let p = Program::from_expr(even_odd_wide_program(400, extra))
            .with_strictness(Strictness::MzScheme);
        let off = p.clone().with_resolution(false);
        let on_us = bench::harness::min_us(ab_runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        let off_us = bench::harness::min_us(ab_runs, || {
            off.run_unchecked(Backend::Compiled).unwrap();
        });
        println!(
            "{:>10} {:>8} {on_us:>14.1} {off_us:>14.1} {:>7.2}x",
            "even_odd_w",
            format!("400+{extra}"),
            off_us / on_us
        );
    }
    for (d, w) in [(64usize, 8usize), (128, 8), (256, 8), (256, 16)] {
        let p = Program::from_expr(deep_let_program(d, w)).with_strictness(Strictness::MzScheme);
        let off = p.clone().with_resolution(false);
        let on_us = bench::harness::min_us(ab_runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        let off_us = bench::harness::min_us(ab_runs, || {
            off.run_unchecked(Backend::Compiled).unwrap();
        });
        println!(
            "{:>10} {:>8} {on_us:>14.1} {off_us:>14.1} {:>7.2}x",
            "deep_let",
            format!("{d}x{w}"),
            off_us / on_us
        );
    }

    header("instantiation (§4.1.6): per-instance cost stays flat");
    println!("{:>10} {:>14} {:>16}", "instances", "total µs", "per-instance µs");
    for count in [1usize, 10, 100, 1000] {
        let p = Program::from_expr(repeated_invoke(one_unit(), count))
            .with_strictness(Strictness::MzScheme);
        let t = time_us(runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        println!("{count:>10} {t:>14.1} {:>16.3}", t / count as f64);
    }

    header("typecheck (Fig. 15): cost vs. interface width / graph size");
    println!("{:>14} {:>8} {:>12}", "series", "size", "µs");
    for width in [4usize, 16, 64, 256] {
        let unit = wide_typed_unit(width);
        let t = time_us(runs, || {
            type_of(&unit, Level::Constructed).unwrap();
        });
        println!("{:>14} {width:>8} {t:>12.1}", "unit_width");
    }
    for n in [4usize, 16, 64] {
        let program = chain_program(n);
        let t = time_us(runs, || {
            check_program(
                &program,
                CheckOptions { level: Level::Untyped, strictness: Strictness::MzScheme },
            )
            .unwrap();
        });
        println!("{:>14} {n:>8} {t:>12.1}", "context_chain");
    }

    header("ablation: valuability analysis / merge α-renaming");
    println!("{:>22} {:>8} {:>12}", "series", "size", "µs");
    for n in [16usize, 64] {
        let program = chain_program(n);
        for (label, strictness) in
            [("paper", Strictness::Paper), ("mzscheme", Strictness::MzScheme)]
        {
            let t = time_us(runs, || {
                check_program(&program, CheckOptions { level: Level::Untyped, strictness })
                    .unwrap();
            });
            println!("{:>22} {n:>8} {t:>12.1}", format!("valuability/{label}"));
        }
    }
    for n in [4usize, 8, 16] {
        for (label, make) in [
            ("merge/disjoint", chain_program as fn(usize) -> units::Expr),
            ("merge/colliding", bench::colliding_chain_program as fn(usize) -> units::Expr),
        ] {
            let p = Program::from_expr(make(n)).with_strictness(Strictness::MzScheme);
            let t = time_us(runs, || {
                p.run_unchecked(Backend::Reducer).unwrap();
            });
            println!("{:>22} {n:>8} {t:>12.1}", label);
        }
    }

    header("subtyping (Figs. 14/17): wide and deep signatures");
    println!("{:>8} {:>8} {:>12}", "series", "size", "µs");
    for width in [4usize, 16, 64, 256] {
        let specific = Ty::sig(wide_signature(width, 8));
        let general = Ty::sig(wide_signature(width, 0));
        let t = time_us(runs, || {
            subtype(&Equations::new(), &specific, &general).unwrap();
        });
        println!("{:>8} {width:>8} {t:>12.1}", "width");
    }
    for depth in [2usize, 4, 8, 16] {
        let ty = deep_signature(depth);
        let t = time_us(runs, || {
            subtype(&Equations::new(), &ty, &ty).unwrap();
        });
        println!("{:>8} {depth:>8} {t:>12.1}", "depth");
    }

    header("dependency_analysis (Figs. 18/19): expansion & UNITe checking");
    println!("{:>12} {:>8} {:>12}", "series", "chain", "µs");
    for n in [4usize, 16, 64, 256] {
        let eqs = alias_chain(n);
        let target = Ty::var(format!("a{}", n - 1));
        let t = time_us(runs, || {
            eqs.check_acyclic().unwrap();
            expand_ty(&target, &eqs).unwrap();
        });
        println!("{:>12} {n:>8} {t:>12.1}", "expand");
    }
    for n in [4usize, 16, 64] {
        let unit = alias_chain_unit(n);
        let t = time_us(runs, || {
            type_of(&unit, Level::Equations).unwrap();
        });
        println!("{:>12} {n:>8} {t:>12.1}", "unite_check");
    }

    header("dynlink (Fig. 7 / §3.4): per-load cost of checked loading");
    println!("{:>10} {:>16} {:>16}", "archive", "load+check µs", "load+run µs");
    for count in [1usize, 8, 64] {
        let mut archive = Archive::new();
        for i in 0..count {
            archive.publish(format!("p{i}"), plugin_source(i));
        }
        let expected = plugin_signature();
        let t_load = time_us(runs, || {
            archive.load("p0", &expected, CheckOptions::typed(Level::Constructed)).unwrap();
        });
        let t_run = time_us(runs, || {
            let unit = archive
                .load("p0", &expected, CheckOptions::typed(Level::Constructed))
                .unwrap();
            let program = Program::from_expr(units::Expr::app(
                units::Expr::invoke(units_kernel::InvokeExpr {
                    target: unit,
                    ty_links: vec![],
                    val_links: vec![(
                        "log".into(),
                        units::parse_expr("(lambda (s) void)").unwrap(),
                    )],
                }),
                vec![units::Expr::int(1)],
            ))
            .with_strictness(Strictness::MzScheme);
            program.run_unchecked(Backend::Compiled).unwrap();
        });
        println!("{count:>10} {t_load:>16.1} {t_run:>16.1}");
    }

    println!("\nDone. Record these series in EXPERIMENTS.md.");
}
