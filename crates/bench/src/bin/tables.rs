//! Prints every experiment's series as aligned text tables — the
//! numbers recorded in EXPERIMENTS.md. The per-experiment binaries under
//! `benches/` print the same series one experiment at a time; this binary
//! gives the at-a-glance shape: who wins, by what factor, and how each
//! system scales.
//!
//! Run with: `cargo run --release -p bench --bin tables`
//!
//! Flags:
//!
//! * `--json`  — also write every record (plus, with the `trace`
//!   feature, a pipeline metrics snapshot of the even/odd example, and
//!   in every build the engine's always-on metrics snapshot with invoke
//!   p50/p99) to `BENCH_trace.json`, self-validated with
//!   `units_trace::json`, so the perf trajectory is machine-readable
//!   run over run;
//! * `--chrome-trace` — write the pipeline phase spans of the even/odd
//!   example as `CHROME_trace.json` (Chrome/Perfetto `traceEvents`
//!   format; empty but valid without `--features trace`);
//! * `--quick` — smaller sizes and fewer repetitions (CI smoke mode).

use std::time::Instant;

use bench::{
    alias_chain, alias_chain_unit, chain_program, cycle_program, deep_let_program,
    deep_signature, even_odd_program, even_odd_wide_program, one_unit, plugin_signature,
    plugin_source, repeated_invoke, star_program, wide_signature, wide_typed_unit,
};
use units::{
    check_program, expand_ty, subtype, type_of, Archive, Backend, CheckOptions, Engine,
    Equations, Level, Strictness, Ty,
};

/// Median wall time of `runs` executions, in microseconds.
fn time_us(runs: u32, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A warm evaluation session: checks and resolution are paid once at
/// `load_expr`; each timed `run_on` then measures evaluation alone.
fn session() -> Engine {
    Engine::builder().strictness(Strictness::MzScheme).build()
}

/// Times `backend` on an already-loaded artifact, after one untimed
/// warm-up run (the warm-up pays the lazy chunk lowering for the
/// bytecode backend — §4.1.6's one-copy-of-the-code invariant means
/// that cost is per-program, not per-run).
fn time_backend(runs: u32, loaded: &units::Loaded, backend: Backend) -> f64 {
    loaded.run_on(backend).unwrap();
    time_us(runs, || {
        loaded.run_on(backend).unwrap();
    })
}

fn header(title: &str) {
    println!("\n== {title} {}", "=".repeat(60usize.saturating_sub(title.len())));
}

/// One measured point: which experiment/series, at what size, and the
/// measured columns (name → microseconds or ratio).
struct Record {
    experiment: &'static str,
    series: String,
    size: String,
    values: Vec<(&'static str, f64)>,
}

/// Collects records for the `--json` summary while the tables print.
#[derive(Default)]
struct Recorder {
    records: Vec<Record>,
}

impl Recorder {
    fn push(
        &mut self,
        experiment: &'static str,
        series: impl Into<String>,
        size: impl ToString,
        values: Vec<(&'static str, f64)>,
    ) {
        self.records.push(Record {
            experiment,
            series: series.into(),
            size: size.to_string(),
            values,
        });
    }

    /// The whole run as one JSON document. Floats are rendered with
    /// three decimals (µs resolution is noise beyond that).
    fn to_json(&self, quick: bool) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"bench\":\"tables\",\"quick\":{quick},\"host_parallelism\":{},\"trace_compiled\":{},",
            host_parallelism(),
            units_trace::COMPILED
        ));
        out.push_str("\"records\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"experiment\":{},\"series\":{},\"size\":{}",
                units_trace::json::escape(r.experiment),
                units_trace::json::escape(&r.series),
                units_trace::json::escape(&r.size)
            ));
            for (name, value) in &r.values {
                out.push_str(&format!(",{}:{value:.3}", units_trace::json::escape(name)));
            }
            out.push('}');
        }
        out.push_str("],");
        out.push_str(&format!("\"engine_metrics\":{},", engine_metrics_json()));
        out.push_str(&format!("\"pipeline_metrics\":{}", pipeline_metrics_json()));
        out.push('}');
        out
    }
}

/// What the machine can actually run in parallel. Recorded in the JSON
/// header so the ci.sh scaling gate can tell "the pipeline failed to
/// scale" apart from "the host has one core" — on a 1-core runner a
/// wall-clock speedup is physically impossible and the gate must say so
/// rather than fail or silently pass.
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The engine's always-on metrics plane over a short warm session:
/// even/odd on all three backends plus one repeated load (a cache
/// hit). Works identically with and without the `trace` feature — the
/// invoke-latency percentiles in particular are present in every build.
fn engine_metrics_json() -> String {
    let engine = session();
    let p = engine.load_expr(even_odd_program(100)).unwrap();
    p.run_on(Backend::Compiled).unwrap();
    p.run_on(Backend::Reducer).unwrap();
    p.run_on(Backend::Bytecode).unwrap();
    // The α-invariant term index answers this one: a recorded hit.
    engine.load_expr(even_odd_program(100)).unwrap();
    engine.metrics_snapshot().to_json()
}

/// Runs the even/odd pipeline under a fresh metrics registry and
/// exports its phase spans in Chrome `traceEvents` format. Without the
/// `trace` feature no spans are recorded and the document is an empty
/// (but valid) trace.
fn chrome_trace_export() -> String {
    let metrics = std::sync::Arc::new(units_trace::Metrics::new());
    units_trace::install(
        std::rc::Rc::new(std::cell::RefCell::new(units_trace::NullSink)),
        std::sync::Arc::clone(&metrics),
    );
    let engine = session();
    let p = engine.load_expr(even_odd_program(100)).unwrap();
    p.run_on(Backend::Compiled).unwrap();
    p.run_on(Backend::Reducer).unwrap();
    p.run_on(Backend::Bytecode).unwrap();
    units_trace::uninstall();
    metrics.chrome_trace_json()
}

/// With the `trace` feature: run the even/odd example once on each
/// backend under a metrics session and return the counters/durations
/// snapshot (the bytecode run contributes its per-opcode `vm/op/…`
/// counters). Without it: an empty object (the hooks are no-ops).
fn pipeline_metrics_json() -> String {
    let metrics = std::sync::Arc::new(units_trace::Metrics::new());
    units_trace::install(
        std::rc::Rc::new(std::cell::RefCell::new(units_trace::NullSink)),
        std::sync::Arc::clone(&metrics),
    );
    let engine = session();
    let p = engine.load_expr(even_odd_program(100)).unwrap();
    p.run_on(Backend::Compiled).unwrap();
    p.run_on(Backend::Reducer).unwrap();
    p.run_on(Backend::Bytecode).unwrap();
    units_trace::uninstall();
    metrics.to_json()
}

fn main() {
    let mut json = false;
    let mut quick = false;
    let mut chrome = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--chrome-trace" => chrome = true,
            other => {
                eprintln!(
                    "unknown flag {other:?}; usage: tables [--json] [--chrome-trace] [--quick]"
                );
                std::process::exit(2);
            }
        }
    }
    let mut rec = Recorder::default();
    let runs = if quick { 3 } else { 9 };

    header("link_reduction (Figs. 8/11): linking time vs. graph size");
    println!("{:>6} {:>8} {:>14} {:>14} {:>8}", "shape", "units", "compiled µs", "reducer µs", "ratio");
    for (shape, make) in [
        ("chain", chain_program as fn(usize) -> units::Expr),
        ("star", star_program as fn(usize) -> units::Expr),
        ("cycle", cycle_program as fn(usize) -> units::Expr),
    ] {
        for n in if quick { &[2usize, 4][..] } else { &[2usize, 4, 8, 16][..] } {
            let engine = session();
            let p = engine.load_expr(make(*n)).unwrap();
            let c = time_backend(runs, &p, Backend::Compiled);
            let r = time_backend(runs, &p, Backend::Reducer);
            println!("{shape:>6} {n:>8} {c:>14.1} {r:>14.1} {:>8.1}", r / c);
            rec.push(
                "link_reduction",
                shape,
                n,
                vec![("compiled_us", c), ("reducer_us", r), ("ratio", r / c)],
            );
        }
    }

    header("invoke_backends (§4.1.6): compiled vs. substitution vs. bytecode");
    println!(
        "{:>8} {:>13} {:>12} {:>13} {:>7} {:>7}",
        "depth", "compiled µs", "reducer µs", "bytecode µs", "r/c", "c/vm"
    );
    for depth in if quick { &[25i64, 100][..] } else { &[25i64, 100, 400, 1600][..] } {
        let engine = session();
        let p = engine.load_expr(even_odd_program(*depth)).unwrap();
        let c = time_backend(runs, &p, Backend::Compiled);
        let r = time_backend(runs, &p, Backend::Reducer);
        let b = time_backend(runs, &p, Backend::Bytecode);
        println!("{depth:>8} {c:>13.1} {r:>12.1} {b:>13.1} {:>7.1} {:>6.2}x", r / c, c / b);
        rec.push(
            "invoke_backends",
            "even_odd",
            depth,
            vec![
                ("compiled_us", c),
                ("reducer_us", r),
                ("bytecode_us", b),
                ("ratio", r / c),
                ("vm_speedup", c / b),
            ],
        );
    }

    header("invoke_bytecode (B.2): flat-chunk dispatch vs. compiled tree-walk");
    println!(
        "{:>14} {:>8} {:>13} {:>13} {:>8}",
        "series", "size", "compiled µs", "bytecode µs", "speedup"
    );
    // Minimum over many runs, like the resolution A/B: the workloads are
    // warm single-artifact evaluations, so scheduling noise dominates a
    // median at these run times.
    let vm_runs = if quick { 10 } else { 40 };
    let vm_point = |rec: &mut Recorder,
                        series: &'static str,
                        size: String,
                        expr: units::Expr| {
        let engine = session();
        let p = engine.load_expr(expr).unwrap();
        p.run_on(Backend::Compiled).unwrap();
        p.run_on(Backend::Bytecode).unwrap();
        let c = bench::harness::min_us(vm_runs, || {
            p.run_on(Backend::Compiled).unwrap();
        });
        let b = bench::harness::min_us(vm_runs, || {
            p.run_on(Backend::Bytecode).unwrap();
        });
        println!("{series:>14} {size:>8} {c:>13.1} {b:>13.1} {:>7.2}x", c / b);
        rec.push(
            "invoke_backends",
            format!("invoke_bytecode/{series}"),
            size,
            vec![("compiled_us", c), ("bytecode_us", b), ("speedup", c / b)],
        );
    };
    for depth in if quick { &[100i64][..] } else { &[100i64, 400, 1600][..] } {
        vm_point(&mut rec, "even_odd", depth.to_string(), even_odd_program(*depth));
    }
    for (d, w) in if quick { &[(64usize, 8usize)][..] } else { &[(128usize, 8usize), (256, 16)][..] }
    {
        vm_point(&mut rec, "deep_let", format!("{d}x{w}"), deep_let_program(*d, *w));
    }
    for count in if quick { &[100usize][..] } else { &[100usize, 1000][..] } {
        vm_point(
            &mut rec,
            "repeat_invoke",
            count.to_string(),
            repeated_invoke(one_unit(), *count),
        );
    }

    header("resolution: slot-resolved vs. by-name variable lookup");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>8}",
        "series", "size", "resolved µs", "by-name µs", "speedup"
    );
    // Minimum over many runs: the A/B delta on even/odd is a few percent
    // of a ~100 µs run, well under median-of-9 scheduling noise.
    let ab_runs = if quick { 10 } else { 60 };
    let by_name_session =
        || Engine::builder().strictness(Strictness::MzScheme).resolution(false).build();
    for depth in if quick { &[25i64, 100][..] } else { &[25i64, 100, 400, 1600][..] } {
        let on_engine = session();
        let p = on_engine.load_expr(even_odd_program(*depth)).unwrap();
        let off_engine = by_name_session();
        let off = off_engine.load_expr(even_odd_program(*depth)).unwrap();
        p.run_on(Backend::Compiled).unwrap();
        off.run_on(Backend::Compiled).unwrap();
        let on_us = bench::harness::min_us(ab_runs, || {
            p.run_on(Backend::Compiled).unwrap();
        });
        let off_us = bench::harness::min_us(ab_runs, || {
            off.run_on(Backend::Compiled).unwrap();
        });
        println!("{:>10} {depth:>8} {on_us:>14.1} {off_us:>14.1} {:>7.2}x", "even_odd", off_us / on_us);
        rec.push(
            "resolution",
            "even_odd",
            depth,
            vec![("resolved_us", on_us), ("by_name_us", off_us), ("speedup", off_us / on_us)],
        );
    }
    // The same trampoline inside units that carry extra definitions — the
    // production shape whose frame scans the resolver eliminates.
    for extra in if quick { &[4usize][..] } else { &[4usize, 16, 64][..] } {
        let on_engine = session();
        let p = on_engine.load_expr(even_odd_wide_program(400, *extra)).unwrap();
        let off_engine = by_name_session();
        let off = off_engine.load_expr(even_odd_wide_program(400, *extra)).unwrap();
        p.run_on(Backend::Compiled).unwrap();
        off.run_on(Backend::Compiled).unwrap();
        let on_us = bench::harness::min_us(ab_runs, || {
            p.run_on(Backend::Compiled).unwrap();
        });
        let off_us = bench::harness::min_us(ab_runs, || {
            off.run_on(Backend::Compiled).unwrap();
        });
        println!(
            "{:>10} {:>8} {on_us:>14.1} {off_us:>14.1} {:>7.2}x",
            "even_odd_w",
            format!("400+{extra}"),
            off_us / on_us
        );
        rec.push(
            "resolution",
            "even_odd_wide",
            format!("400+{extra}"),
            vec![("resolved_us", on_us), ("by_name_us", off_us), ("speedup", off_us / on_us)],
        );
    }
    for (d, w) in if quick {
        &[(64usize, 8usize)][..]
    } else {
        &[(64usize, 8usize), (128, 8), (256, 8), (256, 16)][..]
    } {
        let on_engine = session();
        let p = on_engine.load_expr(deep_let_program(*d, *w)).unwrap();
        let off_engine = by_name_session();
        let off = off_engine.load_expr(deep_let_program(*d, *w)).unwrap();
        p.run_on(Backend::Compiled).unwrap();
        off.run_on(Backend::Compiled).unwrap();
        let on_us = bench::harness::min_us(ab_runs, || {
            p.run_on(Backend::Compiled).unwrap();
        });
        let off_us = bench::harness::min_us(ab_runs, || {
            off.run_on(Backend::Compiled).unwrap();
        });
        println!(
            "{:>10} {:>8} {on_us:>14.1} {off_us:>14.1} {:>7.2}x",
            "deep_let",
            format!("{d}x{w}"),
            off_us / on_us
        );
        rec.push(
            "resolution",
            "deep_let",
            format!("{d}x{w}"),
            vec![("resolved_us", on_us), ("by_name_us", off_us), ("speedup", off_us / on_us)],
        );
    }

    header("instantiation (§4.1.6): per-instance cost stays flat");
    println!("{:>10} {:>14} {:>16}", "instances", "total µs", "per-instance µs");
    for count in if quick { &[1usize, 10][..] } else { &[1usize, 10, 100, 1000][..] } {
        let engine = session();
        let p = engine.load_expr(repeated_invoke(one_unit(), *count)).unwrap();
        let t = time_backend(runs, &p, Backend::Compiled);
        println!("{count:>10} {t:>14.1} {:>16.3}", t / *count as f64);
        rec.push(
            "instantiation",
            "repeated_invoke",
            count,
            vec![("total_us", t), ("per_instance_us", t / *count as f64)],
        );
    }

    header("repeat_invoke (engine): cold pipeline vs. warm artifact cache");
    println!("{:>8} {:>14} {:>14} {:>8}", "depth", "cold µs", "warm µs", "speedup");
    for depth in if quick { &[25i64, 100][..] } else { &[25i64, 100, 400][..] } {
        let src = units::pretty_expr(&even_odd_program(*depth));
        // Cold: a fresh engine per run pays parse + Fig. 10 checks +
        // resolution every time.
        let cold = time_us(runs, || {
            let engine = Engine::builder().strictness(Strictness::MzScheme).build();
            engine.invoke(&src).unwrap();
        });
        // Warm: one session; repeated invokes hit the artifact cache and
        // only pay evaluation.
        let engine = Engine::builder().strictness(Strictness::MzScheme).build();
        engine.invoke(&src).unwrap();
        let warm = time_us(runs, || {
            engine.invoke(&src).unwrap();
        });
        println!("{depth:>8} {cold:>14.1} {warm:>14.1} {:>7.2}x", cold / warm);
        rec.push(
            "repeat_invoke",
            "even_odd",
            depth,
            vec![("cold_us", cold), ("warm_us", warm), ("speedup", cold / warm)],
        );
    }

    header("store_warm_start (B.11): cold pipeline vs. disk-warmed fresh engine");
    println!("{:>8} {:>14} {:>14} {:>8}", "depth", "cold µs", "disk µs", "speedup");
    for depth in if quick { &[25i64, 100][..] } else { &[25i64, 100, 400][..] } {
        let src = units::pretty_expr(&even_odd_program(*depth));
        let dir = std::env::temp_dir()
            .join(format!("units-bench-store-{}-{depth}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Pre-warm the directory, then drop the writer so each timed
        // engine takes the write lock cleanly.
        {
            let writer =
                Engine::builder().strictness(Strictness::MzScheme).cache_dir(&dir).build();
            writer.invoke(&src).unwrap();
        }
        // Cold: a fresh engine per run pays the whole pipeline.
        let cold = time_us(runs, || {
            let engine = Engine::builder().strictness(Strictness::MzScheme).build();
            engine.invoke(&src).unwrap();
        });
        // Disk-warm: a fresh engine per run — the cross-process restart
        // shape — answers from the verified on-disk artifact instead of
        // parsing, checking, and resolving.
        let disk = time_us(runs, || {
            let engine =
                Engine::builder().strictness(Strictness::MzScheme).cache_dir(&dir).build();
            engine.invoke(&src).unwrap();
        });
        println!("{depth:>8} {cold:>14.1} {disk:>14.1} {:>7.2}x", cold / disk);
        rec.push(
            "store_warm_start",
            "even_odd",
            depth,
            vec![("cold_us", cold), ("disk_us", disk), ("speedup", cold / disk)],
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    header("typecheck (Fig. 15): cost vs. interface width / graph size");
    println!("{:>14} {:>8} {:>12}", "series", "size", "µs");
    for width in if quick { &[4usize, 16][..] } else { &[4usize, 16, 64, 256][..] } {
        let unit = wide_typed_unit(*width);
        let t = time_us(runs, || {
            type_of(&unit, Level::Constructed).unwrap();
        });
        println!("{:>14} {width:>8} {t:>12.1}", "unit_width");
        rec.push("typecheck", "unit_width", width, vec![("us", t)]);
    }
    for n in if quick { &[4usize, 16][..] } else { &[4usize, 16, 64][..] } {
        let program = chain_program(*n);
        let t = time_us(runs, || {
            check_program(
                &program,
                CheckOptions { level: Level::Untyped, strictness: Strictness::MzScheme },
            )
            .unwrap();
        });
        println!("{:>14} {n:>8} {t:>12.1}", "context_chain");
        rec.push("typecheck", "context_chain", n, vec![("us", t)]);
    }

    header("ablation: valuability analysis / merge α-renaming");
    println!("{:>22} {:>8} {:>12}", "series", "size", "µs");
    for n in if quick { &[16usize][..] } else { &[16usize, 64][..] } {
        let program = chain_program(*n);
        for (label, strictness) in
            [("paper", Strictness::Paper), ("mzscheme", Strictness::MzScheme)]
        {
            let t = time_us(runs, || {
                check_program(&program, CheckOptions { level: Level::Untyped, strictness })
                    .unwrap();
            });
            println!("{:>22} {n:>8} {t:>12.1}", format!("valuability/{label}"));
            rec.push(
                "ablation",
                format!("valuability/{label}"),
                n,
                vec![("us", t)],
            );
        }
    }
    for n in if quick { &[4usize, 8][..] } else { &[4usize, 8, 16][..] } {
        for (label, make) in [
            ("merge/disjoint", chain_program as fn(usize) -> units::Expr),
            ("merge/colliding", bench::colliding_chain_program as fn(usize) -> units::Expr),
        ] {
            let engine = session();
            let p = engine.load_expr(make(*n)).unwrap();
            let t = time_backend(runs, &p, Backend::Reducer);
            println!("{:>22} {n:>8} {t:>12.1}", label);
            rec.push("ablation", label, n, vec![("us", t)]);
        }
    }

    header("subtyping (Figs. 14/17): wide and deep signatures");
    println!("{:>8} {:>8} {:>12}", "series", "size", "µs");
    for width in if quick { &[4usize, 16][..] } else { &[4usize, 16, 64, 256][..] } {
        let specific = Ty::sig(wide_signature(*width, 8));
        let general = Ty::sig(wide_signature(*width, 0));
        let t = time_us(runs, || {
            subtype(&Equations::new(), &specific, &general).unwrap();
        });
        println!("{:>8} {width:>8} {t:>12.1}", "width");
        rec.push("subtyping", "width", width, vec![("us", t)]);
    }
    for depth in if quick { &[2usize, 4][..] } else { &[2usize, 4, 8, 16][..] } {
        let ty = deep_signature(*depth);
        let t = time_us(runs, || {
            subtype(&Equations::new(), &ty, &ty).unwrap();
        });
        println!("{:>8} {depth:>8} {t:>12.1}", "depth");
        rec.push("subtyping", "depth", depth, vec![("us", t)]);
    }

    header("dependency_analysis (Figs. 18/19): expansion & UNITe checking");
    println!("{:>12} {:>8} {:>12}", "series", "chain", "µs");
    for n in if quick { &[4usize, 16][..] } else { &[4usize, 16, 64, 256][..] } {
        let eqs = alias_chain(*n);
        let target = Ty::var(format!("a{}", n - 1));
        let t = time_us(runs, || {
            eqs.check_acyclic().unwrap();
            expand_ty(&target, &eqs).unwrap();
        });
        println!("{:>12} {n:>8} {t:>12.1}", "expand");
        rec.push("dependency_analysis", "expand", n, vec![("us", t)]);
    }
    for n in if quick { &[4usize][..] } else { &[4usize, 16, 64][..] } {
        let unit = alias_chain_unit(*n);
        let t = time_us(runs, || {
            type_of(&unit, Level::Equations).unwrap();
        });
        println!("{:>12} {n:>8} {t:>12.1}", "unite_check");
        rec.push("dependency_analysis", "unite_check", n, vec![("us", t)]);
    }

    header("dynlink (Fig. 7 / §3.4): per-load cost of checked loading");
    println!("{:>10} {:>16} {:>16}", "archive", "load+check µs", "load+run µs");
    for count in if quick { &[1usize, 8][..] } else { &[1usize, 8, 64][..] } {
        let mut archive = Archive::new();
        for i in 0..*count {
            archive.publish(format!("p{i}"), plugin_source(i));
        }
        let expected = plugin_signature();
        let t_load = time_us(runs, || {
            archive.load("p0", &expected, CheckOptions::typed(Level::Constructed)).unwrap();
        });
        let run_engine = session();
        let t_run = time_us(runs, || {
            let unit = archive
                .load("p0", &expected, CheckOptions::typed(Level::Constructed))
                .unwrap();
            let expr = units::Expr::app(
                units::Expr::invoke(units_kernel::InvokeExpr {
                    target: unit,
                    ty_links: vec![],
                    val_links: vec![(
                        "log".into(),
                        units::parse_expr("(lambda (s) void)").unwrap(),
                    )],
                }),
                vec![units::Expr::int(1)],
            );
            run_engine.load_expr(expr).and_then(|p| p.run()).unwrap();
        });
        println!("{count:>10} {t_load:>16.1} {t_run:>16.1}");
        rec.push(
            "dynlink",
            "archive",
            count,
            vec![("load_check_us", t_load), ("load_run_us", t_run)],
        );
    }

    header("parallel_scaling (B.9): threads vs. batch load / concurrent invoke");
    println!(
        "{:>17} {:>8} {:>14} {:>8}  (host parallelism: {})",
        "series",
        "threads",
        "µs",
        "speedup",
        host_parallelism()
    );
    // Batch load: a fresh engine per repetition pays the full cold
    // parse→check→resolve pipeline for every distinct source, spread
    // over the worker pool. Sources are distinct (different depths), so
    // nothing is answered from cache — this measures pipeline
    // parallelism, not cache throughput.
    let batch_sources: Vec<String> = (0..if quick { 6 } else { 16 })
        .map(|i| units::pretty_expr(&even_odd_program(60 + i)))
        .collect();
    let batch_refs: Vec<&str> = batch_sources.iter().map(String::as_str).collect();
    let mut batch_base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let t = time_us(runs, || {
            let engine = Engine::builder()
                .strictness(Strictness::MzScheme)
                .threads(threads)
                .build();
            for loaded in engine.load_batch(&batch_refs) {
                loaded.unwrap();
            }
        });
        if threads == 1 {
            batch_base = t;
        }
        let speedup = batch_base / t;
        println!("{:>17} {threads:>8} {t:>14.1} {speedup:>7.2}x", "batch_load");
        rec.push(
            "parallel_scaling",
            "batch_load",
            threads,
            vec![("us", t), ("speedup", speedup)],
        );
    }
    // Concurrent invoke: one shared engine, one cached artifact, a fixed
    // total of invocations split across t threads. Invocation is
    // read-only against the shared artifact, so this measures how much
    // the engine's interior locking costs under contention.
    let invoke_src = units::pretty_expr(&even_odd_program(100));
    let invoke_total = if quick { 32usize } else { 128 };
    let shared = session();
    let warm = shared.load(&invoke_src).unwrap();
    warm.run_on(Backend::Bytecode).unwrap(); // pay the one-time lowering
    let mut invoke_base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let per_thread = invoke_total / threads;
        let t = time_us(runs, || {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let loaded = shared.load(&invoke_src).unwrap();
                        for _ in 0..per_thread {
                            loaded.run_on(Backend::Bytecode).unwrap();
                        }
                    });
                }
            });
        });
        if threads == 1 {
            invoke_base = t;
        }
        let speedup = invoke_base / t;
        println!("{:>17} {threads:>8} {t:>14.1} {speedup:>7.2}x", "concurrent_invoke");
        rec.push(
            "parallel_scaling",
            "concurrent_invoke",
            threads,
            vec![("us", t), ("speedup", speedup)],
        );
    }

    header("unit_service (B.10): in-process Service requests/sec");
    // The service path adds tenancy bookkeeping, admission control, and
    // per-argument term composition on top of a bare `run_on`; this
    // series prices that stack and how it holds up under tenant
    // concurrency. In-process on purpose: the socket would only add
    // constant framing cost, and B.10 tracks the service core.
    println!(
        "{:>12} {:>8} {:>12} {:>10} {:>10}",
        "series", "tenants", "req/s", "p50 µs", "p99 µs"
    );
    let request_total = if quick { 64usize } else { 512 };
    for tenants in [1usize, 2, 4] {
        let service = units_serve::Service::builder()
            .level(Level::Untyped)
            .caps(units::Limits::none().fuel(1_000_000))
            .build();
        let square = "(unit (import) (export) (init (lambda (n) (* n n))))";
        for t in 0..tenants {
            let tenant = service.tenant(&format!("tenant-{t}"));
            tenant.load_plugin("f", square, None).unwrap();
            tenant.invoke("f", Some(1)).unwrap(); // warm the caches
        }
        let per_tenant = request_total / tenants;
        let start = Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..tenants)
                .map(|t| {
                    let tenant = service.tenant(&format!("tenant-{t}"));
                    scope.spawn(move || {
                        let mut micros = Vec::with_capacity(per_tenant);
                        for i in 0..per_tenant {
                            let arg = (i % 50) as i64;
                            let begin = Instant::now();
                            let outcome = tenant.invoke("f", Some(arg)).unwrap();
                            micros.push(begin.elapsed().as_micros() as u64);
                            assert_eq!(
                                outcome.value,
                                units::Observation::Int(arg * arg),
                                "tenant-{t} request {i}"
                            );
                        }
                        micros
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let wall = start.elapsed().as_secs_f64();
        latencies.sort_unstable();
        let total = latencies.len();
        let req_per_s = total as f64 / wall;
        let p50 = latencies[total / 2] as f64;
        let p99 = latencies[(total * 99 / 100).min(total - 1)] as f64;
        println!("{:>12} {tenants:>8} {req_per_s:>12.0} {p50:>10.1} {p99:>10.1}", "throughput");
        rec.push(
            "unit_service",
            "throughput",
            tenants,
            vec![("req_per_s", req_per_s), ("p50_us", p50), ("p99_us", p99)],
        );
    }

    if json {
        let doc = rec.to_json(quick);
        units_trace::json::validate(&doc)
            .unwrap_or_else(|e| panic!("BENCH_trace.json would be invalid at {e:?}"));
        std::fs::write("BENCH_trace.json", &doc).expect("write BENCH_trace.json");
        println!(
            "\nWrote BENCH_trace.json ({} records, pipeline metrics {}).",
            rec.records.len(),
            if units_trace::COMPILED { "included" } else { "empty — built without trace" }
        );
    }
    if chrome {
        let doc = chrome_trace_export();
        units_trace::json::validate(&doc)
            .unwrap_or_else(|e| panic!("CHROME_trace.json would be invalid at {e:?}"));
        std::fs::write("CHROME_trace.json", &doc).expect("write CHROME_trace.json");
        println!(
            "Wrote CHROME_trace.json ({}).",
            if units_trace::COMPILED {
                "open in chrome://tracing or Perfetto"
            } else {
                "empty — built without trace"
            }
        );
    }
    println!("\nDone. Record these series in EXPERIMENTS.md.");
}
