//! Prints every experiment's series as aligned text tables — the
//! numbers recorded in EXPERIMENTS.md. The per-experiment binaries under
//! `benches/` print the same series one experiment at a time; this binary
//! gives the at-a-glance shape: who wins, by what factor, and how each
//! system scales.
//!
//! Run with: `cargo run --release -p bench --bin tables`
//!
//! Flags:
//!
//! * `--json`  — also write every record (plus, with the `trace`
//!   feature, a pipeline metrics snapshot of the even/odd example) to
//!   `BENCH_trace.json`, self-validated with `units_trace::json`, so the
//!   perf trajectory is machine-readable run over run;
//! * `--quick` — smaller sizes and fewer repetitions (CI smoke mode).

// The Program-based series predate the Engine facade; they keep measuring
// the raw per-run pipeline on purpose (no cache in the way).
#![allow(deprecated)]

use std::time::Instant;

use bench::{
    alias_chain, alias_chain_unit, chain_program, cycle_program, deep_let_program,
    deep_signature, even_odd_program, even_odd_wide_program, one_unit, plugin_signature,
    plugin_source, repeated_invoke, star_program, wide_signature, wide_typed_unit,
};
use units::{
    check_program, expand_ty, subtype, type_of, Archive, Backend, CheckOptions, Engine,
    Equations, Level, Program, Strictness, Ty,
};

/// Median wall time of `runs` executions, in microseconds.
fn time_us(runs: u32, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn header(title: &str) {
    println!("\n== {title} {}", "=".repeat(60usize.saturating_sub(title.len())));
}

/// One measured point: which experiment/series, at what size, and the
/// measured columns (name → microseconds or ratio).
struct Record {
    experiment: &'static str,
    series: String,
    size: String,
    values: Vec<(&'static str, f64)>,
}

/// Collects records for the `--json` summary while the tables print.
#[derive(Default)]
struct Recorder {
    records: Vec<Record>,
}

impl Recorder {
    fn push(
        &mut self,
        experiment: &'static str,
        series: impl Into<String>,
        size: impl ToString,
        values: Vec<(&'static str, f64)>,
    ) {
        self.records.push(Record {
            experiment,
            series: series.into(),
            size: size.to_string(),
            values,
        });
    }

    /// The whole run as one JSON document. Floats are rendered with
    /// three decimals (µs resolution is noise beyond that).
    fn to_json(&self, quick: bool) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"bench\":\"tables\",\"quick\":{quick},\"trace_compiled\":{},",
            units_trace::COMPILED
        ));
        out.push_str("\"records\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"experiment\":{},\"series\":{},\"size\":{}",
                units_trace::json::escape(r.experiment),
                units_trace::json::escape(&r.series),
                units_trace::json::escape(&r.size)
            ));
            for (name, value) in &r.values {
                out.push_str(&format!(",{}:{value:.3}", units_trace::json::escape(name)));
            }
            out.push('}');
        }
        out.push_str("],");
        out.push_str(&format!("\"pipeline_metrics\":{}", pipeline_metrics_json()));
        out.push('}');
        out
    }
}

/// With the `trace` feature: run the even/odd example once on each
/// backend under a metrics session and return the counters/durations
/// snapshot. Without it: an empty object (the hooks are no-ops).
fn pipeline_metrics_json() -> String {
    let metrics = std::sync::Arc::new(units_trace::Metrics::new());
    units_trace::install(
        std::rc::Rc::new(std::cell::RefCell::new(units_trace::NullSink)),
        std::sync::Arc::clone(&metrics),
    );
    let p = Program::from_expr(even_odd_program(100)).with_strictness(Strictness::MzScheme);
    p.run_unchecked(Backend::Compiled).unwrap();
    p.run_unchecked(Backend::Reducer).unwrap();
    units_trace::uninstall();
    metrics.to_json()
}

fn main() {
    let mut json = false;
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag {other:?}; usage: tables [--json] [--quick]");
                std::process::exit(2);
            }
        }
    }
    let mut rec = Recorder::default();
    let runs = if quick { 3 } else { 9 };

    header("link_reduction (Figs. 8/11): linking time vs. graph size");
    println!("{:>6} {:>8} {:>14} {:>14} {:>8}", "shape", "units", "compiled µs", "reducer µs", "ratio");
    for (shape, make) in [
        ("chain", chain_program as fn(usize) -> units::Expr),
        ("star", star_program as fn(usize) -> units::Expr),
        ("cycle", cycle_program as fn(usize) -> units::Expr),
    ] {
        for n in if quick { &[2usize, 4][..] } else { &[2usize, 4, 8, 16][..] } {
            let p = Program::from_expr(make(*n)).with_strictness(Strictness::MzScheme);
            let c = time_us(runs, || {
                p.run_unchecked(Backend::Compiled).unwrap();
            });
            let r = time_us(runs, || {
                p.run_unchecked(Backend::Reducer).unwrap();
            });
            println!("{shape:>6} {n:>8} {c:>14.1} {r:>14.1} {:>8.1}", r / c);
            rec.push(
                "link_reduction",
                shape,
                n,
                vec![("compiled_us", c), ("reducer_us", r), ("ratio", r / c)],
            );
        }
    }

    header("invoke_backends (§4.1.6): compiled vs. substitution");
    println!("{:>8} {:>14} {:>14} {:>8}", "depth", "compiled µs", "reducer µs", "ratio");
    for depth in if quick { &[25i64, 100][..] } else { &[25i64, 100, 400, 1600][..] } {
        let p = Program::from_expr(even_odd_program(*depth)).with_strictness(Strictness::MzScheme);
        let c = time_us(runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        let r = time_us(runs, || {
            p.run_unchecked(Backend::Reducer).unwrap();
        });
        println!("{depth:>8} {c:>14.1} {r:>14.1} {:>8.1}", r / c);
        rec.push(
            "invoke_backends",
            "even_odd",
            depth,
            vec![("compiled_us", c), ("reducer_us", r), ("ratio", r / c)],
        );
    }

    header("resolution: slot-resolved vs. by-name variable lookup");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>8}",
        "series", "size", "resolved µs", "by-name µs", "speedup"
    );
    // Minimum over many runs: the A/B delta on even/odd is a few percent
    // of a ~100 µs run, well under median-of-9 scheduling noise.
    let ab_runs = if quick { 10 } else { 60 };
    for depth in if quick { &[25i64, 100][..] } else { &[25i64, 100, 400, 1600][..] } {
        let p = Program::from_expr(even_odd_program(*depth)).with_strictness(Strictness::MzScheme);
        let off = p.clone().with_resolution(false);
        let on_us = bench::harness::min_us(ab_runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        let off_us = bench::harness::min_us(ab_runs, || {
            off.run_unchecked(Backend::Compiled).unwrap();
        });
        println!("{:>10} {depth:>8} {on_us:>14.1} {off_us:>14.1} {:>7.2}x", "even_odd", off_us / on_us);
        rec.push(
            "resolution",
            "even_odd",
            depth,
            vec![("resolved_us", on_us), ("by_name_us", off_us), ("speedup", off_us / on_us)],
        );
    }
    // The same trampoline inside units that carry extra definitions — the
    // production shape whose frame scans the resolver eliminates.
    for extra in if quick { &[4usize][..] } else { &[4usize, 16, 64][..] } {
        let p = Program::from_expr(even_odd_wide_program(400, *extra))
            .with_strictness(Strictness::MzScheme);
        let off = p.clone().with_resolution(false);
        let on_us = bench::harness::min_us(ab_runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        let off_us = bench::harness::min_us(ab_runs, || {
            off.run_unchecked(Backend::Compiled).unwrap();
        });
        println!(
            "{:>10} {:>8} {on_us:>14.1} {off_us:>14.1} {:>7.2}x",
            "even_odd_w",
            format!("400+{extra}"),
            off_us / on_us
        );
        rec.push(
            "resolution",
            "even_odd_wide",
            format!("400+{extra}"),
            vec![("resolved_us", on_us), ("by_name_us", off_us), ("speedup", off_us / on_us)],
        );
    }
    for (d, w) in if quick {
        &[(64usize, 8usize)][..]
    } else {
        &[(64usize, 8usize), (128, 8), (256, 8), (256, 16)][..]
    } {
        let p = Program::from_expr(deep_let_program(*d, *w)).with_strictness(Strictness::MzScheme);
        let off = p.clone().with_resolution(false);
        let on_us = bench::harness::min_us(ab_runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        let off_us = bench::harness::min_us(ab_runs, || {
            off.run_unchecked(Backend::Compiled).unwrap();
        });
        println!(
            "{:>10} {:>8} {on_us:>14.1} {off_us:>14.1} {:>7.2}x",
            "deep_let",
            format!("{d}x{w}"),
            off_us / on_us
        );
        rec.push(
            "resolution",
            "deep_let",
            format!("{d}x{w}"),
            vec![("resolved_us", on_us), ("by_name_us", off_us), ("speedup", off_us / on_us)],
        );
    }

    header("instantiation (§4.1.6): per-instance cost stays flat");
    println!("{:>10} {:>14} {:>16}", "instances", "total µs", "per-instance µs");
    for count in if quick { &[1usize, 10][..] } else { &[1usize, 10, 100, 1000][..] } {
        let p = Program::from_expr(repeated_invoke(one_unit(), *count))
            .with_strictness(Strictness::MzScheme);
        let t = time_us(runs, || {
            p.run_unchecked(Backend::Compiled).unwrap();
        });
        println!("{count:>10} {t:>14.1} {:>16.3}", t / *count as f64);
        rec.push(
            "instantiation",
            "repeated_invoke",
            count,
            vec![("total_us", t), ("per_instance_us", t / *count as f64)],
        );
    }

    header("repeat_invoke (engine): cold pipeline vs. warm artifact cache");
    println!("{:>8} {:>14} {:>14} {:>8}", "depth", "cold µs", "warm µs", "speedup");
    for depth in if quick { &[25i64, 100][..] } else { &[25i64, 100, 400][..] } {
        let src = units::pretty_expr(&even_odd_program(*depth));
        // Cold: a fresh engine per run pays parse + Fig. 10 checks +
        // resolution every time.
        let cold = time_us(runs, || {
            let engine = Engine::builder().strictness(Strictness::MzScheme).build();
            engine.invoke(&src).unwrap();
        });
        // Warm: one session; repeated invokes hit the artifact cache and
        // only pay evaluation.
        let engine = Engine::builder().strictness(Strictness::MzScheme).build();
        engine.invoke(&src).unwrap();
        let warm = time_us(runs, || {
            engine.invoke(&src).unwrap();
        });
        println!("{depth:>8} {cold:>14.1} {warm:>14.1} {:>7.2}x", cold / warm);
        rec.push(
            "repeat_invoke",
            "even_odd",
            depth,
            vec![("cold_us", cold), ("warm_us", warm), ("speedup", cold / warm)],
        );
    }

    header("typecheck (Fig. 15): cost vs. interface width / graph size");
    println!("{:>14} {:>8} {:>12}", "series", "size", "µs");
    for width in if quick { &[4usize, 16][..] } else { &[4usize, 16, 64, 256][..] } {
        let unit = wide_typed_unit(*width);
        let t = time_us(runs, || {
            type_of(&unit, Level::Constructed).unwrap();
        });
        println!("{:>14} {width:>8} {t:>12.1}", "unit_width");
        rec.push("typecheck", "unit_width", width, vec![("us", t)]);
    }
    for n in if quick { &[4usize, 16][..] } else { &[4usize, 16, 64][..] } {
        let program = chain_program(*n);
        let t = time_us(runs, || {
            check_program(
                &program,
                CheckOptions { level: Level::Untyped, strictness: Strictness::MzScheme },
            )
            .unwrap();
        });
        println!("{:>14} {n:>8} {t:>12.1}", "context_chain");
        rec.push("typecheck", "context_chain", n, vec![("us", t)]);
    }

    header("ablation: valuability analysis / merge α-renaming");
    println!("{:>22} {:>8} {:>12}", "series", "size", "µs");
    for n in if quick { &[16usize][..] } else { &[16usize, 64][..] } {
        let program = chain_program(*n);
        for (label, strictness) in
            [("paper", Strictness::Paper), ("mzscheme", Strictness::MzScheme)]
        {
            let t = time_us(runs, || {
                check_program(&program, CheckOptions { level: Level::Untyped, strictness })
                    .unwrap();
            });
            println!("{:>22} {n:>8} {t:>12.1}", format!("valuability/{label}"));
            rec.push(
                "ablation",
                format!("valuability/{label}"),
                n,
                vec![("us", t)],
            );
        }
    }
    for n in if quick { &[4usize, 8][..] } else { &[4usize, 8, 16][..] } {
        for (label, make) in [
            ("merge/disjoint", chain_program as fn(usize) -> units::Expr),
            ("merge/colliding", bench::colliding_chain_program as fn(usize) -> units::Expr),
        ] {
            let p = Program::from_expr(make(*n)).with_strictness(Strictness::MzScheme);
            let t = time_us(runs, || {
                p.run_unchecked(Backend::Reducer).unwrap();
            });
            println!("{:>22} {n:>8} {t:>12.1}", label);
            rec.push("ablation", label, n, vec![("us", t)]);
        }
    }

    header("subtyping (Figs. 14/17): wide and deep signatures");
    println!("{:>8} {:>8} {:>12}", "series", "size", "µs");
    for width in if quick { &[4usize, 16][..] } else { &[4usize, 16, 64, 256][..] } {
        let specific = Ty::sig(wide_signature(*width, 8));
        let general = Ty::sig(wide_signature(*width, 0));
        let t = time_us(runs, || {
            subtype(&Equations::new(), &specific, &general).unwrap();
        });
        println!("{:>8} {width:>8} {t:>12.1}", "width");
        rec.push("subtyping", "width", width, vec![("us", t)]);
    }
    for depth in if quick { &[2usize, 4][..] } else { &[2usize, 4, 8, 16][..] } {
        let ty = deep_signature(*depth);
        let t = time_us(runs, || {
            subtype(&Equations::new(), &ty, &ty).unwrap();
        });
        println!("{:>8} {depth:>8} {t:>12.1}", "depth");
        rec.push("subtyping", "depth", depth, vec![("us", t)]);
    }

    header("dependency_analysis (Figs. 18/19): expansion & UNITe checking");
    println!("{:>12} {:>8} {:>12}", "series", "chain", "µs");
    for n in if quick { &[4usize, 16][..] } else { &[4usize, 16, 64, 256][..] } {
        let eqs = alias_chain(*n);
        let target = Ty::var(format!("a{}", n - 1));
        let t = time_us(runs, || {
            eqs.check_acyclic().unwrap();
            expand_ty(&target, &eqs).unwrap();
        });
        println!("{:>12} {n:>8} {t:>12.1}", "expand");
        rec.push("dependency_analysis", "expand", n, vec![("us", t)]);
    }
    for n in if quick { &[4usize][..] } else { &[4usize, 16, 64][..] } {
        let unit = alias_chain_unit(*n);
        let t = time_us(runs, || {
            type_of(&unit, Level::Equations).unwrap();
        });
        println!("{:>12} {n:>8} {t:>12.1}", "unite_check");
        rec.push("dependency_analysis", "unite_check", n, vec![("us", t)]);
    }

    header("dynlink (Fig. 7 / §3.4): per-load cost of checked loading");
    println!("{:>10} {:>16} {:>16}", "archive", "load+check µs", "load+run µs");
    for count in if quick { &[1usize, 8][..] } else { &[1usize, 8, 64][..] } {
        let mut archive = Archive::new();
        for i in 0..*count {
            archive.publish(format!("p{i}"), plugin_source(i));
        }
        let expected = plugin_signature();
        let t_load = time_us(runs, || {
            archive.load("p0", &expected, CheckOptions::typed(Level::Constructed)).unwrap();
        });
        let t_run = time_us(runs, || {
            let unit = archive
                .load("p0", &expected, CheckOptions::typed(Level::Constructed))
                .unwrap();
            let program = Program::from_expr(units::Expr::app(
                units::Expr::invoke(units_kernel::InvokeExpr {
                    target: unit,
                    ty_links: vec![],
                    val_links: vec![(
                        "log".into(),
                        units::parse_expr("(lambda (s) void)").unwrap(),
                    )],
                }),
                vec![units::Expr::int(1)],
            ))
            .with_strictness(Strictness::MzScheme);
            program.run_unchecked(Backend::Compiled).unwrap();
        });
        println!("{count:>10} {t_load:>16.1} {t_run:>16.1}");
        rec.push(
            "dynlink",
            "archive",
            count,
            vec![("load_check_us", t_load), ("load_run_us", t_run)],
        );
    }

    if json {
        let doc = rec.to_json(quick);
        units_trace::json::validate(&doc)
            .unwrap_or_else(|e| panic!("BENCH_trace.json would be invalid at {e:?}"));
        std::fs::write("BENCH_trace.json", &doc).expect("write BENCH_trace.json");
        println!(
            "\nWrote BENCH_trace.json ({} records, pipeline metrics {}).",
            rec.records.len(),
            if units_trace::COMPILED { "included" } else { "empty — built without trace" }
        );
    }
    println!("\nDone. Record these series in EXPERIMENTS.md.");
}
