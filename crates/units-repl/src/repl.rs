//! The interactive read-eval-print loop.
//!
//! Multi-line friendly: input accumulates until its parentheses balance,
//! with a continuation prompt, and the buffer is dropped (with a fresh
//! prompt and an explicit flush) after both parse and runtime errors —
//! an error can never leave half an expression silently queued.
//!
//! Observability commands (`:trace`, `:stats`, `:profile`) are live when
//! the binary is built with `--features trace`; otherwise they explain
//! how to get them.

use std::cell::RefCell;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::Arc;

use units::trace::{Event, Metrics, TraceSink};
use units::{Backend, Engine, Loaded};

use crate::Options;

/// How events reach the user while the loop runs.
#[derive(Clone, Copy, PartialEq)]
enum TraceMode {
    Off,
    /// Each event printed as readable text.
    On,
    /// Each event printed as one JSON line.
    Json,
}

/// Prints events as `;; trace:`-prefixed text.
struct PrintSink;

impl TraceSink for PrintSink {
    fn event(&mut self, event: &Event) {
        println!(";; trace: {event}");
    }
}

/// Prints events as JSON lines.
struct JsonSink;

impl TraceSink for JsonSink {
    fn event(&mut self, event: &Event) {
        println!("{}", event.to_json());
    }
}

struct Repl {
    /// The session: artifacts loaded at the prompt stay cached, so
    /// re-evaluating a line skips checking and resolution.
    engine: Engine,
    /// Which evaluator `:backend` has selected for this session.
    backend: Backend,
    mode: TraceMode,
    /// Metrics accumulated across the session (what `:stats` prints).
    metrics: Arc<Metrics>,
    /// Flight-recorder dumps already announced, so `evaluate` mentions
    /// each new post-mortem exactly once.
    flight_seen: u64,
}

const HELP: &str = ";; commands:
;;   :help                 this message
;;   :quit                 leave the repl (also Ctrl-D)
;;   :backend compiled|reducer|bytecode
;;                         switch the evaluator (no argument: show current)
;;   :disasm [--profile] <program>
;;                         lower <program> to flat bytecode and print the
;;                         chunk — opcodes, operands, const-pool refs;
;;                         --profile runs it first and annotates each op
;;                         with its execution count (needs --features trace)
;;   :trace on|off|json    stream events per evaluation (text or JSON lines)
;;   :stats                print accumulated counters and phase timings
;;   :metrics [reset]      print (or zero) the engine's always-on metrics
;;                         plane: cache, pool, recovery, fuel, latency p50/p99
;;   :flight               print the last flight-recorder dump, if any
;;   :profile <expr>       run <expr> on all three backends; report per-phase
;;                         durations and the Fig. 11 step count
;;   :faults <seed> [rate‰] [panic]
;;                         arm a deterministic fault-injection plane
;;   :faults off           disarm it and report what fired
;; anything else is evaluated as a program (multi-line until parens balance)";

/// Runs the interactive loop. Returns failure only when standard input
/// cannot be read at all.
pub fn run(opts: &Options) -> ExitCode {
    let mut repl = Repl {
        engine: crate::engine_for(opts),
        backend: opts.backend,
        mode: TraceMode::Off,
        metrics: Arc::new(Metrics::new()),
        flight_seen: 0,
    };
    println!(";; units repl — :help for commands");
    if !units::trace::COMPILED {
        println!(";; (tracing not compiled in; rebuild with --features trace)");
    }
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let mut buffer = String::new();
    loop {
        prompt(if buffer.is_empty() { "units> " } else { "  ...> " });
        let line = match lines.next() {
            Some(Ok(line)) => line,
            Some(Err(e)) => {
                eprintln!("error: cannot read standard input: {e}");
                return ExitCode::FAILURE;
            }
            None => {
                println!();
                return ExitCode::SUCCESS;
            }
        };
        if buffer.is_empty() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(command) = trimmed.strip_prefix(':') {
                if !repl.command(command) {
                    return ExitCode::SUCCESS;
                }
                continue;
            }
        }
        buffer.push_str(&line);
        buffer.push('\n');
        match paren_balance(&buffer) {
            Ok(n) if n > 0 => continue, // still open — keep reading
            Ok(_) => {}
            Err(()) => {} // too many closers: let the parser report it
        }
        let source = std::mem::take(&mut buffer);
        repl.evaluate(&source);
        // An evaluation (or its error report) must never swallow the next
        // prompt: push everything out before reading again.
        flush_all();
    }
}

fn prompt(text: &str) {
    print!("{text}");
    flush_all();
}

fn flush_all() {
    let _ = std::io::stdout().flush();
    let _ = std::io::stderr().flush();
}

/// Net open parentheses, ignoring string literals and `;` comments.
/// `Err(())` means more closers than openers (unbalanced beyond repair).
fn paren_balance(src: &str) -> Result<i64, ()> {
    let mut depth = 0i64;
    let mut chars = src.chars();
    while let Some(c) = chars.next() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth < 0 {
                    return Err(());
                }
            }
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '"' => {
                let mut escaped = false;
                for c in chars.by_ref() {
                    match c {
                        _ if escaped => escaped = false,
                        '\\' => escaped = true,
                        '"' => break,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    Ok(depth)
}

impl Repl {
    /// Handles a `:command`; returns `false` to quit.
    fn command(&mut self, command: &str) -> bool {
        let mut words = command.split_whitespace();
        match words.next() {
            Some("help") | Some("h") => println!("{HELP}"),
            Some("quit") | Some("q") | Some("exit") => return false,
            Some("trace") => self.set_trace(words.next()),
            Some("backend") => self.set_backend(words.next()),
            Some("disasm") => {
                let rest = command.strip_prefix("disasm").unwrap_or("").trim();
                if let Some(source) = rest.strip_prefix("--profile") {
                    let source = source.trim();
                    if source.is_empty() {
                        println!(";; usage: :disasm --profile <program>");
                    } else {
                        self.disasm_profiled(source);
                    }
                } else if rest.is_empty() {
                    println!(";; usage: :disasm [--profile] <program>");
                } else {
                    self.disasm(rest);
                }
            }
            Some("stats") => self.stats(),
            Some("metrics") => self.metrics_plane(words.next()),
            Some("flight") => self.flight(),
            Some("faults") => self.faults(&words.collect::<Vec<_>>()),
            Some("profile") => {
                let rest = command.strip_prefix("profile").unwrap_or("").trim();
                if rest.is_empty() {
                    println!(";; usage: :profile <expr>");
                } else {
                    self.profile(rest);
                }
            }
            Some(other) => println!(";; unknown command :{other} — :help lists commands"),
            None => println!("{HELP}"),
        }
        true
    }

    fn set_trace(&mut self, arg: Option<&str>) {
        if !units::trace::COMPILED {
            println!(";; tracing not compiled in; rebuild with --features trace");
            return;
        }
        match arg {
            Some("on") => self.mode = TraceMode::On,
            Some("off") => self.mode = TraceMode::Off,
            Some("json") => self.mode = TraceMode::Json,
            other => {
                println!(
                    ";; usage: :trace on|off|json (got {})",
                    other.unwrap_or("nothing")
                );
                return;
            }
        }
        println!(
            ";; trace {}",
            match self.mode {
                TraceMode::Off => "off",
                TraceMode::On => "on",
                TraceMode::Json => "json",
            }
        );
    }

    /// Switches the evaluator every later line runs on (the engine's
    /// artifact cache is shared across backends, so switching costs no
    /// re-checking). With no argument, reports the current selection.
    fn set_backend(&mut self, arg: Option<&str>) {
        match arg {
            Some("compiled") => self.backend = Backend::Compiled,
            Some("reducer") => self.backend = Backend::Reducer,
            Some("bytecode") | Some("vm") => self.backend = Backend::Bytecode,
            None => {}
            Some(other) => {
                println!(";; usage: :backend compiled|reducer|bytecode (got {other:?})");
                return;
            }
        }
        println!(
            ";; backend: {}",
            match self.backend {
                Backend::Compiled => "compiled (cells tree-walker, §4.1.6)",
                Backend::Reducer => "reducer (Fig. 11 reference)",
                Backend::Bytecode => "bytecode (flat-chunk dispatch loop)",
            }
        );
    }

    /// Lowers a program to flat bytecode and prints the chunk listing —
    /// the repl's view of what the `bytecode` backend actually runs.
    fn disasm(&self, source: &str) {
        match self.load(source) {
            Ok(loaded) => println!("{}", loaded.disassemble()),
            Err(e) => eprintln!("{e}"),
        }
    }

    /// Runs `source` on the bytecode backend, then prints the chunk with
    /// each op annotated by its execution count, plus a hottest-ops
    /// table. Without `--features trace` the counters do not exist, so
    /// the plain listing is shown with an explanation.
    fn disasm_profiled(&self, source: &str) {
        let loaded = match self.load(source) {
            Ok(loaded) => loaded,
            Err(e) => {
                eprintln!("{e}");
                return;
            }
        };
        if !units::trace::COMPILED {
            println!(
                ";; per-op counters need a build with --features trace; plain listing:"
            );
            println!("{}", loaded.disassemble());
            return;
        }
        loaded.profile_reset();
        match loaded.run_on(Backend::Bytecode) {
            Ok(outcome) => println!(";; ran on bytecode backend: {}", outcome.value),
            Err(e) => println!(";; bytecode run failed ({e}); counts cover the partial run"),
        }
        println!("{}", loaded.disassemble_profiled());
        let profile = loaded.chunk_profile();
        let hottest = profile.hottest(8);
        if !hottest.is_empty() {
            println!(";; hottest ops:");
            for (name, count) in hottest {
                println!(";;   {name:<12} {count:>9}×");
            }
            println!(
                ";; total: {} ops executed, {} fuel attributed",
                profile.total_executed, profile.fuel_attributed
            );
        }
    }

    /// Prints (or with `reset` zeroes) the engine's always-on metrics
    /// plane. Unlike `:stats`, this works in every build.
    fn metrics_plane(&self, arg: Option<&str>) {
        match arg {
            Some("reset") => {
                self.engine.metrics_reset();
                println!(";; engine metrics reset");
                return;
            }
            Some(other) => {
                println!(";; usage: :metrics [reset] (got {other:?})");
                return;
            }
            None => {}
        }
        let snap = self.engine.metrics_snapshot();
        println!(
            ";; cache:    {} source hits, {} term hits, {} misses, {} evictions, {} artifacts",
            snap.cache.source_hits,
            snap.cache.term_hits,
            snap.cache.misses,
            snap.cache.evictions,
            snap.cache.entries
        );
        println!(
            ";; pool:     {} batches, {} jobs, peak {} workers",
            snap.pool.batches, snap.pool.jobs, snap.pool.peak_workers
        );
        println!(
            ";; recovery: {} fuel retries, {} reference fallbacks, {} recovered, {} flight dumps",
            snap.recovery.fuel_retries,
            snap.recovery.reference_fallbacks,
            snap.recovery.recovered_runs,
            snap.recovery.flight_dumps
        );
        println!(
            ";; runs:     {} total, {} failures, fuel {} total / {} max, {} store cells peak",
            snap.runs.total,
            snap.runs.failures,
            snap.runs.fuel_total,
            snap.runs.fuel_max,
            snap.runs.store_cells_peak
        );
        let lat = snap.invoke_latency;
        if lat.count == 0 {
            println!(";; latency:  no runs timed yet");
        } else {
            println!(
                ";; latency:  {} runs, min {} / mean {} / p50 {} / p99 {} / max {}",
                lat.count,
                format_ns(lat.min_ns),
                format_ns(lat.mean_ns),
                format_ns(lat.p50_ns),
                format_ns(lat.p99_ns),
                format_ns(lat.max_ns)
            );
        }
    }

    /// Prints the most recent flight-recorder post-mortem, one JSON
    /// line per recorded event.
    fn flight(&self) {
        match self.engine.last_flight_dump() {
            Some(dump) => {
                println!(
                    ";; flight dump — {} ({} of {} events kept, {} dropped):",
                    dump.reason, dump.events, dump.recorded, dump.dropped
                );
                for line in dump.json_lines.lines() {
                    println!("{line}");
                }
            }
            None => {
                if units::trace::COMPILED {
                    println!(";; no flight-recorder dump (no fault has tripped yet)");
                } else {
                    println!(";; flight recorder needs a build with --features trace");
                }
            }
        }
    }

    /// Arms, disarms, or reports the fault-injection plane on the repl
    /// thread. Injected failures surface like any other error — the
    /// loop survives them (panics included: the engine's unwind
    /// boundary turns those into typed internal errors).
    fn faults(&self, args: &[&str]) {
        use units::trace::faults;
        if !faults::COMPILED {
            println!(";; fault injection not compiled in; rebuild with --features faults");
            return;
        }
        match args {
            [] => {
                if faults::active() {
                    println!(";; fault plane armed — :faults off to disarm");
                } else {
                    println!(";; no fault plane armed — :faults <seed> [rate‰] [panic]");
                }
            }
            ["off"] => match faults::disarm() {
                Some(plane) => {
                    println!(
                        ";; fault plane disarmed: {} trips observed, {} fault(s) fired",
                        plane.trips(),
                        plane.fired().len()
                    );
                    for fired in plane.fired() {
                        println!(";;   fired at {} (hit {})", fired.site, fired.hit);
                    }
                }
                None => println!(";; no fault plane armed"),
            },
            [seed, options @ ..] => {
                let Ok(seed) = seed.parse::<u64>() else {
                    println!(";; usage: :faults off | :faults <seed> [rate‰] [panic]");
                    return;
                };
                let mut plane = faults::FaultPlane::seeded(seed);
                for word in options {
                    if let Ok(rate) = word.parse::<u32>() {
                        plane = plane.rate_per_mille(rate);
                    } else if *word == "panic" {
                        plane = plane.kind(faults::FaultKind::Panic);
                    } else {
                        println!(";; usage: :faults off | :faults <seed> [rate‰] [panic]");
                        return;
                    }
                }
                faults::install_quiet_hook();
                faults::arm(plane);
                println!(";; fault plane armed: seed {seed}");
            }
        }
    }

    /// Installs the session for the current trace mode (events to the
    /// chosen sink, metrics into the accumulated registry).
    fn install(&self) {
        let sink: Rc<RefCell<dyn TraceSink>> = match self.mode {
            TraceMode::Off => Rc::new(RefCell::new(units::trace::NullSink)),
            TraceMode::On => Rc::new(RefCell::new(PrintSink)),
            TraceMode::Json => Rc::new(RefCell::new(JsonSink)),
        };
        units::trace::install(sink, Arc::clone(&self.metrics));
    }

    fn load(&self, source: &str) -> Result<Loaded, units::Error> {
        self.engine.load(source)
    }

    fn evaluate(&mut self, source: &str) {
        // Install before loading so the parse and check phases are
        // traced too (a cache hit skips both).
        self.install();
        let result = self.load(source).and_then(|p| p.run_on(self.backend));
        units::trace::uninstall();
        match result {
            Ok(outcome) => {
                for line in &outcome.output {
                    println!("{line}");
                }
                println!("{}", outcome.value);
            }
            Err(e) => eprintln!("{e}"),
        }
        self.report_recovery();
        self.report_flight();
    }

    /// Announces a fresh flight-recorder post-mortem exactly once, so a
    /// faulting evaluation points at `:flight` without spamming later
    /// prompts.
    fn report_flight(&mut self) {
        let dumps = self.engine.metrics_snapshot().recovery.flight_dumps;
        if dumps > self.flight_seen {
            self.flight_seen = dumps;
            println!(";; flight recorder captured a post-mortem — :flight to inspect");
        }
    }

    /// Prints how the engine coped when a run needed retries or a
    /// backend fallback. Silent under the default report-as-is policy,
    /// so plain sessions print exactly what they always did.
    fn report_recovery(&self) {
        let Some(recovery) = self.engine.last_recovery() else { return };
        if !recovery.fell_back && recovery.retries == 0 {
            return;
        }
        println!(";; recovered from: {}", recovery.failure);
        if recovery.retries > 0 {
            println!(";;   fuel-escalation retries: {}", recovery.retries);
        }
        if recovery.fell_back {
            println!(";;   the reference reducer produced this result");
        }
        if let Some(divergence) = &recovery.divergence {
            for line in divergence.lines() {
                println!(";;   {line}");
            }
        }
    }

    fn stats(&self) {
        if units::trace::COMPILED {
            println!(";; trace feature: compiled in");
        } else {
            println!(";; trace feature: NOT compiled in (rebuild with --features trace)");
        }
        if units::trace::COMPILED {
            let counters = self.metrics.counters();
            if counters.is_empty() {
                println!(";; no counters yet — evaluate something first");
            } else {
                println!(";; counters:");
                for (name, value) in &counters {
                    println!(";;   {name:<28} {value}");
                }
            }
        }
        let cache = self.engine.cache_stats();
        println!(
            ";; engine cache: {} hits, {} misses, {} artifacts",
            cache.hits, cache.misses, cache.entries
        );
        print_durations(&self.metrics);
    }

    /// Runs `source` on all three backends under a fresh metrics registry
    /// and reports per-phase durations plus the Fig. 11 step count.
    fn profile(&mut self, source: &str) {
        if !units::trace::COMPILED {
            println!(";; tracing not compiled in; rebuild with --features trace");
            return;
        }
        let metrics = Arc::new(Metrics::new());
        units::trace::install(
            Rc::new(RefCell::new(units::trace::NullSink)),
            Arc::clone(&metrics),
        );
        let runs = self.load(source).map(|p| {
            (
                p.run_on(Backend::Compiled),
                p.run_on(Backend::Reducer),
                p.run_on(Backend::Bytecode),
            )
        });
        units::trace::uninstall();
        let (compiled, reduced, bytecode) = match runs {
            Ok(triple) => triple,
            Err(e) => {
                eprintln!("{e}");
                return;
            }
        };
        match (&compiled, &reduced, &bytecode) {
            (Ok(a), Ok(b), Ok(c)) if a == b && b == c => {
                println!(";; all three backends: {}", a.value);
            }
            (Ok(a), Ok(b), Ok(c)) => {
                println!(
                    ";; BACKENDS DISAGREE: compiled={} reduced={} bytecode={}",
                    a.value, b.value, c.value
                );
            }
            (Err(e), _, _) => eprintln!("compiled backend: {e}"),
            (_, Err(e), _) => eprintln!("reducer backend: {e}"),
            (_, _, Err(e)) => eprintln!("bytecode backend: {e}"),
        }
        println!(";; Fig. 11 steps: {}", metrics.counter("reduce/steps"));
        println!(";; prim calls: compiled {}, reducer {}",
            metrics.counter("prim/calls"),
            metrics.counter("reduce/prim_calls"));
        print_durations(&metrics);
        // Fold the profile into the session totals so `:stats` sees it.
        for (name, value) in metrics.counters() {
            self.metrics.add(name, value);
        }
    }
}

fn print_durations(metrics: &Metrics) {
    let durations = metrics.durations();
    if durations.is_empty() {
        return;
    }
    println!(";; phase durations:");
    println!(";;   {:<10} {:>6} {:>12} {:>12}", "phase", "count", "total", "mean");
    for (name, stats) in &durations {
        println!(
            ";;   {:<10} {:>6} {:>12} {:>12}",
            name,
            stats.count,
            format_ns(stats.total_ns),
            format_ns(stats.mean_ns())
        );
    }
}

/// Renders nanoseconds with a human unit.
fn format_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{}µs", ns / 1_000),
        10_000_000..=9_999_999_999 => format!("{}ms", ns / 1_000_000),
        _ => format!("{}s", ns / 1_000_000_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paren_balance_tracks_strings_and_comments() {
        assert_eq!(paren_balance("(+ 1 2)"), Ok(0));
        assert_eq!(paren_balance("(define x"), Ok(1));
        assert_eq!(paren_balance("((("), Ok(3));
        assert_eq!(paren_balance("\"(((\""), Ok(0));
        assert_eq!(paren_balance("; (((\n"), Ok(0));
        assert_eq!(paren_balance("(display \"a)b\")"), Ok(0));
        assert_eq!(paren_balance("(f \"esc\\\")\")"), Ok(0));
        assert_eq!(paren_balance(")("), Err(()));
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(5), "5ns");
        assert_eq!(format_ns(25_000), "25µs");
        assert_eq!(format_ns(42_000_000), "42ms");
        assert_eq!(format_ns(12_000_000_000), "12s");
    }
}
