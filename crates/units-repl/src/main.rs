//! `units-repl` — run unit-language programs from the command line.
//!
//! ```text
//! units-repl [OPTIONS] [FILE]
//!   -e, --expr <SRC>       evaluate a source string instead of a file
//!   -i, --interactive      read-eval-print loop (default on a terminal)
//!   -l, --level <d|c|e>    UNITd (default) / UNITc / UNITe
//!   -b, --backend <name>   compiled (default) | reducer | bytecode
//!       --mzscheme         relax the valuability restriction (§4.1.1)
//!       --check-only       parse and check, do not run
//!       --trace <N>        print the first N reduction steps (reducer)
//!       --diagram          print the program's box diagram (Fig. 1 style)
//!       --fuel <N>         bound evaluation to N machine steps
//!       --cache-dir <DIR>  persistent artifact cache shared across runs
//! ```
//!
//! With no file and no `--expr`, reads the program from standard input —
//! or, when standard input is a terminal, starts the interactive loop,
//! which adds the observability commands `:trace on|off|json`, `:stats`,
//! and `:profile <expr>` (live when built with `--features trace`).

use std::io::Read;
use std::process::ExitCode;

use units::{Backend, Engine, Level, Limits, Reducer, Step, Strictness};

mod repl;

struct Options {
    source: Option<String>,
    file: Option<String>,
    interactive: bool,
    level: Level,
    strictness: Strictness,
    backend: Backend,
    check_only: bool,
    diagram: bool,
    trace: Option<usize>,
    fuel: Option<u64>,
    cache_dir: Option<String>,
}

/// One engine per process: the session that checks, caches, and runs.
fn engine_for(opts: &Options) -> Engine {
    let mut builder = Engine::builder()
        .level(opts.level)
        .strictness(opts.strictness)
        .backend(opts.backend);
    if let Some(fuel) = opts.fuel {
        builder = builder.limits(Limits::none().fuel(fuel));
    }
    if let Some(dir) = &opts.cache_dir {
        builder = builder.cache_dir(dir);
    }
    builder.build()
}

fn usage() -> &'static str {
    "usage: units-repl [-e EXPR] [-i] [-l d|c|e] [-b compiled|reducer|bytecode] \
     [--mzscheme] [--check-only] [--diagram] [--trace N] [--fuel N] \
     [--cache-dir DIR] [FILE]"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        source: None,
        file: None,
        interactive: false,
        level: Level::Untyped,
        strictness: Strictness::Paper,
        backend: Backend::Compiled,
        check_only: false,
        diagram: false,
        trace: None,
        fuel: None,
        cache_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--expr" => {
                opts.source = Some(args.next().ok_or("--expr needs an argument")?);
            }
            "-i" | "--interactive" => opts.interactive = true,
            "-l" | "--level" => {
                opts.level = match args.next().as_deref() {
                    Some("d") | Some("untyped") => Level::Untyped,
                    Some("c") | Some("constructed") => Level::Constructed,
                    Some("e") | Some("equations") => Level::Equations,
                    other => return Err(format!("unknown level {other:?}")),
                };
            }
            "-b" | "--backend" => {
                opts.backend = match args.next().as_deref() {
                    Some("compiled") => Backend::Compiled,
                    Some("reducer") => Backend::Reducer,
                    Some("bytecode") | Some("vm") => Backend::Bytecode,
                    other => return Err(format!("unknown backend {other:?}")),
                };
            }
            "--mzscheme" => opts.strictness = Strictness::MzScheme,
            "--check-only" => opts.check_only = true,
            "--diagram" => opts.diagram = true,
            "--trace" => {
                let n = args.next().ok_or("--trace needs a count")?;
                opts.trace = Some(n.parse().map_err(|_| format!("bad count {n:?}"))?);
            }
            "--fuel" => {
                let n = args.next().ok_or("--fuel needs a count")?;
                opts.fuel = Some(n.parse().map_err(|_| format!("bad count {n:?}"))?);
            }
            "--cache-dir" => {
                opts.cache_dir = Some(args.next().ok_or("--cache-dir needs a directory")?);
            }
            "-h" | "--help" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if !other.starts_with('-') => opts.file = Some(other.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let want_repl = opts.interactive
        || (opts.source.is_none() && opts.file.is_none() && {
            use std::io::IsTerminal;
            std::io::stdin().is_terminal()
        });
    if want_repl {
        return repl::run(&opts);
    }

    let source = match (&opts.source, &opts.file) {
        (Some(src), _) => src.clone(),
        (None, Some(path)) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("error: cannot read standard input");
                return ExitCode::FAILURE;
            }
            buf
        }
    };

    let engine = engine_for(&opts);
    let loaded = match engine.load(&source) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(ty) = loaded.ty() {
        println!(";; type: {ty}");
    }
    if opts.diagram {
        // Diagram the program's unit: for `(invoke u)` diagrams u.
        let target = match loaded.expr() {
            units::Expr::Invoke(inv) => inv.target.clone(),
            other => other.clone(),
        };
        println!("{}", units::diagram::render(&target));
    }
    if opts.check_only {
        println!(";; checks passed");
        return ExitCode::SUCCESS;
    }

    if let Some(n) = opts.trace {
        let mut reducer = Reducer::new();
        let mut current = loaded.expr().clone();
        for i in 0..n {
            match reducer.step(&current) {
                Ok(Step::Value) => break,
                Ok(Step::Reduced(next)) => {
                    println!(";; step {:>3}:\n{}", i + 1, units::pretty_expr_indent(&next, 78));
                    current = next;
                }
                Err(e) => {
                    eprintln!("runtime error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    match loaded.run() {
        Ok(outcome) => {
            for line in &outcome.output {
                println!("{line}");
            }
            println!("{}", outcome.value);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
