//! End-to-end tests of the command-line driver.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn repl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_units-repl"))
}

fn run_expr(args: &[&str], expr: &str) -> (String, String, bool) {
    let output = repl()
        .args(args)
        .arg("-e")
        .arg(expr)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn evaluates_an_expression() {
    let (stdout, _, ok) = run_expr(&[], "(invoke (unit (import) (export) (init (* 6 7))))");
    assert!(ok);
    assert_eq!(stdout.trim(), "42");
}

#[test]
fn prints_display_output_before_the_result() {
    let (stdout, _, ok) = run_expr(
        &[],
        "(invoke (unit (import) (export) (init (display \"hello\") 1)))",
    );
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines, vec!["hello", "1"]);
}

#[test]
fn typed_levels_print_the_type() {
    let (stdout, _, ok) =
        run_expr(&["-l", "c"], "(invoke (unit (import) (export) (init 5)))");
    assert!(ok);
    assert!(stdout.contains(";; type: int"), "{stdout}");
}

#[test]
fn check_only_skips_evaluation() {
    let (stdout, _, ok) = run_expr(
        &["--check-only"],
        "(invoke (unit (import) (export) (init ((inst fail void) \"would boom\"))))",
    );
    assert!(ok);
    assert!(stdout.contains("checks passed"));
    assert!(!stdout.contains("boom"));
}

#[test]
fn check_errors_fail_with_a_message() {
    let (_, stderr, ok) = run_expr(&[], "(+ nope 1)");
    assert!(!ok);
    assert!(stderr.contains("unbound variable `nope`"), "{stderr}");
}

#[test]
fn runtime_errors_fail_with_a_message() {
    let (_, stderr, ok) = run_expr(&["--mzscheme"], "(/ 1 0)");
    assert!(!ok);
    assert!(stderr.contains("division by zero"), "{stderr}");
}

#[test]
fn reducer_backend_and_trace() {
    let (stdout, _, ok) = run_expr(
        &["-b", "reducer", "--trace", "2"],
        "(+ 1 (+ 2 3))",
    );
    assert!(ok);
    assert!(stdout.contains(";; step   1:"), "{stdout}");
    assert!(stdout.trim_end().ends_with('6'), "{stdout}");
}

#[test]
fn fuel_limit_is_enforced() {
    let (_, stderr, ok) = run_expr(
        &["--mzscheme", "--fuel", "100"],
        "(letrec ((define loop (lambda () (loop)))) (loop))",
    );
    assert!(!ok);
    assert!(stderr.contains("fuel budget"), "{stderr}");
}

#[test]
fn reads_programs_from_files_and_stdin() {
    let dir = std::env::temp_dir().join(format!("units-repl-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("p.unit");
    std::fs::write(&path, "(define u (unit (import) (export) (init 7))) (invoke u)").unwrap();
    let output = repl().arg(&path).output().unwrap();
    assert!(output.status.success());
    assert_eq!(String::from_utf8_lossy(&output.stdout).trim(), "7");
    std::fs::remove_dir_all(&dir).unwrap();

    let mut child = repl().stdin(Stdio::piped()).stdout(Stdio::piped()).spawn().unwrap();
    child.stdin.as_mut().unwrap().write_all(b"(* 3 3)").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "9");
}

/// Drives an interactive session over a pipe, returning (stdout, stderr).
fn run_session(script: &str) -> (String, String) {
    let mut child = repl()
        .arg("-i")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(script.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "interactive session must exit cleanly");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[cfg(feature = "faults")]
#[test]
fn repl_survives_injected_faults_and_panics() {
    // An error-kind fault fires on the first evaluation (rate 1000‰),
    // the session keeps going, and a clean evaluation still works.
    let (stdout, stderr) = run_session(
        ":faults 1 1000\n\
         (invoke (unit (import) (export) (init (* 6 7))))\n\
         :faults off\n\
         (invoke (unit (import) (export) (init (* 6 7))))\n\
         :quit\n",
    );
    assert!(stdout.contains("fault plane armed: seed 1"), "{stdout}");
    assert!(stderr.contains("injected fault at"), "{stderr}");
    assert!(stdout.contains("fault plane disarmed: "), "{stdout}");
    assert!(stdout.contains("42"), "the clean evaluation still answers: {stdout}");

    // A panic-kind fault is caught at the engine boundary, surfaces as
    // a typed internal error, and the loop survives it too.
    let (stdout, stderr) = run_session(
        ":faults 2 1000 panic\n\
         (invoke (unit (import) (export) (init (* 6 7))))\n\
         :faults off\n\
         (invoke (unit (import) (export) (init (* 6 7))))\n\
         :quit\n",
    );
    assert!(stderr.contains("internal error in"), "{stderr}");
    assert!(stderr.contains("injected panic at"), "{stderr}");
    assert!(stdout.contains("42"), "{stdout}");
}

#[cfg(not(feature = "faults"))]
#[test]
fn faults_command_explains_the_missing_feature() {
    let (stdout, _) = run_session(":faults 1\n:quit\n");
    assert!(
        stdout.contains("fault injection not compiled in"),
        "{stdout}"
    );
}

#[test]
fn bytecode_backend_evaluates() {
    let (stdout, _, ok) = run_expr(
        &["-b", "bytecode"],
        "(invoke (unit (import) (export) (init (display \"vm\") (* 6 7))))",
    );
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines, vec!["vm", "42"]);
}

#[test]
fn backend_command_switches_and_reports() {
    let (stdout, _) = run_session(
        ":backend bytecode\n\
         (invoke (unit (import) (export) (init (+ 40 2))))\n\
         :backend\n\
         :quit\n",
    );
    assert!(stdout.contains("backend: bytecode"), "{stdout}");
    assert!(stdout.contains("42"), "{stdout}");
}

#[test]
fn disasm_prints_the_chunk_listing() {
    let (stdout, stderr) = run_session(
        ":disasm (invoke (unit (import) (export) (define f (lambda (x) (+ x 1))) (init (f 41))))\n\
         :quit\n",
    );
    assert!(stderr.is_empty(), "{stderr}");
    assert!(stdout.contains("chunk:"), "{stdout}");
    assert!(stdout.contains("consts:") || stdout.contains("invoke-unit") || stdout.contains("make-unit"), "{stdout}");
    // The usage line appears when no program is given.
    let (stdout, _) = run_session(":disasm\n:quit\n");
    assert!(stdout.contains("usage: :disasm"), "{stdout}");
}

#[test]
fn metrics_command_reports_and_resets() {
    // The metrics plane is always on, so this holds in every build.
    let (stdout, _) = run_session(
        "(invoke (unit (import) (export) (init (* 6 7))))\n\
         :metrics\n\
         :metrics reset\n\
         :metrics\n\
         :quit\n",
    );
    assert!(stdout.contains("42"), "{stdout}");
    assert!(stdout.contains(";; runs:     1 total"), "{stdout}");
    assert!(stdout.contains("p50"), "{stdout}");
    assert!(stdout.contains(";; engine metrics reset"), "{stdout}");
    assert!(stdout.contains(";; runs:     0 total"), "{stdout}");
    assert!(stdout.contains(";; latency:  no runs timed yet"), "{stdout}");
}

#[test]
fn stats_states_whether_trace_is_compiled_in() {
    let (stdout, _) = run_session(":stats\n:quit\n");
    #[cfg(feature = "trace")]
    assert!(stdout.contains(";; trace feature: compiled in"), "{stdout}");
    #[cfg(not(feature = "trace"))]
    assert!(
        stdout.contains(";; trace feature: NOT compiled in (rebuild with --features trace)"),
        "{stdout}"
    );
    assert!(stdout.contains(";; engine cache:"), "{stdout}");
}

#[cfg(feature = "trace")]
#[test]
fn disasm_profile_annotates_execution_counts() {
    let (stdout, stderr) = run_session(
        ":disasm --profile (invoke (unit (import) (export) (define f (lambda (x) (+ x 1))) (init (f 41))))\n\
         :quit\n",
    );
    assert!(stderr.is_empty(), "{stderr}");
    assert!(stdout.contains("ran on bytecode backend: 42"), "{stdout}");
    assert!(stdout.contains("ops executed"), "{stdout}");
    assert!(stdout.contains("×"), "per-op counts annotated: {stdout}");
    assert!(stdout.contains(";; hottest ops:"), "{stdout}");
}

#[cfg(not(feature = "trace"))]
#[test]
fn disasm_profile_explains_the_missing_feature() {
    let (stdout, _) = run_session(
        ":disasm --profile (invoke (unit (import) (export) (init 1)))\n:quit\n",
    );
    assert!(
        stdout.contains("per-op counters need a build with --features trace"),
        "{stdout}"
    );
    assert!(stdout.contains("chunk:"), "the plain listing still prints: {stdout}");
}

#[test]
fn flight_command_reports_absence() {
    let (stdout, _) = run_session(":flight\n:quit\n");
    #[cfg(feature = "trace")]
    assert!(stdout.contains(";; no flight-recorder dump"), "{stdout}");
    #[cfg(not(feature = "trace"))]
    assert!(
        stdout.contains("flight recorder needs a build with --features trace"),
        "{stdout}"
    );
}

#[cfg(all(feature = "trace", feature = "faults"))]
#[test]
fn injected_fault_surfaces_a_flight_dump() {
    let (stdout, stderr) = run_session(
        ":faults 1 1000\n\
         (invoke (unit (import) (export) (init (* 6 7))))\n\
         :faults off\n\
         :flight\n\
         :quit\n",
    );
    assert!(stderr.contains("injected fault at"), "{stderr}");
    assert!(
        stdout.contains("flight recorder captured a post-mortem"),
        "{stdout}"
    );
    assert!(stdout.contains(";; flight dump — "), "{stdout}");
    assert!(stdout.contains("\"flight\":\"dump\""), "{stdout}");
    assert!(stdout.contains("fault/fired"), "the dump names the trip: {stdout}");
}

#[test]
fn bad_flags_print_usage() {
    let output = repl().arg("--no-such-flag").output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));
}
