//! Dynamic linking (paper §3.4 and Fig. 7).
//!
//! "The core language must provide a syntactic form that retrieves a unit
//! value from an archive, such as the Internet, and checks that the unit
//! satisfies a particular signature. This type-checking must be performed
//! in the correct context to ensure that dynamic linking is type-safe."
//!
//! [`Archive`] is that archive: a name → unit-source store (in memory, or
//! loaded from a directory of `.unit` files — the medium is irrelevant to
//! the semantics). [`Archive::load`] retrieves a unit, checks it *in the
//! loading context* against the expected signature — avoiding the Java
//! class-loader unsoundness the paper cites ("Java's dynamic class loading
//! is broken because it checks types in a type environment that may differ
//! from the environment where the class is used") — and hands back the
//! checked unit expression, ready to `invoke` with imports from the host.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use units_check::{check_program, subtype, CheckError, CheckOptions, Equations};
#[allow(unused_imports)]
use units_check::Level;
use units_kernel::{Expr, Signature, Ty};
use units_syntax::{parse_expr, ParseError};

/// Why a dynamic load was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum DynlinkError {
    /// No unit with that name is published.
    NotFound {
        /// The requested name.
        name: String,
    },
    /// The retrieved source does not parse.
    Parse(ParseError),
    /// The retrieved unit fails context or type checking.
    Check(Vec<CheckError>),
    /// The retrieved expression is not a unit.
    NotAUnit,
    /// The unit's signature does not satisfy the expected one.
    Signature {
        /// The subtype checker's explanation.
        reason: String,
    },
    /// A fault deliberately fired by an armed
    /// `units_trace::faults::FaultPlane` schedule during the load.
    Injected {
        /// The injection point that fired.
        site: &'static str,
        /// The 1-based trip count at that site when it fired.
        hit: u64,
    },
}

impl fmt::Display for DynlinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynlinkError::NotFound { name } => write!(f, "no unit named `{name}` in archive"),
            DynlinkError::Parse(e) => write!(f, "retrieved unit does not parse: {e}"),
            DynlinkError::Check(errs) => {
                write!(f, "retrieved unit fails checking: ")?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            DynlinkError::NotAUnit => f.write_str("retrieved expression is not a unit"),
            DynlinkError::Signature { reason } => {
                write!(f, "retrieved unit does not satisfy the expected signature: {reason}")
            }
            DynlinkError::Injected { site, hit } => {
                write!(f, "injected fault at {site} (hit {hit})")
            }
        }
    }
}

impl std::error::Error for DynlinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DynlinkError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

/// A store of named unit sources — the paper's plug-in archive.
///
/// # Examples
///
/// ```
/// use units_compile::Archive;
/// use units_check::{CheckOptions, Level};
/// use units_syntax::parse_signature;
///
/// let mut archive = Archive::new();
/// archive.publish("plus-two", "(unit (import) (export) (init (lambda ((n int)) (+ n 2))))");
/// let expected = parse_signature(
///     "(sig (import) (export) (init (-> int int)))").unwrap();
/// let unit = archive.load("plus-two", &expected, CheckOptions::typed(Level::Constructed)).unwrap();
/// assert!(unit.is_value());
/// ```
#[derive(Debug, Default, Clone)]
pub struct Archive {
    entries: HashMap<String, String>,
}

impl Archive {
    /// An empty archive.
    pub fn new() -> Archive {
        Archive::default()
    }

    /// Publishes (or replaces) a unit source under a name.
    pub fn publish(&mut self, name: impl Into<String>, source: impl Into<String>) {
        self.entries.insert(name.into(), source.into());
    }

    /// Loads every `*.unit` file of a directory, keyed by file stem.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading the directory.
    pub fn from_dir(path: impl AsRef<Path>) -> std::io::Result<Archive> {
        let mut archive = Archive::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            let p = entry.path();
            if p.extension().and_then(|e| e.to_str()) == Some("unit") {
                if let Some(stem) = p.file_stem().and_then(|s| s.to_str()) {
                    archive.publish(stem.to_string(), std::fs::read_to_string(&p)?);
                }
            }
        }
        Ok(archive)
    }

    /// The raw source published under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.get(name).map(String::as_str)
    }

    /// Published names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Retrieves a unit and checks it against `expected` in the *current*
    /// context. On success, the returned expression is a checked unit
    /// value ready for `invoke` or `compound`.
    ///
    /// At [`Level::Untyped`] the signature check degenerates to the
    /// interface-name check the dynamic semantics needs: the unit must
    /// import no more names, and export no fewer, than `expected` says.
    ///
    /// # Errors
    ///
    /// Returns a [`DynlinkError`] describing the first failure.
    pub fn load(
        &self,
        name: &str,
        expected: &Signature,
        opts: CheckOptions,
    ) -> Result<Expr, DynlinkError> {
        units_trace::faults::trip("compile/dynlink")
            .map_err(|f| DynlinkError::Injected { site: f.site, hit: f.hit })?;
        let source = self
            .entries
            .get(name)
            .ok_or_else(|| DynlinkError::NotFound { name: name.to_string() })?;
        let expr = parse_expr(source).map_err(DynlinkError::Parse)?;
        let ty = check_program(&expr, opts).map_err(DynlinkError::Check)?;
        match ty {
            Some(actual) => {
                let expected_ty = Ty::Sig(Box::new(expected.clone()));
                if actual.as_sig().is_none() {
                    return Err(DynlinkError::NotAUnit);
                }
                subtype(&Equations::new(), &actual, &expected_ty)
                    .map_err(|e| DynlinkError::Signature { reason: e.to_string() })?;
            }
            None => {
                // Untyped: name-level interface check.
                let Expr::Unit(u) = &expr else {
                    return Err(DynlinkError::NotAUnit);
                };
                for port in &u.imports.vals {
                    if expected.imports.val_port(&port.name).is_none() {
                        return Err(DynlinkError::Signature {
                            reason: format!("unit imports `{}`, signature does not", port.name),
                        });
                    }
                }
                for port in &expected.exports.vals {
                    if u.exports.val_port(&port.name).is_none() {
                        return Err(DynlinkError::Signature {
                            reason: format!("signature exports `{}`, unit does not", port.name),
                        });
                    }
                }
            }
        }
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units_check::Strictness;
    use units_syntax::parse_signature;

    fn plugin_sig() -> Signature {
        parse_signature(
            "(sig (import (log (-> str void))) (export) (init (-> int int)))",
        )
        .unwrap()
    }

    fn archive() -> Archive {
        let mut a = Archive::new();
        a.publish(
            "doubler",
            "(unit (import (log (-> str void))) (export)
               (init (lambda ((n int)) (* n 2))))",
        );
        a.publish(
            "liar",
            "(unit (import (log (-> str void))) (export)
               (init \"not a function\"))",
        );
        a.publish("broken", "(unit (import) (export ghost))");
        a.publish("garbage", "(unit (import");
        a
    }

    #[test]
    fn loads_a_conforming_plugin() {
        let unit = archive()
            .load("doubler", &plugin_sig(), CheckOptions::typed(Level::Constructed))
            .unwrap();
        assert!(matches!(unit, Expr::Unit(_)));
    }

    #[test]
    fn rejects_wrong_init_type() {
        let err = archive()
            .load("liar", &plugin_sig(), CheckOptions::typed(Level::Constructed))
            .unwrap_err();
        assert!(matches!(err, DynlinkError::Signature { .. }), "got {err:?}");
    }

    #[test]
    fn rejects_ill_formed_units() {
        let err = archive()
            .load("broken", &plugin_sig(), CheckOptions::typed(Level::Constructed))
            .unwrap_err();
        assert!(matches!(err, DynlinkError::Check(_)));
        let err = archive()
            .load("garbage", &plugin_sig(), CheckOptions::typed(Level::Constructed))
            .unwrap_err();
        assert!(matches!(err, DynlinkError::Parse(_)));
    }

    #[test]
    fn missing_names_are_reported() {
        let err = archive()
            .load("nope", &plugin_sig(), CheckOptions::typed(Level::Constructed))
            .unwrap_err();
        assert!(matches!(err, DynlinkError::NotFound { name } if name == "nope"));
    }

    #[test]
    fn untyped_loading_checks_interface_names() {
        let opts = CheckOptions { level: Level::Untyped, strictness: Strictness::MzScheme };
        archive().load("doubler", &plugin_sig(), opts).unwrap();
        // A unit importing a name the signature does not grant is refused.
        let mut a = archive();
        a.publish("greedy", "(unit (import log net) (export) (init void))");
        let err = a.load("greedy", &plugin_sig(), opts).unwrap_err();
        assert!(matches!(err, DynlinkError::Signature { .. }));
    }

    #[test]
    fn archives_round_trip_through_directories() {
        let dir = std::env::temp_dir().join(format!("units-archive-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("p1.unit"), "(unit (import) (export) (init 1))").unwrap();
        std::fs::write(dir.join("ignored.txt"), "junk").unwrap();
        let a = Archive::from_dir(&dir).unwrap();
        assert_eq!(a.names(), vec!["p1"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
