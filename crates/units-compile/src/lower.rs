//! Lowering resolved terms to flat bytecode (the third backend).
//!
//! The input is the output of [`crate::resolve_program`]: every variable
//! occurrence a `VarAt` carrying its `(depth, slot)` lexical address
//! under the frame discipline both compiled backends share. Lowering
//! flattens that term into one [`Chunk`]: a single `Op` array holding
//! the top-level segment, every λ-body segment, and every unit
//! definition/init segment, plus pooled constants and shared side
//! tables (frames, letrec descriptors, compound/invoke/signature
//! nodes). The VM in `units-runtime` executes the chunk with a dispatch
//! loop; values created there carry a [`VmCode`](units_runtime::VmCode)
//! handle back into the chunk, preserving §4.1.6's single-copy-of-code
//! invariant in flat form.
//!
//! Lowering invariants (checked by the three-way differential suite):
//!
//! * **Evaluation order is the tree-walker's.** Operands lower left to
//!   right; `compound` emits a `CheckLink` after *each* constituent so
//!   the Fig. 11 side conditions interleave with constituent evaluation
//!   exactly as in `eval`; an `invoke` target is narrowed to a unit
//!   (`AsUnit`) before any link expression runs.
//! * **Tail positions compile to `TailCall`.** An application in tail
//!   position — the application itself, `if` branches, the last `begin`
//!   expression, `let`/`letrec` bodies — replaces the running activation,
//!   so tail loops run in constant space like the tree-walker's
//!   trampoline.
//! * **Unresolved programs still run.** A plain `Var` lowers to
//!   `LoadName` (the by-name scan); an address too wide for the compact
//!   `u16` operands degrades the same way.
//! * **Machine-internal forms** (`Loc`, `CellRef`, instantiated
//!   `Data`/`Variant` nodes) lower to `Unsupported`, failing at run time
//!   with the tree-walker's exact error class.

use std::collections::VecDeque;
use std::sync::Arc;

use units_kernel::{Expr, Lit, Symbol, TypeDefn};
use units_runtime::vm::{Chunk, Op, Proto, UnitProto};

/// Compiles a (preferably resolved) expression to a chunk ready for
/// [`units_runtime::execute`].
///
/// # Examples
///
/// ```
/// use units_compile::{lower_program, resolve_program};
/// use units_runtime::{execute, Machine, Value};
/// use units_syntax::parse_expr;
///
/// let program = parse_expr("(invoke (unit (import) (export) (init (* 6 7))))").unwrap();
/// let chunk = lower_program(&resolve_program(&program));
/// let v = execute(&chunk, &mut Machine::new()).unwrap();
/// assert!(v.observably_eq(&Value::Int(42)));
/// ```
pub fn lower_program(expr: &Expr) -> Arc<Chunk> {
    let mut lw = Lowerer::default();
    lw.chunk.entry = 0;
    lw.lower(expr, true);
    lw.emit(Op::Return);
    // λ-bodies and unit segments queue up while the enclosing segment is
    // still flat; drain until every reserved entry point is patched.
    while let Some(work) = lw.work.pop_front() {
        match work {
            Work::Proto(i) => {
                let body = lw.chunk.protos[i].lambda.clone();
                lw.chunk.protos[i].entry = lw.here();
                lw.lower(&body.body, true);
                lw.emit(Op::Return);
            }
            Work::Unit(i) => {
                let source = lw.chunk.units[i].source.clone();
                for (j, defn) in source.vals.iter().enumerate() {
                    lw.chunk.units[i].def_entries[j] = lw.here();
                    lw.lower(&defn.body, true);
                    lw.emit(Op::Return);
                }
                lw.chunk.units[i].init_entry = lw.here();
                lw.lower(&source.init, true);
                lw.emit(Op::Return);
            }
        }
    }
    // In trace builds every chunk gets profiler storage so the dispatch
    // loop can count op executions; default builds leave it empty and
    // the counting code compiles out.
    if units_trace::COMPILED {
        lw.chunk.profile = units_runtime::OpProfile::sized(lw.chunk.code.len());
    }
    Arc::new(lw.chunk)
}

/// A segment whose entry point is reserved but not yet compiled.
enum Work {
    Proto(usize),
    Unit(usize),
}

/// A literal integer operand small enough for the fused immediate field.
fn int_imm(e: &Expr) -> Option<i32> {
    match e {
        Expr::Lit(Lit::Int(n)) => i32::try_from(*n).ok(),
        _ => None,
    }
}

#[derive(Default)]
struct Lowerer {
    chunk: Chunk,
    work: VecDeque<Work>,
}

impl Lowerer {
    fn emit(&mut self, op: Op) {
        self.chunk.code.push(op);
    }

    fn here(&self) -> u32 {
        self.chunk.code.len() as u32
    }

    /// Emits a forward jump with a placeholder offset; pair with `patch`.
    fn jump(&mut self, op: Op) -> usize {
        let at = self.chunk.code.len();
        self.emit(op);
        at
    }

    /// Points the jump at `at` to the current end of code.
    fn patch(&mut self, at: usize) {
        let off = (self.chunk.code.len() - at - 1) as i32;
        match &mut self.chunk.code[at] {
            Op::Jump(o) | Op::JumpIfFalse(o) => *o = off,
            other => unreachable!("patching a non-jump {other:?}"),
        }
    }

    /// Interns a string literal in the constant pool (deduplicated — the
    /// pool is small, so a linear scan beats hashing).
    fn pool_str(&mut self, s: &str) -> u32 {
        let found = self.chunk.consts.iter().position(|existing| &**existing == s);
        match found {
            Some(i) => i as u32,
            None => {
                self.chunk.consts.push(Arc::from(s));
                (self.chunk.consts.len() - 1) as u32
            }
        }
    }

    /// Reserves a λ prototype and queues its body segment.
    fn add_proto(&mut self, lam: &Arc<units_kernel::Lambda>) -> u32 {
        self.chunk.protos.push(Proto { lambda: lam.clone(), entry: u32::MAX });
        let i = self.chunk.protos.len() - 1;
        self.work.push_back(Work::Proto(i));
        i as u32
    }

    /// Reserves a unit prototype and queues its definition/init segments.
    fn add_unit(&mut self, u: &Arc<units_kernel::UnitExpr>) -> u32 {
        self.chunk.units.push(UnitProto {
            source: u.clone(),
            def_entries: vec![u32::MAX; u.vals.len()],
            init_entry: u32::MAX,
        });
        let i = self.chunk.units.len() - 1;
        self.work.push_back(Work::Unit(i));
        i as u32
    }

    fn lower(&mut self, expr: &Expr, tail: bool) {
        match expr {
            Expr::Var(x) => self.emit(Op::LoadName(x.clone())),
            Expr::VarAt(x, addr) => {
                match (u16::try_from(addr.depth), u16::try_from(addr.slot)) {
                    (Ok(depth), Ok(slot)) => {
                        self.emit(Op::Load { depth, slot, name: x.clone() });
                    }
                    // An address too wide for the compact operands
                    // degrades to the by-name scan, like a stale address
                    // at run time.
                    _ => self.emit(Op::LoadName(x.clone())),
                }
            }
            Expr::Lit(lit) => match lit {
                Lit::Int(n) => self.emit(Op::Int(*n)),
                Lit::Bool(b) => self.emit(Op::Bool(*b)),
                Lit::Str(s) => {
                    let i = self.pool_str(s);
                    self.emit(Op::Const(i));
                }
                Lit::Void => self.emit(Op::Void),
            },
            Expr::Prim(op, _tys) => self.emit(Op::PrimVal(*op)),
            Expr::Lambda(lam) => {
                let i = self.add_proto(lam);
                self.emit(Op::MakeClosure(i));
            }
            Expr::App(f, args) => {
                let argc = args.len() as u16;
                // Fuse `prim(args…)` — the hot Fig. 11 shape — into one
                // opcode; a `prim` expression has no effects, so skipping
                // its push preserves evaluation order.
                if let Expr::Prim(op, _) = &**f {
                    // A binary prim with a small literal operand fuses it
                    // as an immediate — counting and comparison patterns
                    // like `(- n 1)` and `(= n 0)` become one opcode.
                    // Literals have no effects, so the order stands.
                    if let [x, y] = &args[..] {
                        if let Some(imm) = int_imm(y) {
                            self.lower(x, false);
                            self.emit(Op::CallPrimImm { op: *op, imm, rev: false });
                            return;
                        }
                        if let Some(imm) = int_imm(x) {
                            self.lower(y, false);
                            self.emit(Op::CallPrimImm { op: *op, imm, rev: true });
                            return;
                        }
                    }
                    for a in args {
                        self.lower(a, false);
                    }
                    self.emit(Op::CallPrim { op: *op, argc });
                } else {
                    self.lower(f, false);
                    for a in args {
                        self.lower(a, false);
                    }
                    self.emit(if tail { Op::TailCall(argc) } else { Op::Call(argc) });
                }
            }
            Expr::If(c, t, e) => {
                self.lower(c, false);
                let to_else = self.jump(Op::JumpIfFalse(0));
                self.lower(t, tail);
                let to_end = self.jump(Op::Jump(0));
                self.patch(to_else);
                self.lower(e, tail);
                self.patch(to_end);
            }
            Expr::Seq(es) => match es.split_last() {
                None => self.emit(Op::Void),
                Some((last, init)) => {
                    for e in init {
                        self.lower(e, false);
                        self.emit(Op::Pop);
                    }
                    self.lower(last, tail);
                }
            },
            Expr::Let(bindings, body) => {
                // Right-hand sides evaluate in the outer scope (parallel
                // let) — no frame exists until `Bind`.
                for b in bindings {
                    self.lower(&b.expr, false);
                }
                let names: Arc<[Symbol]> = bindings.iter().map(|b| b.name.clone()).collect();
                self.chunk.frames.push(names);
                self.emit(Op::Bind((self.chunk.frames.len() - 1) as u32));
                self.lower(body, tail);
                if !tail {
                    self.emit(Op::PopFrame);
                }
            }
            Expr::Letrec(lr) => {
                self.chunk.recs.push(lr.clone());
                self.emit(Op::BindRec((self.chunk.recs.len() - 1) as u32));
                // Slot layout of the recursive frame: the datatype
                // operations first (ctor/dtor per variant, then the
                // predicate, per datatype), then one cell per definition
                // — the order `bind_letrec_frame` builds and the
                // resolver mirrors.
                let data_ops: usize = lr
                    .types
                    .iter()
                    .map(|td| match td {
                        TypeDefn::Data(d) => 2 * d.variants.len() + 1,
                        TypeDefn::Alias(_) => 0,
                    })
                    .sum();
                for (i, defn) in lr.vals.iter().enumerate() {
                    self.lower(&defn.body, false);
                    match u16::try_from(data_ops + i) {
                        Ok(slot) => self.emit(Op::InitCell(slot)),
                        Err(_) => {
                            // A frame too wide for the compact operand:
                            // write through the cell by name instead.
                            self.emit(Op::StoreName(defn.name.clone()));
                            self.emit(Op::Pop);
                        }
                    }
                }
                self.lower(&lr.body, tail);
                if !tail {
                    self.emit(Op::PopFrame);
                }
            }
            Expr::Set(target, value) => match &**target {
                Expr::Var(x) => {
                    self.lower(value, false);
                    self.emit(Op::StoreName(x.clone()));
                }
                Expr::VarAt(x, addr) => {
                    self.lower(value, false);
                    match (u16::try_from(addr.depth), u16::try_from(addr.slot)) {
                        (Ok(depth), Ok(slot)) => {
                            self.emit(Op::Store { depth, slot, name: x.clone() });
                        }
                        _ => self.emit(Op::StoreName(x.clone())),
                    }
                }
                // The tree-walker rejects a non-variable target before
                // evaluating the value; so does the lowered form.
                _ => self.emit(Op::Unsupported("an assignable variable")),
            },
            Expr::Tuple(items) => {
                for i in items {
                    self.lower(i, false);
                }
                self.emit(Op::MakeTuple(items.len() as u16));
            }
            Expr::Proj(i, e) => {
                self.lower(e, false);
                self.emit(Op::Proj(*i as u32));
            }
            Expr::Unit(u) => {
                let i = self.add_unit(u);
                self.emit(Op::MakeUnit(i));
            }
            Expr::Compound(c) => {
                self.chunk.compounds.push(c.clone());
                let ci = (self.chunk.compounds.len() - 1) as u32;
                for (li, link) in c.links.iter().enumerate() {
                    self.lower(&link.expr, false);
                    // Side conditions fire after *this* constituent
                    // evaluates, before the next one runs — the
                    // tree-walker's interleaving.
                    self.emit(Op::CheckLink { compound: ci, link: li as u32 });
                }
                self.emit(Op::MakeCompound(ci));
            }
            Expr::Invoke(inv) => {
                // `(invoke (unit …))` with no links — the hot benchmark
                // shape — fuses unit creation and invocation.
                if inv.val_links.is_empty() {
                    if let Expr::Unit(u) = &inv.target {
                        let i = self.add_unit(u);
                        self.emit(Op::InvokeUnit(i));
                        return;
                    }
                }
                self.lower(&inv.target, false);
                // Narrow to a unit before any link expression runs, like
                // the tree-walker.
                self.emit(Op::AsUnit("invoke"));
                for (_, e) in &inv.val_links {
                    self.lower(e, false);
                }
                self.chunk.invokes.push(inv.clone());
                self.emit(Op::Invoke((self.chunk.invokes.len() - 1) as u32));
            }
            Expr::Seal(e, sig) => {
                self.lower(e, false);
                self.chunk.sigs.push(Arc::new((**sig).clone()));
                self.emit(Op::Seal((self.chunk.sigs.len() - 1) as u32));
            }
            Expr::Loc(_) | Expr::CellRef(_) | Expr::Data(_) | Expr::Variant(_) => {
                self.emit(Op::Unsupported("a source expression"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve_program;
    use units_runtime::{disassemble, execute, Limits, Machine, RuntimeError, Value};
    use units_syntax::{parse_expr, parse_file};

    fn chunk_for(src: &str) -> Arc<Chunk> {
        let e = parse_file(src)
            .or_else(|_| parse_expr(src))
            .unwrap_or_else(|err| panic!("parse: {err}"));
        lower_program(&resolve_program(&e))
    }

    fn run(src: &str) -> Result<Value, RuntimeError> {
        execute(&chunk_for(src), &mut Machine::new())
    }

    fn run_int(src: &str) -> i64 {
        match run(src) {
            Ok(Value::Int(n)) => n,
            other => panic!("expected an int, got {other:?}"),
        }
    }

    #[test]
    fn core_forms_round_trip() {
        assert_eq!(run_int("(+ 40 2)"), 42);
        assert_eq!(run_int("(let ((x 6) (y 7)) (* x y))"), 42);
        assert_eq!(run_int("(if (< 1 2) 1 2)"), 1);
        assert_eq!(run_int("((lambda (n) (* n n)) 9)"), 81);
        assert_eq!(run_int("(proj 1 (tuple 1 2 3))"), 2);
        assert_eq!(run_int("(begin 1 2 3)"), 3);
        match run("(string-append \"a\" \"b\")") {
            Ok(Value::Str(s)) => assert_eq!(&*s, "ab"),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn letrec_and_units_round_trip() {
        assert_eq!(
            run_int("(letrec ((define f (lambda (n) (if (= n 0) 1 (* n (f (- n 1))))))) (f 5))"),
            120
        );
        assert_eq!(run_int("(invoke (unit (import) (export) (init (* 6 7))))"), 42);
        assert_eq!(
            run_int(
                "(invoke (unit (import base) (export) (init (+ base 2))) (val base 40))"
            ),
            42
        );
    }

    #[test]
    fn string_constants_are_pooled_once() {
        let chunk = chunk_for("(tuple \"a\" \"b\" \"a\" \"a\")");
        assert_eq!(chunk.consts.len(), 2);
    }

    #[test]
    fn tail_calls_run_in_constant_depth() {
        // 10_000 iterations under a depth budget of 50: only `TailCall`
        // (no activation growth) can pass, mirroring the tree-walker's
        // trampoline.
        let chunk = chunk_for(
            "(letrec ((define loop (lambda (n) (if (= n 0) 0 (loop (- n 1)))))) (loop 10000))",
        );
        let mut m = Machine::with_limits(Limits::none().max_depth(50));
        let v = execute(&chunk, &mut m).unwrap();
        assert!(v.observably_eq(&Value::Int(0)));
    }

    #[test]
    fn fuel_exhaustion_reports_the_same_text_as_the_tree_walker() {
        let src = "(letrec ((define loop (lambda (n) (loop (+ n 1))))) (loop 0))";
        let chunk = chunk_for(src);
        let vm_err = execute(&chunk, &mut Machine::with_fuel(5_000)).unwrap_err();
        let e = parse_file(src).unwrap();
        let tw_err =
            crate::evaluate_program(&crate::resolve_program(&e), &mut Machine::with_fuel(5_000))
                .unwrap_err();
        assert_eq!(vm_err.to_string(), tw_err.to_string());
        assert_eq!(vm_err.to_string(), "evaluation exceeded its fuel budget of 5000");
    }

    #[test]
    fn superinstructions_are_selected() {
        let chunk =
            chunk_for("(invoke (unit (import) (export) (define x 3) (init (+ x x) (+ x 2))))");
        assert!(chunk.code.iter().any(|op| matches!(op, Op::InvokeUnit(_))));
        assert!(chunk.code.iter().any(|op| matches!(op, Op::CallPrim { .. })));
        assert!(chunk.code.iter().any(|op| matches!(op, Op::CallPrimImm { .. })));
        // The fused forms replace the generic ones entirely here.
        assert!(!chunk.code.iter().any(|op| matches!(op, Op::Invoke(_) | Op::Call(_))));
    }

    #[test]
    fn immediate_prims_fuse_both_operand_orders() {
        // Right literal, left literal, and a non-fusible wide literal.
        assert_eq!(run_int("(- 10 1)"), 9);
        assert_eq!(run_int("(- 1 10)"), -9);
        assert_eq!(run_int("(* 3 (+ 1 2))"), 9);
        let chunk = chunk_for("(< 1 x)");
        assert!(chunk
            .code
            .iter()
            .any(|op| matches!(op, Op::CallPrimImm { rev: true, .. })));
        let wide = chunk_for("(+ x 5000000000)");
        assert!(wide.code.iter().any(|op| matches!(op, Op::CallPrim { .. })));
        // The fused comparison agrees with the unfused semantics.
        let mut m = Machine::new();
        let v = execute(&chunk_for("(< 2 1)"), &mut m).unwrap();
        assert!(v.observably_eq(&Value::Bool(false)));
    }

    #[test]
    fn disassembly_names_every_opcode() {
        let text = disassemble(&chunk_for(
            "(define f (lambda (x) (if x \"yes\" \"no\")))
             (invoke (unit (import) (export) (init 1)))",
        ));
        for needle in ["make-closure", "jump-if-false", "invoke-unit", "const", "consts:"] {
            assert!(text.contains(needle), "disassembly missing {needle}:\n{text}");
        }
    }

    #[test]
    fn error_classes_match_the_tree_walker() {
        for (src, expect) in [
            ("(1 2)", "application of a non-function"),
            ("(if 1 2 3)", "expected a boolean"),
            ("(proj 5 (tuple 1))", "projection 5 out of range"),
            ("(invoke 3)", "`invoke` rule applied to a non-unit"),
            ("(invoke (unit (import x) (export) (init x)))", "does not supply import `x`"),
            ("(set! nope 1)", "unbound variable"),
        ] {
            let err = run(src).unwrap_err().to_string();
            assert!(err.contains(expect), "{src}: {err}");
        }
    }

    #[test]
    fn set_targets_definition_cells() {
        assert_eq!(
            run_int(
                "(invoke (unit (import) (export)
                   (define counter 0)
                   (init (set! counter (+ counter 1)) counter)))"
            ),
            1
        );
    }

    #[test]
    fn compound_linking_round_trips() {
        let src = "(invoke (compound (import) (export)
            (link ((unit (import odd) (export even)
                     (define even (lambda (n) (if (= n 0) true (odd (- n 1)))))
                     (init void))
                   (with odd) (provides even))
                  ((unit (import even) (export odd)
                     (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
                     (init (odd 13)))
                   (with even) (provides odd)))))";
        match run(src) {
            Ok(Value::Bool(true)) => {}
            other => panic!("odd(13) should be true, got {other:?}"),
        }
    }

    #[test]
    fn unresolved_programs_fall_back_to_by_name_lookups() {
        // Lower the raw (unresolved) term: every variable is a plain
        // `Var`, so the chunk uses `LoadName` throughout and still runs.
        let e = parse_expr("(let ((x 21)) (* x 2))").unwrap();
        let chunk = lower_program(&e);
        assert!(chunk.code.iter().any(|op| matches!(op, Op::LoadName(_))));
        let v = execute(&chunk, &mut Machine::new()).unwrap();
        assert!(v.observably_eq(&Value::Int(42)));
    }
}
