//! The production backend for program units: the cells-based evaluator of
//! §4.1.6 and the dynamic-linking archive of §3.4.
//!
//! Units evaluate to values carrying *shared, unevaluated* code;
//! `compound` records wiring after checking the Fig. 11 side conditions;
//! `invoke` threads reference cells through the link graph, runs all
//! definitions, then all initialization expressions.
//!
//! # Example
//!
//! ```
//! use units_compile::evaluate_program;
//! use units_runtime::{Machine, Value};
//! use units_syntax::parse_file;
//!
//! let program = parse_file(
//!     "(define u (unit (import base) (export) (init (* base 2))))
//!      (invoke u (val base 21))",
//! ).unwrap();
//! let v = evaluate_program(&program, &mut Machine::new()).unwrap();
//! assert!(v.observably_eq(&Value::Int(42)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod dynlink;
mod eval;
mod instantiate;
mod lower;
mod profile;
mod resolve;

pub use artifact::{load_interface, load_unit, publish_unit, ArtifactError, Published};
pub use dynlink::{Archive, DynlinkError};
pub use eval::{apply, eval, evaluate_program};
pub use instantiate::invoke_unit;
pub use lower::lower_program;
pub use profile::ChunkProfile;
pub use resolve::resolve_program;
