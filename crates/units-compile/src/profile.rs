//! Reading the bytecode profiler's counters as structured data.
//!
//! The VM fills a [`units_runtime::OpProfile`] while dispatching (in
//! `trace` builds); this module turns one chunk's raw counters into a
//! [`ChunkProfile`] — totals, per-op counts in instruction order, and
//! a hot-mnemonic ranking — so tooling (the REPL's `:disasm --profile`,
//! future superinstruction selection) can find the hot Fig. 11
//! invoke/compound sequences empirically instead of by guesswork.

use std::collections::BTreeMap;

use units_runtime::Chunk;

/// A point-in-time snapshot of one chunk's execution profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkProfile {
    /// Whether the chunk had profiler storage at all (only `trace`
    /// builds allocate it; when `false` every count below is zero).
    pub enabled: bool,
    /// Total op executions across the whole chunk.
    pub total_executed: u64,
    /// Fuel the dispatch loop attributed to this chunk at flush points.
    pub fuel_attributed: u64,
    /// Execution count per instruction, in instruction order (empty
    /// when disabled).
    pub per_op: Vec<u64>,
    /// Executions aggregated by mnemonic, hottest first (ties broken
    /// alphabetically); mnemonics with zero executions are omitted.
    pub by_mnemonic: Vec<(&'static str, u64)>,
}

impl ChunkProfile {
    /// Snapshots `chunk`'s current counters.
    pub fn capture(chunk: &Chunk) -> ChunkProfile {
        let per_op = chunk.profile.counts();
        let mut by: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (op, n) in chunk.code.iter().zip(&per_op) {
            if *n > 0 {
                *by.entry(op.name().trim_start_matches("vm/op/")).or_insert(0) += n;
            }
        }
        let mut by_mnemonic: Vec<_> = by.into_iter().collect();
        by_mnemonic.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        ChunkProfile {
            enabled: chunk.profile.enabled(),
            total_executed: per_op.iter().sum(),
            fuel_attributed: chunk.profile.fuel(),
            per_op,
            by_mnemonic,
        }
    }

    /// The `n` hottest mnemonics (fewer when the chunk ran less code).
    pub fn hottest(&self, n: usize) -> &[(&'static str, u64)] {
        &self.by_mnemonic[..n.min(self.by_mnemonic.len())]
    }

    /// The execution count of instruction `i` (0 when out of range or
    /// disabled).
    pub fn count_at(&self, i: usize) -> u64 {
        self.per_op.get(i).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower_program, resolve_program};
    use units_runtime::{execute, Machine};

    fn compiled_run() -> std::sync::Arc<Chunk> {
        let program = units_syntax::parse_expr(
            "(invoke (unit (import) (export) (init (+ (* 6 7) 0))))",
        )
        .unwrap();
        let chunk = lower_program(&resolve_program(&program));
        execute(&chunk, &mut Machine::new()).unwrap();
        chunk
    }

    #[cfg(feature = "trace")]
    #[test]
    fn capture_counts_the_run() {
        let chunk = compiled_run();
        let profile = ChunkProfile::capture(&chunk);
        assert!(profile.enabled, "trace builds allocate counters");
        assert!(profile.total_executed > 0, "the run was counted");
        assert!(profile.fuel_attributed > 0, "flush points attributed fuel");
        assert_eq!(profile.per_op.len(), chunk.code.len());
        assert_eq!(profile.total_executed, profile.per_op.iter().sum::<u64>());
        let hot = profile.hottest(3);
        assert!(!hot.is_empty());
        assert!(
            profile.by_mnemonic.windows(2).all(|w| w[0].1 >= w[1].1),
            "hottest first: {:?}",
            profile.by_mnemonic
        );
        // Counters survive reset requests from the chunk side.
        chunk.profile.reset();
        assert_eq!(ChunkProfile::capture(&chunk).total_executed, 0);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn capture_is_empty_without_trace() {
        let profile = ChunkProfile::capture(&compiled_run());
        assert!(!profile.enabled);
        assert_eq!(profile.total_executed, 0);
        assert_eq!(profile.fuel_attributed, 0);
        assert!(profile.per_op.is_empty());
        assert!(profile.by_mnemonic.is_empty());
    }
}
