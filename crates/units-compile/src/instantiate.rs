//! Wiring and invocation: the cells protocol of §4.1.6.
//!
//! Invoking a unit proceeds in three phases, mirroring the merged-`letrec`
//! semantics of Fig. 11:
//!
//! 1. **wire** — walk the link graph creating one cell per interface
//!    name: import cells come from the invoker, each constituent's
//!    exported definitions *are* the cells its consumers read ("a closure
//!    that propagates import and export cells to the constituent units,
//!    creating new cells … for variables … hidden by the compound unit");
//! 2. **run definitions** — every constituent's definitions evaluate in
//!    link order, filling their cells (mutually recursive references work
//!    because λ-bodies read cells lazily);
//! 3. **run initializations** — every initialization expression runs in
//!    link order; the last one's value is the result of the invocation.

use std::collections::HashMap;

use units_kernel::Symbol;
use units_runtime::{
    emit_invoke_event, import_cells, wire, Machine, RuntimeError, UnitValue, Value, WiredUnit,
};

use crate::eval::eval;

/// Invokes a unit, satisfying its imports from `supplied` (empty for a
/// complete program). Returns the last initialization expression's value;
/// exports are ignored ("The variables exported by a program are
/// ignored").
///
/// The wiring itself — one cell per interface name, walked through the
/// whole link graph — lives in [`units_runtime::wiring`], shared with the
/// bytecode VM; this function supplies the tree-walking definition/init
/// phases over the wired constituents.
///
/// # Errors
///
/// [`RuntimeError::UnsatisfiedImport`] when `supplied` misses an import;
/// any error the definitions or initializations raise.
pub fn invoke_unit(
    unit: &UnitValue,
    supplied: &HashMap<Symbol, Value>,
    machine: &mut Machine,
) -> Result<Value, RuntimeError> {
    let _timer = units_trace::time("link");
    units_trace::faults::trip("compile/instantiate")?;
    let cells = import_cells(unit, supplied, machine)?;
    let mut wired: Vec<WiredUnit> = Vec::new();
    wire(unit, &cells, &HashMap::new(), machine, &mut wired)?;
    emit_invoke_event(unit, wired.len());
    // All definitions in link order, then all initializations in link
    // order (Fig. 11's merged letrec); the last init value is the result.
    for w in &wired {
        for (defn, cell) in w.source.vals.iter().zip(&w.def_cells) {
            let v = eval(&defn.body, &w.env, machine)?;
            *cell.borrow_mut() = Some(v);
        }
    }
    let mut result = Value::Void;
    for w in &wired {
        result = eval(&w.source.init, &w.env, machine)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_program;
    use std::sync::Arc;
    use units_syntax::parse_expr;

    fn run(src: &str) -> Result<Value, RuntimeError> {
        let e = parse_expr(src).unwrap_or_else(|err| panic!("parse: {err}"));
        evaluate_program(&e, &mut Machine::new())
    }

    fn run_int(src: &str) -> i64 {
        match run(src) {
            Ok(Value::Int(n)) => n,
            other => panic!("expected an int, got {other:?}"),
        }
    }

    #[test]
    fn invoking_an_atomic_program() {
        assert_eq!(run_int("(invoke (unit (import) (export) (init (+ 40 2))))"), 42);
    }

    #[test]
    fn definitions_fill_cells_before_init_runs() {
        assert_eq!(
            run_int(
                "(invoke (unit (import) (export)
                   (define f (lambda (n) (* n n)))
                   (init (f 9))))"
            ),
            81
        );
    }

    #[test]
    fn dynamic_linking_supplies_imports() {
        assert_eq!(
            run_int(
                "(invoke (unit (import base) (export) (init (+ base 2)))
                         (val base 40))"
            ),
            42
        );
    }

    #[test]
    fn missing_imports_are_a_runtime_error() {
        let err = run("(invoke (unit (import x) (export) (init x)))").unwrap_err();
        assert!(matches!(err, RuntimeError::UnsatisfiedImport { name } if name.as_str() == "x"));
    }

    #[test]
    fn fig12_even_odd_mutual_recursion_across_units() {
        // The even unit and the odd unit import each other's export; the
        // compound links them cyclically (Fig. 12's example, split in two).
        let src = "(invoke (compound (import) (export)
            (link ((unit (import odd) (export even)
                     (define even (lambda (n) (if (= n 0) true (odd (- n 1)))))
                     (init void))
                   (with odd) (provides even))
                  ((unit (import even) (export odd)
                     (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
                     (init (odd 13)))
                   (with even) (provides odd)))))";
        match run(src) {
            Ok(Value::Bool(true)) => {}
            other => panic!("odd(13) should be true, got {other:?}"),
        }
    }

    #[test]
    fn initialization_expressions_run_in_link_order_after_all_definitions() {
        let src = "(invoke (compound (import) (export)
            (link ((unit (import later) (export)
                     (init (display \"first\") (later)))
                   (with later) (provides))
                  ((unit (import) (export later)
                     (define later (lambda () (display \"from-later\") void))
                     (init (display \"second\")))
                   (with) (provides later)))))";
        let mut machine = Machine::new();
        let e = parse_expr(src).unwrap();
        evaluate_program(&e, &mut machine).unwrap();
        // Unit 1's init runs before unit 2's, and can already call unit
        // 2's definition (all definitions precede all initializations).
        assert_eq!(machine.output(), ["first", "from-later", "second"]);
    }

    #[test]
    fn invocation_result_is_last_initialization_value() {
        assert_eq!(
            run_int(
                "(invoke (compound (import) (export)
                   (link ((unit (import) (export) (init 1)) (with) (provides))
                         ((unit (import) (export) (init 2)) (with) (provides)))))"
            ),
            2
        );
    }

    #[test]
    fn hidden_exports_are_invisible_but_usable_internally() {
        // delete is used inside the compound but hidden from its exports
        // (Fig. 2's PhoneBook hides Database's delete).
        let src = "(define pb (compound (import) (export get)
             (link ((unit (import) (export get delete)
                      (define get (lambda () 10))
                      (define delete (lambda () 99)))
                    (with) (provides get delete))
                   ((unit (import delete) (export use)
                      (define use (lambda () (delete))))
                    (with delete) (provides use)))))
           (invoke (unit (import get) (export) (init (get)))
                   (val get (lambda () 7)))";
        // `pb` exports only get; attempting to link against delete fails.
        let full = format!(
            "(invoke (compound (import) (export)
               (link ({pb} (with) (provides get))
                     ((unit (import get) (export) (init (get)))
                      (with get) (provides)))))",
            pb = "(compound (import) (export get)
             (link ((unit (import) (export get delete)
                      (define get (lambda () 10))
                      (define delete (lambda () 99)))
                    (with) (provides get delete))))"
        );
        assert_eq!(run_int(&full), 10);
        let _ = src;
    }

    #[test]
    fn linking_against_a_hidden_export_fails() {
        let err = run(
            "(invoke (compound (import) (export)
               (link ((compound (import) (export get)
                        (link ((unit (import) (export get delete)
                                 (define get (lambda () 10))
                                 (define delete (lambda () 99)))
                               (with) (provides get delete))))
                      (with) (provides get delete))
                     ((unit (import delete) (export) (init (delete)))
                      (with delete) (provides)))))",
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::MissingProvide { name } if name.as_str() == "delete"));
    }

    #[test]
    fn excess_imports_are_rejected_at_link_time() {
        let err = run(
            "(compound (import) (export)
               (link ((unit (import ghost) (export) (init void))
                      (with) (provides))))",
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::ExcessImport { name } if name.as_str() == "ghost"));
    }

    #[test]
    fn multiple_invocations_create_independent_instances() {
        // Each invocation gets fresh cells: the counter does not persist.
        let src = "(define u (unit (import) (export)
                      (define counter 0)
                      (init (set! counter (+ counter 1)) counter)))
                   (tuple (invoke u) (invoke u))";
        let e = units_syntax::parse_file(src).unwrap();
        let v = evaluate_program(&e, &mut Machine::new()).unwrap();
        match v {
            Value::Tuple(items) => {
                assert!(items[0].observably_eq(&Value::Int(1)));
                assert!(items[1].observably_eq(&Value::Int(1)));
            }
            other => panic!("expected tuple, got {other}"),
        }
    }

    #[test]
    fn code_is_shared_across_instances() {
        // §4.1.6: one copy of the code regardless of how many times the
        // unit is linked or invoked.
        let e = units_syntax::parse_expr(
            "(unit (import) (export) (define f (lambda () 1)) (init (f)))",
        )
        .unwrap();
        let mut machine = Machine::new();
        let v1 = evaluate_program(&e, &mut machine).unwrap();
        let v2 = evaluate_program(&e, &mut machine).unwrap();
        match (v1, v2) {
            (Value::Unit(u1), Value::Unit(u2)) => {
                assert!(Arc::ptr_eq(
                    u1.atomic_source().unwrap(),
                    u2.atomic_source().unwrap()
                ));
            }
            other => panic!("expected units, got {other:?}"),
        }
    }

    #[test]
    fn datatype_instances_do_not_mix() {
        // §5.3: two instances of `symbol` cannot unify their types.
        let src = "(define symbol (unit (import) (export mk unmk)
                      (datatype sym (mk unmk str) sym?)
                      (init (tuple mk unmk))))
                   (let ((a (invoke symbol)) (b (invoke symbol)))
                     ((proj 1 b) ((proj 0 a) \"x\")))";
        let e = units_syntax::parse_file(src).unwrap();
        let err = evaluate_program(&e, &mut Machine::new()).unwrap_err();
        assert!(matches!(err, RuntimeError::ForeignInstance { ty_name } if ty_name.as_str() == "sym"));
    }

    #[test]
    fn seal_hides_exports_at_runtime() {
        let err = run(
            "(invoke (compound (import) (export)
               (link ((seal (unit (import) (export a b)
                              (define a 1) (define b 2))
                            (sig (import) (export b) (init void)))
                      (with) (provides a)))))",
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::MissingProvide { name } if name.as_str() == "a"));
    }
}
