//! Wiring and invocation: the cells protocol of §4.1.6.
//!
//! Invoking a unit proceeds in three phases, mirroring the merged-`letrec`
//! semantics of Fig. 11:
//!
//! 1. **wire** — walk the link graph creating one cell per interface
//!    name: import cells come from the invoker, each constituent's
//!    exported definitions *are* the cells its consumers read ("a closure
//!    that propagates import and export cells to the constituent units,
//!    creating new cells … for variables … hidden by the compound unit");
//! 2. **run definitions** — every constituent's definitions evaluate in
//!    link order, filling their cells (mutually recursive references work
//!    because λ-bodies read cells lazily);
//! 3. **run initializations** — every initialization expression runs in
//!    link order; the last one's value is the result of the invocation.

use std::collections::HashMap;
use std::rc::Rc;

use units_kernel::Symbol;
use units_runtime::{
    filled_cell, new_cell, Binding, CellRef, Env, Machine, RuntimeError, UnitValue, Value,
};

use crate::eval::{bind_letrec_frame, eval};

/// One atomic constituent, wired and awaiting its definition/init phases.
pub(crate) struct Pending {
    env: Env,
    source: Rc<units_kernel::UnitExpr>,
    def_cells: Vec<CellRef>,
}

impl Pending {
    fn run_defs(&self, machine: &mut Machine) -> Result<(), RuntimeError> {
        for (defn, cell) in self.source.vals.iter().zip(&self.def_cells) {
            let v = eval(&defn.body, &self.env, machine)?;
            *cell.borrow_mut() = Some(v);
        }
        Ok(())
    }

    fn run_init(&self, machine: &mut Machine) -> Result<Value, RuntimeError> {
        eval(&self.source.init, &self.env, machine)
    }
}

/// Invokes a unit, satisfying its imports from `supplied` (empty for a
/// complete program). Returns the last initialization expression's value;
/// exports are ignored ("The variables exported by a program are
/// ignored").
///
/// # Errors
///
/// [`RuntimeError::UnsatisfiedImport`] when `supplied` misses an import;
/// any error the definitions or initializations raise.
pub fn invoke_unit(
    unit: &UnitValue,
    supplied: &HashMap<Symbol, Value>,
    machine: &mut Machine,
) -> Result<Value, RuntimeError> {
    let _timer = units_trace::time("link");
    units_trace::faults::trip("compile/instantiate")?;
    machine.alloc_cells(unit.imports().vals.len() as u64)?;
    let mut import_cells = HashMap::with_capacity(unit.imports().vals.len());
    for port in &unit.imports().vals {
        match supplied.get(&port.name) {
            Some(v) => {
                import_cells.insert(port.name.clone(), filled_cell(v.clone()));
            }
            None => return Err(RuntimeError::UnsatisfiedImport { name: port.name.clone() }),
        }
    }
    let mut pendings = Vec::new();
    wire(unit, &import_cells, &HashMap::new(), machine, &mut pendings)?;
    units_trace::emit(
        units_trace::Phase::Link,
        "link/invoke",
        None,
        || {
            let mut names: Vec<&str> =
                unit.exports().vals.iter().map(|p| p.name.as_str()).collect();
            names.sort_unstable();
            names.join(" ")
        },
        &[("link/invocations", 1), ("link/constituents", pendings.len() as u64)],
    );
    for p in &pendings {
        p.run_defs(machine)?;
    }
    let mut result = Value::Void;
    for p in &pendings {
        result = p.run_init(machine)?;
    }
    Ok(result)
}

/// Recursively wires a unit: `imports` supplies a cell per import name,
/// `wanted_exports` lists the cells the caller wants this unit's exports
/// to fill. Appends the atomic constituents to `out` in initialization
/// order.
pub(crate) fn wire(
    unit: &UnitValue,
    imports: &HashMap<Symbol, CellRef>,
    wanted_exports: &HashMap<Symbol, CellRef>,
    machine: &mut Machine,
    out: &mut Vec<Pending>,
) -> Result<(), RuntimeError> {
    match unit {
        UnitValue::Restricted { inner, exports } => {
            // Only visible exports may be requested.
            for name in wanted_exports.keys() {
                if exports.val_port(name).is_none() {
                    return Err(RuntimeError::MissingProvide { name: name.clone() });
                }
            }
            wire(inner, imports, wanted_exports, machine, out)
        }
        UnitValue::Atomic(atomic) => {
            let source = &atomic.source;
            // Every import must be supplied.
            let mut frame = Vec::new();
            for port in &source.imports.vals {
                let cell = imports
                    .get(&port.name)
                    .cloned()
                    .ok_or_else(|| RuntimeError::UnsatisfiedImport { name: port.name.clone() })?;
                frame.push((port.name.clone(), Binding::Cell(cell)));
            }
            let pre_env = atomic.env.extend(frame);
            let (env, mut def_cells) = bind_letrec_frame(&source.types, &source.vals, &pre_env, machine)?;
            // Exported definitions write directly into the caller's cells.
            let defined: Vec<&Symbol> = source.vals.iter().map(|d| &d.name).collect();
            for (name, cell) in wanted_exports {
                if source.exports.val_port(name).is_none() {
                    return Err(RuntimeError::MissingProvide { name: name.clone() });
                }
                if let Some(pos) = defined.iter().position(|d| *d == name) {
                    def_cells[pos] = cell.clone();
                } else {
                    // A datatype operation export: its value exists now.
                    match env.lookup(name) {
                        Some(Binding::Val(v)) => *cell.borrow_mut() = Some(v.clone()),
                        _ => return Err(RuntimeError::MissingProvide { name: name.clone() }),
                    }
                }
            }
            // Rebind exported definitions to the caller's cells so that
            // internal references and external consumers share storage.
            let rebound: Vec<(Symbol, Binding)> = source
                .vals
                .iter()
                .zip(&def_cells)
                .map(|(d, c)| (d.name.clone(), Binding::Cell(c.clone())))
                .collect();
            let env = env.extend(rebound);
            out.push(Pending { env, source: source.clone(), def_cells });
            Ok(())
        }
        UnitValue::Linked(linked) => {
            // One cell per provided *outer* name; compound exports reuse
            // the caller's cells (linking identifies a constituent's
            // inner export name with the outer name its rename pairs
            // choose — the same name in the paper's by-name core form).
            let mut cell_of: HashMap<Symbol, CellRef> = HashMap::new();
            for lc in &linked.links {
                for port in &lc.provides.vals {
                    let outer = lc.renames.outer_export_val(&port.name).clone();
                    let cell = match wanted_exports.get(&outer) {
                        Some(c) => c.clone(),
                        None => {
                            machine.alloc_cells(1)?;
                            new_cell()
                        }
                    };
                    cell_of.insert(outer, cell);
                }
            }
            for name in wanted_exports.keys() {
                if !cell_of.contains_key(name) {
                    return Err(RuntimeError::MissingProvide { name: name.clone() });
                }
            }
            for lc in &linked.links {
                let mut constituent_imports = HashMap::new();
                for port in &lc.with.vals {
                    let outer = lc.renames.outer_import_val(&port.name);
                    let cell = imports
                        .get(outer)
                        .or_else(|| cell_of.get(outer))
                        .cloned()
                        .ok_or_else(|| RuntimeError::UnsatisfiedImport {
                            name: outer.clone(),
                        })?;
                    // The constituent sees the cell under its inner name.
                    constituent_imports.insert(port.name.clone(), cell);
                }
                let mut wanted: HashMap<Symbol, CellRef> =
                    HashMap::with_capacity(lc.provides.vals.len());
                for p in &lc.provides.vals {
                    let outer = lc.renames.outer_export_val(&p.name);
                    let cell = cell_of
                        .get(outer)
                        .cloned()
                        .ok_or_else(|| RuntimeError::MissingProvide { name: outer.clone() })?;
                    wanted.insert(p.name.clone(), cell);
                }
                wire(&lc.unit, &constituent_imports, &wanted, machine, out)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_program;
    use units_syntax::parse_expr;

    fn run(src: &str) -> Result<Value, RuntimeError> {
        let e = parse_expr(src).unwrap_or_else(|err| panic!("parse: {err}"));
        evaluate_program(&e, &mut Machine::new())
    }

    fn run_int(src: &str) -> i64 {
        match run(src) {
            Ok(Value::Int(n)) => n,
            other => panic!("expected an int, got {other:?}"),
        }
    }

    #[test]
    fn invoking_an_atomic_program() {
        assert_eq!(run_int("(invoke (unit (import) (export) (init (+ 40 2))))"), 42);
    }

    #[test]
    fn definitions_fill_cells_before_init_runs() {
        assert_eq!(
            run_int(
                "(invoke (unit (import) (export)
                   (define f (lambda (n) (* n n)))
                   (init (f 9))))"
            ),
            81
        );
    }

    #[test]
    fn dynamic_linking_supplies_imports() {
        assert_eq!(
            run_int(
                "(invoke (unit (import base) (export) (init (+ base 2)))
                         (val base 40))"
            ),
            42
        );
    }

    #[test]
    fn missing_imports_are_a_runtime_error() {
        let err = run("(invoke (unit (import x) (export) (init x)))").unwrap_err();
        assert!(matches!(err, RuntimeError::UnsatisfiedImport { name } if name.as_str() == "x"));
    }

    #[test]
    fn fig12_even_odd_mutual_recursion_across_units() {
        // The even unit and the odd unit import each other's export; the
        // compound links them cyclically (Fig. 12's example, split in two).
        let src = "(invoke (compound (import) (export)
            (link ((unit (import odd) (export even)
                     (define even (lambda (n) (if (= n 0) true (odd (- n 1)))))
                     (init void))
                   (with odd) (provides even))
                  ((unit (import even) (export odd)
                     (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
                     (init (odd 13)))
                   (with even) (provides odd)))))";
        match run(src) {
            Ok(Value::Bool(true)) => {}
            other => panic!("odd(13) should be true, got {other:?}"),
        }
    }

    #[test]
    fn initialization_expressions_run_in_link_order_after_all_definitions() {
        let src = "(invoke (compound (import) (export)
            (link ((unit (import later) (export)
                     (init (display \"first\") (later)))
                   (with later) (provides))
                  ((unit (import) (export later)
                     (define later (lambda () (display \"from-later\") void))
                     (init (display \"second\")))
                   (with) (provides later)))))";
        let mut machine = Machine::new();
        let e = parse_expr(src).unwrap();
        evaluate_program(&e, &mut machine).unwrap();
        // Unit 1's init runs before unit 2's, and can already call unit
        // 2's definition (all definitions precede all initializations).
        assert_eq!(machine.output(), ["first", "from-later", "second"]);
    }

    #[test]
    fn invocation_result_is_last_initialization_value() {
        assert_eq!(
            run_int(
                "(invoke (compound (import) (export)
                   (link ((unit (import) (export) (init 1)) (with) (provides))
                         ((unit (import) (export) (init 2)) (with) (provides)))))"
            ),
            2
        );
    }

    #[test]
    fn hidden_exports_are_invisible_but_usable_internally() {
        // delete is used inside the compound but hidden from its exports
        // (Fig. 2's PhoneBook hides Database's delete).
        let src = "(define pb (compound (import) (export get)
             (link ((unit (import) (export get delete)
                      (define get (lambda () 10))
                      (define delete (lambda () 99)))
                    (with) (provides get delete))
                   ((unit (import delete) (export use)
                      (define use (lambda () (delete))))
                    (with delete) (provides use)))))
           (invoke (unit (import get) (export) (init (get)))
                   (val get (lambda () 7)))";
        // `pb` exports only get; attempting to link against delete fails.
        let full = format!(
            "(invoke (compound (import) (export)
               (link ({pb} (with) (provides get))
                     ((unit (import get) (export) (init (get)))
                      (with get) (provides)))))",
            pb = "(compound (import) (export get)
             (link ((unit (import) (export get delete)
                      (define get (lambda () 10))
                      (define delete (lambda () 99)))
                    (with) (provides get delete))))"
        );
        assert_eq!(run_int(&full), 10);
        let _ = src;
    }

    #[test]
    fn linking_against_a_hidden_export_fails() {
        let err = run(
            "(invoke (compound (import) (export)
               (link ((compound (import) (export get)
                        (link ((unit (import) (export get delete)
                                 (define get (lambda () 10))
                                 (define delete (lambda () 99)))
                               (with) (provides get delete))))
                      (with) (provides get delete))
                     ((unit (import delete) (export) (init (delete)))
                      (with delete) (provides)))))",
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::MissingProvide { name } if name.as_str() == "delete"));
    }

    #[test]
    fn excess_imports_are_rejected_at_link_time() {
        let err = run(
            "(compound (import) (export)
               (link ((unit (import ghost) (export) (init void))
                      (with) (provides))))",
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::ExcessImport { name } if name.as_str() == "ghost"));
    }

    #[test]
    fn multiple_invocations_create_independent_instances() {
        // Each invocation gets fresh cells: the counter does not persist.
        let src = "(define u (unit (import) (export)
                      (define counter 0)
                      (init (set! counter (+ counter 1)) counter)))
                   (tuple (invoke u) (invoke u))";
        let e = units_syntax::parse_file(src).unwrap();
        let v = evaluate_program(&e, &mut Machine::new()).unwrap();
        match v {
            Value::Tuple(items) => {
                assert!(items[0].observably_eq(&Value::Int(1)));
                assert!(items[1].observably_eq(&Value::Int(1)));
            }
            other => panic!("expected tuple, got {other}"),
        }
    }

    #[test]
    fn code_is_shared_across_instances() {
        // §4.1.6: one copy of the code regardless of how many times the
        // unit is linked or invoked.
        let e = units_syntax::parse_expr(
            "(unit (import) (export) (define f (lambda () 1)) (init (f)))",
        )
        .unwrap();
        let mut machine = Machine::new();
        let v1 = evaluate_program(&e, &mut machine).unwrap();
        let v2 = evaluate_program(&e, &mut machine).unwrap();
        match (v1, v2) {
            (Value::Unit(u1), Value::Unit(u2)) => {
                assert!(Rc::ptr_eq(
                    u1.atomic_source().unwrap(),
                    u2.atomic_source().unwrap()
                ));
            }
            other => panic!("expected units, got {other:?}"),
        }
    }

    #[test]
    fn datatype_instances_do_not_mix() {
        // §5.3: two instances of `symbol` cannot unify their types.
        let src = "(define symbol (unit (import) (export mk unmk)
                      (datatype sym (mk unmk str) sym?)
                      (init (tuple mk unmk))))
                   (let ((a (invoke symbol)) (b (invoke symbol)))
                     ((proj 1 b) ((proj 0 a) \"x\")))";
        let e = units_syntax::parse_file(src).unwrap();
        let err = evaluate_program(&e, &mut Machine::new()).unwrap_err();
        assert!(matches!(err, RuntimeError::ForeignInstance { ty_name } if ty_name.as_str() == "sym"));
    }

    #[test]
    fn seal_hides_exports_at_runtime() {
        let err = run(
            "(invoke (compound (import) (export)
               (link ((seal (unit (import) (export a b)
                              (define a 1) (define b 2))
                            (sig (import) (export b) (init void)))
                      (with) (provides a)))))",
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::MissingProvide { name } if name.as_str() == "a"));
    }
}
