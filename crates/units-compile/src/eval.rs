//! The production evaluator: environment-based, with units compiled to
//! shared code over reference cells (paper §4.1.6).
//!
//! "Units are compiled by transforming them into functions. The unit's
//! imported and exported variables are implemented as first-class
//! reference cells that are externally created and passed to the function
//! when the unit is invoked. … there exists a single copy of the
//! definition and initialization code regardless of how many times the
//! unit is linked or invoked."
//!
//! Evaluating `unit …` captures the (shared) source and the lexical
//! environment; `compound` evaluates its constituents and records the
//! wiring after checking the Fig. 11 side conditions; `invoke` wires
//! cells through the whole link graph (see [`crate::instantiate`]), runs
//! every definition in order, then every initialization expression, and
//! returns the last initialization value.

use std::collections::HashMap;
use std::rc::Rc;

use units_kernel::Expr;
use units_runtime::{
    apply_data, apply_prim, as_unit, bind_letrec_frame, check_link, read_binding, seal_unit,
    AtomicUnit, Binding, Closure, Env, LinkedUnit, Machine, RuntimeError, UnitValue, Value,
};

use crate::instantiate::invoke_unit;

/// Evaluates a closed program in the empty environment.
///
/// # Errors
///
/// Returns any [`RuntimeError`] the program signals.
///
/// # Examples
///
/// ```
/// use units_compile::evaluate_program;
/// use units_runtime::{Machine, Value};
/// use units_syntax::parse_expr;
///
/// let program = parse_expr("(invoke (unit (import) (export) (init (* 6 7))))").unwrap();
/// let v = evaluate_program(&program, &mut Machine::new()).unwrap();
/// assert!(v.observably_eq(&Value::Int(42)));
/// ```
pub fn evaluate_program(expr: &Expr, machine: &mut Machine) -> Result<Value, RuntimeError> {
    units_trace::faults::trip("compile/eval")?;
    eval(expr, &Env::new(), machine)
}

/// Evaluates an expression in an environment.
///
/// # Errors
///
/// Returns any [`RuntimeError`] the expression signals, including
/// [`RuntimeError::ResourceExhausted`] when the machine's
/// [`units_runtime::Limits`] deem the evaluation too deep, too long, or
/// too allocation-hungry.
pub fn eval(expr: &Expr, env: &Env, machine: &mut Machine) -> Result<Value, RuntimeError> {
    // Rust-stack recursion in this evaluator tracks term depth, so the
    // depth budget is charged here (and in `eval_tail`): a hostile
    // program hits `ResourceExhausted` before it can overflow the stack.
    machine.enter()?;
    let result = eval_inner(expr, env, machine);
    machine.exit();
    result
}

fn eval_inner(expr: &Expr, env: &Env, machine: &mut Machine) -> Result<Value, RuntimeError> {
    machine.step()?;
    match expr {
        Expr::Var(x) => read_binding(env.lookup(x), x),
        // The resolver's fast path: direct frame/slot access, verified
        // against the name and degrading to the by-name scan on mismatch.
        Expr::VarAt(x, addr) => read_binding(env.lookup_at(x, *addr), x),
        Expr::Lit(lit) => Ok(match lit {
            units_kernel::Lit::Int(n) => Value::Int(*n),
            units_kernel::Lit::Bool(b) => Value::Bool(*b),
            units_kernel::Lit::Str(s) => Value::Str(s.clone()),
            units_kernel::Lit::Void => Value::Void,
        }),
        Expr::Prim(op, _tys) => Ok(Value::Prim(*op)),
        Expr::Lambda(lam) => {
            Ok(Value::Closure(Rc::new(Closure::new(lam.clone(), env.clone()))))
        }
        Expr::App(f, args) => {
            let func = eval(f, env, machine)?;
            let mut arg_vals = Vec::with_capacity(args.len());
            for a in args {
                arg_vals.push(eval(a, env, machine)?);
            }
            apply(func, arg_vals, machine)
        }
        Expr::If(c, t, e) => match eval(c, env, machine)? {
            Value::Bool(true) => eval(t, env, machine),
            Value::Bool(false) => eval(e, env, machine),
            other => Err(RuntimeError::WrongType {
                expected: "a boolean",
                found: other.to_string(),
            }),
        },
        Expr::Seq(es) => {
            let mut last = Value::Void;
            for e in es {
                last = eval(e, env, machine)?;
            }
            Ok(last)
        }
        Expr::Let(bindings, body) => {
            let mut frame = Vec::with_capacity(bindings.len());
            for b in bindings {
                frame.push((b.name.clone(), Binding::Val(eval(&b.expr, env, machine)?)));
            }
            eval(body, &env.extend(frame), machine)
        }
        Expr::Letrec(lr) => {
            let (inner, cells) = bind_letrec_frame(&lr.types, &lr.vals, env, machine)?;
            for (defn, cell) in lr.vals.iter().zip(&cells) {
                let v = eval(&defn.body, &inner, machine)?;
                *cell.borrow_mut() = Some(v);
            }
            eval(&lr.body, &inner, machine)
        }
        Expr::Set(target, value) => {
            let (x, binding) = match &**target {
                Expr::Var(x) => (x, env.lookup(x)),
                Expr::VarAt(x, addr) => (x, env.lookup_at(x, *addr)),
                _ => {
                    return Err(RuntimeError::WrongType {
                        expected: "an assignable variable",
                        found: "a machine-internal form".to_string(),
                    });
                }
            };
            let v = eval(value, env, machine)?;
            match binding {
                Some(Binding::Cell(c)) => {
                    *c.borrow_mut() = Some(v);
                    Ok(Value::Void)
                }
                Some(Binding::Val(_)) => Err(RuntimeError::WrongType {
                    expected: "an assignable (definition) variable",
                    found: format!("immutable binding `{x}`"),
                }),
                None => Err(RuntimeError::Unbound { name: x.clone() }),
            }
        }
        Expr::Tuple(items) => {
            let mut vs = Vec::with_capacity(items.len());
            for i in items {
                vs.push(eval(i, env, machine)?);
            }
            Ok(Value::Tuple(Rc::new(vs)))
        }
        Expr::Proj(i, e) => match eval(e, env, machine)? {
            Value::Tuple(items) => items
                .get(*i)
                .cloned()
                .ok_or(RuntimeError::BadProjection { index: *i, width: items.len() }),
            other => {
                Err(RuntimeError::WrongType { expected: "a tuple", found: other.to_string() })
            }
        },
        Expr::Unit(u) => {
            Ok(Value::Unit(Rc::new(UnitValue::Atomic(AtomicUnit::new(u.clone(), env.clone())))))
        }
        Expr::Compound(c) => {
            let mut links = Vec::with_capacity(c.links.len());
            for link in &c.links {
                let unit = as_unit(eval(&link.expr, env, machine)?, "compound")?;
                // Fig. 11 side conditions, checked at link time (shared
                // with the reducer and the bytecode VM through
                // `units_runtime::wiring`).
                check_link(&unit, &link.with, &link.provides)?;
                links.push(units_runtime::LinkedConstituent {
                    unit,
                    with: link.with.clone(),
                    provides: link.provides.clone(),
                    renames: link.renames.clone(),
                });
            }
            Ok(Value::Unit(Rc::new(UnitValue::Linked(LinkedUnit {
                imports: c.imports.clone(),
                exports: c.exports.clone(),
                links,
            }))))
        }
        Expr::Invoke(inv) => {
            let unit = as_unit(eval(&inv.target, env, machine)?, "invoke")?;
            let mut supplied = HashMap::with_capacity(inv.val_links.len());
            for (name, e) in &inv.val_links {
                supplied.insert(name.clone(), eval(e, env, machine)?);
            }
            invoke_unit(&unit, &supplied, machine)
        }
        Expr::Seal(e, sig) => {
            let unit = as_unit(eval(e, env, machine)?, "seal")?;
            Ok(Value::Unit(Rc::new(seal_unit(unit, sig)?)))
        }
        Expr::Loc(_) | Expr::CellRef(_) | Expr::Data(_) | Expr::Variant(_) => {
            Err(RuntimeError::WrongType {
                expected: "a source expression",
                found: "a machine-internal form".to_string(),
            })
        }
    }
}

/// What a body evaluation steps to: a final value, or a call in tail
/// position (bounced on [`apply`]'s trampoline so that loops written as
/// tail recursion — the only loops the language has — run in constant
/// Rust stack).
enum Tail {
    Done(Value),
    Call(Value, Vec<Value>),
}

/// Evaluates an expression, returning a tail call unbounced when the
/// expression ends in one. Tail positions: an application itself, `if`
/// branches, the last expression of a `begin`, and `let`/`letrec` bodies.
fn eval_tail(expr: &Expr, env: &Env, machine: &mut Machine) -> Result<Tail, RuntimeError> {
    machine.enter()?;
    let result = eval_tail_inner(expr, env, machine);
    machine.exit();
    result
}

fn eval_tail_inner(expr: &Expr, env: &Env, machine: &mut Machine) -> Result<Tail, RuntimeError> {
    machine.step()?;
    match expr {
        Expr::App(f, args) => {
            let func = eval(f, env, machine)?;
            let mut arg_vals = Vec::with_capacity(args.len());
            for a in args {
                arg_vals.push(eval(a, env, machine)?);
            }
            Ok(Tail::Call(func, arg_vals))
        }
        Expr::If(c, t, e) => match eval(c, env, machine)? {
            Value::Bool(true) => eval_tail(t, env, machine),
            Value::Bool(false) => eval_tail(e, env, machine),
            other => Err(RuntimeError::WrongType {
                expected: "a boolean",
                found: other.to_string(),
            }),
        },
        Expr::Seq(es) => match es.split_last() {
            None => Ok(Tail::Done(Value::Void)),
            Some((last, init)) => {
                for e in init {
                    eval(e, env, machine)?;
                }
                eval_tail(last, env, machine)
            }
        },
        Expr::Let(bindings, body) => {
            let mut frame = Vec::with_capacity(bindings.len());
            for b in bindings {
                frame.push((b.name.clone(), Binding::Val(eval(&b.expr, env, machine)?)));
            }
            eval_tail(body, &env.extend(frame), machine)
        }
        Expr::Letrec(lr) => {
            let (inner, cells) = bind_letrec_frame(&lr.types, &lr.vals, env, machine)?;
            for (defn, cell) in lr.vals.iter().zip(&cells) {
                let v = eval(&defn.body, &inner, machine)?;
                *cell.borrow_mut() = Some(v);
            }
            eval_tail(&lr.body, &inner, machine)
        }
        other => Ok(Tail::Done(eval(other, env, machine)?)),
    }
}

/// Applies a value to arguments (shared by `App` evaluation and the
/// dynamic-linking machinery). Closure applications run on a trampoline,
/// so mutual tail recursion — e.g. Fig. 12's even/odd units — consumes no
/// Rust stack.
///
/// # Errors
///
/// Returns a [`RuntimeError`] if the callee is not applicable or the
/// application violates its contract.
pub fn apply(
    mut func: Value,
    mut args: Vec<Value>,
    machine: &mut Machine,
) -> Result<Value, RuntimeError> {
    loop {
        match func {
            Value::Closure(closure) => {
                if closure.arity() != args.len() {
                    return Err(RuntimeError::Arity {
                        expected: closure.arity(),
                        found: args.len(),
                    });
                }
                let env = if args.len() == 1 {
                    let v = args.pop().expect("arity checked above");
                    closure
                        .env
                        .extend1(closure.lambda.params[0].name.clone(), Binding::Val(v))
                } else {
                    let frame = closure
                        .lambda
                        .params
                        .iter()
                        .zip(args)
                        .map(|(p, v)| (p.name.clone(), Binding::Val(v)))
                        .collect();
                    closure.env.extend(frame)
                };
                match eval_tail(&closure.lambda.body, &env, machine)? {
                    Tail::Done(v) => return Ok(v),
                    Tail::Call(f, a) => {
                        func = f;
                        args = a;
                    }
                }
            }
            Value::Prim(op) => return apply_prim(op, &args, machine),
            Value::Data(op) => return apply_data(&op, args),
            other => return Err(RuntimeError::NotAFunction { found: other.to_string() }),
        }
    }
}
