//! Lexical-address resolution: the production backend's static prepass.
//!
//! The cells evaluator (§4.1.6) represents scopes as a linked list of
//! frames, and the seed implementation looked every variable up by
//! scanning that list name-by-name. But a variable's binding frame and
//! slot are fully determined by the program's *binder structure* — lambda
//! parameter lists, `let` bindings, `letrec`/unit definition blocks and
//! unit import clauses — so they can be computed once, before evaluation,
//! exactly the way a production compiler assigns stack slots.
//!
//! [`resolve_program`] walks an [`Expr`] maintaining a compile-time mirror
//! of the runtime frame stack and rewrites every [`Expr::Var`] whose
//! binder it can see into an [`Expr::VarAt`] carrying a [`LexAddr`]
//! `(depth, slot)`. The evaluator then reads the binding with
//! [`units_runtime::Env::lookup_at`] — a pointer walk plus one index —
//! instead of a scan.
//!
//! **The by-name fallback contract.** Resolution is an optimization, never
//! a semantic requirement:
//!
//! * variables whose binder is not statically visible (free variables of
//!   dynamically linked plug-in bodies, archive-loaded code that never
//!   went through this pass) stay plain [`Expr::Var`] and evaluate through
//!   the by-name scan, unchanged;
//! * every [`Expr::VarAt`] keeps its symbol, and the runtime *verifies*
//!   the addressed slot holds that name (one interned-id compare),
//!   degrading to the by-name scan on any mismatch — a stale address can
//!   cost time, never correctness;
//! * the substitution reducer (`units-reduce`) never consumes resolved
//!   code; its defensive `VarAt` arms treat the form exactly like `Var`.
//!
//! The compile-time frame mirror must match [`crate::eval`] and
//! [`crate::instantiate`] frame-for-frame:
//!
//! * `let` pushes one frame of its binders (right-hand sides resolve in
//!   the outer scope);
//! * `letrec` pushes one frame: per datatype, constructor and
//!   deconstructor per variant then the predicate, followed by one slot
//!   per value definition (the order `bind_letrec_frame` builds);
//! * closure application pushes one frame of the lambda's parameters;
//! * invoking an atomic unit pushes **three** frames (see `wire`): the
//!   import cells, the `letrec` frame of internal definitions, and the
//!   export-rebinding frame holding one slot per value definition.

use std::sync::Arc;

use units_kernel::{
    Binding, CompoundExpr, Expr, InvokeExpr, Lambda, LetrecExpr, LexAddr, LinkClause, Symbol,
    TypeDefn, UnitExpr, ValDefn,
};

/// The compile-time mirror of the runtime frame stack.
#[derive(Default)]
struct Scope {
    frames: Vec<Vec<Symbol>>,
}

impl Scope {
    fn push(&mut self, names: Vec<Symbol>) {
        self.frames.push(names);
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    /// The address of `name`'s binding, innermost frame first. Within a
    /// frame later bindings shadow earlier ones (the runtime scans each
    /// frame back-to-front), hence `rposition`.
    fn resolve(&self, name: &Symbol) -> Option<LexAddr> {
        for (depth, frame) in self.frames.iter().rev().enumerate() {
            if let Some(slot) = frame.iter().rposition(|n| n == name) {
                return Some(LexAddr { depth: depth as u32, slot: slot as u32 });
            }
        }
        None
    }
}

/// The names `bind_letrec_frame` binds, in its frame order: per datatype,
/// each variant's constructor then deconstructor, then the predicate;
/// after all datatypes, one slot per value definition.
fn letrec_frame_names(types: &[TypeDefn], vals: &[ValDefn]) -> Vec<Symbol> {
    let mut names = Vec::new();
    for td in types {
        if let TypeDefn::Data(d) = td {
            for v in &d.variants {
                names.push(v.ctor.clone());
                names.push(v.dtor.clone());
            }
            names.push(d.predicate.clone());
        }
    }
    names.extend(vals.iter().map(|d| d.name.clone()));
    names
}

/// Resolves every statically addressable variable in a closed program.
/// Idempotent; free variables and machine-internal forms pass through
/// unchanged.
pub fn resolve_program(expr: &Expr) -> Expr {
    let _timer = units_trace::time("resolve");
    go(expr, &mut Scope::default())
}

fn go(expr: &Expr, scope: &mut Scope) -> Expr {
    match expr {
        Expr::Var(x) => match scope.resolve(x) {
            Some(addr) => {
                units_trace::count("resolve/resolved", 1);
                Expr::VarAt(x.clone(), addr)
            }
            None => {
                units_trace::count("resolve/free", 1);
                expr.clone()
            }
        },
        // Re-resolving resolved code recomputes the address in the
        // current scope (making the pass idempotent at the top level).
        Expr::VarAt(x, _) => match scope.resolve(x) {
            Some(addr) => Expr::VarAt(x.clone(), addr),
            None => Expr::Var(x.clone()),
        },
        Expr::Lit(_) | Expr::Prim(..) | Expr::Loc(_) | Expr::CellRef(_) | Expr::Data(_)
        | Expr::Variant(_) => expr.clone(),
        Expr::Lambda(lam) => {
            scope.push(lam.params.iter().map(|p| p.name.clone()).collect());
            let body = go(&lam.body, scope);
            scope.pop();
            Expr::Lambda(Arc::new(Lambda {
                params: lam.params.clone(),
                ret_ty: lam.ret_ty.clone(),
                body,
            }))
        }
        Expr::App(f, args) => Expr::App(
            Box::new(go(f, scope)),
            args.iter().map(|a| go(a, scope)).collect(),
        ),
        Expr::If(c, t, e) => Expr::If(
            Box::new(go(c, scope)),
            Box::new(go(t, scope)),
            Box::new(go(e, scope)),
        ),
        Expr::Seq(es) => Expr::Seq(es.iter().map(|e| go(e, scope)).collect()),
        Expr::Let(bindings, body) => {
            let new_bindings: Vec<Binding> = bindings
                .iter()
                .map(|b| Binding { name: b.name.clone(), expr: go(&b.expr, scope) })
                .collect();
            scope.push(bindings.iter().map(|b| b.name.clone()).collect());
            let body = go(body, scope);
            scope.pop();
            Expr::Let(new_bindings, Box::new(body))
        }
        Expr::Letrec(lr) => {
            scope.push(letrec_frame_names(&lr.types, &lr.vals));
            let vals = resolve_vals(&lr.vals, scope);
            let body = go(&lr.body, scope);
            scope.pop();
            Expr::Letrec(Arc::new(LetrecExpr { types: lr.types.clone(), vals, body }))
        }
        Expr::Set(target, value) => Expr::Set(
            Box::new(go(target, scope)),
            Box::new(go(value, scope)),
        ),
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| go(e, scope)).collect()),
        Expr::Proj(i, e) => Expr::Proj(*i, Box::new(go(e, scope))),
        Expr::Unit(u) => {
            // Mirror `wire` on an atomic unit: imports frame, then the
            // internal letrec frame, then the export-rebinding frame.
            scope.push(u.imports.vals.iter().map(|p| p.name.clone()).collect());
            scope.push(letrec_frame_names(&u.types, &u.vals));
            scope.push(u.vals.iter().map(|d| d.name.clone()).collect());
            let vals = resolve_vals(&u.vals, scope);
            let init = go(&u.init, scope);
            scope.pop();
            scope.pop();
            scope.pop();
            Expr::Unit(Arc::new(UnitExpr {
                imports: u.imports.clone(),
                exports: u.exports.clone(),
                types: u.types.clone(),
                vals,
                init,
            }))
        }
        Expr::Compound(c) => Expr::Compound(Arc::new(CompoundExpr {
            imports: c.imports.clone(),
            exports: c.exports.clone(),
            links: c
                .links
                .iter()
                .map(|l| LinkClause {
                    expr: go(&l.expr, scope),
                    with: l.with.clone(),
                    provides: l.provides.clone(),
                    renames: l.renames.clone(),
                })
                .collect(),
        })),
        Expr::Invoke(inv) => Expr::Invoke(Arc::new(InvokeExpr {
            target: go(&inv.target, scope),
            ty_links: inv.ty_links.clone(),
            val_links: inv
                .val_links
                .iter()
                .map(|(n, e)| (n.clone(), go(e, scope)))
                .collect(),
        })),
        Expr::Seal(e, sig) => Expr::Seal(Box::new(go(e, scope)), sig.clone()),
    }
}

/// Resolves definition bodies in the scope already pushed by the caller.
fn resolve_vals(vals: &[ValDefn], scope: &mut Scope) -> Vec<ValDefn> {
    vals.iter()
        .map(|d| ValDefn { name: d.name.clone(), ty: d.ty.clone(), body: go(&d.body, scope) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use units_kernel::Param;

    fn addr(depth: u32, slot: u32) -> LexAddr {
        LexAddr { depth, slot }
    }

    #[test]
    fn free_variables_stay_by_name() {
        let e = Expr::var("loose");
        assert_eq!(resolve_program(&e), Expr::var("loose"));
    }

    #[test]
    fn lambda_params_resolve_at_depth_zero() {
        let e = Expr::lambda(
            vec![Param::untyped("a"), Param::untyped("b")],
            Expr::Tuple(vec![Expr::var("b"), Expr::var("a"), Expr::var("free")]),
        );
        let Expr::Lambda(lam) = resolve_program(&e) else { panic!() };
        let Expr::Tuple(items) = &lam.body else { panic!() };
        assert_eq!(items[0], Expr::VarAt("b".into(), addr(0, 1)));
        assert_eq!(items[1], Expr::VarAt("a".into(), addr(0, 0)));
        assert_eq!(items[2], Expr::var("free"));
    }

    #[test]
    fn let_rhs_sees_outer_scope_only() {
        // (fn (x) ⇒ let x = x in x): the RHS `x` is the parameter
        // (depth 0 from the RHS's view), the body `x` is the let binding.
        let e = Expr::lambda(
            vec![Param::untyped("x")],
            Expr::Let(
                vec![Binding { name: "x".into(), expr: Expr::var("x") }],
                Box::new(Expr::var("x")),
            ),
        );
        let Expr::Lambda(lam) = resolve_program(&e) else { panic!() };
        let Expr::Let(bindings, body) = &lam.body else { panic!() };
        assert_eq!(bindings[0].expr, Expr::VarAt("x".into(), addr(0, 0)));
        assert_eq!(**body, Expr::VarAt("x".into(), addr(0, 0)));
    }

    #[test]
    fn same_frame_shadowing_takes_the_last_slot() {
        let e = Expr::Let(
            vec![
                Binding { name: "x".into(), expr: Expr::int(1) },
                Binding { name: "x".into(), expr: Expr::int(2) },
            ],
            Box::new(Expr::var("x")),
        );
        let Expr::Let(_, body) = resolve_program(&e) else { panic!() };
        assert_eq!(*body, Expr::VarAt("x".into(), addr(0, 1)));
    }

    #[test]
    fn resolution_is_idempotent() {
        let e = Expr::lambda(vec![Param::untyped("x")], Expr::var("x"));
        let once = resolve_program(&e);
        assert_eq!(resolve_program(&once), once);
    }

    #[test]
    fn unit_bodies_resolve_under_three_frames() {
        // unit (import base) (export f) (define f (fn () ⇒ base)) (init f):
        // from the init's view, frame 0 is the rebound definitions
        // (holding f), frame 2 is the imports (holding base).
        let src = "(unit (import base) (export f)
                     (define f (lambda () base))
                     (init f))";
        let e = units_syntax::parse_expr(src).unwrap();
        let Expr::Unit(u) = resolve_program(&e) else { panic!() };
        assert_eq!(u.init, Expr::VarAt("f".into(), addr(0, 0)));
        let Expr::Lambda(lam) = &u.vals[0].body else { panic!() };
        // Inside the lambda one more frame is pushed at application time.
        assert_eq!(lam.body, Expr::VarAt("base".into(), addr(3, 0)));
    }

    #[test]
    fn letrec_frame_orders_data_ops_before_vals() {
        let src = "(letrec ((datatype t (mk unmk int) t?)
                            (define v 1))
                     (tuple mk unmk t? v))";
        let e = units_syntax::parse_expr(src).unwrap();
        let Expr::Letrec(lr) = resolve_program(&e) else { panic!() };
        let Expr::Tuple(items) = &lr.body else { panic!() };
        assert_eq!(items[0], Expr::VarAt("mk".into(), addr(0, 0)));
        assert_eq!(items[1], Expr::VarAt("unmk".into(), addr(0, 1)));
        assert_eq!(items[2], Expr::VarAt("t?".into(), addr(0, 2)));
        assert_eq!(items[3], Expr::VarAt("v".into(), addr(0, 3)));
    }
}
