//! Separate-compilation artifacts: checked units on disk.
//!
//! The paper's opening requirement is that "a unit's interface provides
//! enough information for the separate compilation of the unit". This
//! module makes that workflow concrete for the file system, the way `.o`
//! files and header files do for C (§2's "traditional view of modules as
//! compilation units"), but with *checked* interfaces:
//!
//! * [`publish_unit`] checks a unit source and writes two files: the unit
//!   itself (`NAME.unit`) and its derived interface (`NAME.usig`, a
//!   pretty-printed signature);
//! * [`load_interface`] reads just the `.usig` — a client can be
//!   developed and checked against the interface while the provider's
//!   source is absent, unfinished, or proprietary;
//! * [`load_unit`] reads and re-checks a `.unit` file at link time,
//!   verifying it still satisfies its published interface (the provider
//!   may have been swapped for a newer build — individual replacement).
//!
//! Interfaces round-trip through the surface syntax rather than a binary
//! format, so they are diffable and human-auditable.

use std::fmt;
use std::path::{Path, PathBuf};

use units_check::{check_program, subtype, CheckError, CheckOptions, Equations, Level};
use units_kernel::{Expr, Signature, Ty};
use units_syntax::{parse_expr, parse_signature, pretty_signature, ParseError};

/// Why publishing or loading an artifact failed.
#[derive(Debug)]
pub enum ArtifactError {
    /// Reading or writing a file failed.
    Io(std::io::Error),
    /// A source or interface file does not parse.
    Parse(ParseError),
    /// The unit fails checking.
    Check(Vec<CheckError>),
    /// The expression is not a unit at a typed level.
    NotAUnit,
    /// The unit no longer satisfies its published interface.
    InterfaceViolation {
        /// The subtype checker's explanation.
        reason: String,
    },
    /// A fault deliberately fired by an armed
    /// `units_trace::faults::FaultPlane` schedule during the operation.
    Injected {
        /// The injection point that fired.
        site: &'static str,
        /// The 1-based trip count at that site when it fired.
        hit: u64,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O failed: {e}"),
            ArtifactError::Parse(e) => write!(f, "artifact does not parse: {e}"),
            ArtifactError::Check(errs) => {
                write!(f, "artifact fails checking")?;
                for e in errs {
                    write!(f, ": {e}")?;
                }
                Ok(())
            }
            ArtifactError::NotAUnit => f.write_str("artifact is not a unit"),
            ArtifactError::InterfaceViolation { reason } => {
                write!(f, "unit no longer satisfies its published interface: {reason}")
            }
            ArtifactError::Injected { site, hit } => {
                write!(f, "injected fault at {site} (hit {hit})")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<ParseError> for ArtifactError {
    fn from(e: ParseError) -> Self {
        ArtifactError::Parse(e)
    }
}

/// Paths of a published artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Published {
    /// The unit source file (`NAME.unit`).
    pub unit_path: PathBuf,
    /// The interface file (`NAME.usig`).
    pub interface_path: PathBuf,
}

/// Checks `source` at the given level and writes `NAME.unit` plus
/// `NAME.usig` into `dir`.
///
/// # Errors
///
/// Fails if the source does not parse, does not check, is not a unit, or
/// the files cannot be written.
///
/// # Examples
///
/// ```
/// use units_compile::{publish_unit, load_interface};
/// use units_check::{CheckOptions, Level};
/// let dir = std::env::temp_dir().join(format!("units-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let published = publish_unit(
///     &dir, "adder",
///     "(unit (import) (export (add (-> int int int)))
///        (define add (-> int int int) (lambda ((a int) (b int)) (+ a b))))",
///     CheckOptions::typed(Level::Constructed),
/// ).unwrap();
/// let interface = load_interface(&published.interface_path).unwrap();
/// assert!(interface.exports.val_port(&"add".into()).is_some());
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub fn publish_unit(
    dir: &Path,
    name: &str,
    source: &str,
    opts: CheckOptions,
) -> Result<Published, ArtifactError> {
    units_trace::faults::trip("compile/artifact")
        .map_err(|f| ArtifactError::Injected { site: f.site, hit: f.hit })?;
    let expr = parse_expr(source)?;
    let sig = signature_of(&expr, opts)?;
    let unit_path = dir.join(format!("{name}.unit"));
    let interface_path = dir.join(format!("{name}.usig"));
    std::fs::write(&unit_path, source)?;
    std::fs::write(&interface_path, pretty_signature(&sig))?;
    Ok(Published { unit_path, interface_path })
}

/// Reads a published interface — all a client needs for its own checking.
///
/// # Errors
///
/// Fails on I/O or parse errors.
pub fn load_interface(path: &Path) -> Result<Signature, ArtifactError> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_signature(&text)?)
}

/// Reads a `.unit` file, re-checks it, and verifies it (still) satisfies
/// the published interface next to it. Returns the checked unit
/// expression, ready to link.
///
/// # Errors
///
/// Fails if either file is unreadable or unparsable, if the unit no
/// longer checks, or if its derived signature is not a subtype of the
/// published interface.
pub fn load_unit(published: &Published, opts: CheckOptions) -> Result<Expr, ArtifactError> {
    units_trace::faults::trip("compile/artifact")
        .map_err(|f| ArtifactError::Injected { site: f.site, hit: f.hit })?;
    let source = std::fs::read_to_string(&published.unit_path)?;
    let expr = parse_expr(&source)?;
    let actual = signature_of(&expr, opts)?;
    let declared = load_interface(&published.interface_path)?;
    subtype(
        &Equations::new(),
        &Ty::Sig(Box::new(actual)),
        &Ty::Sig(Box::new(declared)),
    )
    .map_err(|e| ArtifactError::InterfaceViolation { reason: e.to_string() })?;
    Ok(expr)
}

/// The derived signature of a unit expression at a typed level; at
/// [`Level::Untyped`] a name-only signature is synthesized from the
/// unit's interface (types are `None`-free in the untyped calculus, so
/// the `.usig` records just the port names).
fn signature_of(expr: &Expr, opts: CheckOptions) -> Result<Signature, ArtifactError> {
    match opts.level {
        Level::Untyped => {
            check_program(expr, opts).map_err(ArtifactError::Check)?;
            let Expr::Unit(u) = expr else {
                return Err(ArtifactError::NotAUnit);
            };
            Ok(Signature::new(u.imports.clone(), u.exports.clone(), Ty::Void))
        }
        _ => {
            let ty = check_program(expr, opts).map_err(ArtifactError::Check)?;
            match ty.and_then(|t| t.as_sig().cloned()) {
                Some(sig) => Ok(sig),
                None => Err(ArtifactError::NotAUnit),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("units-artifact-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const PROVIDER: &str = "(unit (import) (export (add (-> int int int)))
        (define add (-> int int int) (lambda ((a int) (b int)) (+ a b))))";

    #[test]
    fn publish_then_load_round_trips() {
        let dir = tmp("round");
        let published =
            publish_unit(&dir, "adder", PROVIDER, CheckOptions::typed(Level::Constructed))
                .unwrap();
        let interface = load_interface(&published.interface_path).unwrap();
        assert_eq!(
            interface.exports.val_port(&"add".into()).unwrap().ty,
            Some(Ty::arrow(vec![Ty::Int, Ty::Int], Ty::Int))
        );
        let unit = load_unit(&published, CheckOptions::typed(Level::Constructed)).unwrap();
        assert!(matches!(unit, Expr::Unit(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clients_check_against_the_interface_alone() {
        let dir = tmp("client");
        let published =
            publish_unit(&dir, "adder", PROVIDER, CheckOptions::typed(Level::Constructed))
                .unwrap();
        // Delete the provider source: the interface survives.
        std::fs::remove_file(&published.unit_path).unwrap();
        let interface = load_interface(&published.interface_path).unwrap();
        let add_ty = interface.exports.val_port(&"add".into()).unwrap().ty.clone().unwrap();
        // The client is a unit importing `add` at the published type.
        let client = format!(
            "(unit (import (add {ty})) (export (double (-> int int)))
               (define double (-> int int) (lambda ((n int)) (add n n))))",
            ty = units_syntax::pretty_ty(&add_ty)
        );
        check_program(
            &parse_expr(&client).unwrap(),
            CheckOptions::typed(Level::Constructed),
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn swapped_providers_are_reverified_at_link_time() {
        let dir = tmp("swap");
        let published =
            publish_unit(&dir, "adder", PROVIDER, CheckOptions::typed(Level::Constructed))
                .unwrap();
        // A compatible replacement (exports more): accepted.
        std::fs::write(
            &published.unit_path,
            "(unit (import) (export (add (-> int int int)) (zero int))
               (define add (-> int int int) (lambda ((a int) (b int)) (+ a b)))
               (define zero int 0))",
        )
        .unwrap();
        load_unit(&published, CheckOptions::typed(Level::Constructed)).unwrap();
        // An incompatible replacement (wrong type): refused.
        std::fs::write(
            &published.unit_path,
            "(unit (import) (export (add (-> int int)))
               (define add (-> int int) (lambda ((a int)) a)))",
        )
        .unwrap();
        let err = load_unit(&published, CheckOptions::typed(Level::Constructed)).unwrap_err();
        assert!(matches!(err, ArtifactError::InterfaceViolation { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn untyped_artifacts_record_port_names() {
        let dir = tmp("untyped");
        let published = publish_unit(
            &dir,
            "counter",
            "(unit (import seed) (export get)
               (define get (lambda () seed)))",
            CheckOptions::untyped(),
        )
        .unwrap();
        let interface = load_interface(&published.interface_path).unwrap();
        assert!(interface.imports.val_port(&"seed".into()).is_some());
        assert!(interface.exports.val_port(&"get".into()).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn broken_sources_are_refused_at_publish_time() {
        let dir = tmp("broken");
        assert!(matches!(
            publish_unit(&dir, "x", "(unit (import", CheckOptions::untyped()),
            Err(ArtifactError::Parse(_))
        ));
        assert!(matches!(
            publish_unit(
                &dir,
                "x",
                "(unit (import) (export ghost))",
                CheckOptions::untyped()
            ),
            Err(ArtifactError::Check(_))
        ));
        assert!(matches!(
            publish_unit(&dir, "x", "42", CheckOptions::typed(Level::Constructed)),
            Err(ArtifactError::NotAUnit)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
