//! α-equivalence of terms.
//!
//! The `compound` reduction (Fig. 11) renames a constituent's internal
//! definitions with fresh names, so tests that compare a reduced compound
//! against the expected merged unit (Fig. 8) must compare *up to consistent
//! renaming of bound names*. Interface names — a unit's imports and
//! exports, a signature's ports — are not renamable and must match
//! literally, exactly as in the paper.

use crate::sig::{Ports, Signature};
use crate::symbol::Symbol;
use crate::term::{Expr, TypeDefn};
use crate::ty::Ty;

/// Tracks the correspondence between bound names on the two sides.
#[derive(Default)]
struct AlphaEnv {
    vals: Vec<(Symbol, Symbol)>,
    tys: Vec<(Symbol, Symbol)>,
}

impl AlphaEnv {
    fn with_vals<R>(&mut self, pairs: Vec<(Symbol, Symbol)>, f: impl FnOnce(&mut Self) -> R) -> R {
        let depth = self.vals.len();
        self.vals.extend(pairs);
        let r = f(self);
        self.vals.truncate(depth);
        r
    }

    fn with_tys<R>(&mut self, pairs: Vec<(Symbol, Symbol)>, f: impl FnOnce(&mut Self) -> R) -> R {
        let depth = self.tys.len();
        self.tys.extend(pairs);
        let r = f(self);
        self.tys.truncate(depth);
        r
    }

    fn val_eq(&self, a: &Symbol, b: &Symbol) -> bool {
        for (l, r) in self.vals.iter().rev() {
            if l == a || r == b {
                return l == a && r == b;
            }
        }
        a == b
    }

    fn ty_eq(&self, a: &Symbol, b: &Symbol) -> bool {
        for (l, r) in self.tys.iter().rev() {
            if l == a || r == b {
                return l == a && r == b;
            }
        }
        a == b
    }
}

/// Returns `true` when the two expressions are equal up to consistent
/// renaming of bound (non-interface) names.
///
/// # Examples
///
/// ```
/// use units_kernel::{alpha_eq, Expr, Param};
/// let f = Expr::lambda(vec![Param::untyped("x")], Expr::var("x"));
/// let g = Expr::lambda(vec![Param::untyped("y")], Expr::var("y"));
/// assert!(alpha_eq(&f, &g));
/// let h = Expr::lambda(vec![Param::untyped("x")], Expr::var("z"));
/// assert!(!alpha_eq(&f, &h));
/// ```
pub fn alpha_eq(a: &Expr, b: &Expr) -> bool {
    eq_expr(a, b, &mut AlphaEnv::default())
}

/// α-equivalence for types (bound names arise only inside signatures, whose
/// interface names must match literally).
pub fn alpha_eq_ty(a: &Ty, b: &Ty) -> bool {
    eq_ty(a, b, &mut AlphaEnv::default())
}

fn eq_opt_ty(a: &Option<Ty>, b: &Option<Ty>, env: &mut AlphaEnv) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => eq_ty(a, b, env),
        _ => false,
    }
}

fn eq_ty(a: &Ty, b: &Ty, env: &mut AlphaEnv) -> bool {
    match (a, b) {
        (Ty::Var(x), Ty::Var(y)) => env.ty_eq(x, y),
        (Ty::Int, Ty::Int) | (Ty::Bool, Ty::Bool) | (Ty::Str, Ty::Str) | (Ty::Void, Ty::Void) => {
            true
        }
        (Ty::Arrow(p1, r1), Ty::Arrow(p2, r2)) => {
            p1.len() == p2.len()
                && p1.iter().zip(p2).all(|(x, y)| eq_ty(x, y, env))
                && eq_ty(r1, r2, env)
        }
        (Ty::Tuple(x), Ty::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(x, y)| eq_ty(x, y, env))
        }
        (Ty::Hash(x), Ty::Hash(y)) => eq_ty(x, y, env),
        (Ty::Sig(s1), Ty::Sig(s2)) => eq_sig(s1, s2, env),
        _ => false,
    }
}

fn eq_sig(a: &Signature, b: &Signature, env: &mut AlphaEnv) -> bool {
    let bound_a = a.bound_ty_vars();
    let bound_b = b.bound_ty_vars();
    if bound_a != bound_b {
        return false;
    }
    let identity: Vec<(Symbol, Symbol)> =
        bound_a.iter().map(|t| (t.clone(), t.clone())).collect();
    env.with_tys(identity, |env| {
        eq_ports(&a.imports, &b.imports, env)
            && eq_ports(&a.exports, &b.exports, env)
            && a.depend_set() == b.depend_set()
            && a.equations.len() == b.equations.len()
            && a.equations.iter().zip(&b.equations).all(|(x, y)| {
                x.name == y.name && x.kind == y.kind && eq_ty(&x.body, &y.body, env)
            })
            && eq_ty(&a.init_ty, &b.init_ty, env)
    })
}

fn eq_ports(a: &Ports, b: &Ports, env: &mut AlphaEnv) -> bool {
    a.types.len() == b.types.len()
        && a.vals.len() == b.vals.len()
        && a.types.iter().zip(&b.types).all(|(x, y)| x.name == y.name && x.kind == y.kind)
        && a.vals
            .iter()
            .zip(&b.vals)
            .all(|(x, y)| x.name == y.name && eq_opt_ty(&x.ty, &y.ty, env))
}

/// Pairs of corresponding bound names on the two sides.
type NamePairs = Vec<(Symbol, Symbol)>;

fn typedefn_pairs(a: &[TypeDefn], b: &[TypeDefn]) -> Option<(NamePairs, NamePairs)> {
    if a.len() != b.len() {
        return None;
    }
    let mut ty_pairs = Vec::new();
    let mut val_pairs = Vec::new();
    for (x, y) in a.iter().zip(b) {
        match (x, y) {
            (TypeDefn::Data(dx), TypeDefn::Data(dy)) => {
                if dx.variants.len() != dy.variants.len() {
                    return None;
                }
                ty_pairs.push((dx.name.clone(), dy.name.clone()));
                for (vx, vy) in dx.variants.iter().zip(&dy.variants) {
                    val_pairs.push((vx.ctor.clone(), vy.ctor.clone()));
                    val_pairs.push((vx.dtor.clone(), vy.dtor.clone()));
                }
                val_pairs.push((dx.predicate.clone(), dy.predicate.clone()));
            }
            (TypeDefn::Alias(ax), TypeDefn::Alias(ay)) => {
                if ax.kind != ay.kind {
                    return None;
                }
                ty_pairs.push((ax.name.clone(), ay.name.clone()));
            }
            _ => return None,
        }
    }
    Some((ty_pairs, val_pairs))
}

fn eq_typedefn_bodies(a: &[TypeDefn], b: &[TypeDefn], env: &mut AlphaEnv) -> bool {
    a.iter().zip(b).all(|(x, y)| match (x, y) {
        (TypeDefn::Data(dx), TypeDefn::Data(dy)) => dx
            .variants
            .iter()
            .zip(&dy.variants)
            .all(|(vx, vy)| eq_ty(&vx.payload, &vy.payload, env)),
        (TypeDefn::Alias(ax), TypeDefn::Alias(ay)) => eq_ty(&ax.body, &ay.body, env),
        _ => false,
    })
}

fn eq_expr(a: &Expr, b: &Expr, env: &mut AlphaEnv) -> bool {
    match (a, b) {
        (Expr::Var(x), Expr::Var(y)) => env.val_eq(x, y),
        // Addresses are derived data; α-equivalence compares the names.
        (Expr::VarAt(x, _), Expr::VarAt(y, _))
        | (Expr::VarAt(x, _), Expr::Var(y))
        | (Expr::Var(x), Expr::VarAt(y, _)) => env.val_eq(x, y),
        (Expr::Lit(x), Expr::Lit(y)) => x == y,
        (Expr::Prim(px, tx), Expr::Prim(py, ty)) => {
            px == py && tx.len() == ty.len() && tx.iter().zip(ty).all(|(x, y)| eq_ty(x, y, env))
        }
        (Expr::Lambda(la), Expr::Lambda(lb)) => {
            la.params.len() == lb.params.len()
                && la
                    .params
                    .iter()
                    .zip(&lb.params)
                    .all(|(x, y)| eq_opt_ty(&x.ty, &y.ty, env))
                && eq_opt_ty(&la.ret_ty, &lb.ret_ty, env)
                && {
                    let pairs = la
                        .params
                        .iter()
                        .zip(&lb.params)
                        .map(|(x, y)| (x.name.clone(), y.name.clone()))
                        .collect();
                    env.with_vals(pairs, |env| eq_expr(&la.body, &lb.body, env))
                }
        }
        (Expr::App(f1, a1), Expr::App(f2, a2)) => {
            eq_expr(f1, f2, env)
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| eq_expr(x, y, env))
        }
        (Expr::If(c1, t1, e1), Expr::If(c2, t2, e2)) => {
            eq_expr(c1, c2, env) && eq_expr(t1, t2, env) && eq_expr(e1, e2, env)
        }
        (Expr::Seq(x), Expr::Seq(y)) | (Expr::Tuple(x), Expr::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(x, y)| eq_expr(x, y, env))
        }
        (Expr::Let(b1, body1), Expr::Let(b2, body2)) => {
            b1.len() == b2.len()
                && b1.iter().zip(b2).all(|(x, y)| eq_expr(&x.expr, &y.expr, env))
                && {
                    let pairs =
                        b1.iter().zip(b2).map(|(x, y)| (x.name.clone(), y.name.clone())).collect();
                    env.with_vals(pairs, |env| eq_expr(body1, body2, env))
                }
        }
        (Expr::Letrec(l1), Expr::Letrec(l2)) => {
            if l1.vals.len() != l2.vals.len() {
                return false;
            }
            let Some((ty_pairs, mut val_pairs)) = typedefn_pairs(&l1.types, &l2.types) else {
                return false;
            };
            val_pairs
                .extend(l1.vals.iter().zip(&l2.vals).map(|(x, y)| (x.name.clone(), y.name.clone())));
            env.with_tys(ty_pairs, |env| {
                env.with_vals(val_pairs, |env| {
                    eq_typedefn_bodies(&l1.types, &l2.types, env)
                        && l1.vals.iter().zip(&l2.vals).all(|(x, y)| {
                            eq_opt_ty(&x.ty, &y.ty, env) && eq_expr(&x.body, &y.body, env)
                        })
                        && eq_expr(&l1.body, &l2.body, env)
                })
            })
        }
        (Expr::Set(t1, v1), Expr::Set(t2, v2)) => eq_expr(t1, t2, env) && eq_expr(v1, v2, env),
        (Expr::Proj(i1, e1), Expr::Proj(i2, e2)) => i1 == i2 && eq_expr(e1, e2, env),
        (Expr::Unit(u1), Expr::Unit(u2)) => {
            if u1.vals.len() != u2.vals.len() {
                return false;
            }
            // Interface names must match literally.
            if !eq_ports(&u1.imports, &u2.imports, env)
                || !eq_ports(&u1.exports, &u2.exports, env)
            {
                return false;
            }
            let Some((ty_pairs, mut val_pairs)) = typedefn_pairs(&u1.types, &u2.types) else {
                return false;
            };
            // Imported names are part of the interface: identity pairs.
            let mut pairs: Vec<(Symbol, Symbol)> = u1
                .imports
                .vals
                .iter()
                .map(|p| (p.name.clone(), p.name.clone()))
                .collect();
            val_pairs
                .extend(u1.vals.iter().zip(&u2.vals).map(|(x, y)| (x.name.clone(), y.name.clone())));
            // Exported definitions keep their interface names: a pair
            // (a, b) with a ≠ b where either is exported is a mismatch.
            let exported = u1.exports.val_names();
            for (x, y) in &val_pairs {
                if (exported.contains(x) || exported.contains(y)) && x != y {
                    return false;
                }
            }
            pairs.extend(val_pairs);
            let mut ty_pairs_all: Vec<(Symbol, Symbol)> = u1
                .imports
                .types
                .iter()
                .map(|p| (p.name.clone(), p.name.clone()))
                .collect();
            let exported_tys = u1.exports.ty_names();
            for (x, y) in &ty_pairs {
                if (exported_tys.contains(x) || exported_tys.contains(y)) && x != y {
                    return false;
                }
            }
            ty_pairs_all.extend(ty_pairs);
            env.with_tys(ty_pairs_all, |env| {
                env.with_vals(pairs, |env| {
                    eq_typedefn_bodies(&u1.types, &u2.types, env)
                        && u1.vals.iter().zip(&u2.vals).all(|(x, y)| {
                            eq_opt_ty(&x.ty, &y.ty, env) && eq_expr(&x.body, &y.body, env)
                        })
                        && eq_expr(&u1.init, &u2.init, env)
                })
            })
        }
        (Expr::Compound(c1), Expr::Compound(c2)) => {
            eq_ports(&c1.imports, &c2.imports, env)
                && eq_ports(&c1.exports, &c2.exports, env)
                && c1.links.len() == c2.links.len()
                && c1.links.iter().zip(&c2.links).all(|(x, y)| {
                    eq_ports(&x.with, &y.with, env)
                        && eq_ports(&x.provides, &y.provides, env)
                        && eq_expr(&x.expr, &y.expr, env)
                })
        }
        (Expr::Invoke(i1), Expr::Invoke(i2)) => {
            eq_expr(&i1.target, &i2.target, env)
                && i1.ty_links.len() == i2.ty_links.len()
                && i1
                    .ty_links
                    .iter()
                    .zip(&i2.ty_links)
                    .all(|((n1, t1), (n2, t2))| n1 == n2 && eq_ty(t1, t2, env))
                && i1.val_links.len() == i2.val_links.len()
                && i1
                    .val_links
                    .iter()
                    .zip(&i2.val_links)
                    .all(|((n1, e1), (n2, e2))| n1 == n2 && eq_expr(e1, e2, env))
        }
        (Expr::Seal(e1, s1), Expr::Seal(e2, s2)) => eq_expr(e1, e2, env) && eq_sig(s1, s2, env),
        (Expr::Loc(l1), Expr::Loc(l2)) => l1 == l2,
        (Expr::CellRef(l1), Expr::CellRef(l2)) => l1 == l2,
        (Expr::Data(d1), Expr::Data(d2)) => {
            d1.role == d2.role && d1.instance == d2.instance && d1.ty_name == d2.ty_name
        }
        (Expr::Variant(v1), Expr::Variant(v2)) => {
            v1.instance == v2.instance
                && v1.tag == v2.tag
                && v1.ty_name == v2.ty_name
                && eq_expr(&v1.payload, &v2.payload, env)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Ports;
    use crate::term::{Param, UnitExpr, ValDefn};

    #[test]
    fn identical_terms_are_alpha_equal() {
        let e = Expr::app(Expr::var("f"), vec![Expr::int(1)]);
        assert!(alpha_eq(&e, &e));
    }

    #[test]
    fn bound_renaming_is_equal_free_renaming_is_not() {
        let f = Expr::lambda(vec![Param::untyped("a")], Expr::var("a"));
        let g = Expr::lambda(vec![Param::untyped("b")], Expr::var("b"));
        assert!(alpha_eq(&f, &g));
        assert!(!alpha_eq(&Expr::var("a"), &Expr::var("b")));
    }

    #[test]
    fn inconsistent_renaming_is_rejected() {
        // fn (x y) ⇒ x   vs   fn (a b) ⇒ b
        let f = Expr::lambda(vec![Param::untyped("x"), Param::untyped("y")], Expr::var("x"));
        let g = Expr::lambda(vec![Param::untyped("a"), Param::untyped("b")], Expr::var("b"));
        assert!(!alpha_eq(&f, &g));
    }

    #[test]
    fn unit_internal_definitions_rename_but_interfaces_do_not() {
        let mk = |def: &str| {
            Expr::unit(UnitExpr {
                imports: Ports::new(),
                exports: Ports::untyped(Vec::<&str>::new(), ["go"]),
                types: vec![],
                vals: vec![
                    ValDefn { name: def.into(), ty: None, body: Expr::thunk(Expr::int(1)) },
                    ValDefn {
                        name: "go".into(),
                        ty: None,
                        body: Expr::thunk(Expr::app(Expr::var(def), vec![])),
                    },
                ],
                init: Expr::void(),
            })
        };
        assert!(alpha_eq(&mk("helper"), &mk("helper#1")));

        // Renaming the *export* is an interface change.
        let other = Expr::unit(UnitExpr {
            imports: Ports::new(),
            exports: Ports::untyped(Vec::<&str>::new(), ["run"]),
            types: vec![],
            vals: vec![
                ValDefn { name: "h".into(), ty: None, body: Expr::thunk(Expr::int(1)) },
                ValDefn {
                    name: "run".into(),
                    ty: None,
                    body: Expr::thunk(Expr::app(Expr::var("h"), vec![])),
                },
            ],
            init: Expr::void(),
        });
        assert!(!alpha_eq(&mk("helper"), &other));
    }

    #[test]
    fn shadowing_is_tracked_lexically() {
        // fn (x) ⇒ fn (x) ⇒ x   vs   fn (a) ⇒ fn (b) ⇒ b
        let f = Expr::lambda(
            vec![Param::untyped("x")],
            Expr::lambda(vec![Param::untyped("x")], Expr::var("x")),
        );
        let g = Expr::lambda(
            vec![Param::untyped("a")],
            Expr::lambda(vec![Param::untyped("b")], Expr::var("b")),
        );
        assert!(alpha_eq(&f, &g));

        // fn (a) ⇒ fn (b) ⇒ a is different.
        let h = Expr::lambda(
            vec![Param::untyped("a")],
            Expr::lambda(vec![Param::untyped("b")], Expr::var("a")),
        );
        assert!(!alpha_eq(&f, &h));
    }

    #[test]
    fn sig_types_require_matching_interface_names() {
        let s1 = Signature::new(Ports::untyped(["t"], Vec::<&str>::new()), Ports::new(), Ty::Void);
        let s2 = Signature::new(Ports::untyped(["u"], Vec::<&str>::new()), Ports::new(), Ty::Void);
        assert!(alpha_eq_ty(&Ty::sig(s1.clone()), &Ty::sig(s1.clone())));
        assert!(!alpha_eq_ty(&Ty::sig(s1), &Ty::sig(s2)));
    }
}
