//! α-invariant hashing of terms.
//!
//! [`alpha_hash`] computes a hash that is *consistent with*
//! [`crate::alpha_eq`]: two α-equivalent terms always hash alike, so the
//! hash can key a content-addressed cache of checked artifacts (the
//! engine in the `units` facade) with [`crate::alpha_eq`] as the
//! collision-confirming comparison. The traversal mirrors `alpha.rs`
//! exactly: bound (renamable) names hash by their position in the
//! lexical scope stack, while free names and interface names — ports,
//! signature type variables — hash by symbol.
//!
//! The hash is only stable within one process (it hashes interned
//! [`Symbol`]s); it is not a serialization format.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::sig::{Ports, Signature};
use crate::symbol::Symbol;
use crate::term::{Expr, TypeDefn};
use crate::ty::Ty;

/// The lexical scope stack: one side of `alpha.rs`'s `AlphaEnv`.
#[derive(Default)]
struct Scope {
    vals: Vec<Symbol>,
    tys: Vec<Symbol>,
}

impl Scope {
    fn with_vals<R>(&mut self, names: Vec<Symbol>, f: impl FnOnce(&mut Self) -> R) -> R {
        let depth = self.vals.len();
        self.vals.extend(names);
        let r = f(self);
        self.vals.truncate(depth);
        r
    }

    fn with_tys<R>(&mut self, names: Vec<Symbol>, f: impl FnOnce(&mut Self) -> R) -> R {
        let depth = self.tys.len();
        self.tys.extend(names);
        let r = f(self);
        self.tys.truncate(depth);
        r
    }

    /// Hashes a value-variable occurrence: the innermost binding's stack
    /// index when bound (the same frame `AlphaEnv::val_eq` resolves to),
    /// the symbol itself when free.
    fn hash_val(&self, name: &Symbol, h: &mut impl Hasher) {
        match self.vals.iter().rposition(|n| n == name) {
            Some(i) => (0u8, i).hash(h),
            None => (1u8, name).hash(h),
        }
    }

    fn hash_ty_var(&self, name: &Symbol, h: &mut impl Hasher) {
        match self.tys.iter().rposition(|n| n == name) {
            Some(i) => (0u8, i).hash(h),
            None => (1u8, name).hash(h),
        }
    }
}

/// Hashes `expr` up to consistent renaming of bound (non-interface)
/// names: `alpha_eq(a, b)` implies `alpha_hash(a) == alpha_hash(b)`.
/// The converse is not guaranteed — callers confirm candidate matches
/// with [`crate::alpha_eq`].
///
/// # Examples
///
/// ```
/// use units_kernel::{alpha_hash, Expr, Param};
/// let f = Expr::lambda(vec![Param::untyped("x")], Expr::var("x"));
/// let g = Expr::lambda(vec![Param::untyped("y")], Expr::var("y"));
/// assert_eq!(alpha_hash(&f), alpha_hash(&g));
/// ```
pub fn alpha_hash(expr: &Expr) -> u64 {
    let mut h = DefaultHasher::new();
    hash_expr(expr, &mut Scope::default(), &mut h);
    h.finish()
}

fn hash_opt_ty(ty: &Option<Ty>, env: &mut Scope, h: &mut impl Hasher) {
    match ty {
        None => 0u8.hash(h),
        Some(t) => {
            1u8.hash(h);
            hash_ty(t, env, h);
        }
    }
}

fn hash_ty(ty: &Ty, env: &mut Scope, h: &mut impl Hasher) {
    match ty {
        Ty::Var(x) => {
            0u8.hash(h);
            env.hash_ty_var(x, h);
        }
        Ty::Int => 1u8.hash(h),
        Ty::Bool => 2u8.hash(h),
        Ty::Str => 3u8.hash(h),
        Ty::Void => 4u8.hash(h),
        Ty::Arrow(params, ret) => {
            (5u8, params.len()).hash(h);
            for p in params {
                hash_ty(p, env, h);
            }
            hash_ty(ret, env, h);
        }
        Ty::Tuple(items) => {
            (6u8, items.len()).hash(h);
            for t in items {
                hash_ty(t, env, h);
            }
        }
        Ty::Hash(t) => {
            7u8.hash(h);
            hash_ty(t, env, h);
        }
        Ty::Sig(sig) => {
            8u8.hash(h);
            hash_sig(sig, env, h);
        }
    }
}

fn hash_sig(sig: &Signature, env: &mut Scope, h: &mut impl Hasher) {
    // Signature-bound type names must match literally under α-equivalence
    // (`eq_sig` rejects differing `bound_ty_vars` sets), so hash the set
    // itself and push the names as in-scope identities.
    let bound = sig.bound_ty_vars();
    bound.hash(h);
    env.with_tys(bound.into_iter().collect(), |env| {
        hash_ports(&sig.imports, env, h);
        hash_ports(&sig.exports, env, h);
        sig.depend_set().hash(h);
        sig.equations.len().hash(h);
        for eq in &sig.equations {
            (&eq.name, &eq.kind).hash(h);
            hash_ty(&eq.body, env, h);
        }
        hash_ty(&sig.init_ty, env, h);
    });
}

fn hash_ports(ports: &Ports, env: &mut Scope, h: &mut impl Hasher) {
    // Interface names are not renamable: hash them literally.
    ports.types.len().hash(h);
    for p in &ports.types {
        (&p.name, &p.kind).hash(h);
    }
    ports.vals.len().hash(h);
    for p in &ports.vals {
        p.name.hash(h);
        hash_opt_ty(&p.ty, env, h);
    }
}

/// The names a typedefn list binds, split as (type names, value names) —
/// the single-sided form of `alpha.rs`'s `typedefn_pairs`, including the
/// structural facts (`variants.len()`, alias kinds) that `typedefn_pairs`
/// checks while pairing.
fn typedefn_names(defns: &[TypeDefn], h: &mut impl Hasher) -> (Vec<Symbol>, Vec<Symbol>) {
    let mut ty_names = Vec::new();
    let mut val_names = Vec::new();
    defns.len().hash(h);
    for d in defns {
        match d {
            TypeDefn::Data(d) => {
                (0u8, d.variants.len()).hash(h);
                ty_names.push(d.name.clone());
                for v in &d.variants {
                    val_names.push(v.ctor.clone());
                    val_names.push(v.dtor.clone());
                }
                val_names.push(d.predicate.clone());
            }
            TypeDefn::Alias(a) => {
                (1u8, &a.kind).hash(h);
                ty_names.push(a.name.clone());
            }
        }
    }
    (ty_names, val_names)
}

fn hash_typedefn_bodies(defns: &[TypeDefn], env: &mut Scope, h: &mut impl Hasher) {
    for d in defns {
        match d {
            TypeDefn::Data(d) => {
                for v in &d.variants {
                    hash_ty(&v.payload, env, h);
                }
            }
            TypeDefn::Alias(a) => hash_ty(&a.body, env, h),
        }
    }
}

fn hash_expr(expr: &Expr, env: &mut Scope, h: &mut impl Hasher) {
    match expr {
        // `Var` and `VarAt` are α-equivalent when the names correspond
        // (addresses are derived data), so they share a tag and the
        // address is not hashed.
        Expr::Var(x) | Expr::VarAt(x, _) => {
            0u8.hash(h);
            env.hash_val(x, h);
        }
        Expr::Lit(l) => {
            1u8.hash(h);
            match l {
                crate::term::Lit::Int(n) => (0u8, n).hash(h),
                crate::term::Lit::Bool(b) => (1u8, b).hash(h),
                crate::term::Lit::Str(s) => (2u8, &**s).hash(h),
                crate::term::Lit::Void => 3u8.hash(h),
            }
        }
        Expr::Prim(op, tys) => {
            (2u8, op, tys.len()).hash(h);
            for t in tys {
                hash_ty(t, env, h);
            }
        }
        Expr::Lambda(l) => {
            (3u8, l.params.len()).hash(h);
            for p in &l.params {
                hash_opt_ty(&p.ty, env, h);
            }
            hash_opt_ty(&l.ret_ty, env, h);
            let names = l.params.iter().map(|p| p.name.clone()).collect();
            env.with_vals(names, |env| hash_expr(&l.body, env, h));
        }
        Expr::App(f, args) => {
            (4u8, args.len()).hash(h);
            hash_expr(f, env, h);
            for a in args {
                hash_expr(a, env, h);
            }
        }
        Expr::If(c, t, e) => {
            5u8.hash(h);
            hash_expr(c, env, h);
            hash_expr(t, env, h);
            hash_expr(e, env, h);
        }
        Expr::Seq(items) => {
            (6u8, items.len()).hash(h);
            for e in items {
                hash_expr(e, env, h);
            }
        }
        Expr::Tuple(items) => {
            (7u8, items.len()).hash(h);
            for e in items {
                hash_expr(e, env, h);
            }
        }
        Expr::Let(bindings, body) => {
            (8u8, bindings.len()).hash(h);
            for b in bindings {
                hash_expr(&b.expr, env, h);
            }
            let names = bindings.iter().map(|b| b.name.clone()).collect();
            env.with_vals(names, |env| hash_expr(body, env, h));
        }
        Expr::Letrec(l) => {
            (9u8, l.vals.len()).hash(h);
            let (ty_names, mut val_names) = typedefn_names(&l.types, h);
            val_names.extend(l.vals.iter().map(|v| v.name.clone()));
            env.with_tys(ty_names, |env| {
                env.with_vals(val_names, |env| {
                    hash_typedefn_bodies(&l.types, env, h);
                    for v in &l.vals {
                        hash_opt_ty(&v.ty, env, h);
                        hash_expr(&v.body, env, h);
                    }
                    hash_expr(&l.body, env, h);
                })
            });
        }
        Expr::Set(target, value) => {
            10u8.hash(h);
            hash_expr(target, env, h);
            hash_expr(value, env, h);
        }
        Expr::Proj(i, e) => {
            (11u8, i).hash(h);
            hash_expr(e, env, h);
        }
        Expr::Unit(u) => {
            (12u8, u.vals.len()).hash(h);
            hash_ports(&u.imports, env, h);
            hash_ports(&u.exports, env, h);
            let (ty_names, mut val_names) = typedefn_names(&u.types, h);
            val_names.extend(u.vals.iter().map(|v| v.name.clone()));
            let mut vals_in_scope: Vec<Symbol> =
                u.imports.vals.iter().map(|p| p.name.clone()).collect();
            vals_in_scope.extend(val_names);
            let mut tys_in_scope: Vec<Symbol> =
                u.imports.types.iter().map(|p| p.name.clone()).collect();
            tys_in_scope.extend(ty_names);
            env.with_tys(tys_in_scope, |env| {
                env.with_vals(vals_in_scope, |env| {
                    hash_typedefn_bodies(&u.types, env, h);
                    for v in &u.vals {
                        hash_opt_ty(&v.ty, env, h);
                        hash_expr(&v.body, env, h);
                    }
                    hash_expr(&u.init, env, h);
                })
            });
        }
        Expr::Compound(c) => {
            (13u8, c.links.len()).hash(h);
            hash_ports(&c.imports, env, h);
            hash_ports(&c.exports, env, h);
            for link in &c.links {
                hash_ports(&link.with, env, h);
                hash_ports(&link.provides, env, h);
                hash_expr(&link.expr, env, h);
            }
        }
        Expr::Invoke(i) => {
            (14u8, i.ty_links.len(), i.val_links.len()).hash(h);
            hash_expr(&i.target, env, h);
            for (name, ty) in &i.ty_links {
                name.hash(h);
                hash_ty(ty, env, h);
            }
            for (name, e) in &i.val_links {
                name.hash(h);
                hash_expr(e, env, h);
            }
        }
        Expr::Seal(e, sig) => {
            15u8.hash(h);
            hash_expr(e, env, h);
            hash_sig(sig, env, h);
        }
        Expr::Loc(l) => (16u8, l).hash(h),
        Expr::CellRef(l) => (17u8, l).hash(h),
        Expr::Data(d) => (18u8, &d.role, d.instance, &d.ty_name).hash(h),
        Expr::Variant(v) => {
            (19u8, v.instance, v.tag, &v.ty_name).hash(h);
            hash_expr(&v.payload, env, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::alpha_eq;
    use crate::sig::Ports;
    use crate::term::{Param, UnitExpr, ValDefn};

    #[test]
    fn alpha_equal_terms_hash_alike() {
        let f = Expr::lambda(vec![Param::untyped("x")], Expr::var("x"));
        let g = Expr::lambda(vec![Param::untyped("y")], Expr::var("y"));
        assert!(alpha_eq(&f, &g));
        assert_eq!(alpha_hash(&f), alpha_hash(&g));
    }

    #[test]
    fn free_variable_renaming_changes_the_hash() {
        assert_ne!(alpha_hash(&Expr::var("a")), alpha_hash(&Expr::var("b")));
    }

    #[test]
    fn inconsistent_renaming_is_distinguished() {
        // fn (x y) ⇒ x   vs   fn (a b) ⇒ b
        let f = Expr::lambda(vec![Param::untyped("x"), Param::untyped("y")], Expr::var("x"));
        let g = Expr::lambda(vec![Param::untyped("a"), Param::untyped("b")], Expr::var("b"));
        assert_ne!(alpha_hash(&f), alpha_hash(&g));
    }

    #[test]
    fn shadowing_resolves_to_the_innermost_binder() {
        let f = Expr::lambda(
            vec![Param::untyped("x")],
            Expr::lambda(vec![Param::untyped("x")], Expr::var("x")),
        );
        let g = Expr::lambda(
            vec![Param::untyped("a")],
            Expr::lambda(vec![Param::untyped("b")], Expr::var("b")),
        );
        assert!(alpha_eq(&f, &g));
        assert_eq!(alpha_hash(&f), alpha_hash(&g));
        let h = Expr::lambda(
            vec![Param::untyped("a")],
            Expr::lambda(vec![Param::untyped("b")], Expr::var("a")),
        );
        assert_ne!(alpha_hash(&f), alpha_hash(&h));
    }

    #[test]
    fn unit_internal_renaming_hashes_alike_interface_renaming_does_not() {
        let mk = |def: &str, export: &str| {
            Expr::unit(UnitExpr {
                imports: Ports::new(),
                exports: Ports::untyped(Vec::<&str>::new(), [export]),
                types: vec![],
                vals: vec![
                    ValDefn { name: def.into(), ty: None, body: Expr::thunk(Expr::int(1)) },
                    ValDefn {
                        name: export.into(),
                        ty: None,
                        body: Expr::thunk(Expr::app(Expr::var(def), vec![])),
                    },
                ],
                init: Expr::void(),
            })
        };
        assert_eq!(alpha_hash(&mk("helper", "go")), alpha_hash(&mk("helper#1", "go")));
        assert_ne!(alpha_hash(&mk("helper", "go")), alpha_hash(&mk("helper", "run")));
    }

    #[test]
    fn var_and_varat_hash_alike() {
        use crate::term::LexAddr;
        let plain = Expr::lambda(vec![Param::untyped("x")], Expr::var("x"));
        let addressed = Expr::lambda(
            vec![Param::untyped("x")],
            Expr::VarAt("x".into(), LexAddr { depth: 0, slot: 0 }),
        );
        assert!(alpha_eq(&plain, &addressed));
        assert_eq!(alpha_hash(&plain), alpha_hash(&addressed));
    }
}
