//! Signatures — the types of unit values (paper §3.3, Figs. 13 and 16).
//!
//! A signature `sig imports exports [depends] τ` records everything needed
//! to verify a unit's linkage without its definitions: the kinds and types
//! of its imports, the kinds and types of its exports, dependency
//! declarations between exported and imported types (UNITe, Fig. 16), and
//! the type of its initialization expression.
//!
//! UNITe's translucent-type extension (§5.1, Fig. 20) is modelled by an
//! `equations` section: exported type abbreviations whose right-hand side is
//! visible to clients.

use std::collections::BTreeSet;
use std::fmt;

use crate::kind::Kind;
use crate::symbol::Symbol;
use crate::ty::Ty;

/// A declared type port: `t :: κ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TyPort {
    /// The type variable's name.
    pub name: Symbol,
    /// Its kind (always `Ω` in the paper's calculi).
    pub kind: Kind,
}

impl TyPort {
    /// A port of kind `Ω` with the given name.
    pub fn star(name: impl Into<Symbol>) -> TyPort {
        TyPort { name: name.into(), kind: Kind::Star }
    }
}

/// A declared value port: `x : τ`.
///
/// In the dynamically typed calculus UNITd the type annotation is absent,
/// so `ty` is optional; the UNITc/UNITe checkers require it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ValPort {
    /// The value variable's name.
    pub name: Symbol,
    /// Its declared type; `None` in UNITd programs.
    pub ty: Option<Ty>,
}

impl ValPort {
    /// An untyped (UNITd) port.
    pub fn untyped(name: impl Into<Symbol>) -> ValPort {
        ValPort { name: name.into(), ty: None }
    }

    /// A typed (UNITc/UNITe) port.
    pub fn typed(name: impl Into<Symbol>, ty: Ty) -> ValPort {
        ValPort { name: name.into(), ty: Some(ty) }
    }
}

/// One side of a unit's interface: a set of type ports and value ports.
///
/// Used for unit `import`/`export` clauses, signature `import`/`export`
/// clauses, and compound `with`/`provides` clauses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Ports {
    /// Type ports `t :: κ`.
    pub types: Vec<TyPort>,
    /// Value ports `x : τ` (or just `x` in UNITd).
    pub vals: Vec<ValPort>,
}

impl Ports {
    /// An empty interface side.
    pub fn new() -> Ports {
        Ports::default()
    }

    /// Builds a side from type names (all of kind `Ω`) and untyped value
    /// names — convenient for UNITd programs and tests.
    pub fn untyped<T, V>(types: T, vals: V) -> Ports
    where
        T: IntoIterator,
        T::Item: Into<Symbol>,
        V: IntoIterator,
        V::Item: Into<Symbol>,
    {
        Ports {
            types: types.into_iter().map(|t| TyPort::star(t.into())).collect(),
            vals: vals.into_iter().map(|v| ValPort::untyped(v.into())).collect(),
        }
    }

    /// True when there are no ports at all.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty() && self.vals.is_empty()
    }

    /// Total number of ports.
    pub fn len(&self) -> usize {
        self.types.len() + self.vals.len()
    }

    /// Looks up a type port by name.
    pub fn ty_port(&self, name: &Symbol) -> Option<&TyPort> {
        self.types.iter().find(|p| &p.name == name)
    }

    /// Looks up a value port by name.
    pub fn val_port(&self, name: &Symbol) -> Option<&ValPort> {
        self.vals.iter().find(|p| &p.name == name)
    }

    /// Iterator over all port names, types first.
    pub fn names(&self) -> impl Iterator<Item = &Symbol> {
        self.types.iter().map(|p| &p.name).chain(self.vals.iter().map(|p| &p.name))
    }

    /// The set of type-port names.
    pub fn ty_names(&self) -> BTreeSet<Symbol> {
        self.types.iter().map(|p| p.name.clone()).collect()
    }

    /// The set of value-port names.
    pub fn val_names(&self) -> BTreeSet<Symbol> {
        self.vals.iter().map(|p| p.name.clone()).collect()
    }
}

/// A UNITe dependency declaration `t_e ↝ t_i`: the exported type `export`
/// depends on the imported type `import` (paper §4.3).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Depend {
    /// The exported type that has the dependency.
    pub export: Symbol,
    /// The imported type it depends on.
    pub import: Symbol,
}

impl Depend {
    /// `export ↝ import`.
    pub fn new(export: impl Into<Symbol>, import: impl Into<Symbol>) -> Depend {
        Depend { export: export.into(), import: import.into() }
    }
}

impl fmt::Display for Depend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ↝ {}", self.export, self.import)
    }
}

/// An exported, visible type abbreviation `t :: κ = τ` carried in a
/// signature — the translucent types of §5.1 (Fig. 20).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SigEquation {
    /// The abbreviation's name.
    pub name: Symbol,
    /// Its kind.
    pub kind: Kind,
    /// The visible right-hand side.
    pub body: Ty,
}

/// The type of a unit value: `sig imports exports [depends] [equations] τ_b`.
///
/// # Examples
///
/// ```
/// use units_kernel::{Ports, Signature, Ty, TyPort, ValPort};
/// // sig import info::Ω error:str→void export db::Ω new:void→db  :void
/// let sig = Signature {
///     imports: Ports {
///         types: vec![TyPort::star("info")],
///         vals: vec![ValPort::typed("error", Ty::arrow(vec![Ty::Str], Ty::Void))],
///     },
///     exports: Ports {
///         types: vec![TyPort::star("db")],
///         vals: vec![ValPort::typed("new", Ty::thunk(Ty::var("db")))],
///     },
///     depends: vec![],
///     equations: vec![],
///     init_ty: Ty::Void,
/// };
/// assert!(sig.exports.ty_port(&"db".into()).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Imported type and value ports.
    pub imports: Ports,
    /// Exported type and value ports.
    pub exports: Ports,
    /// UNITe dependency declarations `t_e ↝ t_i`.
    pub depends: Vec<Depend>,
    /// Translucent exported abbreviations (§5.1).
    pub equations: Vec<SigEquation>,
    /// The type of the unit's initialization expression.
    pub init_ty: Ty,
}

impl Signature {
    /// A signature with empty interfaces and a `void` initialization type.
    pub fn empty() -> Signature {
        Signature {
            imports: Ports::new(),
            exports: Ports::new(),
            depends: Vec::new(),
            equations: Vec::new(),
            init_ty: Ty::Void,
        }
    }

    /// Convenience constructor without dependencies or equations.
    pub fn new(imports: Ports, exports: Ports, init_ty: Ty) -> Signature {
        Signature { imports, exports, depends: Vec::new(), equations: Vec::new(), init_ty }
    }

    /// All type variables bound by this signature: its imported and
    /// exported type ports plus its visible equations.
    pub fn bound_ty_vars(&self) -> BTreeSet<Symbol> {
        let mut bound: BTreeSet<Symbol> = self.imports.ty_names();
        bound.extend(self.exports.ty_names());
        bound.extend(self.equations.iter().map(|eq| eq.name.clone()));
        bound
    }

    /// Collects type variables that occur in the signature's type
    /// expressions but are *not* bound by its own import/export/equation
    /// clauses (cf. Fig. 18's `FTV`).
    pub fn free_ty_vars_unbound(&self, out: &mut BTreeSet<Symbol>) {
        let bound = self.bound_ty_vars();
        let mut occurring = BTreeSet::new();
        for port in self.imports.vals.iter().chain(self.exports.vals.iter()) {
            if let Some(ty) = &port.ty {
                ty.free_ty_vars(&mut occurring);
            }
        }
        for eq in &self.equations {
            eq.body.free_ty_vars(&mut occurring);
        }
        self.init_ty.free_ty_vars(&mut occurring);
        out.extend(occurring.into_iter().filter(|t| !bound.contains(t)));
    }

    /// The depend pairs as a set, for subtype comparisons (Fig. 17).
    pub fn depend_set(&self) -> BTreeSet<Depend> {
        self.depends.iter().cloned().collect()
    }

    /// True when the unit needs nothing from its context — a *program* in
    /// the paper's terminology ("a complete program is a unit without
    /// imports").
    pub fn is_program(&self) -> bool {
        self.imports.is_empty()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn side(f: &mut fmt::Formatter<'_>, label: &str, ports: &Ports) -> fmt::Result {
            write!(f, " {label}")?;
            for t in &ports.types {
                write!(f, " {}::{}", t.name, t.kind)?;
            }
            for v in &ports.vals {
                match &v.ty {
                    Some(ty) => write!(f, " {}:{}", v.name, ty)?,
                    None => write!(f, " {}", v.name)?,
                }
            }
            Ok(())
        }
        f.write_str("sig")?;
        side(f, "import", &self.imports)?;
        side(f, "export", &self.exports)?;
        if !self.depends.is_empty() {
            f.write_str(" depends")?;
            for d in &self.depends {
                write!(f, " {d}")?;
            }
        }
        if !self.equations.is_empty() {
            f.write_str(" where")?;
            for eq in &self.equations {
                write!(f, " {}::{} = {}", eq.name, eq.kind, eq.body)?;
            }
        }
        write!(f, " :{}", self.init_ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_sig() -> Signature {
        Signature {
            imports: Ports {
                types: vec![TyPort::star("info")],
                vals: vec![ValPort::typed("error", Ty::arrow(vec![Ty::Str], Ty::Void))],
            },
            exports: Ports {
                types: vec![TyPort::star("db")],
                vals: vec![
                    ValPort::typed("new", Ty::thunk(Ty::var("db"))),
                    ValPort::typed(
                        "insert",
                        Ty::arrow(vec![Ty::var("db"), Ty::Str, Ty::var("info")], Ty::Void),
                    ),
                ],
            },
            depends: vec![],
            equations: vec![],
            init_ty: Ty::Void,
        }
    }

    #[test]
    fn bound_vars_cover_both_sides() {
        let sig = db_sig();
        let bound = sig.bound_ty_vars();
        assert!(bound.contains("info"));
        assert!(bound.contains("db"));
    }

    #[test]
    fn sig_with_only_bound_vars_has_no_free_vars() {
        let sig = db_sig();
        let mut free = BTreeSet::new();
        sig.free_ty_vars_unbound(&mut free);
        assert!(free.is_empty(), "unexpected free vars: {free:?}");
    }

    #[test]
    fn sig_reports_leaking_type_variables() {
        let mut sig = db_sig();
        sig.exports.vals.push(ValPort::typed("mystery", Ty::var("elsewhere")));
        let mut free = BTreeSet::new();
        sig.free_ty_vars_unbound(&mut free);
        assert!(free.contains("elsewhere"));
    }

    #[test]
    fn program_means_no_imports() {
        assert!(Signature::empty().is_program());
        assert!(!db_sig().is_program());
    }

    #[test]
    fn display_is_readable() {
        let shown = db_sig().to_string();
        assert!(shown.starts_with("sig import info::Ω error:str→void export db::Ω"));
        assert!(shown.ends_with(":void"));
    }

    #[test]
    fn ports_lookup_by_name() {
        let sig = db_sig();
        assert!(sig.exports.val_port(&"insert".into()).is_some());
        assert!(sig.exports.val_port(&"delete".into()).is_none());
        assert_eq!(sig.exports.len(), 3);
        assert!(!sig.exports.is_empty());
    }

    #[test]
    fn untyped_ports_builder() {
        let p = Ports::untyped(["info"], ["error", "print"]);
        assert_eq!(p.types.len(), 1);
        assert_eq!(p.vals.len(), 2);
        assert!(p.vals.iter().all(|v| v.ty.is_none()));
    }
}
