//! Kernel data structures of the *program units* language from
//! Flatt & Felleisen, **"Units: Cool Modules for HOT Languages"**
//! (PLDI 1998).
//!
//! This crate defines the abstract syntax shared by every other crate in
//! the workspace:
//!
//! * [`Symbol`] and [`NameGen`] — identifiers and fresh-name generation;
//! * [`Kind`], [`Ty`], [`Signature`] — the type sub-language of UNITc and
//!   UNITe (paper Figs. 13/16);
//! * [`Expr`] and friends — terms of all three calculi (Figs. 9/13/16),
//!   including the machine-internal value forms used by the substitution
//!   reducer;
//! * [`free_val_vars`], [`subst_vals`], [`subst_ty`], [`alpha_eq`] — the
//!   binding-aware operations the semantics is built from.
//!
//! # Example
//!
//! Build the even/odd unit of paper Fig. 12 programmatically:
//!
//! ```
//! use units_kernel::*;
//!
//! let even_odd = Expr::unit(UnitExpr {
//!     imports: Ports::untyped(Vec::<&str>::new(), ["even"]),
//!     exports: Ports::untyped(Vec::<&str>::new(), ["odd"]),
//!     types: vec![],
//!     vals: vec![ValDefn {
//!         name: "odd".into(),
//!         ty: None,
//!         body: Expr::lambda(
//!             vec![Param::untyped("n")],
//!             Expr::if_(
//!                 Expr::prim2(PrimOp::NumEq, Expr::var("n"), Expr::int(0)),
//!                 Expr::bool(false),
//!                 Expr::app(
//!                     Expr::var("even"),
//!                     vec![Expr::prim2(PrimOp::Sub, Expr::var("n"), Expr::int(1))],
//!                 ),
//!             ),
//!         ),
//!     }],
//!     init: Expr::app(Expr::var("odd"), vec![Expr::int(13)]),
//! });
//! assert!(even_odd.is_value());
//! assert!(free_val_vars(&even_odd).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alpha;
mod free;
mod hash;
mod kind;
mod sig;
mod subst;
mod symbol;
mod term;
mod ty;

pub use alpha::{alpha_eq, alpha_eq_ty};
pub use hash::alpha_hash;
pub use free::{free_ty_vars_expr, free_val_vars};
pub use kind::Kind;
pub use sig::{Depend, Ports, SigEquation, Signature, TyPort, ValPort};
pub use subst::{subst_ty, subst_ty_in_sig, subst_vals, CaptureError, ValSubst};
pub use symbol::{NameGen, Symbol};
pub use term::{
    AliasDefn, Binding, CompoundExpr, DataDefn, DataOp, DataRole, DataVariant, Expr, InvokeExpr,
    Lambda, LetrecExpr, LexAddr, LinkClause, LinkRenames, Lit, Loc, Param, PrimOp, TypeDefn,
    UnitExpr, ValDefn, VariantVal, ALL_PRIMS,
};
pub use ty::Ty;
