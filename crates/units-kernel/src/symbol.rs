//! Interned-ish identifiers and fresh-name generation.
//!
//! The calculi distinguish *value variables* (`x` in the paper) from *type
//! variables* (`t`), but both are represented by [`Symbol`]: a cheaply
//! clonable, hashable name. The two namespaces are kept apart by the data
//! structures that contain them, exactly as in the paper's grammars.
//!
//! Fresh names are produced by [`NameGen`], which appends `#N` to a base
//! name. The surface lexer rejects `#` inside identifiers, so generated
//! names can never collide with source names.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An identifier in the unit language (value variable, type variable,
/// datatype constructor, signature port name, ...).
///
/// `Symbol` is a thin wrapper around a shared string: cloning is one atomic
/// increment, comparison is string comparison. This is plenty for an
/// interpreter-scale implementation and keeps the kernel free of global
/// interner state.
///
/// # Examples
///
/// ```
/// use units_kernel::Symbol;
/// let a = Symbol::new("insert");
/// let b = Symbol::from("insert");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "insert");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// Returns the symbol's textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns `true` if this symbol was produced by a [`NameGen`]
    /// (contains the reserved `#` character).
    pub fn is_generated(&self) -> bool {
        self.0.contains('#')
    }

    /// Returns the base name of a generated symbol (the part before `#`),
    /// or the whole name for a source symbol.
    ///
    /// ```
    /// use units_kernel::{NameGen, Symbol};
    /// let mut gen = NameGen::new();
    /// let fresh = gen.fresh(&Symbol::new("db"));
    /// assert_eq!(fresh.base(), "db");
    /// ```
    pub fn base(&self) -> &str {
        match self.0.find('#') {
            Some(i) => &self.0[..i],
            None => &self.0,
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol(Arc::from(s.as_str()))
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A generator of names guaranteed not to clash with source identifiers.
///
/// Used by the `compound` reduction (Fig. 11) to α-rename a constituent
/// unit's internal definitions before merging, and by capture-avoiding
/// substitution.
///
/// # Examples
///
/// ```
/// use units_kernel::{NameGen, Symbol};
/// let mut gen = NameGen::new();
/// let x = Symbol::new("x");
/// let x1 = gen.fresh(&x);
/// let x2 = gen.fresh(&x);
/// assert_ne!(x1, x2);
/// assert!(x1.is_generated());
/// ```
#[derive(Debug, Default, Clone)]
pub struct NameGen {
    counter: u64,
}

impl NameGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        NameGen::default()
    }

    /// Produces a fresh symbol derived from `base`. Two calls never return
    /// the same symbol, and no returned symbol can be written in source
    /// syntax.
    pub fn fresh(&mut self, base: &Symbol) -> Symbol {
        self.counter += 1;
        Symbol::new(format!("{}#{}", base.base(), self.counter))
    }

    /// Produces a fresh symbol with a literal base name.
    pub fn fresh_named(&mut self, base: &str) -> Symbol {
        self.counter += 1;
        Symbol::new(format!("{base}#{}", self.counter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn symbols_compare_by_content() {
        assert_eq!(Symbol::new("a"), Symbol::from("a".to_string()));
        assert_ne!(Symbol::new("a"), Symbol::new("b"));
    }

    #[test]
    fn symbols_order_lexicographically() {
        assert!(Symbol::new("aa") < Symbol::new("ab"));
    }

    #[test]
    fn generated_names_are_unique() {
        let mut gen = NameGen::new();
        let base = Symbol::new("v");
        let names: HashSet<_> = (0..1000).map(|_| gen.fresh(&base)).collect();
        assert_eq!(names.len(), 1000);
    }

    #[test]
    fn generated_base_strips_counter_even_when_refreshed() {
        let mut gen = NameGen::new();
        let a = gen.fresh_named("db");
        let b = gen.fresh(&a);
        assert_eq!(b.base(), "db");
        assert!(!b.as_str().contains("##"));
    }

    #[test]
    fn borrow_str_allows_map_lookup() {
        let mut set = HashSet::new();
        set.insert(Symbol::new("key"));
        assert!(set.contains("key"));
    }

    #[test]
    fn display_is_plain_name() {
        assert_eq!(Symbol::new("odd").to_string(), "odd");
        assert_eq!(format!("{:?}", Symbol::new("odd")), "`odd`");
    }
}
