//! Interned identifiers and fresh-name generation.
//!
//! The calculi distinguish *value variables* (`x` in the paper) from *type
//! variables* (`t`), but both are represented by [`Symbol`]: a cheaply
//! clonable, hashable name. The two namespaces are kept apart by the data
//! structures that contain them, exactly as in the paper's grammars.
//!
//! Fresh names are produced by [`NameGen`], which appends `#N` to a base
//! name. The surface lexer rejects `#` inside identifiers, so generated
//! names can never collide with source names.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// The process-wide symbol table: append-only, thread-safe. Interned
/// strings are leaked (their number is bounded by the program's source
/// names plus generated fresh names), which lets [`Symbol::as_str`] hand
/// out `&'static str` without holding any lock on the caller's side.
struct Interner {
    /// Text → index, for interning.
    map: HashMap<&'static str, u32>,
    /// Index → text, for resolution. Grows only; never reordered.
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner { map: HashMap::new(), strings: Vec::new() })
    })
}

fn intern(name: &str) -> u32 {
    let lock = interner();
    if let Some(&id) = lock.read().expect("interner poisoned").map.get(name) {
        return id;
    }
    let mut w = lock.write().expect("interner poisoned");
    // Another thread may have interned `name` between our read and write.
    if let Some(&id) = w.map.get(name) {
        return id;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let id = u32::try_from(w.strings.len()).expect("interner overflow");
    w.strings.push(leaked);
    w.map.insert(leaked, id);
    id
}

fn resolve(id: u32) -> &'static str {
    interner().read().expect("interner poisoned").strings[id as usize]
}

/// An identifier in the unit language (value variable, type variable,
/// datatype constructor, signature port name, ...).
///
/// `Symbol` is a `u32` index into a process-wide, append-only interner:
/// cloning is a register copy, and equality/hashing are single integer
/// operations — the hot operations of environment lookup, substitution,
/// free-variable sets, and signature subtyping never touch string data.
/// Interning the same text twice yields the same index (and therefore the
/// same `&'static str` from [`Symbol::as_str`]).
///
/// Ordering remains *lexicographic* on the underlying text (with an
/// integer fast path for equal symbols), so `BTreeSet<Symbol>` iteration
/// is deterministic by name and str-keyed BTree lookups through
/// [`Borrow<str>`] stay consistent. Note that `Hash` is index-based, so
/// hash-table lookups keyed by `Symbol` must use a `Symbol` (not a `&str`)
/// as the probe.
///
/// # Examples
///
/// ```
/// use units_kernel::Symbol;
/// let a = Symbol::new("insert");
/// let b = Symbol::from("insert");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "insert");
/// // Equal text interns to the identical static string.
/// assert!(std::ptr::eq(a.as_str(), b.as_str()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Creates (or finds) the symbol for the given text.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(intern(name.as_ref()))
    }

    /// Returns the symbol's textual name.
    pub fn as_str(&self) -> &'static str {
        resolve(self.0)
    }

    /// Returns this symbol's index in the process-wide interner.
    pub fn index(&self) -> u32 {
        self.0
    }

    /// Returns `true` if this symbol was produced by a [`NameGen`]
    /// (contains the reserved `#` character).
    pub fn is_generated(&self) -> bool {
        self.as_str().contains('#')
    }

    /// Returns the base name of a generated symbol (the part before `#`),
    /// or the whole name for a source symbol.
    ///
    /// ```
    /// use units_kernel::{NameGen, Symbol};
    /// let mut gen = NameGen::new();
    /// let fresh = gen.fresh(&Symbol::new("db"));
    /// assert_eq!(fresh.base(), "db");
    /// ```
    pub fn base(&self) -> &'static str {
        let s = self.as_str();
        match s.find('#') {
            Some(i) => &s[..i],
            None => s,
        }
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s.as_str())
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A generator of names guaranteed not to clash with source identifiers.
///
/// Used by the `compound` reduction (Fig. 11) to α-rename a constituent
/// unit's internal definitions before merging, and by capture-avoiding
/// substitution.
///
/// # Examples
///
/// ```
/// use units_kernel::{NameGen, Symbol};
/// let mut gen = NameGen::new();
/// let x = Symbol::new("x");
/// let x1 = gen.fresh(&x);
/// let x2 = gen.fresh(&x);
/// assert_ne!(x1, x2);
/// assert!(x1.is_generated());
/// ```
#[derive(Debug, Default, Clone)]
pub struct NameGen {
    counter: u64,
}

impl NameGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        NameGen::default()
    }

    /// Produces a fresh symbol derived from `base`. Two calls never return
    /// the same symbol, and no returned symbol can be written in source
    /// syntax.
    pub fn fresh(&mut self, base: &Symbol) -> Symbol {
        self.counter += 1;
        Symbol::new(format!("{}#{}", base.base(), self.counter))
    }

    /// Produces a fresh symbol with a literal base name.
    pub fn fresh_named(&mut self, base: &str) -> Symbol {
        self.counter += 1;
        Symbol::new(format!("{base}#{}", self.counter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeSet, HashSet};

    #[test]
    fn symbols_compare_by_content() {
        assert_eq!(Symbol::new("a"), Symbol::from("a".to_string()));
        assert_ne!(Symbol::new("a"), Symbol::new("b"));
    }

    #[test]
    fn symbols_order_lexicographically() {
        assert!(Symbol::new("aa") < Symbol::new("ab"));
        // Interning order must not leak into the ordering.
        let late = Symbol::new("zz-definitely-interned-later");
        assert!(Symbol::new("aa") < late);
        assert!(late > Symbol::new("ab"));
    }

    #[test]
    fn equal_text_interns_to_the_same_index() {
        let a = Symbol::new("same-text");
        let b = Symbol::from("same-text".to_string());
        assert_eq!(a.index(), b.index());
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn generated_names_are_unique() {
        let mut gen = NameGen::new();
        let base = Symbol::new("v");
        let names: HashSet<_> = (0..1000).map(|_| gen.fresh(&base)).collect();
        assert_eq!(names.len(), 1000);
    }

    #[test]
    fn generated_base_strips_counter_even_when_refreshed() {
        let mut gen = NameGen::new();
        let a = gen.fresh_named("db");
        let b = gen.fresh(&a);
        assert_eq!(b.base(), "db");
        assert!(!b.as_str().contains("##"));
    }

    #[test]
    fn borrow_str_allows_btree_lookup() {
        // `Ord` is lexicographic, so ordered collections can be probed
        // with a plain `&str`. (Hash collections cannot: `Hash` is
        // index-based for speed.)
        let mut set = BTreeSet::new();
        set.insert(Symbol::new("key"));
        assert!(set.contains("key"));
        assert!(!set.contains("other"));
    }

    #[test]
    fn display_is_plain_name() {
        assert_eq!(Symbol::new("odd").to_string(), "odd");
        assert_eq!(format!("{:?}", Symbol::new("odd")), "`odd`");
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| Symbol::new(format!("threaded-{}", (i + t) % 50)).index())
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        let all: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread must agree on the index of every shared name.
        for i in 0..50 {
            let name = format!("threaded-{i}");
            let expected = Symbol::new(name.as_str()).index();
            for ids in &all {
                assert!(ids.contains(&expected));
            }
        }
    }
}
