//! Kinds — "types for types" (paper §3.1, footnote 3).
//!
//! The calculi in the paper use a single kind `Ω` for all type variables,
//! but declare kinds explicitly "in anticipation of future work that handles
//! type constructors and polymorphism" (§4.2, footnote 9). We mirror that:
//! [`Kind::Star`] is the only kind the checkers ever assign, and
//! [`Kind::Arrow`] is provided for the anticipated constructor extension.

use std::fmt;

/// The kind of a type variable.
///
/// # Examples
///
/// ```
/// use units_kernel::Kind;
/// let k = Kind::arrow(Kind::Star, Kind::Star);
/// assert_eq!(k.to_string(), "Ω→Ω");
/// assert_eq!(k.arity(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Kind {
    /// `Ω` — the kind of proper types. The only kind used by UNITc/UNITe.
    #[default]
    Star,
    /// `κ → κ` — type constructors (paper: "languages such as ML, Haskell,
    /// and Miranda also provide type constructors ... which have the kind
    /// Ω→Ω").
    Arrow(Box<Kind>, Box<Kind>),
}

impl Kind {
    /// Convenience constructor for `from → to`.
    pub fn arrow(from: Kind, to: Kind) -> Kind {
        Kind::Arrow(Box::new(from), Box::new(to))
    }

    /// Number of arguments a type of this kind expects (0 for `Ω`).
    pub fn arity(&self) -> usize {
        match self {
            Kind::Star => 0,
            Kind::Arrow(_, to) => 1 + to.arity(),
        }
    }

    /// Returns `true` for the kind of proper types, `Ω`.
    pub fn is_star(&self) -> bool {
        matches!(self, Kind::Star)
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Star => f.write_str("Ω"),
            Kind::Arrow(from, to) => {
                if from.is_star() {
                    write!(f, "Ω→{to}")
                } else {
                    write!(f, "({from})→{to}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_default_and_nullary() {
        assert_eq!(Kind::default(), Kind::Star);
        assert_eq!(Kind::Star.arity(), 0);
        assert!(Kind::Star.is_star());
    }

    #[test]
    fn arrow_arity_counts_arguments() {
        let k2 = Kind::arrow(Kind::Star, Kind::arrow(Kind::Star, Kind::Star));
        assert_eq!(k2.arity(), 2);
        assert!(!k2.is_star());
    }

    #[test]
    fn display_parenthesizes_higher_order_domains() {
        let ho = Kind::arrow(Kind::arrow(Kind::Star, Kind::Star), Kind::Star);
        assert_eq!(ho.to_string(), "(Ω→Ω)→Ω");
    }
}
