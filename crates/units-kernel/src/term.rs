//! Terms of the unit calculi (paper Figs. 9, 13, 16).
//!
//! One expression type covers all three languages:
//!
//! * **UNITd** programs use no type annotations (every [`ValPort::ty`] and
//!   [`Param::ty`] is `None`, no [`TypeDefn`]s appear);
//! * **UNITc** programs add datatype definitions ([`TypeDefn::Data`]) and
//!   fully annotated ports;
//! * **UNITe** programs additionally use type equations
//!   ([`TypeDefn::Alias`]) and `depends` clauses in signatures.
//!
//! The checkers in `units-check` enforce which forms are legal at which
//! level. A handful of variants ([`Expr::Loc`], [`Expr::Data`],
//! [`Expr::Variant`]) are *machine-internal* value forms produced only by
//! the small-step reducer; the parser never builds them.
//!
//! [`ValPort::ty`]: crate::sig::ValPort

use std::fmt;
use std::sync::Arc;

use crate::kind::Kind;
use crate::sig::{Ports, Signature};
use crate::symbol::Symbol;
use crate::ty::Ty;

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// A machine integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An immutable string.
    Str(Arc<str>),
    /// The sole value of type `void`.
    Void,
}

impl Lit {
    /// The (closed) type of the literal.
    pub fn ty(&self) -> Ty {
        match self {
            Lit::Int(_) => Ty::Int,
            Lit::Bool(_) => Ty::Bool,
            Lit::Str(_) => Ty::Str,
            Lit::Void => Ty::Void,
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(n) => write!(f, "{n}"),
            Lit::Bool(b) => write!(f, "{b}"),
            Lit::Str(s) => write!(f, "{s:?}"),
            Lit::Void => f.write_str("void"),
        }
    }
}

/// Built-in operations of the core language substrate.
///
/// Primitives that would need polymorphic types in the static calculi carry
/// explicit type instantiations at each occurrence ([`Expr::Prim`]'s type
/// arguments); see [`PrimOp::ty_arity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// `int×int→int`
    Add,
    /// `int×int→int`
    Sub,
    /// `int×int→int`
    Mul,
    /// `int×int→int`; division by zero is a run-time error.
    Div,
    /// `int×int→int`; modulo by zero is a run-time error.
    Rem,
    /// `int×int→bool`
    Lt,
    /// `int×int→bool`
    Le,
    /// `int×int→bool`
    NumEq,
    /// `bool→bool`
    Not,
    /// `bool×bool→bool`
    BoolEq,
    /// `str×str→str`
    StrAppend,
    /// `str×str→bool`
    StrEq,
    /// `str→int`
    StrLen,
    /// `int→str`
    IntToStr,
    /// `str→void`; writes to the runtime's output buffer.
    Display,
    /// `str→τ` (1 type argument); signals a run-time error carrying the
    /// message. Models the paper's error-handling imports.
    Fail,
    /// `void→hash τ` (1 type argument); a fresh mutable string-keyed table.
    /// Models `makeStringHashTable()` from Fig. 1.
    HashNew,
    /// `hash τ × str × τ → void` (1 type argument)
    HashSet,
    /// `hash τ × str → τ` (1 type argument); error if the key is absent.
    HashGet,
    /// `hash τ × str → bool` (1 type argument)
    HashHas,
    /// `hash τ × str → void` (1 type argument); removes a key if present.
    HashRemove,
    /// `hash τ → int` (1 type argument)
    HashCount,
}

impl PrimOp {
    /// The number of explicit type arguments the primitive requires in a
    /// statically typed program (0 for monomorphic primitives).
    pub fn ty_arity(self) -> usize {
        match self {
            PrimOp::Fail
            | PrimOp::HashNew
            | PrimOp::HashSet
            | PrimOp::HashGet
            | PrimOp::HashHas
            | PrimOp::HashRemove
            | PrimOp::HashCount => 1,
            _ => 0,
        }
    }

    /// The number of value arguments the primitive consumes.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Not
            | PrimOp::StrLen
            | PrimOp::IntToStr
            | PrimOp::Display
            | PrimOp::Fail
            | PrimOp::HashCount => 1,
            PrimOp::HashNew => 0,
            PrimOp::HashSet => 3,
            _ => 2,
        }
    }

    /// The surface-syntax name of the primitive.
    pub fn name(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Rem => "rem",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::NumEq => "=",
            PrimOp::Not => "not",
            PrimOp::BoolEq => "bool=?",
            PrimOp::StrAppend => "string-append",
            PrimOp::StrEq => "string=?",
            PrimOp::StrLen => "string-length",
            PrimOp::IntToStr => "int->string",
            PrimOp::Display => "display",
            PrimOp::Fail => "fail",
            PrimOp::HashNew => "hash-new",
            PrimOp::HashSet => "hash-set!",
            PrimOp::HashGet => "hash-get",
            PrimOp::HashHas => "hash-has?",
            PrimOp::HashRemove => "hash-remove!",
            PrimOp::HashCount => "hash-count",
        }
    }

    /// Looks a primitive up by surface name.
    pub fn from_name(name: &str) -> Option<PrimOp> {
        ALL_PRIMS.iter().copied().find(|p| p.name() == name)
    }

    /// Instantiates the primitive's type at the given type arguments,
    /// returning its parameter types and result type.
    ///
    /// Returns `None` when the number of type arguments does not match
    /// [`PrimOp::ty_arity`].
    ///
    /// # Examples
    ///
    /// ```
    /// use units_kernel::{PrimOp, Ty};
    /// let (params, ret) = PrimOp::HashGet.instantiate(&[Ty::Int]).unwrap();
    /// assert_eq!(params, vec![Ty::hash(Ty::Int), Ty::Str]);
    /// assert_eq!(ret, Ty::Int);
    /// ```
    pub fn instantiate(self, ty_args: &[Ty]) -> Option<(Vec<Ty>, Ty)> {
        if ty_args.len() != self.ty_arity() {
            return None;
        }
        let a = || ty_args[0].clone();
        Some(match self {
            PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Rem => {
                (vec![Ty::Int, Ty::Int], Ty::Int)
            }
            PrimOp::Lt | PrimOp::Le | PrimOp::NumEq => (vec![Ty::Int, Ty::Int], Ty::Bool),
            PrimOp::Not => (vec![Ty::Bool], Ty::Bool),
            PrimOp::BoolEq => (vec![Ty::Bool, Ty::Bool], Ty::Bool),
            PrimOp::StrAppend => (vec![Ty::Str, Ty::Str], Ty::Str),
            PrimOp::StrEq => (vec![Ty::Str, Ty::Str], Ty::Bool),
            PrimOp::StrLen => (vec![Ty::Str], Ty::Int),
            PrimOp::IntToStr => (vec![Ty::Int], Ty::Str),
            PrimOp::Display => (vec![Ty::Str], Ty::Void),
            PrimOp::Fail => (vec![Ty::Str], a()),
            PrimOp::HashNew => (vec![], Ty::hash(a())),
            PrimOp::HashSet => (vec![Ty::hash(a()), Ty::Str, a()], Ty::Void),
            PrimOp::HashGet => (vec![Ty::hash(a()), Ty::Str], a()),
            PrimOp::HashHas => (vec![Ty::hash(a()), Ty::Str], Ty::Bool),
            PrimOp::HashRemove => (vec![Ty::hash(a()), Ty::Str], Ty::Void),
            PrimOp::HashCount => (vec![Ty::hash(a())], Ty::Int),
        })
    }
}

/// Every primitive, for table-driven lookup and exhaustive tests.
pub const ALL_PRIMS: &[PrimOp] = &[
    PrimOp::Add,
    PrimOp::Sub,
    PrimOp::Mul,
    PrimOp::Div,
    PrimOp::Rem,
    PrimOp::Lt,
    PrimOp::Le,
    PrimOp::NumEq,
    PrimOp::Not,
    PrimOp::BoolEq,
    PrimOp::StrAppend,
    PrimOp::StrEq,
    PrimOp::StrLen,
    PrimOp::IntToStr,
    PrimOp::Display,
    PrimOp::Fail,
    PrimOp::HashNew,
    PrimOp::HashSet,
    PrimOp::HashGet,
    PrimOp::HashHas,
    PrimOp::HashRemove,
    PrimOp::HashCount,
];

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A λ-parameter, optionally annotated (`None` in UNITd programs).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The parameter name.
    pub name: Symbol,
    /// Its declared type, if the program is statically typed.
    pub ty: Option<Ty>,
}

impl Param {
    /// An unannotated parameter.
    pub fn untyped(name: impl Into<Symbol>) -> Param {
        Param { name: name.into(), ty: None }
    }

    /// An annotated parameter.
    pub fn typed(name: impl Into<Symbol>, ty: Ty) -> Param {
        Param { name: name.into(), ty: Some(ty) }
    }
}

/// A λ-abstraction `fn (x…) ⇒ e`.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Parameters (possibly empty: a thunk).
    pub params: Vec<Param>,
    /// Declared result type, if any (used for recursive definitions).
    pub ret_ty: Option<Ty>,
    /// The body.
    pub body: Expr,
}

/// A `let` binding `x = e`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The bound name.
    pub name: Symbol,
    /// The bound expression.
    pub expr: Expr,
}

/// One variant of a constructed type: constructor, deconstructor, payload.
///
/// Paper Fig. 13: `type t = x_c1,x_d1 τ1 | x_cr,x_dr τr ▷ x_t` — the
/// constructor `x_c : τ → t`, the deconstructor `x_d : t → τ`. The paper
/// fixes exactly two variants "for simplicity"; we allow any positive
/// number, with the two-variant form as the canonical, tested case.
#[derive(Debug, Clone, PartialEq)]
pub struct DataVariant {
    /// Constructor name (`x_c`).
    pub ctor: Symbol,
    /// Deconstructor name (`x_d`); applying it to the wrong variant is a
    /// run-time error.
    pub dtor: Symbol,
    /// The payload type `τ`.
    pub payload: Ty,
}

/// A constructed-type definition (UNITc, Fig. 13).
#[derive(Debug, Clone, PartialEq)]
pub struct DataDefn {
    /// The defined type's name `t`.
    pub name: Symbol,
    /// The variants.
    pub variants: Vec<DataVariant>,
    /// The discriminator `x_t : t → bool`, returning `true` exactly for
    /// instances of the *first* variant.
    pub predicate: Symbol,
}

impl DataDefn {
    /// All value names the definition binds: constructors, deconstructors,
    /// and the predicate, in declaration order.
    pub fn bound_val_names(&self) -> Vec<Symbol> {
        let mut names = Vec::with_capacity(self.variants.len() * 2 + 1);
        for v in &self.variants {
            names.push(v.ctor.clone());
            names.push(v.dtor.clone());
        }
        names.push(self.predicate.clone());
        names
    }
}

/// A type equation `type t :: κ = τ` (UNITe, Fig. 16).
#[derive(Debug, Clone, PartialEq)]
pub struct AliasDefn {
    /// The abbreviation's name `t`.
    pub name: Symbol,
    /// Its kind.
    pub kind: Kind,
    /// The abbreviated type `τ`.
    pub body: Ty,
}

/// A type definition inside a `letrec` or `unit` body.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDefn {
    /// A constructed type (UNITc).
    Data(DataDefn),
    /// A type equation (UNITe).
    Alias(AliasDefn),
}

impl TypeDefn {
    /// The defined type's name.
    pub fn name(&self) -> &Symbol {
        match self {
            TypeDefn::Data(d) => &d.name,
            TypeDefn::Alias(a) => &a.name,
        }
    }
}

/// A value definition `val x : τ = e` (the annotation is absent in UNITd).
#[derive(Debug, Clone, PartialEq)]
pub struct ValDefn {
    /// The defined name.
    pub name: Symbol,
    /// The declared type, if statically typed.
    pub ty: Option<Ty>,
    /// The definition's right-hand side (must be *valuable*, §4.1.1).
    pub body: Expr,
}

/// A `letrec` block: mutually recursive type and value definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct LetrecExpr {
    /// Type definitions, in scope throughout the block.
    pub types: Vec<TypeDefn>,
    /// Value definitions; every definition sees every other.
    pub vals: Vec<ValDefn>,
    /// The block's body.
    pub body: Expr,
}

/// An atomic unit expression (paper §4.1.1).
#[derive(Debug, Clone, PartialEq)]
pub struct UnitExpr {
    /// Imported type and value ports.
    pub imports: Ports,
    /// Exported type and value ports. Every exported value must be defined
    /// in `vals`; every exported type in `types`.
    pub exports: Ports,
    /// Internal type definitions.
    pub types: Vec<TypeDefn>,
    /// Internal value definitions (mutually recursive, valuable).
    pub vals: Vec<ValDefn>,
    /// The initialization expression, run at invocation.
    pub init: Expr,
}

impl UnitExpr {
    /// All value names defined inside the unit: `val` definitions plus the
    /// constructors/deconstructors/predicates of its datatypes.
    pub fn defined_val_names(&self) -> Vec<Symbol> {
        let mut names: Vec<Symbol> = self.vals.iter().map(|d| d.name.clone()).collect();
        for td in &self.types {
            if let TypeDefn::Data(d) = td {
                names.extend(d.bound_val_names());
            }
        }
        names
    }

    /// All type names defined inside the unit.
    pub fn defined_ty_names(&self) -> Vec<Symbol> {
        self.types.iter().map(|t| t.name().clone()).collect()
    }
}

/// Source/destination name pairs for one link clause.
///
/// The paper's core calculus links strictly by name; "MzScheme's syntax is
/// less restrictive … and links imports and exports via source and
/// destination name pairs, rather than requiring the same name at both
/// ends of a linkage" (§4.1.2). Each entry maps a constituent's *inner*
/// interface name to the *outer* name used in the enclosing compound's
/// linking namespace; names without an entry link to themselves.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkRenames {
    /// Inner import value name → outer source name.
    pub import_vals: Vec<(Symbol, Symbol)>,
    /// Inner import type name → outer source name.
    pub import_tys: Vec<(Symbol, Symbol)>,
    /// Inner export value name → outer provided name.
    pub export_vals: Vec<(Symbol, Symbol)>,
    /// Inner export type name → outer provided name.
    pub export_tys: Vec<(Symbol, Symbol)>,
}

impl LinkRenames {
    /// True when every link is by name (the paper's core form).
    pub fn is_empty(&self) -> bool {
        self.import_vals.is_empty()
            && self.import_tys.is_empty()
            && self.export_vals.is_empty()
            && self.export_tys.is_empty()
    }

    fn outer<'a>(pairs: &'a [(Symbol, Symbol)], inner: &'a Symbol) -> &'a Symbol {
        pairs.iter().find(|(i, _)| i == inner).map(|(_, o)| o).unwrap_or(inner)
    }

    /// The outer source name feeding the given inner import value.
    pub fn outer_import_val<'a>(&'a self, inner: &'a Symbol) -> &'a Symbol {
        Self::outer(&self.import_vals, inner)
    }

    /// The outer source name feeding the given inner import type.
    pub fn outer_import_ty<'a>(&'a self, inner: &'a Symbol) -> &'a Symbol {
        Self::outer(&self.import_tys, inner)
    }

    /// The outer name under which the given inner export value is provided.
    pub fn outer_export_val<'a>(&'a self, inner: &'a Symbol) -> &'a Symbol {
        Self::outer(&self.export_vals, inner)
    }

    /// The outer name under which the given inner export type is provided.
    pub fn outer_export_ty<'a>(&'a self, inner: &'a Symbol) -> &'a Symbol {
        Self::outer(&self.export_tys, inner)
    }

    /// The inner export value provided under the given outer name, if any.
    pub fn inner_export_val<'a>(&'a self, outer: &'a Symbol) -> &'a Symbol {
        self.export_vals.iter().find(|(_, o)| o == outer).map(|(i, _)| i).unwrap_or(outer)
    }
}

/// One constituent of a `compound` expression: the unit expression plus its
/// expected interface (`with` = imports it will receive, `provides` =
/// exports it must supply).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkClause {
    /// The constituent unit expression.
    pub expr: Expr,
    /// Names (and, when typed, types) this constituent is expected to
    /// import, under the constituent's *inner* names. Each must be
    /// satisfied — through `renames` — by a compound import or another
    /// constituent's `provides`.
    pub with: Ports,
    /// Names this constituent is expected to export (inner names).
    pub provides: Ports,
    /// Source/destination pairs translating inner names to the compound's
    /// linking namespace (empty in the paper's by-name core form).
    pub renames: LinkRenames,
}

impl LinkClause {
    /// A by-name clause (the paper's core form).
    pub fn by_name(expr: Expr, with: Ports, provides: Ports) -> LinkClause {
        LinkClause { expr, with, provides, renames: LinkRenames::default() }
    }
}

/// A `compound` linking expression (paper §4.1.2).
///
/// The paper's core form links exactly two units; MzScheme generalizes to
/// any number, and so do we — all paper rules are stated for two
/// constituents and tested in that form, with n-ary linking exercised
/// separately.
#[derive(Debug, Clone, PartialEq)]
pub struct CompoundExpr {
    /// The compound unit's imports.
    pub imports: Ports,
    /// The compound unit's exports (a subset of the constituents'
    /// `provides`; everything else is hidden).
    pub exports: Ports,
    /// The constituents, in initialization order.
    pub links: Vec<LinkClause>,
}

/// An `invoke` expression (paper §4.1.3 / §3.4).
///
/// For a complete program both link vectors are empty; for dynamic linking
/// the invoking context satisfies the unit's imports explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct InvokeExpr {
    /// The expression producing the unit to invoke.
    pub target: Expr,
    /// Type imports supplied by the invoker: `t::κ = τ` (UNITc, Fig. 13).
    pub ty_links: Vec<(Symbol, Ty)>,
    /// Value imports supplied by the invoker: `x = e`.
    pub val_links: Vec<(Symbol, Expr)>,
}

/// Which datatype operation a [`DataOp`] value performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataRole {
    /// Constructor for the variant with the given index.
    Construct(usize),
    /// Deconstructor for the variant with the given index.
    Deconstruct(usize),
    /// The discriminator: `true` iff the argument is the first variant.
    Predicate,
}

/// A first-class datatype operation value (machine-internal).
///
/// Reducing a `letrec`/`invoke` that defines `type t = …` substitutes the
/// constructor/deconstructor/predicate names with these values. `instance`
/// is a nonce chosen at reduction time, so operations from two instances of
/// the same unit never confuse their variants — the behaviour §5.3 pins
/// down ("symbol is instantiated twice and there is no way to unify the two
/// sym types").
#[derive(Debug, Clone, PartialEq)]
pub struct DataOp {
    /// The defined type's source name (for error messages).
    pub ty_name: Symbol,
    /// Instantiation nonce; `0` until a reduction step freshens it.
    pub instance: u64,
    /// What the operation does.
    pub role: DataRole,
}

/// A constructed datatype value (machine-internal).
#[derive(Debug, Clone, PartialEq)]
pub struct VariantVal {
    /// The type's source name.
    pub ty_name: Symbol,
    /// The instantiation nonce of the constructor that built it.
    pub instance: u64,
    /// The variant index.
    pub tag: usize,
    /// The carried payload (always a value).
    pub payload: Expr,
}

/// A store location (machine-internal; Felleisen–Hieb style store for
/// mutable variables and hash tables in the substitution reducer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub usize);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A lexical address: the static coordinate of a variable's binding,
/// `depth` environment frames outward from the occurrence and `slot`
/// positions into that frame. Computed by `units-compile`'s resolution
/// pass; consumed by the runtime's slot-indexed environment fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LexAddr {
    /// How many frames to walk outward (0 = innermost).
    pub depth: u32,
    /// Index into the frame's binding vector.
    pub slot: u32,
}

impl fmt::Display for LexAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.depth, self.slot)
    }
}

/// An expression of the unit language.
///
/// # Examples
///
/// Building `(fn (n) ⇒ n + 1) 41` programmatically:
///
/// ```
/// use units_kernel::{Expr, Param, PrimOp};
/// let succ = Expr::lambda(
///     vec![Param::untyped("n")],
///     Expr::prim2(PrimOp::Add, Expr::var("n"), Expr::int(1)),
/// );
/// let call = Expr::app(succ, vec![Expr::int(41)]);
/// assert!(!call.is_value());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable occurrence.
    Var(Symbol),
    /// A literal constant.
    Lit(Lit),
    /// A primitive with its explicit type instantiation (empty for
    /// monomorphic primitives).
    Prim(PrimOp, Vec<Ty>),
    /// A λ-abstraction.
    Lambda(Arc<Lambda>),
    /// Application `e(e…)`.
    App(Box<Expr>, Vec<Expr>),
    /// Conditional.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Sequencing `e ; e ; …` (non-empty); value of the last expression.
    Seq(Vec<Expr>),
    /// Parallel `let`.
    Let(Vec<Binding>, Box<Expr>),
    /// Mutually recursive definitions.
    Letrec(Arc<LetrecExpr>),
    /// Assignment `x := e` to a definition-bound variable.
    ///
    /// The parser only ever produces a [`Expr::Var`] target; the
    /// substitution-based reducer may rewrite that variable to a
    /// [`Expr::CellRef`], which is the form the assignment rule fires on.
    Set(Box<Expr>, Box<Expr>),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Tuple projection (0-based).
    Proj(usize, Box<Expr>),
    /// An atomic unit (a value: "an atomic unit expression … is a value").
    Unit(Arc<UnitExpr>),
    /// A linking expression (not a value: it evaluates to a unit).
    Compound(Arc<CompoundExpr>),
    /// Unit invocation, possibly with dynamic links.
    Invoke(Arc<InvokeExpr>),
    /// Signature ascription (§5.2): restricts the view of a unit to the
    /// given (super)signature, hiding type information after linking.
    Seal(Box<Expr>, Box<Signature>),
    /// Machine-internal: a store location *value* (hash tables and other
    /// store-allocated data are passed around as locations).
    Loc(Loc),
    /// Machine-internal: a dereference of a definition cell. `letrec` and
    /// `invoke` reduction replace each definition-bound variable with
    /// `CellRef` of a fresh location; a `CellRef` is *not* a value — it
    /// reduces to the cell's contents (or errors if the cell is not yet
    /// initialized, MzScheme-style).
    CellRef(Loc),
    /// Machine-internal: a datatype operation value.
    Data(Arc<DataOp>),
    /// Machine-internal: a constructed datatype value.
    Variant(Arc<VariantVal>),
    /// Machine-internal: a variable occurrence annotated with the lexical
    /// address computed by the production backend's resolution pass
    /// (`units-compile`). It evaluates exactly like [`Expr::Var`] — the
    /// symbol is kept for verification and fallback — but the cells
    /// evaluator reads the binding by direct frame/slot indexing instead
    /// of a by-name environment scan. The parser never builds it, and
    /// forms the resolver cannot address stay plain [`Expr::Var`].
    VarAt(Symbol, LexAddr),
}

impl Expr {
    /// A variable occurrence.
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Var(name.into())
    }

    /// An integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Lit(Lit::Int(n))
    }

    /// A boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::Lit(Lit::Bool(b))
    }

    /// A string literal.
    pub fn str(s: impl AsRef<str>) -> Expr {
        Expr::Lit(Lit::Str(Arc::from(s.as_ref())))
    }

    /// The void literal.
    pub fn void() -> Expr {
        Expr::Lit(Lit::Void)
    }

    /// A λ-abstraction.
    pub fn lambda(params: Vec<Param>, body: Expr) -> Expr {
        Expr::Lambda(Arc::new(Lambda { params, ret_ty: None, body }))
    }

    /// A λ-abstraction with a declared result type.
    pub fn lambda_ret(params: Vec<Param>, ret_ty: Ty, body: Expr) -> Expr {
        Expr::Lambda(Arc::new(Lambda { params, ret_ty: Some(ret_ty), body }))
    }

    /// A thunk (nullary λ).
    pub fn thunk(body: Expr) -> Expr {
        Expr::lambda(Vec::new(), body)
    }

    /// Application.
    pub fn app(func: Expr, args: Vec<Expr>) -> Expr {
        Expr::App(Box::new(func), args)
    }

    /// A monomorphic primitive constant.
    pub fn prim(op: PrimOp) -> Expr {
        Expr::Prim(op, Vec::new())
    }

    /// Fully applied unary primitive.
    pub fn prim1(op: PrimOp, a: Expr) -> Expr {
        Expr::app(Expr::prim(op), vec![a])
    }

    /// Fully applied binary primitive.
    pub fn prim2(op: PrimOp, a: Expr, b: Expr) -> Expr {
        Expr::app(Expr::prim(op), vec![a, b])
    }

    /// Conditional.
    pub fn if_(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Sequencing; panics if `exprs` is empty.
    ///
    /// # Panics
    ///
    /// Panics when given no expressions — `Seq` is non-empty by grammar.
    pub fn seq(exprs: Vec<Expr>) -> Expr {
        assert!(!exprs.is_empty(), "Seq requires at least one expression");
        if exprs.len() == 1 {
            exprs.into_iter().next().expect("len checked")
        } else {
            Expr::Seq(exprs)
        }
    }

    /// Assignment to a named variable.
    pub fn set(name: impl Into<Symbol>, value: Expr) -> Expr {
        Expr::Set(Box::new(Expr::Var(name.into())), Box::new(value))
    }

    /// An atomic unit expression.
    pub fn unit(unit: UnitExpr) -> Expr {
        Expr::Unit(Arc::new(unit))
    }

    /// A compound linking expression.
    pub fn compound(compound: CompoundExpr) -> Expr {
        Expr::Compound(Arc::new(compound))
    }

    /// An invocation.
    pub fn invoke(invoke: InvokeExpr) -> Expr {
        Expr::Invoke(Arc::new(invoke))
    }

    /// Invocation of a complete program (no links).
    pub fn invoke_program(target: Expr) -> Expr {
        Expr::invoke(InvokeExpr { target, ty_links: Vec::new(), val_links: Vec::new() })
    }

    /// Signature ascription.
    pub fn seal(target: Expr, sig: Signature) -> Expr {
        Expr::Seal(Box::new(target), Box::new(sig))
    }

    /// Syntactic value judgment of the rewriting semantics: literals,
    /// λ-abstractions, primitives, atomic units, locations, datatype
    /// operations, and tuples/variants of values.
    pub fn is_value(&self) -> bool {
        match self {
            Expr::Lit(_)
            | Expr::Lambda(_)
            | Expr::Prim(..)
            | Expr::Unit(_)
            | Expr::Loc(_)
            | Expr::Data(_) => true,
            Expr::Tuple(items) => items.iter().all(Expr::is_value),
            Expr::Variant(v) => v.payload.is_value(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_types() {
        assert_eq!(Lit::Int(3).ty(), Ty::Int);
        assert_eq!(Lit::Bool(true).ty(), Ty::Bool);
        assert_eq!(Lit::Str("x".into()).ty(), Ty::Str);
        assert_eq!(Lit::Void.ty(), Ty::Void);
    }

    #[test]
    fn prim_names_round_trip() {
        for &p in ALL_PRIMS {
            assert_eq!(PrimOp::from_name(p.name()), Some(p), "{p}");
        }
        assert_eq!(PrimOp::from_name("no-such-prim"), None);
    }

    #[test]
    fn prim_arities_are_consistent() {
        assert_eq!(PrimOp::HashSet.arity(), 3);
        assert_eq!(PrimOp::HashNew.arity(), 0);
        assert_eq!(PrimOp::Add.arity(), 2);
        assert_eq!(PrimOp::Add.ty_arity(), 0);
        assert_eq!(PrimOp::HashGet.ty_arity(), 1);
    }

    #[test]
    fn values_are_recognized() {
        assert!(Expr::int(1).is_value());
        assert!(Expr::lambda(vec![], Expr::var("x")).is_value());
        assert!(Expr::Tuple(vec![Expr::int(1), Expr::bool(false)]).is_value());
        assert!(!Expr::Tuple(vec![Expr::var("x")]).is_value());
        assert!(!Expr::app(Expr::prim(PrimOp::Add), vec![Expr::int(1), Expr::int(2)]).is_value());
        assert!(!Expr::var("x").is_value());
    }

    #[test]
    fn unit_expression_is_a_value_but_compound_is_not() {
        let u = Expr::unit(UnitExpr {
            imports: Ports::new(),
            exports: Ports::new(),
            types: vec![],
            vals: vec![],
            init: Expr::void(),
        });
        assert!(u.is_value());
        let c = Expr::compound(CompoundExpr {
            imports: Ports::new(),
            exports: Ports::new(),
            links: vec![],
        });
        assert!(!c.is_value());
    }

    #[test]
    fn seq_flattens_singletons() {
        assert_eq!(Expr::seq(vec![Expr::int(1)]), Expr::int(1));
        assert!(matches!(Expr::seq(vec![Expr::int(1), Expr::int(2)]), Expr::Seq(_)));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn seq_rejects_empty() {
        let _ = Expr::seq(vec![]);
    }

    #[test]
    fn data_defn_binds_all_operation_names() {
        let d = DataDefn {
            name: "db".into(),
            variants: vec![
                DataVariant { ctor: "mk".into(), dtor: "unmk".into(), payload: Ty::Int },
                DataVariant { ctor: "none".into(), dtor: "unnone".into(), payload: Ty::Void },
            ],
            predicate: "db?".into(),
        };
        let names: Vec<String> =
            d.bound_val_names().iter().map(|s| s.as_str().to_string()).collect();
        assert_eq!(names, vec!["mk", "unmk", "none", "unnone", "db?"]);
    }
}
