//! Type expressions `τ` (paper Figs. 13 and 16).
//!
//! The grammar is `τ ::= t | τ→τ | signature`, extended here with the base
//! types and tuple types that the paper's examples use informally
//! (`str→void`, `db×str×info→void`, `int`, `bool`, ...).

use std::fmt;

use crate::sig::Signature;
use crate::symbol::Symbol;

/// A type expression.
///
/// Functions are n-ary (`Arrow`), which models the paper's product-domain
/// arrows like `db×str×info→void` directly; an independent [`Ty::Tuple`]
/// form covers first-class tuples.
///
/// # Examples
///
/// ```
/// use units_kernel::Ty;
/// let insert = Ty::arrow(
///     vec![Ty::var("db"), Ty::Str, Ty::var("info")],
///     Ty::Void,
/// );
/// assert_eq!(insert.to_string(), "db×str×info→void");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// A type variable `t` — imported, exported, or datatype-defined.
    Var(Symbol),
    /// Machine integers.
    Int,
    /// Booleans.
    Bool,
    /// Immutable strings.
    Str,
    /// The unit ("no information") type; the paper writes `void`.
    Void,
    /// `τ1×…×τn → τ` — an n-ary function type. A thunk has an empty domain.
    Arrow(Vec<Ty>, Box<Ty>),
    /// `τ1×…×τn` as a first-class tuple value type.
    Tuple(Vec<Ty>),
    /// A mutable, string-keyed hash table with values of the given type —
    /// the substrate type behind Fig. 1's `makeStringHashTable()`.
    Hash(Box<Ty>),
    /// A unit signature `sig imports exports [depends] τ` (Figs. 13/16).
    Sig(Box<Signature>),
}

impl Ty {
    /// A type variable with the given name.
    pub fn var(name: impl Into<Symbol>) -> Ty {
        Ty::Var(name.into())
    }

    /// An n-ary arrow `params → ret`.
    pub fn arrow(params: Vec<Ty>, ret: Ty) -> Ty {
        Ty::Arrow(params, Box::new(ret))
    }

    /// A nullary arrow `→ ret` (thunk type).
    pub fn thunk(ret: Ty) -> Ty {
        Ty::Arrow(Vec::new(), Box::new(ret))
    }

    /// A signature type.
    pub fn sig(signature: Signature) -> Ty {
        Ty::Sig(Box::new(signature))
    }

    /// A string-keyed hash-table type.
    pub fn hash(elem: Ty) -> Ty {
        Ty::Hash(Box::new(elem))
    }

    /// Returns the signature if this is a signature type.
    pub fn as_sig(&self) -> Option<&Signature> {
        match self {
            Ty::Sig(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if the type contains no type variables at all.
    pub fn is_closed(&self) -> bool {
        let mut free = std::collections::BTreeSet::new();
        self.free_ty_vars(&mut free);
        free.is_empty()
    }

    /// Collects the free type variables of this type into `out`.
    ///
    /// For signature types, variables bound by the signature's own import
    /// and export clauses are not free (paper Fig. 18: "FTV(τ) denotes the
    /// set of type variables in τ that are not bound by the import or
    /// export clause of a sig type").
    pub fn free_ty_vars(&self, out: &mut std::collections::BTreeSet<Symbol>) {
        match self {
            Ty::Var(t) => {
                out.insert(t.clone());
            }
            Ty::Int | Ty::Bool | Ty::Str | Ty::Void => {}
            Ty::Arrow(params, ret) => {
                for p in params {
                    p.free_ty_vars(out);
                }
                ret.free_ty_vars(out);
            }
            Ty::Tuple(items) => {
                for item in items {
                    item.free_ty_vars(out);
                }
            }
            Ty::Hash(elem) => elem.free_ty_vars(out),
            Ty::Sig(sig) => {
                let mut inner = std::collections::BTreeSet::new();
                sig.free_ty_vars_unbound(&mut inner);
                out.extend(inner);
            }
        }
    }
}

/// Precedence-aware display: arrows are right-associative and extend as far
/// right as possible, exactly like the paper's notation.
impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn atom(ty: &Ty, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match ty {
                Ty::Arrow(..) | Ty::Tuple(..) => write!(f, "({ty})"),
                _ => write!(f, "{ty}"),
            }
        }
        match self {
            Ty::Var(t) => write!(f, "{t}"),
            Ty::Int => f.write_str("int"),
            Ty::Bool => f.write_str("bool"),
            Ty::Str => f.write_str("str"),
            Ty::Void => f.write_str("void"),
            Ty::Arrow(params, ret) => {
                if params.is_empty() {
                    f.write_str("void→")?;
                } else {
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            f.write_str("×")?;
                        }
                        atom(p, f)?;
                    }
                    f.write_str("→")?;
                }
                write!(f, "{ret}")
            }
            Ty::Tuple(items) => {
                f.write_str("⟨")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("⟩")
            }
            Ty::Hash(elem) => {
                f.write_str("hash(")?;
                write!(f, "{elem}")?;
                f.write_str(")")
            }
            Ty::Sig(sig) => write!(f, "{sig}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn display_matches_paper_notation() {
        let t = Ty::arrow(vec![Ty::Str], Ty::Void);
        assert_eq!(t.to_string(), "str→void");
        let nested = Ty::arrow(vec![Ty::arrow(vec![Ty::Int], Ty::Int)], Ty::Bool);
        assert_eq!(nested.to_string(), "(int→int)→bool");
    }

    #[test]
    fn thunk_displays_void_domain() {
        assert_eq!(Ty::thunk(Ty::var("db")).to_string(), "void→db");
    }

    #[test]
    fn free_vars_of_arrows_and_tuples() {
        let t = Ty::arrow(vec![Ty::var("db"), Ty::Str], Ty::Tuple(vec![Ty::var("info")]));
        let mut free = BTreeSet::new();
        t.free_ty_vars(&mut free);
        let names: Vec<_> = free.iter().map(|s| s.as_str().to_string()).collect();
        assert_eq!(names, vec!["db", "info"]);
    }

    #[test]
    fn base_types_are_closed() {
        assert!(Ty::arrow(vec![Ty::Int, Ty::Bool], Ty::Str).is_closed());
        assert!(!Ty::var("t").is_closed());
    }
}
