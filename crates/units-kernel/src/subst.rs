//! Capture-avoiding substitution, for values and for types.
//!
//! Value substitution implements the `[v̄/x̄]e` operation of the paper's
//! reduction rules (Fig. 11). Binders that the language allows to be
//! α-renamed (λ-parameters, `let`/`letrec` definitions) are renamed on
//! demand; a unit's import and export names are part of its *linking
//! interface* and cannot be renamed ("UNITd does not allow α-renaming for a
//! unit's imported and exported variables"), so attempted capture there is
//! an invariant violation — the reducer only ever substitutes closed
//! values, which makes capture impossible for well-formed programs.
//!
//! Type substitution implements `[τ̄/t̄]` as used by the UNITc/UNITe typing
//! rules and the Fig. 18 expansion operator. Because signature port names
//! are likewise non-renamable, capture there surfaces as a
//! [`CaptureError`] that the checker converts into a diagnostic.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::free::free_val_vars;
use crate::sig::{Ports, Signature};
use crate::symbol::{NameGen, Symbol};
use crate::term::{
    Binding, DataDefn, DataVariant, Expr, Lambda, LetrecExpr, TypeDefn, UnitExpr, ValDefn,
    VariantVal,
};
use crate::ty::Ty;

/// Substitution attempted to capture a variable under a binder that the
/// language forbids renaming (a unit or signature interface name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureError {
    /// The interface name that would capture a free variable.
    pub binder: Symbol,
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "substitution would capture interface name `{}`, which cannot be renamed", self.binder)
    }
}

impl std::error::Error for CaptureError {}

#[derive(Clone)]
struct SubstVal {
    expr: Expr,
    fvs: Arc<BTreeSet<Symbol>>,
}

/// A prepared value substitution `[v̄/x̄]`.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use units_kernel::{Expr, NameGen, ValSubst};
/// let map = HashMap::from([("x".into(), Expr::int(7))]);
/// let subst = ValSubst::new(&map);
/// let mut gen = NameGen::new();
/// let out = subst.apply(&Expr::var("x"), &mut gen);
/// assert_eq!(out, Expr::int(7));
/// ```
pub struct ValSubst {
    entries: HashMap<Symbol, SubstVal>,
}

impl ValSubst {
    /// Prepares a substitution from a name → value map, precomputing the
    /// free variables of each replacement.
    pub fn new(map: &HashMap<Symbol, Expr>) -> ValSubst {
        let entries = map
            .iter()
            .map(|(k, v)| {
                (k.clone(), SubstVal { expr: v.clone(), fvs: Arc::new(free_val_vars(v)) })
            })
            .collect();
        ValSubst { entries }
    }

    /// Applies the substitution, renaming renamable binders as needed.
    ///
    /// # Panics
    ///
    /// Panics if capture would occur under a unit's interface binder; this
    /// cannot happen when every replacement is closed (the reducer's
    /// invariant).
    pub fn apply(&self, expr: &Expr, gen: &mut NameGen) -> Expr {
        go(expr, &self.entries, gen)
    }
}

/// One-shot convenience for [`ValSubst`].
pub fn subst_vals(expr: &Expr, map: &HashMap<Symbol, Expr>, gen: &mut NameGen) -> Expr {
    units_trace::count("kernel/subst_calls", 1);
    units_trace::count("kernel/subst_bindings", map.len() as u64);
    ValSubst::new(map).apply(expr, gen)
}

/// Splits `map` at a binder: removes shadowed entries and determines which
/// binder names must be renamed to avoid capturing a replacement's free
/// variable. Returns `None` when nothing is left to substitute.
fn at_binder(
    map: &HashMap<Symbol, SubstVal>,
    binders: &[Symbol],
    renamable: bool,
    gen: &mut NameGen,
) -> Option<(HashMap<Symbol, SubstVal>, HashMap<Symbol, Symbol>)> {
    let mut live: HashMap<Symbol, SubstVal> =
        map.iter().filter(|(k, _)| !binders.contains(k)).map(|(k, v)| (k.clone(), v.clone())).collect();
    if live.is_empty() {
        return None;
    }
    let mut renames = HashMap::new();
    for b in binders {
        let captured = live.values().any(|v| v.fvs.contains(b));
        if captured {
            if !renamable {
                panic!(
                    "substitution would capture non-renamable interface name `{b}` \
                     (reducer invariant: replacements must be closed)"
                );
            }
            let fresh = gen.fresh(b);
            renames.insert(b.clone(), fresh.clone());
            live.insert(
                b.clone(),
                SubstVal {
                    expr: Expr::Var(fresh.clone()),
                    fvs: Arc::new(BTreeSet::from([fresh])),
                },
            );
        }
    }
    Some((live, renames))
}

fn rename(renames: &HashMap<Symbol, Symbol>, name: &Symbol) -> Symbol {
    renames.get(name).cloned().unwrap_or_else(|| name.clone())
}

fn go(expr: &Expr, map: &HashMap<Symbol, SubstVal>, gen: &mut NameGen) -> Expr {
    if map.is_empty() {
        return expr.clone();
    }
    match expr {
        Expr::Var(x) => match map.get(x) {
            Some(v) => v.expr.clone(),
            None => expr.clone(),
        },
        // A resolved occurrence whose binder is substituted away loses its
        // (now meaningless) address along with the name.
        Expr::VarAt(x, _) => match map.get(x) {
            Some(v) => v.expr.clone(),
            None => expr.clone(),
        },
        Expr::Lit(_) | Expr::Prim(..) | Expr::Loc(_) | Expr::CellRef(_) | Expr::Data(_) => {
            expr.clone()
        }
        Expr::Lambda(lam) => {
            let binders: Vec<Symbol> = lam.params.iter().map(|p| p.name.clone()).collect();
            match at_binder(map, &binders, true, gen) {
                None => expr.clone(),
                Some((live, renames)) => {
                    let params = lam
                        .params
                        .iter()
                        .map(|p| crate::term::Param {
                            name: rename(&renames, &p.name),
                            ty: p.ty.clone(),
                        })
                        .collect();
                    Expr::Lambda(Arc::new(Lambda {
                        params,
                        ret_ty: lam.ret_ty.clone(),
                        body: go(&lam.body, &live, gen),
                    }))
                }
            }
        }
        Expr::App(f, args) => Expr::App(
            Box::new(go(f, map, gen)),
            args.iter().map(|a| go(a, map, gen)).collect(),
        ),
        Expr::If(c, t, e) => Expr::If(
            Box::new(go(c, map, gen)),
            Box::new(go(t, map, gen)),
            Box::new(go(e, map, gen)),
        ),
        Expr::Seq(es) => Expr::Seq(es.iter().map(|e| go(e, map, gen)).collect()),
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| go(e, map, gen)).collect()),
        Expr::Let(bindings, body) => {
            let new_rhs: Vec<Expr> = bindings.iter().map(|b| go(&b.expr, map, gen)).collect();
            let binders: Vec<Symbol> = bindings.iter().map(|b| b.name.clone()).collect();
            match at_binder(map, &binders, true, gen) {
                None => Expr::Let(
                    bindings
                        .iter()
                        .zip(new_rhs)
                        .map(|(b, expr)| Binding { name: b.name.clone(), expr })
                        .collect(),
                    Box::new((**body).clone()),
                ),
                Some((live, renames)) => Expr::Let(
                    bindings
                        .iter()
                        .zip(new_rhs)
                        .map(|(b, expr)| Binding { name: rename(&renames, &b.name), expr })
                        .collect(),
                    Box::new(go(body, &live, gen)),
                ),
            }
        }
        Expr::Letrec(lr) => {
            let mut binders: Vec<Symbol> = lr.vals.iter().map(|d| d.name.clone()).collect();
            for td in &lr.types {
                if let TypeDefn::Data(d) = td {
                    binders.extend(d.bound_val_names());
                }
            }
            match at_binder(map, &binders, true, gen) {
                None => expr.clone(),
                Some((live, renames)) => {
                    let types = lr
                        .types
                        .iter()
                        .map(|td| rename_typedefn_ops(td, &renames))
                        .collect();
                    let vals = lr
                        .vals
                        .iter()
                        .map(|d| ValDefn {
                            name: rename(&renames, &d.name),
                            ty: d.ty.clone(),
                            body: go(&d.body, &live, gen),
                        })
                        .collect();
                    Expr::Letrec(Arc::new(LetrecExpr { types, vals, body: go(&lr.body, &live, gen) }))
                }
            }
        }
        Expr::Set(target, value) => Expr::Set(
            Box::new(go(target, map, gen)),
            Box::new(go(value, map, gen)),
        ),
        Expr::Proj(i, e) => Expr::Proj(*i, Box::new(go(e, map, gen))),
        Expr::Unit(u) => {
            let mut binders: Vec<Symbol> =
                u.imports.vals.iter().map(|p| p.name.clone()).collect();
            binders.extend(u.defined_val_names());
            // Unit interface names (imports and exports) are not renamable;
            // internal definition names are, but renaming them would also
            // have to preserve exports, so we conservatively treat the whole
            // unit as non-renamable. Capture is impossible for closed
            // replacements.
            match at_binder(map, &binders, false, gen) {
                None => expr.clone(),
                Some((live, _)) => Expr::Unit(Arc::new(UnitExpr {
                    imports: u.imports.clone(),
                    exports: u.exports.clone(),
                    types: u.types.clone(),
                    vals: u
                        .vals
                        .iter()
                        .map(|d| ValDefn {
                            name: d.name.clone(),
                            ty: d.ty.clone(),
                            body: go(&d.body, &live, gen),
                        })
                        .collect(),
                    init: go(&u.init, &live, gen),
                })),
            }
        }
        Expr::Compound(c) => {
            let links = c
                .links
                .iter()
                .map(|l| crate::term::LinkClause {
                    expr: go(&l.expr, map, gen),
                    with: l.with.clone(),
                    provides: l.provides.clone(),
                    renames: l.renames.clone(),
                })
                .collect();
            Expr::Compound(Arc::new(crate::term::CompoundExpr {
                imports: c.imports.clone(),
                exports: c.exports.clone(),
                links,
            }))
        }
        Expr::Invoke(inv) => Expr::Invoke(Arc::new(crate::term::InvokeExpr {
            target: go(&inv.target, map, gen),
            ty_links: inv.ty_links.clone(),
            val_links: inv
                .val_links
                .iter()
                .map(|(n, e)| (n.clone(), go(e, map, gen)))
                .collect(),
        })),
        Expr::Seal(e, sig) => Expr::Seal(Box::new(go(e, map, gen)), sig.clone()),
        Expr::Variant(v) => Expr::Variant(Arc::new(VariantVal {
            ty_name: v.ty_name.clone(),
            instance: v.instance,
            tag: v.tag,
            payload: go(&v.payload, map, gen),
        })),
    }
}

fn rename_typedefn_ops(td: &TypeDefn, renames: &HashMap<Symbol, Symbol>) -> TypeDefn {
    match td {
        TypeDefn::Data(d) => TypeDefn::Data(DataDefn {
            name: d.name.clone(),
            variants: d
                .variants
                .iter()
                .map(|v| DataVariant {
                    ctor: rename(renames, &v.ctor),
                    dtor: rename(renames, &v.dtor),
                    payload: v.payload.clone(),
                })
                .collect(),
            predicate: rename(renames, &d.predicate),
        }),
        TypeDefn::Alias(a) => TypeDefn::Alias(a.clone()),
    }
}

// ---------------------------------------------------------------------------
// Type substitution
// ---------------------------------------------------------------------------

/// Applies `[τ̄/t̄]` to a type expression.
///
/// # Errors
///
/// Returns [`CaptureError`] if a replacement's free type variable would be
/// captured by a signature's bound (interface) type names, which the
/// language forbids renaming.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use units_kernel::{subst_ty, Ty};
/// let map = HashMap::from([("info".into(), Ty::Int)]);
/// let t = subst_ty(&Ty::arrow(vec![Ty::var("info")], Ty::Void), &map).unwrap();
/// assert_eq!(t, Ty::arrow(vec![Ty::Int], Ty::Void));
/// ```
pub fn subst_ty(ty: &Ty, map: &HashMap<Symbol, Ty>) -> Result<Ty, CaptureError> {
    if map.is_empty() {
        return Ok(ty.clone());
    }
    Ok(match ty {
        Ty::Var(t) => match map.get(t) {
            Some(replacement) => replacement.clone(),
            None => ty.clone(),
        },
        Ty::Int | Ty::Bool | Ty::Str | Ty::Void => ty.clone(),
        Ty::Arrow(params, ret) => Ty::Arrow(
            params.iter().map(|p| subst_ty(p, map)).collect::<Result<_, _>>()?,
            Box::new(subst_ty(ret, map)?),
        ),
        Ty::Tuple(items) => {
            Ty::Tuple(items.iter().map(|i| subst_ty(i, map)).collect::<Result<_, _>>()?)
        }
        Ty::Hash(elem) => Ty::Hash(Box::new(subst_ty(elem, map)?)),
        Ty::Sig(sig) => Ty::Sig(Box::new(subst_ty_in_sig(sig, map)?)),
    })
}

/// Applies `[τ̄/t̄]` to a signature, respecting its bound type variables.
///
/// # Errors
///
/// Returns [`CaptureError`] if a replacement mentions a type variable that
/// the signature itself binds.
pub fn subst_ty_in_sig(
    sig: &Signature,
    map: &HashMap<Symbol, Ty>,
) -> Result<Signature, CaptureError> {
    let bound = sig.bound_ty_vars();
    let live: HashMap<Symbol, Ty> =
        map.iter().filter(|(k, _)| !bound.contains(*k)).map(|(k, v)| (k.clone(), v.clone())).collect();
    if live.is_empty() {
        return Ok(sig.clone());
    }
    for b in &bound {
        for replacement in live.values() {
            let mut fvs = BTreeSet::new();
            replacement.free_ty_vars(&mut fvs);
            if fvs.contains(b) {
                return Err(CaptureError { binder: b.clone() });
            }
        }
    }
    let subst_ports = |ports: &Ports| -> Result<Ports, CaptureError> {
        Ok(Ports {
            types: ports.types.clone(),
            vals: ports
                .vals
                .iter()
                .map(|p| {
                    Ok(crate::sig::ValPort {
                        name: p.name.clone(),
                        ty: p.ty.as_ref().map(|t| subst_ty(t, &live)).transpose()?,
                    })
                })
                .collect::<Result<_, CaptureError>>()?,
        })
    };
    Ok(Signature {
        imports: subst_ports(&sig.imports)?,
        exports: subst_ports(&sig.exports)?,
        depends: sig.depends.clone(),
        equations: sig
            .equations
            .iter()
            .map(|eq| {
                Ok(crate::sig::SigEquation {
                    name: eq.name.clone(),
                    kind: eq.kind.clone(),
                    body: subst_ty(&eq.body, &live)?,
                })
            })
            .collect::<Result<_, CaptureError>>()?,
        init_ty: subst_ty(&sig.init_ty, &live)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::{TyPort, ValPort};
    use crate::term::Param;

    fn one(name: &str, v: Expr) -> HashMap<Symbol, Expr> {
        HashMap::from([(Symbol::new(name), v)])
    }

    #[test]
    fn substitutes_free_occurrences_only() {
        let e = Expr::lambda(vec![Param::untyped("x")], Expr::var("y"));
        let mut gen = NameGen::new();
        let out = subst_vals(&e, &one("y", Expr::int(1)), &mut gen);
        match out {
            Expr::Lambda(lam) => assert_eq!(lam.body, Expr::int(1)),
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn shadowed_variables_are_untouched() {
        let e = Expr::lambda(vec![Param::untyped("x")], Expr::var("x"));
        let mut gen = NameGen::new();
        let out = subst_vals(&e, &one("x", Expr::int(1)), &mut gen);
        assert_eq!(out, e);
    }

    #[test]
    fn capture_is_avoided_by_renaming() {
        // [y := x] (fn (x) ⇒ y)  must not capture the free x.
        let e = Expr::lambda(vec![Param::untyped("x")], Expr::var("y"));
        let mut gen = NameGen::new();
        let out = subst_vals(&e, &one("y", Expr::var("x")), &mut gen);
        match out {
            Expr::Lambda(lam) => {
                assert_ne!(lam.params[0].name.as_str(), "x", "binder must be renamed");
                assert_eq!(lam.body, Expr::var("x"), "free x must remain free");
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn set_targets_are_substituted() {
        let e = Expr::set("cell", Expr::int(5));
        let mut gen = NameGen::new();
        let out = subst_vals(&e, &one("cell", Expr::CellRef(crate::term::Loc(3))), &mut gen);
        match out {
            Expr::Set(target, _) => assert_eq!(*target, Expr::CellRef(crate::term::Loc(3))),
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn letrec_shadowing_blocks_substitution_in_bodies() {
        let e = Expr::Letrec(Arc::new(LetrecExpr {
            types: vec![],
            vals: vec![ValDefn { name: "f".into(), ty: None, body: Expr::var("f") }],
            body: Expr::var("f"),
        }));
        let mut gen = NameGen::new();
        let out = subst_vals(&e, &one("f", Expr::int(9)), &mut gen);
        assert_eq!(out, e);
    }

    #[test]
    fn ty_subst_replaces_variables() {
        let map = HashMap::from([(Symbol::new("t"), Ty::Int)]);
        let out = subst_ty(&Ty::Tuple(vec![Ty::var("t"), Ty::var("u")]), &map).unwrap();
        assert_eq!(out, Ty::Tuple(vec![Ty::Int, Ty::var("u")]));
    }

    #[test]
    fn ty_subst_respects_sig_binders() {
        let sig = Signature {
            imports: Ports { types: vec![TyPort::star("t")], vals: vec![] },
            exports: Ports {
                types: vec![],
                vals: vec![ValPort::typed("x", Ty::var("t"))],
            },
            depends: vec![],
            equations: vec![],
            init_ty: Ty::Void,
        };
        let map = HashMap::from([(Symbol::new("t"), Ty::Int)]);
        let out = subst_ty_in_sig(&sig, &map).unwrap();
        // `t` is bound by the signature, so nothing changes.
        assert_eq!(out, sig);
    }

    #[test]
    fn ty_subst_reports_interface_capture() {
        let sig = Signature {
            imports: Ports { types: vec![TyPort::star("t")], vals: vec![] },
            exports: Ports {
                types: vec![],
                vals: vec![ValPort::typed("x", Ty::var("u"))],
            },
            depends: vec![],
            equations: vec![],
            init_ty: Ty::Void,
        };
        // Substituting u ↦ t would capture `t` under the signature binder.
        let map = HashMap::from([(Symbol::new("u"), Ty::var("t"))]);
        let err = subst_ty_in_sig(&sig, &map).unwrap_err();
        assert_eq!(err.binder.as_str(), "t");
    }

    #[test]
    fn substitution_into_unit_bodies_reaches_free_imports_of_context() {
        // unit import () export (go) val go = fn () ⇒ outer in go
        let u = Expr::unit(UnitExpr {
            imports: Ports::new(),
            exports: Ports::untyped(Vec::<&str>::new(), ["go"]),
            types: vec![],
            vals: vec![ValDefn {
                name: "go".into(),
                ty: None,
                body: Expr::thunk(Expr::var("outer")),
            }],
            init: Expr::var("go"),
        });
        let mut gen = NameGen::new();
        let out = subst_vals(&u, &one("outer", Expr::int(42)), &mut gen);
        match out {
            Expr::Unit(unit) => match &unit.vals[0].body {
                Expr::Lambda(lam) => assert_eq!(lam.body, Expr::int(42)),
                other => panic!("expected lambda, got {other:?}"),
            },
            other => panic!("expected unit, got {other:?}"),
        }
    }
}
