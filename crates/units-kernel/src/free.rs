//! Free-variable computation for value variables and type variables.
//!
//! The binding structure follows the paper's grammars:
//!
//! * `fn (x…) ⇒ e` binds `x…` in `e`;
//! * `let x = e in b` binds `x…` in `b` only;
//! * `letrec` binds every defined value name (including datatype
//!   constructors/deconstructors/predicates) in every definition body and
//!   the block body, and every defined type name in every type expression;
//! * a `unit` binds its imported value names and defined value names in its
//!   definitions and initialization expression, and its imported/defined
//!   type names in its embedded type expressions;
//! * `compound`/`invoke` `with`/`provides` name lists are port labels, not
//!   variable occurrences;
//! * a signature binds its own imported/exported type variables.

use std::collections::BTreeSet;

use crate::symbol::Symbol;
use crate::term::{Expr, TypeDefn, UnitExpr};
use crate::ty::Ty;

/// Returns the free *value* variables of an expression.
///
/// # Examples
///
/// ```
/// use units_kernel::{free_val_vars, Expr, Param};
/// let e = Expr::lambda(vec![Param::untyped("x")],
///                      Expr::app(Expr::var("f"), vec![Expr::var("x")]));
/// let free = free_val_vars(&e);
/// assert!(free.contains("f"));
/// assert!(!free.contains("x"));
/// ```
pub fn free_val_vars(expr: &Expr) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    collect_val(expr, &mut BTreeSet::new(), &mut out);
    out
}

fn collect_val(expr: &Expr, bound: &mut BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
    match expr {
        Expr::Var(x) | Expr::VarAt(x, _) => {
            if !bound.contains(x) {
                out.insert(x.clone());
            }
        }
        Expr::Lit(_) | Expr::Prim(..) | Expr::Loc(_) | Expr::CellRef(_) | Expr::Data(_) => {}
        Expr::Lambda(lam) => {
            with_bound(bound, lam.params.iter().map(|p| p.name.clone()), |bound| {
                collect_val(&lam.body, bound, out);
            });
        }
        Expr::App(func, args) => {
            collect_val(func, bound, out);
            for a in args {
                collect_val(a, bound, out);
            }
        }
        Expr::If(c, t, e) => {
            collect_val(c, bound, out);
            collect_val(t, bound, out);
            collect_val(e, bound, out);
        }
        Expr::Seq(es) | Expr::Tuple(es) => {
            for e in es {
                collect_val(e, bound, out);
            }
        }
        Expr::Let(bindings, body) => {
            for b in bindings {
                collect_val(&b.expr, bound, out);
            }
            with_bound(bound, bindings.iter().map(|b| b.name.clone()), |bound| {
                collect_val(body, bound, out);
            });
        }
        Expr::Letrec(lr) => {
            let mut names: Vec<Symbol> = lr.vals.iter().map(|d| d.name.clone()).collect();
            for td in &lr.types {
                if let TypeDefn::Data(d) = td {
                    names.extend(d.bound_val_names());
                }
            }
            with_bound(bound, names, |bound| {
                for d in &lr.vals {
                    collect_val(&d.body, bound, out);
                }
                collect_val(&lr.body, bound, out);
            });
        }
        Expr::Set(target, value) => {
            collect_val(target, bound, out);
            collect_val(value, bound, out);
        }
        Expr::Proj(_, e) => collect_val(e, bound, out),
        Expr::Unit(u) => collect_unit_val(u, bound, out),
        Expr::Compound(c) => {
            for link in &c.links {
                collect_val(&link.expr, bound, out);
            }
        }
        Expr::Invoke(inv) => {
            collect_val(&inv.target, bound, out);
            for (_, e) in &inv.val_links {
                collect_val(e, bound, out);
            }
        }
        Expr::Seal(e, _) => collect_val(e, bound, out),
        Expr::Variant(v) => collect_val(&v.payload, bound, out),
    }
}

fn collect_unit_val(u: &UnitExpr, bound: &mut BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
    let mut names: Vec<Symbol> = u.imports.vals.iter().map(|p| p.name.clone()).collect();
    names.extend(u.defined_val_names());
    with_bound(bound, names, |bound| {
        for d in &u.vals {
            collect_val(&d.body, bound, out);
        }
        collect_val(&u.init, bound, out);
    });
}

fn with_bound<I>(bound: &mut BTreeSet<Symbol>, names: I, f: impl FnOnce(&mut BTreeSet<Symbol>))
where
    I: IntoIterator<Item = Symbol>,
{
    let added: Vec<Symbol> = names.into_iter().filter(|n| bound.insert(n.clone())).collect();
    f(bound);
    for n in added {
        bound.remove(&n);
    }
}

/// Returns the free *type* variables of an expression: type variables
/// occurring in embedded type annotations, signatures, primitive
/// instantiations, and invoke type links that are not bound by an enclosing
/// `letrec`/`unit` type definition or unit type import.
pub fn free_ty_vars_expr(expr: &Expr) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    collect_ty(expr, &mut BTreeSet::new(), &mut out);
    out
}

fn add_ty(ty: &Ty, bound: &BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
    let mut occurring = BTreeSet::new();
    ty.free_ty_vars(&mut occurring);
    out.extend(occurring.into_iter().filter(|t| !bound.contains(t)));
}

fn add_opt_ty(ty: &Option<Ty>, bound: &BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
    if let Some(ty) = ty {
        add_ty(ty, bound, out);
    }
}

fn collect_ty(expr: &Expr, bound: &mut BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
    match expr {
        Expr::Var(_) | Expr::VarAt(..) | Expr::Lit(_) | Expr::Loc(_) | Expr::CellRef(_)
        | Expr::Data(_) => {}
        Expr::Prim(_, tys) => {
            for t in tys {
                add_ty(t, bound, out);
            }
        }
        Expr::Lambda(lam) => {
            for p in &lam.params {
                add_opt_ty(&p.ty, bound, out);
            }
            add_opt_ty(&lam.ret_ty, bound, out);
            collect_ty(&lam.body, bound, out);
        }
        Expr::App(func, args) => {
            collect_ty(func, bound, out);
            for a in args {
                collect_ty(a, bound, out);
            }
        }
        Expr::If(c, t, e) => {
            collect_ty(c, bound, out);
            collect_ty(t, bound, out);
            collect_ty(e, bound, out);
        }
        Expr::Seq(es) | Expr::Tuple(es) => {
            for e in es {
                collect_ty(e, bound, out);
            }
        }
        Expr::Let(bindings, body) => {
            for b in bindings {
                collect_ty(&b.expr, bound, out);
            }
            collect_ty(body, bound, out);
        }
        Expr::Letrec(lr) => {
            let names: Vec<Symbol> = lr.types.iter().map(|t| t.name().clone()).collect();
            with_bound(bound, names, |bound| {
                for td in &lr.types {
                    collect_typedefn(td, bound, out);
                }
                for d in &lr.vals {
                    add_opt_ty(&d.ty, bound, out);
                    collect_ty(&d.body, bound, out);
                }
                collect_ty(&lr.body, bound, out);
            });
        }
        Expr::Set(target, value) => {
            collect_ty(target, bound, out);
            collect_ty(value, bound, out);
        }
        Expr::Proj(_, e) => collect_ty(e, bound, out),
        Expr::Unit(u) => {
            let mut names: Vec<Symbol> = u.imports.types.iter().map(|p| p.name.clone()).collect();
            names.extend(u.defined_ty_names());
            with_bound(bound, names, |bound| {
                for p in u.imports.vals.iter().chain(u.exports.vals.iter()) {
                    add_opt_ty(&p.ty, bound, out);
                }
                for td in &u.types {
                    collect_typedefn(td, bound, out);
                }
                for d in &u.vals {
                    add_opt_ty(&d.ty, bound, out);
                    collect_ty(&d.body, bound, out);
                }
                collect_ty(&u.init, bound, out);
            });
        }
        Expr::Compound(c) => {
            let names: Vec<Symbol> = c
                .imports
                .types
                .iter()
                .chain(c.links.iter().flat_map(|l| l.provides.types.iter()))
                .map(|p| p.name.clone())
                .collect();
            with_bound(bound, names, |bound| {
                for p in c.imports.vals.iter().chain(c.exports.vals.iter()) {
                    add_opt_ty(&p.ty, bound, out);
                }
                for link in &c.links {
                    collect_ty(&link.expr, bound, out);
                    for p in link.with.vals.iter().chain(link.provides.vals.iter()) {
                        add_opt_ty(&p.ty, bound, out);
                    }
                }
            });
        }
        Expr::Invoke(inv) => {
            collect_ty(&inv.target, bound, out);
            for (_, t) in &inv.ty_links {
                add_ty(t, bound, out);
            }
            for (_, e) in &inv.val_links {
                collect_ty(e, bound, out);
            }
        }
        Expr::Seal(e, sig) => {
            collect_ty(e, bound, out);
            let mut sig_free = BTreeSet::new();
            sig.free_ty_vars_unbound(&mut sig_free);
            out.extend(sig_free.into_iter().filter(|t| !bound.contains(t)));
        }
        Expr::Variant(v) => collect_ty(&v.payload, bound, out),
    }
}

fn collect_typedefn(td: &TypeDefn, bound: &BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
    match td {
        TypeDefn::Data(d) => {
            for v in &d.variants {
                add_ty(&v.payload, bound, out);
            }
        }
        TypeDefn::Alias(a) => add_ty(&a.body, bound, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Ports;
    use crate::term::{Binding, DataDefn, DataVariant, LetrecExpr, Param, ValDefn};

    fn names(set: &BTreeSet<Symbol>) -> Vec<&str> {
        set.iter().map(|s| s.as_str()).collect()
    }

    #[test]
    fn lambda_binds_parameters() {
        let e = Expr::lambda(
            vec![Param::untyped("x"), Param::untyped("y")],
            Expr::app(Expr::var("f"), vec![Expr::var("x"), Expr::var("y"), Expr::var("z")]),
        );
        assert_eq!(names(&free_val_vars(&e)), vec!["f", "z"]);
    }

    #[test]
    fn let_bindings_scope_only_over_body() {
        let e = Expr::Let(
            vec![Binding { name: "x".into(), expr: Expr::var("x") }],
            Box::new(Expr::var("x")),
        );
        // The right-hand side `x` is free (let is not recursive); the body
        // `x` is bound.
        assert_eq!(names(&free_val_vars(&e)), vec!["x"]);
    }

    #[test]
    fn letrec_binds_in_definitions_and_body() {
        let e = Expr::Letrec(std::sync::Arc::new(LetrecExpr {
            types: vec![],
            vals: vec![ValDefn {
                name: "odd".into(),
                ty: None,
                body: Expr::lambda(vec![Param::untyped("n")], Expr::var("even")),
            }],
            body: Expr::var("odd"),
        }));
        assert_eq!(names(&free_val_vars(&e)), vec!["even"]);
    }

    #[test]
    fn letrec_datatype_operations_are_bound() {
        let e = Expr::Letrec(std::sync::Arc::new(LetrecExpr {
            types: vec![TypeDefn::Data(DataDefn {
                name: "t".into(),
                variants: vec![DataVariant {
                    ctor: "mk".into(),
                    dtor: "unmk".into(),
                    payload: Ty::Int,
                }],
                predicate: "t?".into(),
            })],
            vals: vec![],
            body: Expr::app(Expr::var("mk"), vec![Expr::var("free")]),
        }));
        assert_eq!(names(&free_val_vars(&e)), vec!["free"]);
    }

    #[test]
    fn unit_binds_imports_and_definitions() {
        let u = Expr::unit(crate::term::UnitExpr {
            imports: Ports::untyped(Vec::<&str>::new(), ["error"]),
            exports: Ports::untyped(Vec::<&str>::new(), ["go"]),
            types: vec![],
            vals: vec![ValDefn {
                name: "go".into(),
                ty: None,
                body: Expr::thunk(Expr::app(Expr::var("error"), vec![Expr::var("outer")])),
            }],
            init: Expr::var("go"),
        });
        assert_eq!(names(&free_val_vars(&u)), vec!["outer"]);
    }

    #[test]
    fn invoke_link_names_are_labels_not_occurrences() {
        let e = Expr::invoke(crate::term::InvokeExpr {
            target: Expr::var("u"),
            ty_links: vec![],
            val_links: vec![("error".into(), Expr::var("handler"))],
        });
        assert_eq!(names(&free_val_vars(&e)), vec!["handler", "u"]);
    }

    #[test]
    fn free_ty_vars_respect_unit_binders() {
        let u = Expr::unit(crate::term::UnitExpr {
            imports: Ports { types: vec![crate::sig::TyPort::star("info")], vals: vec![] },
            exports: Ports::new(),
            types: vec![],
            vals: vec![ValDefn {
                name: "x".into(),
                ty: Some(Ty::arrow(vec![Ty::var("info")], Ty::var("leaky"))),
                body: Expr::void(),
            }],
            init: Expr::void(),
        });
        assert_eq!(names(&free_ty_vars_expr(&u)), vec!["leaky"]);
    }

    #[test]
    fn prim_instantiations_contribute_ty_vars() {
        let e = Expr::Prim(crate::term::PrimOp::HashNew, vec![Ty::var("info")]);
        assert_eq!(names(&free_ty_vars_expr(&e)), vec!["info"]);
    }
}
