//! Syntax-level diagnostics.

use std::fmt;

use crate::span::Span;

/// An error produced by the reader or the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the problem is.
    pub span: Span,
    /// What the problem is (lowercase, no trailing punctuation).
    pub message: String,
}

impl ParseError {
    /// Creates an error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> ParseError {
        ParseError { span, message: message.into() }
    }

    /// Renders the error with 1-based line/column information computed
    /// from the original source text.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{line}:{col}: {}", self.message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at {})", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_line_and_column() {
        let err = ParseError::new(Span::new(4, 5), "unexpected thing");
        assert_eq!(err.render("ab\ncd"), "2:2: unexpected thing");
    }

    #[test]
    fn display_includes_span() {
        let err = ParseError::new(Span::new(1, 2), "boom");
        assert_eq!(err.to_string(), "boom (at 1..2)");
    }
}
