//! The S-expression reader.
//!
//! The surface language is fully parenthesized, Scheme style. The reader
//! produces a small [`SExpr`] tree that the parser then elaborates into the
//! kernel AST. Comments run from `;` to end of line. String literals use
//! double quotes with `\n`, `\t`, `\\`, and `\"` escapes. The character
//! `#` is reserved for machine-generated names and rejected in source
//! identifiers.

use std::fmt;

use crate::error::ParseError;
use crate::span::Span;

/// A read S-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// An identifier or operator atom.
    Atom(String, Span),
    /// An integer literal.
    Int(i64, Span),
    /// A string literal (escapes already decoded).
    Str(String, Span),
    /// A parenthesized list.
    List(Vec<SExpr>, Span),
}

impl SExpr {
    /// The source span of this S-expression.
    pub fn span(&self) -> Span {
        match self {
            SExpr::Atom(_, s) | SExpr::Int(_, s) | SExpr::Str(_, s) | SExpr::List(_, s) => *s,
        }
    }

    /// Returns the atom text if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            SExpr::Atom(a, _) => Some(a),
            _ => None,
        }
    }

    /// Returns the elements if this is a list.
    pub fn as_list(&self) -> Option<&[SExpr]> {
        match self {
            SExpr::List(items, _) => Some(items),
            _ => None,
        }
    }

    /// True when this is the atom `word`.
    pub fn is_atom(&self, word: &str) -> bool {
        self.as_atom() == Some(word)
    }

    /// Returns the elements of a list whose head is the atom `word`.
    pub fn as_tagged(&self, word: &str) -> Option<&[SExpr]> {
        let items = self.as_list()?;
        if items.first()?.is_atom(word) {
            Some(&items[1..])
        } else {
            None
        }
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Atom(a, _) => f.write_str(a),
            SExpr::Int(n, _) => write!(f, "{n}"),
            SExpr::Str(s, _) => write!(f, "{s:?}"),
            SExpr::List(items, _) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Reads every top-level S-expression from `src`.
///
/// # Errors
///
/// Returns a [`ParseError`] on unbalanced parentheses, unterminated
/// strings, malformed numbers, or reserved characters.
///
/// # Examples
///
/// ```
/// use units_syntax::read_all;
/// let forms = read_all("(+ 1 2) ; comment\n\"hi\"").unwrap();
/// assert_eq!(forms.len(), 2);
/// ```
pub fn read_all(src: &str) -> Result<Vec<SExpr>, ParseError> {
    let mut reader = Reader { src, bytes: src.as_bytes(), pos: 0 };
    let mut out = Vec::new();
    loop {
        reader.skip_trivia();
        if reader.at_end() {
            return Ok(out);
        }
        out.push(reader.read()?);
    }
}

/// Reads exactly one S-expression, requiring the whole input be consumed.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing forms.
pub fn read_one(src: &str) -> Result<SExpr, ParseError> {
    let forms = read_all(src)?;
    match <[SExpr; 1]>::try_from(forms) {
        Ok([form]) => Ok(form),
        Err(forms) => Err(ParseError::new(
            Span::new(0, src.len()),
            format!("expected exactly one form, found {}", forms.len()),
        )),
    }
}

struct Reader<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
}

impl Reader<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b';' => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn read(&mut self) -> Result<SExpr, ParseError> {
        self.skip_trivia();
        let start = self.pos;
        match self.peek() {
            None => Err(ParseError::new(Span::new(start, start), "unexpected end of input")),
            Some(b'(') | Some(b'[') => {
                let close = if self.peek() == Some(b'(') { b')' } else { b']' };
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    match self.peek() {
                        None => {
                            return Err(ParseError::new(
                                Span::new(start, self.pos),
                                "unterminated list",
                            ))
                        }
                        Some(b) if b == close => {
                            self.pos += 1;
                            return Ok(SExpr::List(items, Span::new(start, self.pos)));
                        }
                        Some(b')') | Some(b']') => {
                            return Err(ParseError::new(
                                Span::new(self.pos, self.pos + 1),
                                "mismatched closing bracket",
                            ))
                        }
                        Some(_) => items.push(self.read()?),
                    }
                }
            }
            Some(b')') | Some(b']') => Err(ParseError::new(
                Span::new(start, start + 1),
                "unexpected closing bracket",
            )),
            Some(b'"') => self.read_string(),
            Some(_) => self.read_atom(),
        }
    }

    fn read_string(&mut self) -> Result<SExpr, ParseError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(ParseError::new(
                        Span::new(start, self.pos),
                        "unterminated string literal",
                    ))
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(SExpr::Str(out, Span::new(start, self.pos)));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| {
                        ParseError::new(Span::new(start, self.pos), "unterminated escape")
                    })?;
                    let ch = match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => {
                            return Err(ParseError::new(
                                Span::new(self.pos - 1, self.pos + 1),
                                format!("unknown escape `\\{}`", other as char),
                            ))
                        }
                    };
                    out.push(ch);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.src[self.pos..];
                    let Some(ch) = rest.chars().next() else {
                        return Err(ParseError::new(
                            Span::new(start, self.pos),
                            "unterminated string literal",
                        ));
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn read_atom(&mut self) -> Result<SExpr, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n' | b'(' | b')' | b'[' | b']' | b'"' | b';')
            {
                break;
            }
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start, self.pos);
        debug_assert!(!text.is_empty());
        if text.contains('#') {
            return Err(ParseError::new(
                span,
                "`#` is reserved for machine-generated names".to_string(),
            ));
        }
        let numeric = text.bytes().next().is_some_and(|b| b.is_ascii_digit())
            || (text.len() > 1
                && text.starts_with('-')
                && text.as_bytes()[1].is_ascii_digit());
        if numeric {
            match text.parse::<i64>() {
                Ok(n) => Ok(SExpr::Int(n, span)),
                Err(_) => Err(ParseError::new(span, format!("malformed number `{text}`"))),
            }
        } else {
            Ok(SExpr::Atom(text.to_string(), span))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_nested_lists() {
        let e = read_one("(a (b c) d)").unwrap();
        let items = e.as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert!(items[0].is_atom("a"));
        assert_eq!(items[1].as_list().unwrap().len(), 2);
    }

    #[test]
    fn reads_square_brackets_as_lists() {
        let e = read_one("(let [(x 1)] x)").unwrap();
        assert_eq!(e.as_list().unwrap().len(), 3);
    }

    #[test]
    fn rejects_mismatched_brackets() {
        assert!(read_one("(a]").is_err());
        assert!(read_one("(a").is_err());
        assert!(read_one(")").is_err());
    }

    #[test]
    fn reads_integers_including_negative() {
        assert!(matches!(read_one("42").unwrap(), SExpr::Int(42, _)));
        assert!(matches!(read_one("-7").unwrap(), SExpr::Int(-7, _)));
        // `-` alone is an operator atom, not a number.
        assert!(matches!(read_one("-").unwrap(), SExpr::Atom(a, _) if a == "-"));
    }

    #[test]
    fn reads_strings_with_escapes() {
        match read_one(r#""a\n\"b\"""#).unwrap() {
            SExpr::Str(s, _) => assert_eq!(s, "a\n\"b\""),
            other => panic!("expected string, got {other:?}"),
        }
        assert!(read_one("\"open").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let forms = read_all("; leading\n(a) ; trailing\n(b)").unwrap();
        assert_eq!(forms.len(), 2);
    }

    #[test]
    fn hash_is_reserved() {
        let err = read_one("x#1").unwrap_err();
        assert!(err.to_string().contains("reserved"));
    }

    #[test]
    fn display_round_trips() {
        let src = "(unit (import a) (export b) (define b 1))";
        let e = read_one(src).unwrap();
        assert_eq!(e.to_string(), src);
    }

    #[test]
    fn read_one_rejects_trailing_forms() {
        assert!(read_one("(a) (b)").is_err());
        assert!(read_one("").is_err());
    }

    #[test]
    fn tagged_access() {
        let e = read_one("(import x y)").unwrap();
        let rest = e.as_tagged("import").unwrap();
        assert_eq!(rest.len(), 2);
        assert!(e.as_tagged("export").is_none());
    }
}
