//! Pretty-printer: kernel AST → surface syntax.
//!
//! Output is guaranteed to re-parse to an equal term (round-trip property,
//! round-trip tested here and in `tests/properties.rs`) for every form
//! the parser can produce. Machine-internal forms (locations, cell
//! references, datatype operations, variants) are printed as `#⟨…⟩`
//! pseudo-syntax for debugging and do not re-parse.

use std::fmt::Write as _;

use units_kernel::{
    Expr, Kind, Lit, Ports, Signature, TypeDefn, Ty, UnitExpr, ValDefn,
};

/// Renders an expression as parseable surface syntax.
///
/// # Examples
///
/// ```
/// use units_syntax::{parse_expr, pretty_expr};
/// let e = parse_expr("(if (< 1 2) \"yes\" \"no\")")?;
/// assert_eq!(pretty_expr(&e), "(if (< 1 2) \"yes\" \"no\")");
/// # Ok::<(), units_syntax::ParseError>(())
/// ```
pub fn pretty_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr);
    out
}

/// Renders a type as parseable surface syntax.
pub fn pretty_ty(ty: &Ty) -> String {
    let mut out = String::new();
    write_ty(&mut out, ty);
    out
}

/// Renders a signature as a parseable `(sig …)` type.
pub fn pretty_signature(sig: &Signature) -> String {
    let mut out = String::new();
    write_sig(&mut out, sig);
    out
}

fn write_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            other => out.push(other),
        }
    }
    out.push('"');
}

fn write_kind(out: &mut String, kind: &Kind) {
    match kind {
        Kind::Star => out.push('*'),
        Kind::Arrow(from, to) => {
            out.push_str("(=> ");
            write_kind(out, from);
            out.push(' ');
            write_kind(out, to);
            out.push(')');
        }
    }
}

fn write_ty(out: &mut String, ty: &Ty) {
    match ty {
        Ty::Var(t) => out.push_str(t.as_str()),
        Ty::Int => out.push_str("int"),
        Ty::Bool => out.push_str("bool"),
        Ty::Str => out.push_str("str"),
        Ty::Void => out.push_str("void"),
        Ty::Arrow(params, ret) => {
            out.push_str("(->");
            for p in params {
                out.push(' ');
                write_ty(out, p);
            }
            out.push(' ');
            write_ty(out, ret);
            out.push(')');
        }
        Ty::Tuple(items) => {
            out.push_str("(tuple");
            for i in items {
                out.push(' ');
                write_ty(out, i);
            }
            out.push(')');
        }
        Ty::Hash(elem) => {
            out.push_str("(hash ");
            write_ty(out, elem);
            out.push(')');
        }
        Ty::Sig(sig) => write_sig(out, sig),
    }
}

fn write_sig(out: &mut String, sig: &Signature) {
    out.push_str("(sig ");
    write_ports(out, "import", &sig.imports);
    out.push(' ');
    write_ports(out, "export", &sig.exports);
    out.push_str(" (init ");
    write_ty(out, &sig.init_ty);
    out.push(')');
    if !sig.depends.is_empty() {
        out.push_str(" (depends");
        for d in &sig.depends {
            let _ = write!(out, " ({} {})", d.export, d.import);
        }
        out.push(')');
    }
    if !sig.equations.is_empty() {
        out.push_str(" (where");
        for eq in &sig.equations {
            let _ = write!(out, " ({} ", eq.name);
            write_kind(out, &eq.kind);
            out.push(' ');
            write_ty(out, &eq.body);
            out.push(')');
        }
        out.push(')');
    }
    out.push(')');
}

fn write_ports(out: &mut String, label: &str, ports: &Ports) {
    out.push('(');
    out.push_str(label);
    for t in &ports.types {
        if t.kind.is_star() {
            let _ = write!(out, " (type {})", t.name);
        } else {
            let _ = write!(out, " (type {} ", t.name);
            write_kind(out, &t.kind);
            out.push(')');
        }
    }
    for v in &ports.vals {
        match &v.ty {
            None => {
                let _ = write!(out, " {}", v.name);
            }
            Some(ty) => {
                let _ = write!(out, " ({} ", v.name);
                write_ty(out, ty);
                out.push(')');
            }
        }
    }
    out.push(')');
}

/// Ports of a `with`/`provides` clause: renamed ports print as
/// `(as inner outer [τ])` / `(as-type inner outer [κ])`.
fn write_link_ports(
    out: &mut String,
    label: &str,
    ports: &Ports,
    renames: &units_kernel::LinkRenames,
    importing: bool,
) {
    out.push('(');
    out.push_str(label);
    for t in &ports.types {
        let outer = if importing {
            renames.outer_import_ty(&t.name)
        } else {
            renames.outer_export_ty(&t.name)
        };
        if outer != &t.name {
            let _ = write!(out, " (as-type {} {}", t.name, outer);
            if !t.kind.is_star() {
                out.push(' ');
                write_kind(out, &t.kind);
            }
            out.push(')');
        } else if t.kind.is_star() {
            let _ = write!(out, " (type {})", t.name);
        } else {
            let _ = write!(out, " (type {} ", t.name);
            write_kind(out, &t.kind);
            out.push(')');
        }
    }
    for v in &ports.vals {
        let outer = if importing {
            renames.outer_import_val(&v.name)
        } else {
            renames.outer_export_val(&v.name)
        };
        if outer != &v.name {
            let _ = write!(out, " (as {} {}", v.name, outer);
            if let Some(ty) = &v.ty {
                out.push(' ');
                write_ty(out, ty);
            }
            out.push(')');
        } else {
            match &v.ty {
                None => {
                    let _ = write!(out, " {}", v.name);
                }
                Some(ty) => {
                    let _ = write!(out, " ({} ", v.name);
                    write_ty(out, ty);
                    out.push(')');
                }
            }
        }
    }
    out.push(')');
}

fn write_typedefn(out: &mut String, td: &TypeDefn) {
    match td {
        TypeDefn::Data(d) => {
            let _ = write!(out, "(datatype {}", d.name);
            for v in &d.variants {
                let _ = write!(out, " ({} {} ", v.ctor, v.dtor);
                write_ty(out, &v.payload);
                out.push(')');
            }
            let _ = write!(out, " {})", d.predicate);
        }
        TypeDefn::Alias(a) => {
            let _ = write!(out, "(alias {} ", a.name);
            write_kind(out, &a.kind);
            out.push(' ');
            write_ty(out, &a.body);
            out.push(')');
        }
    }
}

fn write_valdefn(out: &mut String, vd: &ValDefn) {
    let _ = write!(out, "(define {} ", vd.name);
    if let Some(ty) = &vd.ty {
        write_ty(out, ty);
        out.push(' ');
    }
    write_expr(out, &vd.body);
    out.push(')');
}

/// Writes a body expression, splicing top-level `Seq` into several forms.
fn write_body(out: &mut String, body: &Expr) {
    match body {
        Expr::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                write_expr(out, item);
            }
        }
        other => write_expr(out, other),
    }
}

fn write_unit(out: &mut String, u: &UnitExpr) {
    out.push_str("(unit ");
    write_ports(out, "import", &u.imports);
    out.push(' ');
    write_ports(out, "export", &u.exports);
    for td in &u.types {
        out.push(' ');
        write_typedefn(out, td);
    }
    for vd in &u.vals {
        out.push(' ');
        write_valdefn(out, vd);
    }
    out.push_str(" (init ");
    write_body(out, &u.init);
    out.push_str("))");
}

fn write_expr(out: &mut String, expr: &Expr) {
    match expr {
        // A resolved variable prints as its plain name: the address is
        // derived data, and the result stays re-parseable.
        Expr::Var(x) | Expr::VarAt(x, _) => out.push_str(x.as_str()),
        Expr::Lit(Lit::Int(n)) => {
            let _ = write!(out, "{n}");
        }
        Expr::Lit(Lit::Bool(b)) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Lit(Lit::Str(s)) => write_str_lit(out, s),
        Expr::Lit(Lit::Void) => out.push_str("void"),
        Expr::Prim(op, tys) => {
            if tys.is_empty() {
                out.push_str(op.name());
            } else {
                let _ = write!(out, "(inst {}", op.name());
                for t in tys {
                    out.push(' ');
                    write_ty(out, t);
                }
                out.push(')');
            }
        }
        Expr::Lambda(lam) => {
            out.push_str("(lambda (");
            for (i, p) in lam.params.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                match &p.ty {
                    None => out.push_str(p.name.as_str()),
                    Some(ty) => {
                        let _ = write!(out, "({} ", p.name);
                        write_ty(out, ty);
                        out.push(')');
                    }
                }
            }
            out.push_str(") ");
            write_body(out, &lam.body);
            out.push(')');
        }
        Expr::App(f, args) => {
            out.push('(');
            write_expr(out, f);
            for a in args {
                out.push(' ');
                write_expr(out, a);
            }
            out.push(')');
        }
        Expr::If(c, t, e) => {
            out.push_str("(if ");
            write_expr(out, c);
            out.push(' ');
            write_expr(out, t);
            out.push(' ');
            write_expr(out, e);
            out.push(')');
        }
        Expr::Seq(items) => {
            out.push_str("(begin");
            for i in items {
                out.push(' ');
                write_expr(out, i);
            }
            out.push(')');
        }
        Expr::Let(bindings, body) => {
            out.push_str("(let (");
            for (i, b) in bindings.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "({} ", b.name);
                write_expr(out, &b.expr);
                out.push(')');
            }
            out.push_str(") ");
            write_body(out, body);
            out.push(')');
        }
        Expr::Letrec(lr) => {
            out.push_str("(letrec (");
            let mut first = true;
            for td in &lr.types {
                if !first {
                    out.push(' ');
                }
                first = false;
                write_typedefn(out, td);
            }
            for vd in &lr.vals {
                if !first {
                    out.push(' ');
                }
                first = false;
                write_valdefn(out, vd);
            }
            out.push_str(") ");
            write_body(out, &lr.body);
            out.push(')');
        }
        Expr::Set(target, value) => match &**target {
            Expr::Var(x) | Expr::VarAt(x, _) => {
                let _ = write!(out, "(set! {x} ");
                write_expr(out, value);
                out.push(')');
            }
            other => {
                out.push_str("#⟨set ");
                write_expr(out, other);
                out.push(' ');
                write_expr(out, value);
                out.push('⟩');
            }
        },
        Expr::Tuple(items) => {
            out.push_str("(tuple");
            for i in items {
                out.push(' ');
                write_expr(out, i);
            }
            out.push(')');
        }
        Expr::Proj(i, e) => {
            let _ = write!(out, "(proj {i} ");
            write_expr(out, e);
            out.push(')');
        }
        Expr::Unit(u) => write_unit(out, u),
        Expr::Compound(c) => {
            out.push_str("(compound ");
            write_ports(out, "import", &c.imports);
            out.push(' ');
            write_ports(out, "export", &c.exports);
            out.push_str(" (link");
            for link in &c.links {
                out.push_str(" (");
                write_expr(out, &link.expr);
                out.push(' ');
                write_link_ports(out, "with", &link.with, &link.renames, true);
                out.push(' ');
                write_link_ports(out, "provides", &link.provides, &link.renames, false);
                out.push(')');
            }
            out.push_str("))");
        }
        Expr::Invoke(inv) => {
            out.push_str("(invoke ");
            write_expr(out, &inv.target);
            for (t, ty) in &inv.ty_links {
                let _ = write!(out, " (type {t} ");
                write_ty(out, ty);
                out.push(')');
            }
            for (x, e) in &inv.val_links {
                let _ = write!(out, " (val {x} ");
                write_expr(out, e);
                out.push(')');
            }
            out.push(')');
        }
        Expr::Seal(e, sig) => {
            out.push_str("(seal ");
            write_expr(out, e);
            out.push(' ');
            write_sig(out, sig);
            out.push(')');
        }
        Expr::Loc(l) => {
            let _ = write!(out, "#⟨{l}⟩");
        }
        Expr::CellRef(l) => {
            let _ = write!(out, "#⟨cell {l}⟩");
        }
        Expr::Data(d) => {
            let _ = write!(out, "#⟨data {} {:?}@{}⟩", d.ty_name, d.role, d.instance);
        }
        Expr::Variant(v) => {
            let _ = write!(out, "#⟨{}@{}·{} ", v.ty_name, v.instance, v.tag);
            write_expr(out, &v.payload);
            out.push('⟩');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_ty};

    fn round_trip(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = pretty_expr(&e);
        let reparsed =
            parse_expr(&printed).unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        assert_eq!(e, reparsed, "round-trip changed term for `{src}` → `{printed}`");
    }

    #[test]
    fn round_trips_core_forms() {
        round_trip("42");
        round_trip("(lambda (x) x)");
        round_trip("(lambda ((x int) y) (begin x y))");
        round_trip("(let ((x 1) (y 2)) (+ x y))");
        round_trip("(letrec ((define f (lambda (n) (f n)))) (f 1))");
        round_trip("(if true \"a\\n\" \"b\")");
        round_trip("(set! cell (tuple 1 2))");
        round_trip("(proj 1 (tuple 1 2))");
        round_trip("(inst hash-new (hash int))");
    }

    #[test]
    fn round_trips_unit_forms() {
        round_trip(
            "(unit (import (type info) (error (-> str void)))
                   (export (new (-> db)))
                   (datatype db (mk unmk (hash info)) (no unno void) db?)
                   (define new (-> db) (lambda () (mk (inst hash-new info))))
                   (init (display \"up\") void))",
        );
        round_trip(
            "(compound (import a) (export b)
               (link (u1 (with a) (provides c)) (u2 (with c) (provides b))))",
        );
        round_trip("(invoke u (type info int) (val error f))");
        round_trip("(seal u (sig (import (type t)) (export) (init void) (depends (t t))))");
        round_trip("(letrec ((alias env (=> * *) (-> str int))) void)");
    }

    #[test]
    fn pretty_ty_round_trips() {
        for src in ["int", "(-> int bool)", "(hash (tuple int str))",
                    "(sig (import (type t) (x t)) (export (y (-> t t))) (init int))"] {
            let t = parse_ty(src).unwrap();
            assert_eq!(parse_ty(&pretty_ty(&t)).unwrap(), t, "src: {src}");
        }
    }

    #[test]
    fn machine_forms_print_as_pseudo_syntax() {
        let printed = pretty_expr(&Expr::Loc(units_kernel::Loc(3)));
        assert!(printed.contains("ℓ3"));
        assert!(parse_expr(&printed).is_err());
    }
}

/// Renders an expression as indented, line-wrapped surface syntax.
///
/// Output re-parses to the same term (it is the flat printer's output,
/// re-broken at S-expression boundaries). Lists that fit within `width`
/// columns stay on one line; longer ones break with two-space indents.
///
/// # Examples
///
/// ```
/// use units_syntax::{parse_expr, pretty_expr_indent};
/// let e = parse_expr("(unit (import a b c) (export d)
///                       (define d (lambda () (+ a (+ b c)))))").unwrap();
/// let text = pretty_expr_indent(&e, 40);
/// assert!(text.lines().count() > 1);
/// assert_eq!(parse_expr(&text).unwrap(), e);
/// ```
pub fn pretty_expr_indent(expr: &Expr, width: usize) -> String {
    let flat = pretty_expr(expr);
    match crate::sexpr::read_one(&flat) {
        Ok(sx) => {
            let mut out = String::new();
            write_sexpr_indent(&mut out, &sx, 0, width);
            out
        }
        // Machine-internal forms don't re-parse; fall back to flat text.
        Err(_) => flat,
    }
}

fn sexpr_flat_len(sx: &crate::sexpr::SExpr) -> usize {
    sx.to_string().chars().count()
}

fn write_sexpr_indent(
    out: &mut String,
    sx: &crate::sexpr::SExpr,
    indent: usize,
    width: usize,
) {
    use crate::sexpr::SExpr;
    let budget = width.saturating_sub(indent);
    if sexpr_flat_len(sx) <= budget {
        let _ = write!(out, "{sx}");
        return;
    }
    match sx {
        SExpr::List(items, _) if !items.is_empty() => {
            out.push('(');
            // Keep the head (and a short second element, e.g. a name after
            // `define`) on the opening line.
            write_sexpr_indent(out, &items[0], indent + 1, width);
            let mut rest = &items[1..];
            if let (Some(second), true) = (rest.first(), rest.len() > 1) {
                if matches!(second, SExpr::Atom(..)) {
                    out.push(' ');
                    let _ = write!(out, "{second}");
                    rest = &rest[1..];
                }
            }
            for item in rest {
                out.push('\n');
                for _ in 0..indent + 2 {
                    out.push(' ');
                }
                write_sexpr_indent(out, item, indent + 2, width);
            }
            out.push(')');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

#[cfg(test)]
mod indent_tests {
    use super::*;
    use crate::parser::parse_expr;

    #[test]
    fn indented_output_reparses_to_the_same_term() {
        let srcs = [
            "(unit (import error) (export new insert delete)
               (define new (lambda () 1))
               (define insert (lambda (d k v) void))
               (define delete (lambda (d k) void))
               (init (display \"a long initialization message here\")))",
            "(compound (import a) (export b)
               (link ((unit (import a) (export b) (define b (lambda () a)))
                      (with a) (provides b))))",
        ];
        for src in srcs {
            let e = parse_expr(src).unwrap();
            for width in [20, 40, 60, 100] {
                let text = pretty_expr_indent(&e, width);
                assert_eq!(parse_expr(&text).unwrap(), e, "width {width}:\n{text}");
            }
        }
    }

    #[test]
    fn short_terms_stay_on_one_line() {
        let e = parse_expr("(+ 1 2)").unwrap();
        assert_eq!(pretty_expr_indent(&e, 80), "(+ 1 2)");
    }

    #[test]
    fn long_lines_are_broken_within_width_mostly() {
        let e = parse_expr(
            "(lambda (a b c) (begin (display \"x\") (+ a (+ b (+ c 1)))))",
        )
        .unwrap();
        let text = pretty_expr_indent(&e, 30);
        assert!(text.lines().count() >= 3, "{text}");
    }
}
